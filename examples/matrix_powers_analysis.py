#!/usr/bin/env python
"""Matrix powers kernel analysis: Section IV's structural trade-offs.

For the banded FEM analog (`cant`) and the scrambled circuit analog
(`G3_circuit`) under natural, RCM, and k-way orderings, reports how the
surface-to-volume ratio, redundant-computation overhead, and communication
volume evolve with the basis length ``s`` — the data behind Figs. 6 and 7 —
then executes the kernel and shows the latency-vs-bandwidth crossover of
Fig. 8.

Run:  python examples/matrix_powers_analysis.py
"""

import numpy as np

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.harness import format_series
from repro.matrices import cant, g3_circuit
from repro.mpk import MatrixPowersKernel, mpk_structure_report
from repro.order import block_row_partition, kway_partition, rcm

N_GPUS = 3
S_VALUES = [1, 2, 3, 4, 5, 6, 8, 10]
M = 100  # total vectors generated, as in Fig. 8


def orderings(matrix):
    """The paper's three orderings as (label, matrix, partition) triples."""
    n = matrix.n_rows
    yield "natural", matrix, block_row_partition(n, N_GPUS)
    reordered = matrix.permute(rcm(matrix))
    yield "rcm", reordered, block_row_partition(n, N_GPUS)
    yield "kway", matrix, kway_partition(matrix, N_GPUS)


def structure_tables(name, matrix):
    print(f"\n=== {name}: n = {matrix.n_rows}, nnz/row = {matrix.nnz / matrix.n_rows:.1f} ===")
    surface = {}
    volume = {}
    for label, mat, part in orderings(matrix):
        rep = mpk_structure_report(mat, part, S_VALUES, m=M)
        surface[label] = rep["surface_to_volume_mean"]
        volume[label] = [v / 1e3 for v in rep["comm_volume"]]
    print(format_series("s", S_VALUES, surface,
                        title="\nFig. 6 analog: surface-to-volume ratio"))
    print(format_series("s", S_VALUES, volume,
                        title=f"\nFig. 7 analog: comm volume over m={M} iters (K elements)"))


def mpk_timing(name, matrix, partition):
    """Fig. 8 analog: simulated MPK time to generate m = 100 vectors."""
    n = matrix.n_rows
    total_ms, spmv_ms = [], []
    for s in S_VALUES:
        ctx = MultiGpuContext(N_GPUS)
        mpk = MatrixPowersKernel(ctx, matrix, partition, s)
        V = DistMultiVector(ctx, partition, s + 1)
        V.set_column_from_host(0, np.ones(n) / np.sqrt(n))
        ctx.reset_clocks()
        calls = -(-M // s)
        for _ in range(calls):
            V.set_column_from_host(0, V.gather_column_to_host(s))
            with ctx.region("mpk"):
                mpk.run(V, 0)
        total_ms.append(1e3 * ctx.timers["mpk"])
        # SpMV-only time: re-run charging only the per-step kernel cost.
        spmv_only = sum(
            ctx.perf.gpu_time(
                "spmv", "ellpack",
                nnz=int(mpk._local[d][0].data[dep.active_rows(k)]),
                n_rows=dep.active_rows(k),
            )
            for d, dep in enumerate(mpk.deps)
            for k in range(1, s + 1)
        ) / N_GPUS * calls
        spmv_ms.append(1e3 * spmv_only)
    print(
        format_series(
            "s", S_VALUES, {"total (ms)": total_ms, "spmv only (ms)": spmv_ms},
            title=f"\nFig. 8 analog: {name}, MPK time for m = {M} vectors "
                  f"({N_GPUS} GPUs, simulated)",
        )
    )


def main() -> None:
    cases = {
        "cant analog (banded FEM)": cant(nx=48, ny=10, nz=10),
        "G3_circuit analog (scrambled netlist)": g3_circuit(nx=96, ny=96),
    }
    for name, matrix in cases.items():
        structure_tables(name, matrix)
    # Timing with the ordering the paper uses per matrix (Fig. 14 headers).
    mpk_timing("cant analog, natural ordering", cases["cant analog (banded FEM)"],
               block_row_partition(cases["cant analog (banded FEM)"].n_rows, N_GPUS))
    g3 = cases["G3_circuit analog (scrambled netlist)"]
    mpk_timing("G3_circuit analog, k-way partitioning", g3, kway_partition(g3, N_GPUS))


if __name__ == "__main__":
    main()
