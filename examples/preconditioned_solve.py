#!/usr/bin/env python
"""CA-compatible preconditioning: folding M^-1 into the operator.

The paper's related work points at MPK with preconditioning (Hoemmen [4,
Ch. 2]); the catch is that applying M^-1 every iteration reintroduces the
communication MPK removes.  This example demonstrates the folding route:
``A M^-1`` is materialized once, so CA-GMRES (MPK + BOrth + TSQR) runs
unchanged on the preconditioned operator.

A block-structured test problem (strongly coupled 6x6 diagonal blocks plus
weak off-block noise) shows block-Jacobi cutting iterations severalfold for
both GMRES and CA-GMRES at identical per-iteration communication.

Run:  python examples/preconditioned_solve.py
"""

import numpy as np

from repro import ca_gmres, gmres
from repro.harness import format_table
from repro.precond import BlockJacobiPreconditioner, JacobiPreconditioner
from repro.sparse.csr import csr_from_dense


def block_structured_problem(n=600, bs=6, seed=0):
    """Strong dense diagonal blocks + weak sparse off-block coupling."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    # weak random off-block couplings (~6 per row)
    rows = rng.integers(0, n, 6 * n)
    cols = rng.integers(0, n, 6 * n)
    dense[rows, cols] += 0.05 * rng.standard_normal(6 * n)
    for b0 in range(0, n, bs):
        block = rng.standard_normal((bs, bs))
        dense[b0 : b0 + bs, b0 : b0 + bs] = block @ block.T + bs * np.eye(bs)
    A = csr_from_dense(dense)
    x_true = rng.standard_normal(n)
    return A, A.matvec(x_true), x_true


def main() -> None:
    A, b, x_true = block_structured_problem()
    print(f"block-structured matrix: n = {A.n_rows}, nnz/row = {A.nnz / A.n_rows:.1f}\n")

    configs = {
        "GMRES, none": dict(solver="gmres", pre=None),
        "GMRES, Jacobi": dict(solver="gmres", pre=JacobiPreconditioner(A)),
        "GMRES, block-Jacobi(6)": dict(
            solver="gmres", pre=BlockJacobiPreconditioner(A, block_size=6)
        ),
        "CA-GMRES(8,24), none": dict(solver="ca", pre=None),
        "CA-GMRES(8,24), block-Jacobi(6)": dict(
            solver="ca", pre=BlockJacobiPreconditioner(A, block_size=6)
        ),
    }
    rows = []
    for label, cfg in configs.items():
        kwargs = dict(
            n_gpus=2, tol=1e-8, max_restarts=200, balance=False,
            preconditioner=cfg["pre"],
        )
        if cfg["solver"] == "gmres":
            r = gmres(A, b, m=24, **kwargs)
        else:
            # Monomial basis: CA kernels run from the first cycle (the
            # Newton variant would spend its first cycle in standard GMRES
            # seeding shifts, masking the comparison on this easy problem).
            r = ca_gmres(A, b, s=8, m=24, basis="monomial", **kwargs)
        err = np.linalg.norm(r.x - x_true) / np.linalg.norm(x_true)
        rows.append(
            [label, r.converged, r.n_iterations,
             f"{err:.1e}", 1e3 * r.total_time]
        )
    print(
        format_table(
            ["configuration", "converged", "iterations", "x error", "sim ms"],
            rows,
        )
    )
    print(
        "\nBlock-Jacobi folding preserves CA structure: the preconditioned\n"
        "CA-GMRES still communicates once per s-block, but needs far fewer\n"
        "blocks to converge."
    )


if __name__ == "__main__":
    main()
