#!/usr/bin/env python
"""Orthogonalization study: the five TSQR strategies of Section V.

Factors tall-skinny panels of increasing condition number with MGS, CGS,
CholQR, SVQR, and CAQR; reports orthogonality error ``||I - Q^T Q||``,
factorization error, GPU-CPU communication phases (Fig. 10), and simulated
time on three GPUs — reproducing the stability-vs-speed trade-off at the
heart of the paper.

Run:  python examples/orthogonalization_study.py
"""

import numpy as np

from repro.gpu.context import MultiGpuContext
from repro.harness import format_table
from repro.matrices import well_conditioned_tall_skinny
from repro.order.partition import block_row_partition
from repro.dist.multivector import DistMultiVector
from repro.orth import (
    CholeskyBreakdown,
    factorization_error,
    orthogonality_error,
    tsqr,
    tsqr_properties,
)

N_ROWS = 60_000
N_COLS = 16  # s + 1
METHODS = ["mgs", "cgs", "cholqr", "svqr", "caqr"]


def factor_panel(method: str, V: np.ndarray):
    """TSQR one panel on 3 simulated GPUs; returns (Q, R, messages, time)."""
    ctx = MultiGpuContext(3)
    part = block_row_partition(V.shape[0], 3)
    mv = DistMultiVector(ctx, part, V.shape[1])
    for d in range(3):
        mv.local[d].data[...] = V[part.rows_of(d)]
    ctx.reset_clocks()
    ctx.counters.reset()
    R = tsqr(ctx, mv.panel(0, V.shape[1]), method=method)
    Q = np.empty_like(V)
    for d in range(3):
        Q[part.rows_of(d)] = mv.local[d].data
    return Q, R, ctx.counters.total_messages, ctx.current_time()


def main() -> None:
    for kappa in (1e2, 1e6, 1e10):
        V = well_conditioned_tall_skinny(N_ROWS, N_COLS, condition=kappa, seed=1)
        rows = []
        for method in METHODS:
            props = tsqr_properties(method)
            try:
                Q, R, messages, t = factor_panel(method, V)
                rows.append(
                    [
                        method.upper(),
                        props.error_bound,
                        orthogonality_error(Q),
                        factorization_error(V, Q, R),
                        messages,
                        1e3 * t,
                    ]
                )
            except CholeskyBreakdown:
                rows.append(
                    [method.upper(), props.error_bound, "BREAKDOWN", "-", "-", "-"]
                )
        print(
            format_table(
                ["method", "bound", "||I-Q'Q||", "||V-QR||/||V||",
                 "PCIe msgs", "sim ms"],
                rows,
                title=f"\nTSQR of a {N_ROWS} x {N_COLS} panel, kappa(V) = {kappa:.0e}",
            )
        )
    print(
        "\nTakeaways (matching the paper): CholQR/SVQR are the fastest and\n"
        "communicate a constant 2 phases, but lose orthogonality like\n"
        "kappa^2 and CholQR eventually breaks down; SVQR survives the\n"
        "breakdown; CAQR stays at machine precision but runs at BLAS-1/2\n"
        "speed; MGS communicates (s+1)(s+2) times."
    )


if __name__ == "__main__":
    main()
