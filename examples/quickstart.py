#!/usr/bin/env python
"""Quickstart: solve a sparse linear system with GMRES and CA-GMRES.

Builds a nonsymmetric convection-diffusion matrix, solves it with standard
GMRES(30) and with CA-GMRES(10, 30) on three simulated GPUs, and compares
convergence, communication counts, and simulated time per restart loop —
the quantities the paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ca_gmres, gmres
from repro.matrices import convection_diffusion2d


def main() -> None:
    # A 64 x 64 convection-diffusion grid: 4096 unknowns, nonsymmetric.
    A = convection_diffusion2d(64, wind=(1.0, 0.5))
    n = A.n_rows
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    b = A.matvec(x_true)
    print(f"matrix: n = {n}, nnz = {A.nnz} ({A.nnz / n:.1f} per row)\n")

    results = {}
    results["GMRES(30), CGS"] = gmres(
        A, b, n_gpus=3, m=30, tol=1e-8, orth_method="cgs"
    )
    results["CA-GMRES(10,30), Newton + CholQR"] = ca_gmres(
        A, b, n_gpus=3, s=10, m=30, tol=1e-8,
        basis="newton", tsqr_method="cholqr",
    )

    for label, r in results.items():
        err = np.linalg.norm(r.x - x_true) / np.linalg.norm(x_true)
        msgs = r.counters["d2h_messages"] + r.counters["h2d_messages"]
        print(f"{label}")
        print(f"  converged          : {r.converged}")
        print(f"  restarts           : {r.n_restarts}")
        print(f"  iterations         : {r.n_iterations}")
        print(f"  solution error     : {err:.2e}")
        print(f"  PCIe messages      : {msgs}")
        print(f"  simulated time     : {1e3 * r.total_time:.2f} ms "
              f"({1e3 * r.time_per_restart():.2f} ms / restart loop)")
        phases = {k: f"{1e3 * v:.2f} ms" for k, v in sorted(r.timers.items())}
        print(f"  phase breakdown    : {phases}\n")

    g = results["GMRES(30), CGS"]
    ca = results["CA-GMRES(10,30), Newton + CholQR"]
    print(
        f"CA-GMRES speedup over GMRES (time / restart loop): "
        f"{g.time_per_restart() / ca.time_per_restart():.2f}x"
    )


if __name__ == "__main__":
    main()
