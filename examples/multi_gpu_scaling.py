#!/usr/bin/env python
"""Multi-GPU scaling of GMRES and CA-GMRES (the Fig. 14 experiment shape).

Solves the banded FEM analog on 1-3 simulated GPUs with standard
GMRES(60)/CGS and CA-GMRES(15, 60)/CholQR and prints the paper's table
columns: restarts, Orth time per restart, TSQR share, SpMV/MPK time per
restart, total per restart, and the speedup over GMRES on the same device
count.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.harness import format_table
from repro.harness.experiment import run_solver_experiment, solver_table_row
from repro.matrices import cant


def main() -> None:
    A = cant(nx=96, ny=16, nz=16)  # ~49k rows, ~2.4M nnz
    b = np.ones(A.n_rows)
    m, s = 60, 15
    print(
        f"cant analog: n = {A.n_rows}, nnz = {A.nnz} "
        f"({A.nnz / A.n_rows:.1f}/row), natural ordering\n"
        f"GMRES({m}) vs CA-GMRES({s}, {m}), tol = 1e-4 relative\n"
    )
    rows = []
    gmres_total = {}
    for n_gpus in (1, 2, 3):
        rec = run_solver_experiment(
            f"GMRES/CGS", A, b, "gmres", n_gpus,
            m=m, tol=1e-4, orth_method="cgs", max_restarts=8,
        )
        gmres_total[n_gpus] = rec.total_ms
        rows.append(solver_table_row(rec))
    for n_gpus in (1, 2, 3):
        rec = run_solver_experiment(
            f"CA-GMRES s={s} 2xCholQR", A, b, "ca_gmres", n_gpus,
            s=s, m=m, tol=1e-4, tsqr_method="cholqr", reorth=2,
            basis="newton", max_restarts=8,
        )
        rec.speedup = gmres_total[n_gpus] / rec.total_ms
        rows.append(solver_table_row(rec))
    print(
        format_table(
            ["GPUs", "solver", "Rest.", "Orth/Res ms", "TSQR/Res ms",
             "SpMV/Res ms", "Total/Res ms", "SpdUp"],
            rows,
        )
    )
    print(
        "\nReading the table: Orth time drops sharply for CA-GMRES (block\n"
        "BLAS-3 kernels + 2 communication phases per block), SpMV->MPK\n"
        "gains are modest (Section IV), and both solvers scale with GPU\n"
        "count once per-device work amortizes PCIe latency."
    )


if __name__ == "__main__":
    main()
