#!/usr/bin/env python
"""The paper's closing question: CA-GMRES across multiple compute nodes.

"Finally ... we would like to study ... the performance of CA-GMRES on a
larger number of GPUs, in particular, the GPUs distributed over multiple
compute nodes, where the communication is more expensive."

Runs GMRES and CA-GMRES on 2 nodes x 3 simulated GPUs while sweeping the
inter-node network latency, and renders the speedup trend as an ASCII
chart.  The more expensive communication is, the more avoiding it pays.

Run:  python examples/multinode_outlook.py
"""

import numpy as np

from repro.core import ca_gmres, gmres
from repro.gpu.multinode import MultiNodeContext, NetworkSpec
from repro.harness import ascii_plot, format_table
from repro.matrices import cant


def main() -> None:
    A = cant(nx=96, ny=16, nz=16)
    b = np.ones(A.n_rows)
    latencies_us = [2, 5, 10, 20, 40, 70, 100]
    rows = []
    speedups = []
    for lat in latencies_us:
        net = NetworkSpec(latency=lat * 1e-6, bandwidth=3.2e9)
        r_g = gmres(
            A, b, ctx=MultiNodeContext(2, 3, network=net), m=30,
            tol=1e-14, max_restarts=1,
        )
        r_c = ca_gmres(
            A, b, ctx=MultiNodeContext(2, 3, network=net), s=10, m=30,
            tol=1e-14, max_restarts=2, basis="monomial",
        )
        speedup = r_g.time_per_restart() / r_c.time_per_restart()
        speedups.append(speedup)
        rows.append(
            [lat, 1e3 * r_g.time_per_restart(), 1e3 * r_c.time_per_restart(),
             f"{speedup:.2f}"]
        )
    print(
        format_table(
            ["latency (us)", "GMRES ms/res", "CA-GMRES ms/res", "speedup"],
            rows,
            title="2 nodes x 3 GPUs, cant analog, inter-node latency sweep\n",
        )
    )
    print()
    print(
        ascii_plot(
            latencies_us,
            {"CA-GMRES speedup": speedups},
            width=56,
            height=12,
            title="speedup of CA-GMRES over GMRES vs network latency (us)",
        )
    )


if __name__ == "__main__":
    main()
