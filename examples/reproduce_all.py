#!/usr/bin/env python
"""Reproduce the whole paper: run every figure benchmark and collate a report.

Runs ``pytest benchmarks/ --benchmark-only`` (unless ``--collate-only``),
then stitches the archived tables under ``benchmarks/results/`` into a
single ``benchmarks/results/REPORT.md`` ordered like the paper's evaluation
section, ready to diff against EXPERIMENTS.md.

Run:  python examples/reproduce_all.py [--collate-only]
"""

import argparse
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

# Paper order, with section headers.
SECTIONS = [
    ("Fig. 3 — GMRES baseline", ["fig03_cant", "fig03_g3_circuit"]),
    ("Fig. 6 — surface-to-volume", ["fig06_cant", "fig06_g3_circuit"]),
    ("Fig. 7 — communication volume", ["fig07_cant", "fig07_g3_circuit"]),
    ("Fig. 8 — MPK performance", ["fig08_cant", "fig08_g3_circuit"]),
    ("Fig. 10 — TSQR properties", ["fig10_tsqr_properties"]),
    ("Fig. 11 — kernel performance", ["fig11a_dgemm", "fig11b_dgemv", "fig11c_tsqr"]),
    ("Fig. 12 — test matrices", ["fig12_matrices"]),
    ("Fig. 13 — TSQR errors in CA-GMRES", ["fig13_s20m30", "fig13_s30m30"]),
    ("Fig. 14 — CA-GMRES vs GMRES", ["fig14_cant", "fig14_g3_circuit", "fig14_dielfilter"]),
    ("Fig. 15 — normalized summary", ["fig15_normalized"]),
    (
        "Ablations",
        [
            "ablation_partitioner",
            "ablation_reorth",
            "ablation_mixed_precision",
            "ablation_basis",
            "ablation_adaptive",
            "ablation_svalue",
            "ablation_spmv_format",
        ],
    ),
    ("Outlook — multi-node", ["multinode_outlook"]),
]


def run_benchmarks() -> int:
    """Regenerate every table by running the benchmark suite."""
    return subprocess.call(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"],
        cwd=ROOT,
    )


def collate() -> Path:
    """Stitch the archived tables into REPORT.md (missing ones are noted)."""
    lines = [
        "# Regenerated paper results",
        "",
        "Produced by `python examples/reproduce_all.py`; see EXPERIMENTS.md",
        "for the paper-vs-measured discussion of each block.",
        "",
    ]
    for title, names in SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        for name in names:
            path = RESULTS / f"{name}.txt"
            if path.exists():
                lines.append("```")
                lines.append(path.read_text().rstrip())
                lines.append("```")
            else:
                lines.append(f"*{name}: missing — run the benchmarks first*")
            lines.append("")
    out = RESULTS / "REPORT.md"
    out.write_text("\n".join(lines) + "\n")
    return out


def main() -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--collate-only",
        action="store_true",
        help="skip the (several-minute) benchmark run; just build REPORT.md",
    )
    args = parser.parse_args()
    code = 0
    if not args.collate_only:
        code = run_benchmarks()
    report = collate()
    print(f"report written to {report}")
    return code


if __name__ == "__main__":
    sys.exit(main())
