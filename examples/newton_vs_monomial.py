#!/usr/bin/env python
"""Newton vs monomial basis: why CA-GMRES needs Leja-ordered shifts.

Section IV-A: the monomial basis v, Av, A^2 v, ... converges to the
dominant eigenvector, so the basis condition number grows exponentially
with s and CholQR eventually breaks down.  The Newton basis
(A - theta_k I) v with Leja-ordered Ritz shifts keeps the basis usable.

This example measures, for increasing s:
  * the condition number of the s+1-vector basis each scheme generates;
  * the condition number of its Gram matrix (what CholQR must factor —
    Fig. 12's kappa(B) column);
  * whether CA-GMRES(s, s) with CholQR survives without breakdowns.

Run:  python examples/newton_vs_monomial.py
"""

import numpy as np

from repro.core import ca_gmres
from repro.core.basis import newton_shift_ops
from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.harness import format_table
from repro.matrices import poisson2d
from repro.mpk import MatrixPowersKernel, monomial_shift_ops
from repro.order.partition import block_row_partition


def basis_condition(matrix, s, shift_ops):
    """kappa of the MPK basis and of its Gram matrix."""
    n = matrix.n_rows
    ctx = MultiGpuContext(1)
    part = block_row_partition(n, 1)
    mpk = MatrixPowersKernel(ctx, matrix, part, s)
    V = DistMultiVector(ctx, part, s + 1)
    rng = np.random.default_rng(3)
    v0 = rng.standard_normal(n)
    V.set_column_from_host(0, v0 / np.linalg.norm(v0))
    mpk.run(V, 0, shift_ops)
    panel = V.local[0].data
    kappa_v = np.linalg.cond(panel)
    kappa_gram = np.linalg.cond(panel.T @ panel)
    return kappa_v, kappa_gram


def main() -> None:
    A = poisson2d(24)
    n = A.n_rows
    print(f"matrix: 2-D Poisson, n = {n}\n")

    # Ritz shifts from a short Arnoldi seed run (what CA-GMRES's first
    # restart cycle provides).
    seed = ca_gmres(
        A, np.ones(n), s=5, m=20, basis="newton", tol=1e-30, max_restarts=1
    )
    # Recompute shifts explicitly for the table.
    from repro.core.gmres import gmres

    g = gmres(A, np.ones(n), m=20, tol=1e-30, max_restarts=1)
    del seed, g

    # Build shifts directly from a host Arnoldi for clarity.
    from repro.matrices.suite import dominant_ritz_ratio  # noqa: F401

    from repro.core.arnoldi import host_ritz_values

    rows = []
    for s in (5, 10, 15, 20, 25):
        mono_v, mono_g = basis_condition(A, s, monomial_shift_ops(s))
        # Ritz values of a 20-step Arnoldi run drive the Newton shifts.
        shifts = host_ritz_values(A, min(20, s + 5))
        newt_v, newt_g = basis_condition(A, s, newton_shift_ops(shifts, s))
        rows.append([s, mono_v, mono_g, newt_v, newt_g])
    print(
        format_table(
            ["s", "kappa(V) mono", "kappa(B) mono", "kappa(V) newton",
             "kappa(B) newton"],
            rows,
            title="Basis conditioning: monomial vs Newton-Leja "
                  "(B is the Gram matrix CholQR factors)",
        )
    )

    print("\nCA-GMRES(s=25, m=25) with CholQR, tol = 1e-8:")
    for basis in ("monomial", "newton"):
        r = ca_gmres(
            A, np.ones(n), s=25, m=25, basis=basis, tsqr_method="cholqr",
            tol=1e-8, max_restarts=40, on_breakdown="fallback",
        )
        print(
            f"  {basis:9s}: converged={r.converged}  restarts={r.n_restarts}  "
            f"CholQR breakdowns={r.breakdowns}"
        )


if __name__ == "__main__":
    main()
