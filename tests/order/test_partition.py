"""Tests for Partition and block-row distribution."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.order.partition import (
    Partition,
    block_row_partition,
    edge_cut,
    partition_matrix,
    partition_quality,
)
from repro.sparse.graph import adjacency_structure


class TestPartition:
    def test_rows_of_cover_all(self):
        p = Partition(np.array([0, 1, 0, 2, 1]), 3)
        all_rows = np.concatenate([p.rows_of(d) for d in range(3)])
        np.testing.assert_array_equal(np.sort(all_rows), np.arange(5))

    def test_rows_of_sorted(self):
        p = Partition(np.array([1, 0, 1, 0]), 2)
        np.testing.assert_array_equal(p.rows_of(1), [0, 2])

    def test_rows_of_cached(self):
        p = Partition(np.array([0, 0]), 1)
        assert p.rows_of(0) is p.rows_of(0)

    def test_part_sizes(self):
        p = Partition(np.array([0, 1, 1, 1]), 2)
        np.testing.assert_array_equal(p.part_sizes(), [1, 3])

    def test_imbalance(self):
        p = Partition(np.array([0, 1, 1, 1]), 2)
        assert p.imbalance() == pytest.approx(1.5)

    def test_labels_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Partition(np.array([0, 3]), 2)

    def test_n_parts_positive(self):
        with pytest.raises(ValueError):
            Partition(np.array([], dtype=np.int64), 0)

    def test_rows_of_bad_part(self):
        p = Partition(np.array([0]), 1)
        with pytest.raises(ValueError):
            p.rows_of(1)


class TestBlockRowPartition:
    def test_contiguous_blocks(self):
        p = block_row_partition(10, 3)
        assert np.all(np.diff(p.assignment) >= 0)  # non-decreasing labels

    def test_balance(self):
        p = block_row_partition(100, 3)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_single_part(self):
        p = block_row_partition(7, 1)
        assert np.all(p.assignment == 0)

    def test_more_parts_than_rows_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            block_row_partition(2, 4)

    def test_parts_equal_rows(self):
        p = block_row_partition(4, 4)
        assert p.part_sizes().tolist() == [1, 1, 1, 1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_row_partition(5, 0)
        with pytest.raises(ValueError):
            block_row_partition(-1, 2)


class TestPartitionMatrix:
    def test_blocks_reassemble(self):
        A = poisson2d(5)
        p = block_row_partition(A.n_rows, 3)
        blocks = partition_matrix(A, p)
        dense = A.to_dense()
        for rows, local in blocks:
            np.testing.assert_array_equal(local.to_dense(), dense[rows])

    def test_size_mismatch(self):
        A = poisson2d(3)
        with pytest.raises(ValueError):
            partition_matrix(A, block_row_partition(5, 2))

    def test_empty_part_rejected(self):
        from repro.order.partition import Partition

        A = poisson2d(3)
        # Hand-built partition where part 1 owns no rows.
        assignment = np.zeros(A.n_rows, dtype=np.int64)
        assignment[-1] = 2
        degenerate = Partition(assignment, 3)
        with pytest.raises(ValueError, match="no rows"):
            partition_matrix(A, degenerate)


class TestEdgeCut:
    def test_no_cut_single_part(self):
        A = poisson2d(4)
        g = adjacency_structure(A)
        assert edge_cut(g, block_row_partition(A.n_rows, 1)) == 0

    def test_grid_cut_known(self):
        # 4x4 grid split into two 8-row halves along the first axis:
        # the cut is the 4 edges between row 1 and row 2 of the grid.
        A = poisson2d(4)
        g = adjacency_structure(A)
        assert edge_cut(g, block_row_partition(16, 2)) == 4

    def test_quality_report_keys(self):
        A = poisson2d(4)
        g = adjacency_structure(A)
        q = partition_quality(g, block_row_partition(16, 2))
        assert q["edge_cut"] == 4
        assert q["imbalance"] == pytest.approx(1.0)
        assert q["boundary_vertices"] == 8
        assert q["part_sizes"] == [8, 8]
