"""Tests for the k-way partitioner and recursive bisection."""

import numpy as np
import pytest

from repro.matrices import g3_circuit, poisson2d
from repro.order.kway import kway_partition, recursive_bisection, refine_partition
from repro.order.partition import Partition, block_row_partition, edge_cut
from repro.sparse.graph import adjacency_structure


class TestKwayPartition:
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 4])
    def test_covers_all_rows(self, n_parts):
        A = poisson2d(8)
        p = kway_partition(A, n_parts)
        assert p.n_rows == A.n_rows
        assert set(np.unique(p.assignment)) == set(range(n_parts))

    def test_balanced(self):
        A = poisson2d(10)
        p = kway_partition(A, 3)
        assert p.imbalance() <= 1.1

    def test_beats_naive_split_on_scrambled_graph(self):
        # The paper's motivation: KWY recovers locality the natural
        # ordering lacks.
        A = g3_circuit(nx=20, ny=20)
        g = adjacency_structure(A)
        kwy = kway_partition(A, 3)
        naive = block_row_partition(A.n_rows, 3)
        assert edge_cut(g, kwy) < edge_cut(g, naive) / 2

    def test_grid_cut_reasonable(self):
        A = poisson2d(12)
        g = adjacency_structure(A)
        p = kway_partition(A, 2)
        # Optimal bisection of a 12x12 grid cuts 12 edges; allow slack.
        assert edge_cut(g, p) <= 40

    def test_single_part(self):
        A = poisson2d(4)
        p = kway_partition(A, 1)
        assert np.all(p.assignment == 0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            kway_partition(poisson2d(3), 0)

    def test_deterministic(self):
        A = poisson2d(7)
        p1 = kway_partition(A, 3)
        p2 = kway_partition(A, 3)
        np.testing.assert_array_equal(p1.assignment, p2.assignment)


class TestRefinePartition:
    def test_reduces_or_keeps_cut(self):
        A = poisson2d(10)
        g = adjacency_structure(A)
        rng = np.random.default_rng(0)
        random_part = Partition(rng.integers(0, 2, A.n_rows), 2)
        refined = refine_partition(g, random_part, passes=8)
        assert edge_cut(g, refined) <= edge_cut(g, random_part)

    def test_respects_balance(self):
        A = poisson2d(10)
        g = adjacency_structure(A)
        p = block_row_partition(A.n_rows, 2)
        refined = refine_partition(g, p, passes=8, balance_tol=1.05)
        assert refined.imbalance() <= 1.06

    def test_noop_on_perfect_partition(self):
        # Two disconnected cliques already perfectly split.
        dense = np.zeros((6, 6))
        dense[:3, :3] = 1.0
        dense[3:, 3:] = 1.0
        from repro.sparse.csr import csr_from_dense

        A = csr_from_dense(dense)
        g = adjacency_structure(A)
        p = Partition(np.array([0, 0, 0, 1, 1, 1]), 2)
        refined = refine_partition(g, p)
        np.testing.assert_array_equal(refined.assignment, p.assignment)


class TestRecursiveBisection:
    @pytest.mark.parametrize("n_parts", [2, 3, 4])
    def test_covers_all_rows(self, n_parts):
        A = poisson2d(8)
        p = recursive_bisection(A, n_parts)
        assert set(np.unique(p.assignment)) == set(range(n_parts))

    def test_roughly_balanced(self):
        A = poisson2d(9)
        p = recursive_bisection(A, 3)
        assert p.imbalance() <= 1.35

    def test_cut_better_than_random(self):
        A = g3_circuit(nx=16, ny=16)
        g = adjacency_structure(A)
        rb = recursive_bisection(A, 2)
        rng = np.random.default_rng(1)
        rand = Partition(rng.integers(0, 2, A.n_rows), 2)
        assert edge_cut(g, rb) < edge_cut(g, rand)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            recursive_bisection(poisson2d(3), 0)
