"""Property-based tests (hypothesis) for reordering and partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.order.kway import kway_partition, recursive_bisection
from repro.order.partition import block_row_partition, edge_cut
from repro.order.rcm import matrix_bandwidth, rcm
from repro.sparse.coo import CooMatrix
from repro.sparse.graph import adjacency_structure


@st.composite
def random_matrices(draw):
    n = draw(st.integers(4, 30))
    nnz = draw(st.integers(n, 4 * n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    vals = np.ones(rows.size)
    return CooMatrix((n, n), rows, cols, vals).to_csr()


@settings(max_examples=40, deadline=None)
@given(random_matrices())
def test_rcm_always_a_permutation(matrix):
    perm = rcm(matrix)
    np.testing.assert_array_equal(np.sort(perm), np.arange(matrix.n_rows))


@settings(max_examples=40, deadline=None)
@given(random_matrices())
def test_rcm_preserves_singular_values(matrix):
    """A symmetric permutation is an orthogonal similarity: the singular
    values are exactly preserved (eigenvalues of nonsymmetric matrices can
    be too ill-conditioned to compare numerically)."""
    perm = rcm(matrix)
    permuted = matrix.permute(perm)
    sv_a = np.linalg.svd(matrix.to_dense(), compute_uv=False)
    sv_p = np.linalg.svd(permuted.to_dense(), compute_uv=False)
    np.testing.assert_allclose(sv_a, sv_p, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(random_matrices(), st.integers(1, 4))
def test_kway_partition_invariants(matrix, n_parts):
    part = kway_partition(matrix, n_parts)
    assert part.n_rows == matrix.n_rows
    # Every row assigned to a valid part.
    assert part.assignment.min() >= 0
    assert part.assignment.max() < n_parts
    # Parts cover all rows exactly once.
    total = sum(part.rows_of(d).size for d in range(n_parts))
    assert total == matrix.n_rows


@settings(max_examples=30, deadline=None)
@given(random_matrices(), st.integers(2, 4))
def test_recursive_bisection_invariants(matrix, n_parts):
    part = recursive_bisection(matrix, n_parts)
    total = sum(part.rows_of(d).size for d in range(n_parts))
    assert total == matrix.n_rows


@settings(max_examples=30, deadline=None)
@given(random_matrices(), st.integers(1, 4))
def test_edge_cut_bounded_by_edges(matrix, n_parts):
    graph = adjacency_structure(matrix)
    part = block_row_partition(matrix.n_rows, n_parts)
    cut = edge_cut(graph, part)
    assert 0 <= cut <= graph.nnz // 2


@settings(max_examples=30, deadline=None)
@given(random_matrices())
def test_bandwidth_invariant_under_identity_permutation(matrix):
    ident = np.arange(matrix.n_rows)
    assert matrix_bandwidth(matrix.permute(ident)) == matrix_bandwidth(
        matrix.sort_indices()
    )
