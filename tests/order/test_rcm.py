"""Tests for reverse Cuthill-McKee."""

import numpy as np
import pytest

from repro.matrices import poisson2d, g3_circuit
from repro.order.rcm import matrix_bandwidth, rcm
from repro.sparse.csr import csr_from_dense, eye_csr


class TestRcmBasics:
    def test_is_permutation(self):
        A = poisson2d(6)
        perm = rcm(A)
        np.testing.assert_array_equal(np.sort(perm), np.arange(A.n_rows))

    def test_preserves_symmetry(self):
        A = poisson2d(5)
        P = A.permute(rcm(A))
        np.testing.assert_allclose(P.to_dense(), P.to_dense().T)

    def test_identity_matrix(self):
        perm = rcm(eye_csr(4))
        np.testing.assert_array_equal(np.sort(perm), np.arange(4))

    def test_explicit_start(self):
        A = poisson2d(4)
        perm = rcm(A, start=0)
        assert perm.size == 16
        # Reversed CM: the start vertex ends up last.
        assert perm[-1] == 0

    def test_start_out_of_range(self):
        with pytest.raises(ValueError):
            rcm(poisson2d(3), start=100)

    def test_disconnected_graph_covered(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[3, 4] = dense[4, 3] = 1.0
        perm = rcm(csr_from_dense(dense + np.eye(6)))
        np.testing.assert_array_equal(np.sort(perm), np.arange(6))


class TestBandwidthReduction:
    def test_scrambled_grid_bandwidth_reduced(self):
        rng = np.random.default_rng(3)
        A = poisson2d(12)
        scrambled = A.permute(rng.permutation(A.n_rows))
        before = matrix_bandwidth(scrambled)
        after = matrix_bandwidth(scrambled.permute(rcm(scrambled)))
        assert after < before / 3

    def test_circuit_analog_bandwidth_reduced(self):
        A = g3_circuit(nx=24, ny=24)
        before = matrix_bandwidth(A)
        after = matrix_bandwidth(A.permute(rcm(A)))
        assert after < before

    def test_path_graph_optimal(self):
        # A path has bandwidth 1 under CM ordering.
        n = 10
        dense = np.eye(n) * 2
        for i in range(n - 1):
            dense[i, i + 1] = dense[i + 1, i] = -1.0
        rng = np.random.default_rng(0)
        scrambled = csr_from_dense(dense).permute(rng.permutation(n))
        assert matrix_bandwidth(scrambled.permute(rcm(scrambled))) == 1


class TestMatrixBandwidth:
    def test_diagonal(self):
        assert matrix_bandwidth(eye_csr(5)) == 0

    def test_empty(self):
        assert matrix_bandwidth(csr_from_dense(np.zeros((3, 3)))) == 0

    def test_tridiagonal(self):
        dense = np.eye(4) + np.eye(4, k=1)
        assert matrix_bandwidth(csr_from_dense(dense)) == 1
