"""Tests for the reproduce_all collation script."""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def reproduce_all():
    spec = importlib.util.spec_from_file_location(
        "reproduce_all", ROOT / "examples" / "reproduce_all.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCollate:
    def test_sections_cover_every_paper_figure(self, reproduce_all):
        names = [n for _, block in reproduce_all.SECTIONS for n in block]
        for fig in ("fig03", "fig06", "fig07", "fig08", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "fig15"):
            assert any(n.startswith(fig) for n in names), fig

    def test_collate_produces_report(self, reproduce_all, tmp_path, monkeypatch):
        monkeypatch.setattr(reproduce_all, "RESULTS", tmp_path)
        (tmp_path / "fig03_cant.txt").write_text("table body\n")
        report = reproduce_all.collate()
        text = report.read_text()
        assert "table body" in text
        assert "missing" in text  # the other tables are absent

    def test_collate_with_real_results_if_present(self, reproduce_all):
        if not (reproduce_all.RESULTS / "fig10_tsqr_properties.txt").exists():
            pytest.skip("benchmarks not yet run")
        report = reproduce_all.collate()
        text = report.read_text()
        assert "Fig. 10" in text and "CHOLQR" in text
