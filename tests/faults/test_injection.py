"""Tests for the injection mechanics: kernels, transfers, determinism."""

import numpy as np
import pytest

from repro.faults import DeviceLost, FaultEvent, FaultPlan, TransferCorruption
from repro.gpu import blas
from repro.gpu.context import MultiGpuContext
from repro.gpu.device import DeviceArray


def faulted_ctx(events=(), n_gpus=1, **plan_kw):
    plan = (
        FaultPlan.scripted(events) if events else FaultPlan.from_rate(**plan_kw)
    )
    return MultiGpuContext(n_gpus, fault_plan=plan)


class TestKernelFaults:
    def test_scripted_poison_lands_in_kernel_output(self):
        # Third kernel charge on gpu0 (trigger index 2) writes one NaN.
        ctx = faulted_ctx([FaultEvent("gpu0", "poison", trigger=2, position=4)])
        dev = ctx.devices[0]
        x = dev.adopt(np.ones(8))
        y = dev.adopt(np.ones(8))
        blas.axpy(1.0, x, y)  # trigger 0, clean
        blas.axpy(1.0, x, y)  # trigger 1, clean
        assert np.all(np.isfinite(y.data))
        blas.axpy(1.0, x, y)  # trigger 2, poisoned
        assert np.isnan(y.data[4])
        assert np.isfinite(np.delete(y.data, 4)).all()
        assert ctx.faults.schedule() == [("gpu0", "poison", 2)]

    def test_poison_position_wraps_and_parity_selects_inf(self):
        ctx = faulted_ctx([FaultEvent("gpu0", "poison", trigger=0, position=11)])
        dev = ctx.devices[0]
        x = dev.adopt(np.ones(8))
        blas.scal(2.0, x)
        assert np.isinf(x.data[11 % 8])  # odd position -> +Inf

    def test_scripted_stall_extends_clock_only(self):
        clean = MultiGpuContext(1)
        stalled = faulted_ctx(
            [FaultEvent("gpu0", "stall", trigger=0, factor=8.0)]
        )
        for c in (clean, stalled):
            dev = c.devices[0]
            x = dev.adopt(np.ones(1000))
            blas.scal(2.0, x)
        assert stalled.devices[0].clock == pytest.approx(
            8.0 * clean.devices[0].clock
        )
        # Numerics untouched.
        assert np.all(stalled.devices[0].adopt(np.ones(1)).data == 1.0)
        [rec] = stalled.faults.injected
        assert rec["kind"] == "stall" and rec["extra_time"] > 0

    def test_dropout_raises_and_marks_device_dead(self):
        ctx = faulted_ctx([FaultEvent("gpu0", "dropout", trigger=1)])
        dev = ctx.devices[0]
        x = dev.adopt(np.ones(4))
        blas.scal(2.0, x)
        with pytest.raises(DeviceLost):
            blas.scal(2.0, x)
        assert "gpu0" in ctx.faults.dead
        # Every subsequent operation touching the device fails too.
        with pytest.raises(DeviceLost):
            blas.scal(2.0, x)
        with pytest.raises(DeviceLost):
            ctx.h2d(dev, np.ones(4))

    def test_host_kernels_can_stall(self):
        ctx = faulted_ctx([FaultEvent("host", "stall", trigger=0, factor=4.0)])
        clean = MultiGpuContext(1)
        for c in (clean, ctx):
            c.host.charge_kernel("axpy", "mkl", n=5000)
        assert ctx.host.clock == pytest.approx(4.0 * clean.host.clock)


class TestTransferFaults:
    def test_scripted_corrupt_hits_arriving_copy_not_source(self):
        ctx = faulted_ctx([FaultEvent("pcie", "corrupt", trigger=0, position=2)])
        src = np.ones(6)
        with pytest.raises(TransferCorruption):
            ctx.h2d(ctx.devices[0], src)
        assert np.all(np.isfinite(src))  # transient: source intact
        assert ctx.faults.detections  # the arrival guard logged it
        # The next transfer (trigger 1) is clean: a retry succeeds.
        arr = ctx.h2d(ctx.devices[0], src)
        assert np.all(arr.data == 1.0)

    def test_d2h_corruption_detected(self):
        ctx = faulted_ctx([FaultEvent("pcie", "corrupt", trigger=1, position=0)])
        dev = ctx.devices[0]
        darr = dev.adopt(np.ones(5))
        ctx.d2h(darr)  # trigger 0: clean
        with pytest.raises(TransferCorruption):
            ctx.d2h(darr)
        assert np.all(np.isfinite(darr.data))

    def test_bus_stall_delays_consumer(self):
        clean = MultiGpuContext(1)
        ctx = faulted_ctx([FaultEvent("pcie", "stall", trigger=0, factor=8.0)])
        for c in (clean, ctx):
            c.h2d(c.devices[0], np.ones(100_000))
        assert ctx.devices[0].clock > clean.devices[0].clock

    def test_validate_transfers_flag_without_plan(self):
        """The isfinite guard works standalone (satellite: silent-NaN audit)."""
        ctx = MultiGpuContext(1, validate_transfers=True)
        with pytest.raises(TransferCorruption):
            ctx.h2d(ctx.devices[0], np.array([1.0, np.nan]))
        darr = ctx.devices[0].adopt(np.array([np.inf, 0.0]))
        with pytest.raises(TransferCorruption):
            ctx.d2h(darr)

    def test_without_flag_nan_propagates_silently(self):
        """Historical behavior is preserved when validation is off."""
        ctx = MultiGpuContext(1)
        arr = ctx.h2d(ctx.devices[0], np.array([1.0, np.nan]))
        assert np.isnan(arr.data[1])


class TestDeterminism:
    def _exercise(self, ctx):
        dev = ctx.devices[0]
        x = dev.adopt(np.ones(64))
        for _ in range(200):
            try:
                blas.scal(1.0, x)
            except DeviceLost:
                break
        for _ in range(20):
            try:
                ctx.h2d(dev, np.ones(16))
            except (TransferCorruption, DeviceLost):
                pass
        ctx.host.charge_kernel("axpy", "mkl", n=100)
        return ctx.faults.schedule()

    def test_same_seed_same_schedule(self):
        a = self._exercise(faulted_ctx(seed=42, rate=0.05))
        b = self._exercise(faulted_ctx(seed=42, rate=0.05))
        assert a == b and len(a) > 0

    def test_different_seed_different_schedule(self):
        a = self._exercise(faulted_ctx(seed=1, rate=0.05))
        b = self._exercise(faulted_ctx(seed=2, rate=0.05))
        assert a != b

    def test_reset_clocks_replays_schedule(self):
        ctx = faulted_ctx(seed=7, rate=0.05)
        first = self._exercise(ctx)
        ctx.reset_clocks()
        second = self._exercise(ctx)
        assert first == second and len(first) > 0

    def test_max_faults_caps_rate_draws(self):
        ctx = faulted_ctx(seed=3, rate=0.5, max_faults=2)
        self._exercise(ctx)
        assert len(ctx.faults.injected) <= 2

    def test_zero_rate_plan_is_inert(self):
        clean = MultiGpuContext(2)
        guarded = MultiGpuContext(2, fault_plan=FaultPlan.from_rate(0, 0.0))
        for c in (clean, guarded):
            dev = c.devices[1]
            x = dev.adopt(np.ones(128))
            blas.scal(3.0, x)
            c.h2d(c.devices[0], np.ones(32))
        assert clean.devices[1].clock == guarded.devices[1].clock
        assert clean.devices[0].clock == guarded.devices[0].clock
        assert not guarded.faults.has_activity()


class TestTraceIntegration:
    def test_fault_events_recorded_in_fault_lane(self):
        from repro.gpu.trace import FAULT_LANE

        ctx = faulted_ctx([FaultEvent("gpu0", "poison", trigger=0)])
        dev = ctx.devices[0]
        blas.scal(2.0, dev.adopt(np.ones(4)))
        faults = ctx.trace.fault_events()
        assert len(faults) == 1
        assert faults[0].kind == "fault"
        assert FAULT_LANE in ctx.trace.lanes()

    def test_fault_lane_absent_without_events(self):
        ctx = MultiGpuContext(1, fault_plan=FaultPlan.from_rate(0, 0.0))
        blas.scal(2.0, ctx.devices[0].adopt(np.ones(4)))
        assert "faults" not in ctx.trace.lanes()
        assert ctx.trace.fault_events() == []
