"""Tests for the campaign runner (`repro.faults.campaign`)."""

import pytest

from repro.faults.campaign import campaign_tables, run_campaign, run_trial

# One small campaign, reused by several assertions below.
SMALL = dict(nx=16, m=12, s=4, tol=1e-6, max_restarts=40, trials=2)


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(seed=0, rate=1e-3, **SMALL)


class TestRunTrial:
    def test_fault_free_trial_has_zero_counts(self):
        rec = run_trial(nx=10, m=10, s=5, rate=0.0, max_restarts=30)
        assert rec["converged"]
        assert rec["injected"] == rec["detected"] == rec["recovered"] == 0
        assert rec["schedule"] == [] and not rec["aborted"]

    def test_unknown_solver_rejected(self):
        with pytest.raises(KeyError):
            run_trial(solver="bicgstab", nx=8)


class TestRunCampaign:
    def test_default_acceptance_config_injects_and_recovers(self):
        """The ISSUE.md acceptance criterion: seed 0, rate 1e-3 defaults."""
        campaign = run_campaign(seed=0, rate=1e-3)
        t = campaign["totals"]
        assert t["injected"] >= 1 and t["recovered"] >= 1
        assert t["converged_trials"] == campaign["config"]["trials"]

    def test_same_seed_identical_campaign(self, small_campaign):
        assert run_campaign(seed=0, rate=1e-3, **SMALL) == small_campaign

    def test_different_seed_differs(self, small_campaign):
        other = run_campaign(seed=1000, rate=1e-3, **SMALL)
        schedules = lambda c: [r["schedule"] for r in c["trials"]]  # noqa: E731
        assert schedules(other) != schedules(small_campaign)

    def test_trials_seeded_consecutively(self, small_campaign):
        assert [r["seed"] for r in small_campaign["trials"]] == [0, 1]

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            run_campaign(trials=0)


class TestCampaignTables:
    def test_tables_render(self, small_campaign):
        text = campaign_tables(small_campaign)
        assert "Fault campaign" in text
        assert "Injected by kind" in text
        assert "Recoveries by action" in text
        assert "totals:" in text

    def test_default_table_has_no_degrade_columns(self, small_campaign):
        text = campaign_tables(small_campaign)
        assert "| rep |" not in text and "repartition(s)" not in text


DEGRADE = dict(
    nx=16, m=12, s=4, tol=1e-6, max_restarts=40, trials=2, n_gpus=3,
    rate=2e-3, kinds=("corrupt", "poison", "stall", "dropout"),
)


class TestDegradedCampaign:
    @pytest.fixture(scope="class")
    def degraded_campaign(self):
        return run_campaign(seed=0, degrade=True, deadline=1.0, **DEGRADE)

    def test_dropouts_absorbed(self, degraded_campaign):
        t = degraded_campaign["totals"]
        assert t["repartitions"] >= 1
        assert t["converged_trials"] == DEGRADE["trials"]
        assert t["aborted_trials"] == 0
        assert t["deadline_exceeded_trials"] == 0
        lossy = [
            r for r in degraded_campaign["trials"] if r["repartitions"]
        ]
        assert lossy and all(
            r["final_devices"] == DEGRADE["n_gpus"] - len(r["lost_devices"])
            for r in lossy
        )

    def test_deterministic(self, degraded_campaign):
        again = run_campaign(seed=0, degrade=True, deadline=1.0, **DEGRADE)
        assert again == degraded_campaign

    def test_without_degrade_same_plan_aborts(self, degraded_campaign):
        plain = run_campaign(seed=0, **DEGRADE)
        # Same seeds, so each trial replays the same fault stream — but the
        # plain run dies at the first dropout, injecting only a prefix of
        # what the degraded run survives through.
        for p, d in zip(plain["trials"], degraded_campaign["trials"]):
            assert p["schedule"] == d["schedule"][: len(p["schedule"])]
        assert plain["totals"]["aborted_trials"] >= 1
        assert plain["totals"]["repartitions"] == 0

    def test_degrade_tables_have_columns(self, degraded_campaign):
        text = campaign_tables(degraded_campaign)
        assert "| rep | dev | ddl" in text
        assert "repartition(s)" in text

    def test_trial_deadline_trips(self):
        rec = run_trial(
            nx=16, m=12, s=4, rate=0.0, max_restarts=40, deadline=1e-9
        )
        assert rec["deadline_exceeded"] and not rec["converged"]
