"""Tests for the pure-data fault plans (`repro.faults.plan`)."""

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.plan import DEFAULT_KINDS


class TestFaultEvent:
    def test_known_kinds_accepted(self):
        for kind in FAULT_KINDS:
            site = "pcie" if kind == "corrupt" else "gpu0"
            FaultEvent(site=site, kind=kind, trigger=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(site="gpu0", kind="gamma-ray", trigger=0)

    def test_stall_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="stall factor"):
            FaultEvent(site="gpu0", kind="stall", trigger=0, factor=1.0)
        FaultEvent(site="gpu0", kind="stall", trigger=0, factor=2.0)

    def test_poison_value_parity(self):
        assert np.isnan(FaultEvent("gpu0", "poison", 0, position=4).poison_value)
        assert np.isinf(FaultEvent("gpu0", "poison", 0, position=5).poison_value)


class TestFaultPlan:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=-0.1)

    def test_unknown_kind_in_kinds_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(kinds=("poison", "cosmic"))

    def test_scripted_events_need_trigger(self):
        with pytest.raises(ValueError, match="trigger"):
            FaultPlan(events=(FaultEvent("gpu0", "poison"),))

    def test_default_kinds_exclude_dropout(self):
        assert "dropout" not in DEFAULT_KINDS
        assert set(DEFAULT_KINDS) < set(FAULT_KINDS)

    def test_scripted_lookup(self):
        ev = FaultEvent("gpu1", "poison", trigger=3)
        plan = FaultPlan.scripted([ev])
        assert plan.scripted_events("gpu1", 3) == [ev]
        assert plan.scripted_events("gpu1", 2) == []
        assert plan.scripted_events("gpu0", 3) == []

    def test_eligible_kinds_filtered_per_site(self):
        plan = FaultPlan.from_rate(0, 0.1, kinds=FAULT_KINDS)
        assert set(plan.eligible_kinds("pcie")) == {"corrupt", "stall"}
        assert set(plan.eligible_kinds("host")) == {"stall"}
        assert set(plan.eligible_kinds("gpu0")) == {"poison", "stall", "dropout"}

    def test_eligible_kinds_respect_plan_kinds(self):
        plan = FaultPlan.from_rate(0, 0.1, kinds=("poison",))
        assert plan.eligible_kinds("pcie") == ()
        assert plan.eligible_kinds("gpu2") == ("poison",)

    def test_describe_is_json_friendly(self):
        import json

        plan = FaultPlan.from_rate(7, 1e-3, max_faults=2)
        desc = plan.describe()
        assert desc["seed"] == 7 and desc["rate"] == 1e-3
        json.dumps(desc)
