"""Solver-level fault campaigns: detection, recovery, structured aborts.

Scripted triggers below were chosen so the fault lands inside the solve
(the injector's per-site opportunity counters restart at
``ctx.reset_clocks()``, i.e. at the top of every solver run).
"""

import numpy as np

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.faults import FaultEvent, FaultPlan
from repro.gpu.context import MultiGpuContext
from repro.matrices.stencil import poisson2d


def make_problem(nx=12):
    A = poisson2d(nx)
    return A, np.ones(A.n_rows)


def scripted_ctx(*events, n_gpus=2):
    return MultiGpuContext(n_gpus, fault_plan=FaultPlan.scripted(events))


class TestTransferCorruptionRecovery:
    def test_corrupt_transfer_detected_and_convergence_unchanged(self):
        A, b = make_problem()
        clean = gmres(A, b, n_gpus=2, m=10, tol=1e-8, max_restarts=30)
        ctx = scripted_ctx(FaultEvent("pcie", "corrupt", trigger=7, position=3))
        with np.errstate(invalid="ignore", over="ignore"):
            faulty = gmres(A, b, ctx=ctx, m=10, tol=1e-8, max_restarts=30)
        faults = faulty.details["faults"]
        assert faults["counts"] == {
            "injected": 1, "detected": 1, "recovered": 1, "unrecovered": 0
        }
        # Recovery replays from an exact checkpoint: numerics identical.
        assert faulty.converged and faulty.n_iterations == clean.n_iterations
        assert faulty.history.true_residuals == clean.history.true_residuals
        assert faulty.history.estimates == clean.history.estimates
        np.testing.assert_array_equal(faulty.x, clean.x)
        # ... but the redo costs simulated time.
        assert faulty.total_time > clean.total_time

    def test_corrupt_inside_exchange_uses_transfer_retry(self):
        A, b = make_problem()
        # Trigger 20 lands on a halo-exchange message (calibrated).
        ctx = scripted_ctx(FaultEvent("pcie", "corrupt", trigger=20))
        with np.errstate(invalid="ignore", over="ignore"):
            result = gmres(A, b, ctx=ctx, m=10, tol=1e-8, max_restarts=30)
        faults = result.details["faults"]
        assert result.converged and faults["counts"]["unrecovered"] == 0
        assert [r["action"] for r in faults["recovered"]] == ["transfer-retry"]


class TestPoisonRecovery:
    def test_poisoned_panel_retried_in_ca_gmres(self):
        A, b = make_problem()
        clean = ca_gmres(
            A, b, n_gpus=2, s=4, m=12, basis="monomial", tol=1e-8,
            max_restarts=30,
        )
        ctx = scripted_ctx(FaultEvent("gpu0", "poison", trigger=30, position=9))
        with np.errstate(invalid="ignore", over="ignore"):
            faulty = ca_gmres(
                A, b, ctx=ctx, s=4, m=12, basis="monomial", tol=1e-8,
                max_restarts=30,
            )
        faults = faulty.details["faults"]
        assert faults["counts"]["recovered"] == 1
        assert [r["action"] for r in faults["recovered"]] == ["panel-retry"]
        assert faulty.converged and faulty.n_iterations == clean.n_iterations
        assert faulty.history.true_residuals == clean.history.true_residuals
        np.testing.assert_array_equal(faulty.x, clean.x)

    def test_late_poison_escalates_to_cycle_redo(self):
        A, b = make_problem()
        # Trigger 110 poisons a kernel after the panel loop (calibrated):
        # the panel-retry layer cannot catch it, the cycle checkpoint does.
        ctx = scripted_ctx(FaultEvent("gpu0", "poison", trigger=110, position=9))
        with np.errstate(invalid="ignore", over="ignore"):
            result = ca_gmres(
                A, b, ctx=ctx, s=4, m=12, basis="monomial", tol=1e-8,
                max_restarts=30,
            )
        faults = result.details["faults"]
        assert result.converged and faults["counts"]["unrecovered"] == 0
        assert [r["action"] for r in faults["recovered"]] == ["cycle-redo"]


class TestDeviceDropout:
    def test_dropout_returns_structured_report_without_raising(self):
        A, b = make_problem()
        ctx = scripted_ctx(FaultEvent("gpu1", "dropout", trigger=40))
        with np.errstate(invalid="ignore", over="ignore"):
            result = ca_gmres(
                A, b, ctx=ctx, s=4, m=12, basis="monomial", tol=1e-8,
                max_restarts=30,
            )
        assert not result.converged
        faults = result.details["faults"]
        assert faults["aborted"]
        assert faults["lost_devices"] == ["gpu1"]
        assert [u["error"] for u in faults["unrecovered"]] == ["DeviceLost"]
        # The solver hands back the last checkpointed iterate, still finite.
        assert np.all(np.isfinite(result.x))
        assert "faults" in result.summary()

    def test_dropout_in_gmres_also_structured(self):
        A, b = make_problem()
        ctx = scripted_ctx(FaultEvent("gpu0", "dropout", trigger=25))
        with np.errstate(invalid="ignore", over="ignore"):
            result = gmres(A, b, ctx=ctx, m=10, tol=1e-8, max_restarts=30)
        assert not result.converged
        assert result.details["faults"]["lost_devices"] == ["gpu0"]


class TestTraceExport:
    def test_fault_events_appear_in_chrome_trace(self):
        A, b = make_problem()
        ctx = scripted_ctx(FaultEvent("gpu0", "poison", trigger=30, position=9))
        with np.errstate(invalid="ignore", over="ignore"):
            ca_gmres(
                A, b, ctx=ctx, s=4, m=12, basis="monomial", tol=1e-8,
                max_restarts=30,
            )
        chrome = ctx.trace.to_chrome_trace()
        cats = {e.get("cat") for e in chrome["traceEvents"] if "cat" in e}
        assert {"fault", "detect", "recover"} <= cats


class TestZeroRateBitIdentity:
    def test_zero_rate_plan_bit_identical(self):
        """An armed-but-silent plan changes nothing: numerics or clocks."""
        A, b = make_problem(10)
        ctx = MultiGpuContext(2, fault_plan=FaultPlan.from_rate(0, 0.0))
        result = ca_gmres(A, b, ctx=ctx, s=4, m=12, tol=1e-8, max_restarts=30)
        baseline = ca_gmres(A, b, n_gpus=2, s=4, m=12, tol=1e-8, max_restarts=30)
        np.testing.assert_array_equal(result.x, baseline.x)
        assert result.history.true_residuals == baseline.history.true_residuals
        assert result.history.estimates == baseline.history.estimates
        assert result.timers == baseline.timers
        assert result.total_time == baseline.total_time
        assert "faults" not in result.details
