"""Degraded-mode recovery: device loss -> live repartition -> resume.

The acceptance scenario from the issue: a scripted dropout on device 1 of
3 mid-solve completes on 2 devices at the same converged residual
tolerance as a fault-free run, records the repartition in
``details["degradation"]`` and on the fault trace lane, and replays
bit-identically.  Plus the policy knobs (budgets, minimum devices,
exhaustion action), the deadline watchdog, and the bit-inertness
guarantees for runs that never degrade.
"""

import numpy as np
import pytest

from repro.core import DegradationManager, DegradePolicy, derive_partition
from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.core.pipelined import pipelined_gmres
from repro.faults import FaultEvent, FaultPlan
from repro.faults.errors import DeviceLost
from repro.gpu.context import MultiGpuContext
from repro.matrices.stencil import poisson2d

DROPOUT = FaultEvent("gpu1", "dropout", trigger=40)


def make_problem(nx=20, seed=7):
    A = poisson2d(nx)
    b = np.random.default_rng(seed).standard_normal(A.n_rows)
    return A, b


def dropout_ctx(*events, n_gpus=3):
    events = events or (DROPOUT,)
    return MultiGpuContext(n_gpus, fault_plan=FaultPlan.scripted(events))


def solve(ctx, A, b, **kw):
    kw.setdefault("s", 4)
    kw.setdefault("m", 12)
    kw.setdefault("basis", "monomial")
    return ca_gmres(A, b, ctx=ctx, **kw)


def trace_kinds(ctx):
    return {e.kind for e in ctx.trace.events}


class TestDropoutAbsorbed:
    def test_acceptance_scenario(self):
        """Dropout on 1 of 3 GPUs: converge on 2, report, trace, replay."""
        A, b = make_problem()
        ctx = dropout_ctx()
        res = solve(ctx, A, b, degrade=DegradePolicy())

        # Completes on the survivors at the fault-free tolerance.
        ref = solve(MultiGpuContext(3), A, b)
        assert res.converged and ref.converged
        nb = np.linalg.norm(b)
        assert np.linalg.norm(b - A.matvec(res.x)) / nb <= 1e-4
        assert np.linalg.norm(b - A.matvec(ref.x)) / nb <= 1e-4

        # The repartition is recorded in the degradation report...
        deg = res.details["degradation"]
        assert deg["n_repartitions"] == 1
        assert deg["initial_devices"] == 3 and deg["final_devices"] == 2
        (event,) = deg["repartitions"]
        assert event["lost"] == ["gpu1"]
        assert event["devices_before"] == 3 and event["devices_after"] == 2
        assert sum(event["part_sizes"]) == A.n_rows
        assert not deg["deadline_exceeded"]

        # ...and the solve did NOT abort: the dropout shows as injected
        # but the faults report carries no unrecovered record.
        faults = res.details["faults"]
        assert not faults["aborted"] and faults["unrecovered"] == []

        # Degraded-mode events land on the fault trace lane.
        kinds = trace_kinds(ctx)
        assert "degraded" in kinds and "repartition" in kinds

        # Counters track the degradation.
        assert res.counters["device_deactivations"] == 1
        assert res.counters["repartitions"] == 1

    def test_replay_is_bit_identical(self):
        A, b = make_problem()
        first_ctx = dropout_ctx()
        first = solve(first_ctx, A, b, degrade=DegradePolicy())
        # Fresh context, same plan.
        fresh = solve(dropout_ctx(), A, b, degrade=DegradePolicy())
        # Reused context: reset_clocks restores the roster + fault streams.
        reused = solve(first_ctx, A, b, degrade=DegradePolicy())
        for other in (fresh, reused):
            assert np.array_equal(first.x, other.x)
            assert first.history.estimates == other.history.estimates
            assert first.history.true_residuals == other.history.true_residuals
            assert first.timers == other.timers
            assert first.details["degradation"] == other.details["degradation"]

    def test_trace_replays_identically(self):
        A, b = make_problem()
        ctx1, ctx2 = dropout_ctx(), dropout_ctx()
        solve(ctx1, A, b, degrade=DegradePolicy())
        solve(ctx2, A, b, degrade=DegradePolicy())
        sig = lambda ctx: [  # noqa: E731
            (e.name, e.lane, e.kind, e.start, e.duration)
            for e in ctx.trace.events
        ]
        assert sig(ctx1) == sig(ctx2)

    def test_double_dropout_down_to_one_device(self):
        A, b = make_problem()
        ctx = dropout_ctx(
            FaultEvent("gpu1", "dropout", trigger=40),
            FaultEvent("gpu0", "dropout", trigger=90),
        )
        res = solve(ctx, A, b, degrade=DegradePolicy())
        deg = res.details["degradation"]
        assert res.converged
        assert deg["n_repartitions"] == 2 and deg["final_devices"] == 1
        lost = [e["lost"] for e in deg["repartitions"]]
        assert lost == [["gpu1"], ["gpu0"]]

    @pytest.mark.parametrize("solver", [gmres, pipelined_gmres])
    def test_other_solvers_absorb_dropout(self, solver):
        A, b = make_problem()
        ctx = dropout_ctx(FaultEvent("gpu2", "dropout", trigger=60))
        res = solver(A, b, ctx=ctx, m=20, degrade=DegradePolicy())
        deg = res.details["degradation"]
        assert res.converged
        assert deg["n_repartitions"] == 1 and deg["final_devices"] == 2

    def test_newton_basis_absorbs_dropout(self):
        A, b = make_problem()
        ctx = dropout_ctx(FaultEvent("gpu0", "dropout", trigger=200))
        res = solve(ctx, A, b, basis="newton", degrade=DegradePolicy())
        deg = res.details["degradation"]
        assert res.converged and deg["n_repartitions"] == 1

    def test_kway_strategy(self):
        A, b = make_problem()
        ctx = dropout_ctx()
        res = solve(ctx, A, b, degrade=DegradePolicy(strategy="kway"))
        assert res.converged
        assert res.details["degradation"]["n_repartitions"] == 1


class TestPolicyBudgets:
    def test_min_devices_exhaustion_aborts(self):
        A, b = make_problem()
        res = solve(dropout_ctx(), A, b, degrade=DegradePolicy(min_devices=3))
        assert not res.converged
        assert res.details["faults"]["aborted"]
        assert res.details["degradation"]["n_repartitions"] == 0
        # The structured record matches the policy-less abort shape.
        (rec,) = res.details["faults"]["unrecovered"]
        assert rec["error"] == "DeviceLost" and rec["site"] == "gpu1"

    def test_max_repartitions_budget(self):
        A, b = make_problem()
        ctx = dropout_ctx(
            FaultEvent("gpu1", "dropout", trigger=40),
            FaultEvent("gpu0", "dropout", trigger=90),
        )
        res = solve(ctx, A, b, degrade=DegradePolicy(max_repartitions=1))
        deg = res.details["degradation"]
        assert deg["n_repartitions"] == 1 and deg["final_devices"] == 2
        assert res.details["faults"]["aborted"]

    def test_on_exhausted_raise(self):
        A, b = make_problem()
        policy = DegradePolicy(min_devices=3, on_exhausted="raise")
        with pytest.raises(DeviceLost):
            solve(dropout_ctx(), A, b, degrade=policy)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_repartitions"):
            DegradePolicy(max_repartitions=-1)
        with pytest.raises(ValueError, match="min_devices"):
            DegradePolicy(min_devices=0)
        with pytest.raises(ValueError, match="strategy"):
            DegradePolicy(strategy="hash")
        with pytest.raises(ValueError, match="on_exhausted"):
            DegradePolicy(on_exhausted="panic")

    def test_derive_partition_strategies(self):
        A, _ = make_problem(nx=8)
        p = derive_partition(A, 2)
        assert p.n_parts == 2 and p.n_rows == A.n_rows
        k = derive_partition(A, 2, strategy="kway")
        assert k.n_parts == 2
        with pytest.raises(ValueError, match="strategy"):
            derive_partition(A, 2, strategy="hash")


class TestDeadlineWatchdog:
    def test_deadline_stops_solve(self):
        A, b = make_problem()
        res = solve(MultiGpuContext(3), A, b, deadline=1e-9, max_restarts=50)
        deg = res.details["degradation"]
        assert not res.converged
        assert deg["deadline_exceeded"]
        assert deg["deadline_exceeded_at"] > 0.0
        # Tripped at the first restart boundary: exactly one cycle ran.
        assert res.n_restarts == 1

    def test_deadline_event_on_trace(self):
        A, b = make_problem()
        ctx = MultiGpuContext(3)
        solve(ctx, A, b, deadline=1e-9)
        assert "deadline-exceeded" in trace_kinds(ctx)

    def test_generous_deadline_is_inert(self):
        A, b = make_problem()
        timed = solve(MultiGpuContext(3), A, b, deadline=1e9)
        plain = solve(MultiGpuContext(3), A, b)
        assert np.array_equal(timed.x, plain.x)
        assert timed.timers == plain.timers
        assert not timed.details["degradation"]["deadline_exceeded"]

    def test_negative_deadline_rejected(self):
        ctx = MultiGpuContext(2)
        with pytest.raises(ValueError, match="deadline"):
            DegradationManager(ctx, None, None, deadline=-1.0)


class TestBitInertness:
    def test_zero_rate_with_policy_matches_no_policy(self):
        A, b = make_problem()
        armed = solve(
            MultiGpuContext(3, fault_plan=FaultPlan.from_rate(0, 0.0)),
            A, b, degrade=DegradePolicy(), deadline=1e9,
        )
        plain = solve(
            MultiGpuContext(3, fault_plan=FaultPlan.from_rate(0, 0.0)), A, b
        )
        assert np.array_equal(armed.x, plain.x)
        assert armed.timers == plain.timers
        assert armed.history.estimates == plain.history.estimates
        deg = armed.details["degradation"]
        assert deg["n_repartitions"] == 0 and deg["final_devices"] == 3
        # Policy-less runs don't even carry the key.
        assert "degradation" not in plain.details

    def test_dropout_without_policy_keeps_structured_abort(self):
        A, b = make_problem()
        res = solve(dropout_ctx(), A, b)
        faults = res.details["faults"]
        assert not res.converged and faults["aborted"]
        assert faults["lost_devices"] == ["gpu1"]
        assert "degradation" not in res.details
