"""Perf-regression gate: extraction, tolerances, and the file-level driver."""

import copy
import json

import pytest

from repro.metrics.gate import (
    BASELINE_SCHEMA,
    compare,
    extract_metrics,
    format_violations,
    make_baseline,
    run_gate,
)

SERVING_DOC = {
    "benchmark": "serving",
    "cases": [
        {"matrix": "poisson2d", "sim_time_ms": 10.0, "iterations": 40},
        {"matrix": "cant", "sim_time_ms": 25.0, "iterations": 120},
    ],
    "summary": {"all_bit_identical": True},
}

FIG14_DOC = {
    "benchmark": "fig14_quick_sim",
    "cases": [
        {"matrix": "cant", "solver": "gmres", "sim_time_ms": 48.0, "iterations": 240},
        {"matrix": "cant", "solver": "ca_gmres", "sim_time_ms": 26.0, "iterations": 240},
    ],
}


def test_extract_serving_metrics():
    metrics = extract_metrics(SERVING_DOC)
    assert metrics["serving/poisson2d/sim_time_ms"]["value"] == 10.0
    assert metrics["serving/poisson2d/sim_time_ms"]["direction"] == "lower_is_better"
    assert metrics["serving/all_bit_identical"] == {
        "value": 1.0,
        "direction": "exact",
        "max_rel_increase": 0.0,
    }
    assert len(metrics) == 5


def test_extract_fig14_metrics():
    metrics = extract_metrics(FIG14_DOC)
    assert metrics["fig14/cant/ca_gmres/sim_time_ms"]["value"] == 26.0
    assert metrics["fig14/cant/gmres/iterations"]["value"] == 240.0
    assert len(metrics) == 4


def test_extract_unknown_kind_raises():
    with pytest.raises(ValueError):
        extract_metrics({"benchmark": "mystery"})


def test_gate_passes_on_identical_and_improved_runs():
    baseline = make_baseline(SERVING_DOC)
    assert baseline["schema"] == BASELINE_SCHEMA
    assert compare(SERVING_DOC, baseline) == []
    better = copy.deepcopy(SERVING_DOC)
    better["cases"][0]["sim_time_ms"] = 5.0  # improvements always pass
    assert compare(better, baseline) == []


def test_gate_fails_on_injected_slowdown():
    baseline = make_baseline(SERVING_DOC)
    slow = copy.deepcopy(SERVING_DOC)
    slow["cases"][0]["sim_time_ms"] = 15.0  # +50%, tolerance is 10%
    violations = compare(slow, baseline)
    assert len(violations) == 1
    (v,) = violations
    assert v["metric"] == "serving/poisson2d/sim_time_ms"
    assert v["current"] == 15.0
    assert "regressed 50.0%" in v["reason"]
    assert "FAIL" in format_violations(violations)


def test_gate_allows_drift_within_tolerance():
    baseline = make_baseline(SERVING_DOC)
    drift = copy.deepcopy(SERVING_DOC)
    drift["cases"][0]["sim_time_ms"] = 10.9  # +9% < 10% tolerance
    drift["cases"][1]["iterations"] = 144  # +20% < 25% tolerance
    assert compare(drift, baseline) == []


def test_gate_fails_on_missing_metric():
    baseline = make_baseline(SERVING_DOC)
    shrunk = copy.deepcopy(SERVING_DOC)
    shrunk["cases"] = shrunk["cases"][:1]
    violations = compare(shrunk, baseline)
    assert {v["metric"] for v in violations} == {
        "serving/cant/sim_time_ms",
        "serving/cant/iterations",
    }
    assert all(v["reason"] == "metric missing from current run" for v in violations)


def test_gate_fails_on_exact_metric_change():
    baseline = make_baseline(SERVING_DOC)
    broken = copy.deepcopy(SERVING_DOC)
    broken["summary"]["all_bit_identical"] = False
    violations = compare(broken, baseline)
    assert [v["metric"] for v in violations] == ["serving/all_bit_identical"]
    assert violations[0]["reason"] == "exact metric changed"


def test_gate_rejects_wrong_baseline_schema():
    with pytest.raises(ValueError):
        compare(SERVING_DOC, {"schema": "bogus/9", "metrics": {}})


def test_run_gate_update_then_pass_then_fail(tmp_path, capsys):
    current = tmp_path / "current.json"
    baseline = tmp_path / "baselines" / "b.json"
    current.write_text(json.dumps(SERVING_DOC))

    assert run_gate(current, baseline, update=True) == 0
    saved = json.loads(baseline.read_text())
    assert saved["schema"] == BASELINE_SCHEMA
    assert len(saved["metrics"]) == 5

    assert run_gate(current, baseline) == 0
    assert "PASS" in capsys.readouterr().out

    slow = copy.deepcopy(SERVING_DOC)
    slow["cases"][1]["sim_time_ms"] = 100.0
    current.write_text(json.dumps(slow))
    assert run_gate(current, baseline) == 1
    assert "FAIL" in capsys.readouterr().out


def test_run_gate_missing_baseline_fails(tmp_path):
    current = tmp_path / "current.json"
    current.write_text(json.dumps(SERVING_DOC))
    assert run_gate(current, tmp_path / "nope.json") == 1


def test_committed_baselines_are_well_formed():
    """The baselines the CI gate runs against must parse and carry the
    expected schema/metric families."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    serving = json.loads((root / "serving_quick.json").read_text())
    fig14 = json.loads((root / "fig14_quick.json").read_text())
    assert serving["schema"] == BASELINE_SCHEMA
    assert fig14["schema"] == BASELINE_SCHEMA
    assert "serving/all_bit_identical" in serving["metrics"]
    assert any(k.startswith("fig14/") for k in fig14["metrics"])
