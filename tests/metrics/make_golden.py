#!/usr/bin/env python
"""Regenerate the exporter golden files from the synthetic registry.

Run after an *intentional* exporter format change::

    PYTHONPATH=src python tests/metrics/make_golden.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.metrics import snapshot, to_prometheus  # noqa: E402

from metrics.test_exporters import GOLDEN, build_synthetic_registry  # noqa: E402


def main() -> None:
    GOLDEN.mkdir(exist_ok=True)
    reg = build_synthetic_registry()
    (GOLDEN / "synthetic.prom").write_text(to_prometheus(reg))
    (GOLDEN / "synthetic.json").write_text(
        json.dumps(snapshot(reg), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN / 'synthetic.prom'}")
    print(f"wrote {GOLDEN / 'synthetic.json'}")


if __name__ == "__main__":
    main()
