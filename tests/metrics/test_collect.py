"""Observers against real solves: coverage, hooks, and non-interference."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.matrices.stencil import poisson2d
from repro.metrics import (
    MetricsRegistry,
    cycle_observer,
    observe_context,
    observe_result,
    observe_solve,
)
from repro.serve import SolverSession


@pytest.fixture
def problem():
    A = poisson2d(12)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(A.n_rows)
    return A, b


def _counter_total(reg, name):
    fam = reg.get(name)
    return sum(v for _, v in fam.samples())


def test_observe_solve_covers_runtime_and_convergence(problem):
    A, b = problem
    reg = MetricsRegistry()
    ctx = MultiGpuContext(n_gpus=2)
    result = ca_gmres(A, b, ctx=ctx, m=12, s=4, tol=1e-8, max_restarts=40)
    observe_solve(reg, ctx, result, solver="ca_gmres", matrix="poisson2d")

    # Runtime side: one busy-seconds sample per GPU lane plus host + pcie.
    sm = ("ca_gmres", "poisson2d")
    busy = dict(reg.get("repro_lane_busy_seconds_total").samples())
    assert sm + ("gpu0",) in busy and sm + ("gpu1",) in busy
    assert busy[sm + ("gpu0",)] > 0 and busy[sm + ("pcie",)] > 0
    util = dict(reg.get("repro_lane_utilization").samples())
    assert all(0.0 <= v <= 1.0 for v in util.values())
    active = dict(reg.get("repro_device_active").samples())
    assert active[sm + ("gpu0",)] == 1.0 and active[sm + ("gpu1",)] == 1.0
    # kernel_counts also tallies host-side ops (lapack), so compare
    # against its own sum rather than the device-launch counter.
    assert _counter_total(reg, "repro_kernel_launches_total") == float(
        sum(ctx.counters.kernel_counts.values())
    )
    launches = dict(reg.get("repro_kernel_launches_total").samples())
    for kernel, count in ctx.counters.kernel_counts.items():
        assert launches[sm + (kernel,)] == float(count)
    assert _counter_total(reg, "repro_transfer_bytes_total") == float(
        ctx.counters.h2d_bytes + ctx.counters.d2h_bytes
    )

    # Convergence side.
    solves = dict(reg.get("repro_solves_total").samples())
    key = sm + ("yes" if result.converged else "no",)
    assert solves[key] == 1.0
    assert _counter_total(reg, "repro_restart_cycles_total") == float(
        result.n_restarts
    )
    assert _counter_total(reg, "repro_iterations_total") == float(
        result.n_iterations
    )
    assert _counter_total(reg, "repro_residual_estimates_total") == float(
        len(result.history.estimates)
    )
    if result.history.true_residuals:
        ((_, res),) = reg.get("repro_residual_relative").samples()
        expected = (
            result.history.true_residuals[-1][1]
            / result.history.initial_residual
        )
        assert res == expected


def test_cycle_observer_counts_restarts(problem):
    A, b = problem
    for make in (
        lambda hook, ctx: gmres(
            A, b, ctx=ctx, m=10, tol=1e-8, max_restarts=40, on_cycle=hook
        ),
        lambda hook, ctx: ca_gmres(
            A, b, ctx=ctx, m=12, s=4, tol=1e-8, max_restarts=40, on_cycle=hook
        ),
    ):
        reg = MetricsRegistry()
        hook = cycle_observer(reg, solver="s", matrix="m")
        ctx = MultiGpuContext(n_gpus=2)
        result = make(hook, ctx)
        ((_, entry),) = reg.get("repro_solver_cycle_seconds").samples()
        assert entry["count"] == result.n_restarts
        # Cycle times are simulated durations: positive, summing to less
        # than the whole timeline.
        assert 0.0 < entry["sum"] <= ctx.current_time()


def test_on_cycle_hook_does_not_change_results(problem):
    A, b = problem
    r_plain = ca_gmres(
        A, b, ctx=MultiGpuContext(n_gpus=2), m=12, s=4, tol=1e-8, max_restarts=40
    )
    reg = MetricsRegistry()
    hook = cycle_observer(reg, solver="s", matrix="m")
    r_hooked = ca_gmres(
        A,
        b,
        ctx=MultiGpuContext(n_gpus=2),
        m=12,
        s=4,
        tol=1e-8,
        max_restarts=40,
        on_cycle=hook,
    )
    assert np.array_equal(r_plain.x, r_hooked.x)
    assert r_plain.timers == r_hooked.timers


def test_observe_result_records_adaptive_and_faults():
    from repro.core.convergence import ConvergenceHistory

    reg = MetricsRegistry()

    class FakeResult:
        converged = True
        n_restarts = 2
        n_iterations = 20
        history = ConvergenceHistory(
            initial_residual=1.0,
            estimates=[(0, 1.0), (10, 0.5), (20, 1e-9)],
            true_residuals=[(20, 1e-9)],
        )
        timers = {"spmv": 0.5}
        breakdowns = 3
        details = {
            "s_history": [{"s_used": 4}, {"s_used": 8}],
            "faults": {
                "injected": [{"kind": "device_loss"}],
                "detected": [{}],
                "recovered": [{"action": "repartition"}],
                "unrecovered": [],
                "lost_devices": ["gpu1"],
                "aborted": False,
                "counts": {
                    "injected": 1,
                    "detected": 1,
                    "recovered": 1,
                    "unrecovered": 0,
                },
            },
            "degradation": {"n_repartitions": 1, "deadline_exceeded": False},
        }

    observe_result(reg, FakeResult(), solver="ca_gmres", matrix="synthetic")
    sm = ("ca_gmres", "synthetic")
    assert _counter_total(reg, "repro_tsqr_fallbacks_total") == 3.0
    ((_, hist),) = reg.get("repro_adaptive_block_length").samples()
    assert hist["count"] == 2 and hist["sum"] == 12.0
    injected = dict(reg.get("repro_faults_injected_total").samples())
    assert injected[sm + ("device_loss",)] == 1.0
    recovered = dict(reg.get("repro_faults_recovered_total").samples())
    assert recovered[sm + ("repartition",)] == 1.0
    assert _counter_total(reg, "repro_devices_lost_total") == 1.0
    assert _counter_total(reg, "repro_degrade_repartitions_total") == 1.0
    assert _counter_total(reg, "repro_deadline_overruns_total") == 0.0
    phases = dict(reg.get("repro_phase_seconds_total").samples())
    assert phases[sm + ("spmv",)] == 0.5
    ((_, rel),) = reg.get("repro_residual_relative").samples()
    assert rel == 1e-9


def test_session_metrics_cold_warm_batched(problem):
    A, b = problem
    reg = MetricsRegistry()
    sess = SolverSession(
        A,
        solver="ca",
        n_gpus=2,
        m=12,
        s=4,
        tol=1e-8,
        max_restarts=40,
        metrics=reg,
        metrics_label="poisson2d",
    )
    sess.solve(b)
    sess.solve(b)
    sess.solve_many([b, 2.0 * b])

    # Cold/warm split shows up in the wall-clock latency histogram labels.
    latency = dict(reg.get("repro_serve_request_seconds").samples())
    assert {lv[-1] for lv in latency} == {"cold", "warm"}
    requests = dict(reg.get("repro_serve_requests_total").samples())
    assert requests[("ca_gmres", "poisson2d", "single")] == 2.0
    assert requests[("ca_gmres", "poisson2d", "batched")] == 2.0
    ((_, occ),) = reg.get("repro_serve_batch_occupancy").samples()
    assert 0.0 < occ <= 1.0
    # Plan cache: first solve misses, everything after hits.
    cache = dict(reg.get("repro_plan_cache_requests_total").samples())
    assert cache[("structural", "miss")] == 1.0
    assert cache[("structural", "hit")] >= 1.0
    # Cycle histogram accumulated across all five solves.
    ((_, cyc),) = reg.get("repro_solver_cycle_seconds").samples()
    assert cyc["count"] >= 4


def test_plan_build_span_recorded_on_structural_miss(problem):
    A, b = problem
    sess = SolverSession(A, solver="ca", n_gpus=2, m=12, s=4, max_restarts=5)
    r1 = sess.solve(b)
    spans = [e for e in sess.ctx.trace.events if e.kind == "plan"]
    assert len(spans) == 1
    (span,) = spans
    assert span.name == "plan-build"
    assert span.duration == 0.0  # zero simulated width: annotation only
    assert span.args["level"] == "structural"
    assert span.args["host_seconds"] >= 0.0
    # Warm solve: the run resets the trace, which now describes a run
    # with no plan build — no marker, and the simulated timeline matches
    # the cold run exactly (the marker had zero width).
    r2 = sess.solve(b)
    assert sum(1 for e in sess.ctx.trace.events if e.kind == "plan") == 0
    assert r1.timers == r2.timers
    # region_totals must not trip over the plan-kind event.
    assert sess.ctx.trace.region_totals() is not None


def test_disabled_registry_bit_identical_and_empty(problem):
    A, b = problem
    off = MetricsRegistry(enabled=False)
    sess_off = SolverSession(
        A, solver="ca", n_gpus=2, m=12, s=4, max_restarts=5, metrics=off
    )
    sess_plain = SolverSession(A, solver="ca", n_gpus=2, m=12, s=4, max_restarts=5)
    r_off = sess_off.solve(b)
    r_plain = sess_plain.solve(b)
    assert np.array_equal(r_off.x, r_plain.x)
    assert r_off.timers == r_plain.timers
    assert len(off) == 0


def test_observe_context_via_ctx_method(problem):
    A, b = problem
    reg = MetricsRegistry()
    ctx = MultiGpuContext(n_gpus=2)
    gmres(A, b, ctx=ctx, m=10, tol=1e-8, max_restarts=40)
    ctx.observe_metrics(reg, solver="gmres", matrix="poisson2d")
    alt = MetricsRegistry()
    observe_context(alt, ctx, solver="gmres", matrix="poisson2d")
    assert [
        (f.name, f.samples()) for f in reg.families()
    ] == [(f.name, f.samples()) for f in alt.families()]
