"""CLI coverage: ``python -m repro metrics`` and ``faults --metrics-out``."""

import json

from repro.__main__ import main
from repro.metrics import SNAPSHOT_SCHEMA


class TestMetricsCli:
    def test_metrics_prints_exposition(self, capsys):
        assert main(["metrics", "--suite", "tiny", "--gpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_solves_total counter" in out
        assert "# TYPE repro_solver_cycle_seconds histogram" in out
        assert 'solver="ca_gmres"' in out
        assert "_bucket{" in out and 'le="+Inf"' in out

    def test_metrics_out_writes_artifacts(self, tmp_path, capsys):
        assert main(
            ["metrics", "--suite", "tiny", "--out", str(tmp_path)]
        ) == 0
        snap = json.loads((tmp_path / "metrics.json").read_text())
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert "repro_solves_total" in snap["metrics"]
        assert (tmp_path / "metrics.prom").read_text().startswith("# HELP")
        fig14 = json.loads((tmp_path / "fig14_sim.json").read_text())
        assert fig14["benchmark"] == "fig14_quick_sim"
        assert fig14["suite"] == "tiny"

    def test_metrics_check_passes(self, capsys):
        assert main(["metrics", "--suite", "tiny", "--check"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out

    def test_metrics_listed(self, capsys):
        assert main(["list"]) == 0
        assert "metrics" in capsys.readouterr().out

    def test_faults_metrics_out(self, tmp_path, capsys):
        code = main(
            ["faults", "--trials", "1", "--nx", "10", "--max-restarts", "20",
             "--metrics-out", str(tmp_path / "faults_metrics.json")]
        )
        assert code in (0, 1)
        snap = json.loads((tmp_path / "faults_metrics.json").read_text())
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert "repro_solves_total" in snap["metrics"]
        assert "repro_faults_injected_total" in snap["metrics"]
