"""Workload determinism: the tentpole's bit-identity guarantee.

The deterministic (wall-clock-excluded) snapshot of the metrics workload
must be byte-identical across reruns for every supported configuration —
that is what makes the exported metrics diffable artifacts and what the
CLI's ``--check`` mode asserts in CI.
"""

import json

import pytest

from repro.metrics import deterministic_snapshot, to_prometheus
from repro.metrics.workload import run_workload


def _run(n_gpus, basis):
    registry, doc = run_workload(n_gpus=n_gpus, suite="tiny", basis=basis)
    snap = json.dumps(deterministic_snapshot(registry), sort_keys=True)
    text = to_prometheus(registry, include_wall_clock=False)
    return snap, text, json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("n_gpus", [1, 2, 3])
@pytest.mark.parametrize("basis", ["monomial", "newton"])
def test_workload_rerun_bit_identical(n_gpus, basis):
    a = _run(n_gpus, basis)
    b = _run(n_gpus, basis)
    assert a == b


def test_workload_document_shape():
    _, doc = run_workload(suite="tiny")
    assert doc["benchmark"] == "fig14_quick_sim"
    assert {c["solver"] for c in doc["cases"]} == {"gmres", "ca_gmres"}
    for case in doc["cases"]:
        assert case["sim_time_ms"] > 0.0
        assert case["iterations"] > 0


def test_workload_populates_all_layers():
    registry, _ = run_workload(suite="tiny")
    names = {f.name for f in registry.families()}
    expected = {
        "repro_lane_busy_seconds_total",  # runtime / trace
        "repro_kernel_launches_total",  # counters bridge
        "repro_solver_cycle_seconds",  # per-cycle hook
        "repro_solves_total",  # convergence
        "repro_serve_request_seconds",  # serving latency (wall clock)
        "repro_serve_batch_occupancy",  # batched path
        "repro_plan_cache_requests_total",  # plan cache
    }
    assert expected <= names


def test_unknown_suite_raises():
    with pytest.raises(ValueError):
        run_workload(suite="nope")
