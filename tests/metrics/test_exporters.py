"""Exporter golden files and format contracts.

The golden files under ``tests/metrics/golden/`` pin the exact byte-level
output of both exporters for a small synthetic registry.  Regenerate them
(after an intentional format change) with::

    PYTHONPATH=src python tests/metrics/make_golden.py
"""

import json
from pathlib import Path

from repro.metrics import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    snapshot,
    deterministic_snapshot,
    to_prometheus,
    write_snapshot,
)

GOLDEN = Path(__file__).parent / "golden"


def build_synthetic_registry() -> MetricsRegistry:
    """A fixed registry covering every exporter code path.

    Counters with and without labels, a gauge with a non-integral value, a
    histogram with multiple label sets, escaped label values, and a
    wall-clock family (excluded from the deterministic golden).
    """
    reg = MetricsRegistry()
    c = reg.counter(
        "repro_demo_kernel_launches_total",
        "Kernel launches by device and kernel.",
        labelnames=("device", "kernel"),
    )
    c.inc(3, device="gpu0", kernel="gemm_tn/cublas")
    c.inc(1, device="gpu1", kernel="spmv_csr")
    reg.counter("repro_demo_solves_total", "Completed solves.").inc(2)
    reg.gauge("repro_demo_utilization", "Busy fraction.", labelnames=("device",)).set(
        0.625, device="gpu0"
    )
    g = reg.gauge("repro_demo_escapes", "Label escaping.", labelnames=("path",))
    g.set(1.0, path='a\\b"c\nd')
    h = reg.histogram(
        "repro_demo_cycle_seconds",
        "Cycle times.",
        labelnames=("solver",),
        buckets=(0.001, 0.01, 0.1),
    )
    for v in (0.0005, 0.002, 0.05, 0.5):
        h.observe(v, solver="ca_gmres")
    h.observe(0.02, solver="gmres")
    w = reg.histogram(
        "repro_demo_wall_seconds",
        "Host wall-clock (nondeterministic).",
        buckets=(1.0,),
        wall_clock=True,
    )
    w.observe(0.5)
    return reg


def test_prometheus_matches_golden():
    text = to_prometheus(build_synthetic_registry())
    assert text == (GOLDEN / "synthetic.prom").read_text()


def test_snapshot_matches_golden():
    doc = snapshot(build_synthetic_registry())
    golden = json.loads((GOLDEN / "synthetic.json").read_text())
    assert doc == golden
    # Byte-level too: write_snapshot's serialization is the stable form.
    rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    assert rendered == (GOLDEN / "synthetic.json").read_text()


def test_exporters_are_rerun_stable():
    a = to_prometheus(build_synthetic_registry())
    b = to_prometheus(build_synthetic_registry())
    assert a == b
    sa = json.dumps(snapshot(build_synthetic_registry()), sort_keys=True)
    sb = json.dumps(snapshot(build_synthetic_registry()), sort_keys=True)
    assert sa == sb


def test_histogram_buckets_are_cumulative_in_exposition():
    reg = MetricsRegistry()
    h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 1.7, 5.0):
        h.observe(v)
    text = to_prometheus(reg)
    assert 'h_seconds_bucket{le="1"} 1' in text
    assert 'h_seconds_bucket{le="2"} 3' in text
    assert 'h_seconds_bucket{le="+Inf"} 4' in text
    assert "h_seconds_count 4" in text
    doc = snapshot(reg)
    sample = doc["metrics"]["h_seconds"]["samples"][0]
    assert sample["buckets"] == [1, 3]  # cumulative, +Inf implied by count
    assert sample["count"] == 4


def test_wall_clock_exclusion():
    reg = build_synthetic_registry()
    full = to_prometheus(reg)
    det = to_prometheus(reg, include_wall_clock=False)
    assert "repro_demo_wall_seconds" in full
    assert "repro_demo_wall_seconds" not in det
    assert "repro_demo_wall_seconds" not in deterministic_snapshot(reg)["metrics"]
    assert deterministic_snapshot(reg)["schema"] == SNAPSHOT_SCHEMA


def test_empty_registry_exports_empty():
    reg = MetricsRegistry()
    assert to_prometheus(reg) == ""
    assert snapshot(reg) == {"schema": SNAPSHOT_SCHEMA, "metrics": {}}


def test_write_snapshot_round_trips(tmp_path):
    path = write_snapshot(build_synthetic_registry(), tmp_path / "m.json")
    doc = json.loads(path.read_text())
    assert doc == snapshot(build_synthetic_registry())
