"""MetricsRegistry units: families, labels, buckets, disabled mode."""

import pytest

from repro.metrics import (
    BLOCK_LENGTH_BUCKETS,
    HistogramFamily,
    MetricsRegistry,
    SIM_TIME_BUCKETS,
    WALL_TIME_BUCKETS,
)


def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    c = reg.counter("x_total", "help", labelnames=("device",))
    c.inc(device="gpu0")
    c.inc(2.5, device="gpu0")
    c.inc(device="gpu1")
    assert c.samples() == [(("gpu0",), 3.5), (("gpu1",), 1.0)]


def test_counter_rejects_negative_and_bad_labels():
    reg = MetricsRegistry()
    c = reg.counter("x_total", labelnames=("device",))
    with pytest.raises(ValueError):
        c.inc(-1.0, device="gpu0")
    with pytest.raises(ValueError):
        c.inc(1.0)  # missing label
    with pytest.raises(ValueError):
        c.inc(1.0, device="gpu0", extra="nope")


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("util")
    g.set(0.5)
    assert g.samples() == [((), 0.5)]
    g.inc(0.25)
    assert g.samples() == [((), 0.75)]


def test_histogram_buckets_and_sum():
    reg = MetricsRegistry()
    h = reg.histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 100.0):
        h.observe(v)
    ((_, entry),) = h.samples()
    # non-cumulative storage: <=1, <=2, <=4, +Inf
    assert entry["buckets"] == [2, 1, 1, 1]
    assert entry["count"] == 5
    assert entry["sum"] == pytest.approx(106.0)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        HistogramFamily("h", buckets=())
    with pytest.raises(ValueError):
        HistogramFamily("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        HistogramFamily("h", buckets=(1.0, 1.0))


def test_fixed_bucket_edges_are_stable():
    # The committed edge sets are part of the exposition contract: exported
    # histograms are comparable across runs/commits bucket by bucket.
    assert SIM_TIME_BUCKETS == (
        1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0
    )
    assert WALL_TIME_BUCKETS == (
        1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0
    )
    assert BLOCK_LENGTH_BUCKETS == (
        1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0
    )
    reg = MetricsRegistry()
    h = reg.histogram("cycle_seconds")
    assert h.edges == SIM_TIME_BUCKETS


def test_get_or_create_returns_same_family():
    reg = MetricsRegistry()
    a = reg.counter("x_total", labelnames=("device",))
    b = reg.counter("x_total", labelnames=("device",))
    assert a is b
    assert len(reg) == 1


def test_redefinition_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x_total", labelnames=("device",))
    with pytest.raises(ValueError):
        reg.gauge("x_total", labelnames=("device",))
    with pytest.raises(ValueError):
        reg.counter("x_total", labelnames=("kernel",))
    reg.histogram("h_seconds", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("h_seconds", buckets=(1.0, 3.0))


def test_invalid_names_raise():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("ok_total", labelnames=("bad-label",))


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x_total", labelnames=("device",))
    g = reg.gauge("util")
    h = reg.histogram("t_seconds")
    # Null family: every operation silently does nothing, no validation.
    c.inc(device="gpu0")
    c.inc()  # even wrong labels are free
    g.set(1.0)
    h.observe(0.5)
    assert len(reg) == 0
    assert reg.families() == []
    assert c.samples() == []


def test_reset_clears_samples_keeps_registrations():
    reg = MetricsRegistry()
    c = reg.counter("x_total")
    c.inc()
    reg.reset()
    assert len(reg) == 1
    assert reg.get("x_total").samples() == []


def test_families_sorted_and_wall_clock_filter():
    reg = MetricsRegistry()
    reg.counter("b_total")
    reg.histogram("a_seconds", wall_clock=True)
    names = [f.name for f in reg.families()]
    assert names == ["a_seconds", "b_total"]
    names = [f.name for f in reg.families(include_wall_clock=False)]
    assert names == ["b_total"]
