"""Tests for adjacency-graph utilities."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.sparse.csr import csr_from_dense, eye_csr
from repro.sparse.graph import (
    adjacency_structure,
    bfs_levels,
    connected_components,
    pseudo_peripheral_node,
    symmetrize_structure,
)


def path_graph(n):
    """Adjacency of a path 0-1-2-...-(n-1)."""
    dense = np.zeros((n, n))
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = 1.0
    return csr_from_dense(dense)


class TestAdjacency:
    def test_symmetrize_makes_symmetric(self):
        A = csr_from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        S = symmetrize_structure(A).to_dense()
        np.testing.assert_array_equal(S, S.T)
        assert S[1, 0] == 1.0

    def test_adjacency_drops_diagonal(self):
        A = csr_from_dense(np.array([[5.0, 1.0], [1.0, 5.0]]))
        adj = adjacency_structure(A).to_dense()
        np.testing.assert_array_equal(np.diag(adj), [0.0, 0.0])

    def test_adjacency_keep_diagonal(self):
        A = eye_csr(3)
        adj = adjacency_structure(A, drop_diagonal=False).to_dense()
        np.testing.assert_array_equal(adj, np.eye(3))

    def test_requires_square(self):
        A = csr_from_dense(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="square"):
            adjacency_structure(A)

    def test_values_are_one(self):
        A = poisson2d(4)
        adj = adjacency_structure(A)
        assert set(np.unique(adj.data)) == {1.0}


class TestBfs:
    def test_path_levels(self):
        g = path_graph(5)
        np.testing.assert_array_equal(bfs_levels(g, 0), [0, 1, 2, 3, 4])

    def test_middle_root(self):
        g = path_graph(5)
        np.testing.assert_array_equal(bfs_levels(g, 2), [2, 1, 0, 1, 2])

    def test_unreachable_marked(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[1, 0] = 1.0
        g = csr_from_dense(dense)
        levels = bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_root_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_levels(path_graph(3), 5)

    def test_grid_levels_are_manhattan(self):
        A = poisson2d(5)
        g = adjacency_structure(A)
        levels = bfs_levels(g, 0).reshape(5, 5)
        i, j = np.meshgrid(np.arange(5), np.arange(5), indexing="ij")
        np.testing.assert_array_equal(levels, i + j)


class TestPseudoPeripheral:
    def test_path_endpoint(self):
        g = path_graph(9)
        node = pseudo_peripheral_node(g, start=4)
        assert node in (0, 8)

    def test_already_peripheral(self):
        g = path_graph(5)
        assert pseudo_peripheral_node(g, start=0) in (0, 4)

    def test_empty_raises(self):
        g = csr_from_dense(np.zeros((0, 0)))
        with pytest.raises(ValueError):
            pseudo_peripheral_node(g)


class TestConnectedComponents:
    def test_single_component(self):
        g = path_graph(6)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[2, 3] = dense[3, 2] = 1.0
        labels = connected_components(csr_from_dense(dense))
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_vertices(self):
        g = csr_from_dense(np.zeros((3, 3)))
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 3
