"""Tests for the CSR matrix."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix, csr_from_dense, eye_csr


def random_csr(n_rows, n_cols, nnz, seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, nnz)
    cols = rng.integers(0, n_cols, nnz)
    vals = rng.standard_normal(nnz)
    return CooMatrix((n_rows, n_cols), rows, cols, vals).to_csr()


class TestConstruction:
    def test_eye(self):
        np.testing.assert_array_equal(eye_csr(3).to_dense(), np.eye(3))

    def test_eye_scaled(self):
        np.testing.assert_array_equal(eye_csr(2, 5.0).to_dense(), 5.0 * np.eye(2))

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((6, 4))
        dense[rng.random((6, 4)) < 0.5] = 0.0
        np.testing.assert_array_equal(csr_from_dense(dense).to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-12, 1.0], [0.0, 2.0]])
        assert csr_from_dense(dense, tol=1e-10).nnz == 2

    def test_rejects_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((3, 3), [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_rejects_indptr_nnz_mismatch(self):
        with pytest.raises(ValueError, match="end at nnz"):
            CsrMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_rejects_col_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            CsrMatrix((2, 2), [0, 1, 2], [0, 2], [1.0, 2.0])

    def test_rejects_negative_col_index(self):
        # A negative index would silently wrap in matvec's fancy indexing
        # (selecting the *last* column) instead of failing construction.
        with pytest.raises(ValueError, match="indices.*negative"):
            CsrMatrix((2, 2), [0, 1, 2], [0, -1], [1.0, 2.0])

    def test_rejects_negative_indptr_start(self):
        with pytest.raises(ValueError, match="indptr.*negative"):
            CsrMatrix((2, 2), [-1, 1, 2], [0, 1], [1.0, 2.0])

    def test_extract_rows_rejects_negative(self):
        A = random_csr(4, 4, 8)
        with pytest.raises(ValueError, match="row_ids.*negative"):
            A.extract_rows([1, -2])

    def test_permute_rejects_negative(self):
        A = random_csr(3, 3, 5)
        with pytest.raises(ValueError, match="perm.*negative"):
            A.permute([0, -1, 2])

    def test_permute_rejects_out_of_range(self):
        A = random_csr(3, 3, 5)
        with pytest.raises(ValueError, match="perm entries"):
            A.permute([0, 3, 2])


class TestMatvec:
    def test_against_dense(self):
        A = random_csr(8, 6, 30)
        x = np.random.default_rng(2).standard_normal(6)
        np.testing.assert_allclose(A.matvec(x), A.to_dense() @ x, atol=1e-14)

    def test_empty_rows_give_zero(self):
        A = CooMatrix((3, 3), [0], [0], [5.0]).to_csr()
        y = A.matvec(np.ones(3))
        np.testing.assert_array_equal(y, [5.0, 0.0, 0.0])

    def test_out_parameter(self):
        A = eye_csr(3, 2.0)
        out = np.full(3, 99.0)
        y = A.matvec(np.ones(3), out=out)
        assert y is out
        np.testing.assert_array_equal(out, [2.0, 2.0, 2.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            eye_csr(3).matvec(np.ones(4))

    def test_empty_matrix(self):
        A = CooMatrix((3, 3)).to_csr()
        np.testing.assert_array_equal(A.matvec(np.ones(3)), np.zeros(3))

    def test_matvec_rows_prefix(self):
        A = random_csr(10, 10, 40, seed=3)
        x = np.random.default_rng(4).standard_normal(10)
        full = A.matvec(x)
        out = np.zeros(10)
        A.matvec_rows(x, 6, out)
        np.testing.assert_allclose(out[:6], full[:6], atol=1e-14)

    def test_matvec_rows_out_of_range(self):
        A = eye_csr(3)
        with pytest.raises(ValueError):
            A.matvec_rows(np.ones(3), 4, np.zeros(4))

    def test_rmatvec_against_dense(self):
        A = random_csr(8, 6, 30, seed=5)
        y = np.random.default_rng(6).standard_normal(8)
        np.testing.assert_allclose(A.rmatvec(y), A.to_dense().T @ y, atol=1e-14)


class TestStructuralOps:
    def test_extract_rows(self):
        A = random_csr(9, 5, 25, seed=7)
        rows = np.array([4, 1, 7])
        sub = A.extract_rows(rows)
        np.testing.assert_array_equal(sub.to_dense(), A.to_dense()[rows])

    def test_extract_rows_empty_selection(self):
        A = random_csr(5, 5, 10)
        sub = A.extract_rows(np.array([], dtype=np.int64))
        assert sub.shape == (0, 5)

    def test_extract_rows_with_empty_rows(self):
        A = CooMatrix((4, 4), [0, 3], [1, 2], [1.0, 2.0]).to_csr()
        sub = A.extract_rows(np.array([1, 3]))
        np.testing.assert_array_equal(
            sub.to_dense(), [[0, 0, 0, 0], [0, 0, 2.0, 0]]
        )

    def test_extract_rows_out_of_range(self):
        with pytest.raises(ValueError):
            eye_csr(3).extract_rows(np.array([3]))

    def test_transpose(self):
        A = random_csr(7, 4, 15, seed=8)
        np.testing.assert_array_equal(A.transpose().to_dense(), A.to_dense().T)

    def test_transpose_twice_identity(self):
        A = random_csr(6, 6, 18, seed=9)
        np.testing.assert_array_equal(
            A.transpose().transpose().to_dense(), A.to_dense()
        )

    def test_permute(self):
        A = random_csr(6, 6, 20, seed=10)
        perm = np.array([3, 0, 5, 1, 4, 2])
        P = A.permute(perm)
        np.testing.assert_array_equal(P.to_dense(), A.to_dense()[np.ix_(perm, perm)])

    def test_permute_requires_square(self):
        A = random_csr(3, 4, 5)
        with pytest.raises(ValueError, match="square"):
            A.permute(np.arange(3))

    def test_permute_wrong_length(self):
        with pytest.raises(ValueError, match="length"):
            eye_csr(3).permute(np.arange(2))

    def test_sort_indices(self):
        A = CsrMatrix((1, 4), [0, 3], [3, 0, 2], [1.0, 2.0, 3.0])
        S = A.sort_indices()
        np.testing.assert_array_equal(S.indices, [0, 2, 3])
        np.testing.assert_array_equal(S.to_dense(), A.to_dense())

    def test_diagonal(self):
        A = csr_from_dense(np.array([[1.0, 2.0], [0.0, 0.0]]))
        np.testing.assert_array_equal(A.diagonal(), [1.0, 0.0])

    def test_add_scaled_identity(self):
        A = random_csr(5, 5, 12, seed=11)
        B = A.add_scaled_identity(2.5)
        np.testing.assert_allclose(B.to_dense(), A.to_dense() + 2.5 * np.eye(5))

    def test_copy_is_deep(self):
        A = eye_csr(3)
        B = A.copy()
        B.data[0] = 99.0
        assert A.data[0] == 1.0


class TestScalingAndNorms:
    def test_scale_rows(self):
        A = random_csr(4, 4, 10, seed=12)
        s = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            A.scale_rows(s).to_dense(), np.diag(s) @ A.to_dense()
        )

    def test_scale_cols(self):
        A = random_csr(4, 4, 10, seed=13)
        s = np.array([1.0, 0.5, 2.0, 3.0])
        np.testing.assert_allclose(
            A.scale_cols(s).to_dense(), A.to_dense() @ np.diag(s)
        )

    def test_scale_rows_wrong_length(self):
        with pytest.raises(ValueError):
            eye_csr(3).scale_rows(np.ones(2))

    @pytest.mark.parametrize("ord", [1.0, 2.0, np.inf])
    def test_row_norms(self, ord):
        A = random_csr(5, 6, 15, seed=14)
        dense = A.to_dense()
        expected = np.linalg.norm(dense, ord=ord, axis=1)
        # row_norms only sees stored entries; with random duplicates summed
        # the dense comparison is exact.
        np.testing.assert_allclose(A.row_norms(ord), expected, atol=1e-14)

    @pytest.mark.parametrize("ord", [1.0, 2.0, np.inf])
    def test_col_norms(self, ord):
        A = random_csr(5, 6, 15, seed=15)
        dense = A.to_dense()
        expected = np.linalg.norm(dense, ord=ord, axis=0)
        np.testing.assert_allclose(A.col_norms(ord), expected, atol=1e-14)

    def test_row_norms_bad_order(self):
        with pytest.raises(ValueError):
            eye_csr(2).row_norms(3.0)
