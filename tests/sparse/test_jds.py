"""Tests for the JDS (jagged diagonal) format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import csr_from_dense, eye_csr
from repro.sparse.ellpack import EllpackMatrix
from repro.sparse.jds import JdsMatrix


def random_csr(n_rows, n_cols, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return CooMatrix(
        (n_rows, n_cols),
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.standard_normal(nnz),
    ).to_csr()


def skewed_csr(seed=0):
    """A matrix with one dense row and many sparse ones (hub structure)."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((20, 20))
    dense[0, :] = rng.standard_normal(20)  # the hub row
    for i in range(1, 20):
        dense[i, rng.integers(0, 20, 2)] = rng.standard_normal(2)
    return csr_from_dense(dense)


class TestConversion:
    def test_roundtrip(self):
        A = random_csr(9, 7, 30, seed=1)
        back = JdsMatrix.from_csr(A).to_csr()
        np.testing.assert_allclose(back.to_dense(), A.to_dense(), atol=1e-15)

    def test_identity(self):
        jds = JdsMatrix.from_csr(eye_csr(5))
        assert jds.n_diags == 1
        np.testing.assert_array_equal(jds.to_csr().to_dense(), np.eye(5))

    def test_perm_sorts_by_row_length(self):
        A = skewed_csr()
        jds = JdsMatrix.from_csr(A)
        assert jds.perm[0] == 0  # hub row first
        lengths = np.diff(A.indptr)[jds.perm]
        assert all(a >= b for a, b in zip(lengths, lengths[1:]))

    def test_n_diags_is_max_row_length(self):
        A = skewed_csr()
        assert JdsMatrix.from_csr(A).n_diags == 20

    def test_no_padding(self):
        A = skewed_csr()
        jds = JdsMatrix.from_csr(A)
        assert jds.nnz == A.nnz
        assert jds.padding_ratio() == 1.0

    def test_beats_ellpack_on_skewed_rows(self):
        """JDS's raison d'etre: no padding where ELLPACK pads massively."""
        A = skewed_csr()
        ell = EllpackMatrix.from_csr(A)
        jds = JdsMatrix.from_csr(A)
        assert ell.padding_ratio() > 5.0
        assert jds.nnz < ell.padded_size / 5

    def test_empty_matrix(self):
        A = CooMatrix((4, 4)).to_csr()
        jds = JdsMatrix.from_csr(A)
        assert jds.n_diags == 0
        np.testing.assert_array_equal(jds.matvec(np.ones(4)), np.zeros(4))

    def test_validation(self):
        with pytest.raises(ValueError, match="permutation"):
            JdsMatrix((2, 2), [0, 0], [0], [], [])
        with pytest.raises(ValueError, match="end at nnz"):
            JdsMatrix((1, 1), [0], [0, 2], [1.0], [0])


class TestMatvec:
    def test_against_csr(self):
        A = random_csr(12, 12, 50, seed=2)
        jds = JdsMatrix.from_csr(A)
        x = np.random.default_rng(3).standard_normal(12)
        np.testing.assert_allclose(jds.matvec(x), A.matvec(x), atol=1e-13)

    def test_skewed(self):
        A = skewed_csr(seed=4)
        jds = JdsMatrix.from_csr(A)
        x = np.random.default_rng(5).standard_normal(20)
        np.testing.assert_allclose(jds.matvec(x), A.matvec(x), atol=1e-13)

    def test_rectangular(self):
        A = random_csr(6, 9, 20, seed=6)
        jds = JdsMatrix.from_csr(A)
        x = np.random.default_rng(7).standard_normal(9)
        np.testing.assert_allclose(jds.matvec(x), A.to_dense() @ x, atol=1e-13)

    def test_out_parameter(self):
        jds = JdsMatrix.from_csr(eye_csr(3, 2.0))
        out = np.full(3, -9.0)
        y = jds.matvec(np.ones(3), out=out)
        assert y is out
        np.testing.assert_array_equal(out, [2.0, 2.0, 2.0])

    def test_dimension_mismatch(self):
        jds = JdsMatrix.from_csr(eye_csr(3))
        with pytest.raises(ValueError, match="dimension mismatch"):
            jds.matvec(np.ones(4))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 12),
    st.integers(1, 12),
    st.integers(0, 40),
    st.integers(0, 2**31 - 1),
)
def test_jds_property_spmv_matches_dense(n_rows, n_cols, nnz, seed):
    rng = np.random.default_rng(seed)
    coo = CooMatrix(
        (n_rows, n_cols),
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.standard_normal(nnz),
    )
    csr = coo.to_csr()
    jds = JdsMatrix.from_csr(csr)
    x = rng.standard_normal(n_cols)
    np.testing.assert_allclose(jds.matvec(x), csr.to_dense() @ x, atol=1e-9)
    np.testing.assert_allclose(jds.to_csr().to_dense(), csr.to_dense(), atol=1e-12)
