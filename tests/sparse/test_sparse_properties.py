"""Property-based tests for the sparse formats (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import csr_from_dense
from repro.sparse.ellpack import EllpackMatrix


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=40):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CooMatrix((n_rows, n_cols), rows, cols, vals)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_coo_to_csr_preserves_dense(coo):
    np.testing.assert_allclose(coo.to_csr().to_dense(), coo.to_dense(), atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_csr_ellpack_roundtrip(coo):
    csr = coo.to_csr()
    ell = EllpackMatrix.from_csr(csr)
    np.testing.assert_allclose(ell.to_csr().to_dense(), csr.to_dense(), atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(0, 2**31 - 1))
def test_spmv_agreement_csr_ellpack_dense(coo, seed):
    csr = coo.to_csr()
    ell = EllpackMatrix.from_csr(csr)
    x = np.random.default_rng(seed).standard_normal(csr.n_cols)
    dense_y = csr.to_dense() @ x
    np.testing.assert_allclose(csr.matvec(x), dense_y, atol=1e-8)
    np.testing.assert_allclose(ell.matvec(x), dense_y, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(coo_matrices(), st.integers(0, 2**31 - 1))
def test_rmatvec_is_transpose_matvec(coo, seed):
    csr = coo.to_csr()
    y = np.random.default_rng(seed).standard_normal(csr.n_rows)
    np.testing.assert_allclose(
        csr.rmatvec(y), csr.transpose().matvec(y), atol=1e-8
    )


@settings(max_examples=40, deadline=None)
@given(coo_matrices(max_dim=8))
def test_transpose_involution(coo):
    csr = coo.to_csr()
    np.testing.assert_allclose(
        csr.transpose().transpose().to_dense(), csr.to_dense(), atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 10),
    st.integers(0, 2**31 - 1),
)
def test_permute_preserves_multiset_of_values(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense[rng.random((n, n)) < 0.5] = 0.0
    csr = csr_from_dense(dense)
    perm = rng.permutation(n)
    permuted = csr.permute(perm)
    np.testing.assert_allclose(
        np.sort(permuted.data), np.sort(csr.data), atol=1e-14
    )
    np.testing.assert_allclose(
        permuted.to_dense(), dense[np.ix_(perm, perm)], atol=1e-14
    )
