"""Tests for the COO builder."""

import numpy as np
import pytest

from repro.sparse.coo import CooBuilder, CooMatrix


class TestCooMatrix:
    def test_empty(self):
        coo = CooMatrix((3, 4))
        assert coo.nnz == 0
        csr = coo.to_csr()
        assert csr.shape == (3, 4)
        assert csr.nnz == 0

    def test_basic_to_csr(self):
        coo = CooMatrix((2, 2), [0, 1, 1], [1, 0, 1], [2.0, 3.0, 4.0])
        dense = coo.to_csr().to_dense()
        np.testing.assert_array_equal(dense, [[0.0, 2.0], [3.0, 4.0]])

    def test_duplicates_are_summed(self):
        coo = CooMatrix((2, 2), [0, 0, 0], [0, 0, 1], [1.0, 2.5, 4.0])
        dense = coo.to_csr().to_dense()
        np.testing.assert_array_equal(dense, [[3.5, 4.0], [0.0, 0.0]])

    def test_to_dense_matches_to_csr(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 7, 40)
        cols = rng.integers(0, 5, 40)
        vals = rng.standard_normal(40)
        coo = CooMatrix((7, 5), rows, cols, vals)
        np.testing.assert_allclose(coo.to_dense(), coo.to_csr().to_dense())

    def test_csr_indices_sorted_within_rows(self):
        coo = CooMatrix((1, 5), [0, 0, 0], [4, 0, 2], [1.0, 2.0, 3.0])
        csr = coo.to_csr()
        np.testing.assert_array_equal(csr.indices, [0, 2, 4])

    def test_rejects_out_of_range_row(self):
        with pytest.raises(ValueError, match="row index"):
            CooMatrix((2, 2), [2], [0], [1.0])

    def test_rejects_out_of_range_col(self):
        with pytest.raises(ValueError, match="column index"):
            CooMatrix((2, 2), [0], [5], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal lengths"):
            CooMatrix((2, 2), [0, 1], [0], [1.0])

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            CooMatrix((2, 2), [-1], [0], [1.0])


class TestCooBuilder:
    def test_build_empty(self):
        assert CooBuilder((3, 3)).build().nnz == 0

    def test_broadcast_scalar_value(self):
        b = CooBuilder((3, 3))
        b.add(np.arange(3), np.arange(3), 7.0)
        dense = b.build().to_csr().to_dense()
        np.testing.assert_array_equal(np.diag(dense), [7.0, 7.0, 7.0])

    def test_chunks_concatenate(self):
        b = CooBuilder((2, 2))
        b.add(0, 0, 1.0)
        b.add(1, 1, 2.0)
        b.add(0, 0, 3.0)  # duplicate, summed at conversion
        dense = b.build().to_csr().to_dense()
        np.testing.assert_array_equal(dense, [[4.0, 0.0], [0.0, 2.0]])
