"""Tests for the ELLPACK format."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import csr_from_dense, eye_csr
from repro.sparse.ellpack import EllpackMatrix


def random_csr(n_rows, n_cols, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return CooMatrix(
        (n_rows, n_cols),
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.standard_normal(nnz),
    ).to_csr()


class TestConversion:
    def test_roundtrip_dense(self):
        A = random_csr(7, 5, 20, seed=1)
        ell = EllpackMatrix.from_csr(A)
        np.testing.assert_array_equal(ell.to_dense(), A.to_dense())

    def test_roundtrip_csr(self):
        A = random_csr(6, 6, 18, seed=2)
        back = EllpackMatrix.from_csr(A).to_csr()
        np.testing.assert_array_equal(back.to_dense(), A.to_dense())

    def test_width_is_max_row_length(self):
        A = csr_from_dense(np.array([[1.0, 2.0, 3.0], [4.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        assert EllpackMatrix.from_csr(A).width == 3

    def test_identity(self):
        ell = EllpackMatrix.from_csr(eye_csr(4))
        assert ell.width == 1
        np.testing.assert_array_equal(ell.to_dense(), np.eye(4))

    def test_padding_indices_in_range(self):
        A = csr_from_dense(np.array([[1.0, 1.0], [0.0, 0.0]]))
        ell = EllpackMatrix.from_csr(A)
        assert ell.col_idx.max() < 2
        assert ell.col_idx.min() >= 0

    def test_nnz_excludes_padding(self):
        A = csr_from_dense(np.array([[1.0, 2.0], [3.0, 0.0]]))
        ell = EllpackMatrix.from_csr(A)
        assert ell.nnz == 3
        assert ell.padded_size == 4

    def test_padding_ratio(self):
        A = csr_from_dense(np.array([[1.0, 2.0], [3.0, 0.0]]))
        assert EllpackMatrix.from_csr(A).padding_ratio() == pytest.approx(4 / 3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            EllpackMatrix((2, 2), np.zeros((2, 1)), np.zeros((2, 2), dtype=np.int64))

    def test_col_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="column index"):
            EllpackMatrix((2, 2), np.ones((2, 1)), np.full((2, 1), 5, dtype=np.int64))


class TestMatvec:
    def test_against_csr(self):
        A = random_csr(9, 9, 30, seed=3)
        ell = EllpackMatrix.from_csr(A)
        x = np.random.default_rng(4).standard_normal(9)
        np.testing.assert_allclose(ell.matvec(x), A.matvec(x), atol=1e-14)

    def test_rectangular(self):
        A = random_csr(5, 8, 16, seed=5)
        ell = EllpackMatrix.from_csr(A)
        x = np.random.default_rng(6).standard_normal(8)
        np.testing.assert_allclose(ell.matvec(x), A.to_dense() @ x, atol=1e-14)

    def test_out_parameter(self):
        ell = EllpackMatrix.from_csr(eye_csr(3, 3.0))
        out = np.full(3, -1.0)
        y = ell.matvec(np.ones(3), out=out)
        assert y is out
        np.testing.assert_array_equal(out, [3.0, 3.0, 3.0])

    def test_dimension_mismatch(self):
        ell = EllpackMatrix.from_csr(eye_csr(3))
        with pytest.raises(ValueError, match="dimension mismatch"):
            ell.matvec(np.ones(4))

    def test_empty_matrix(self):
        A = CooMatrix((3, 3)).to_csr()
        ell = EllpackMatrix.from_csr(A)
        np.testing.assert_array_equal(ell.matvec(np.ones(3)), np.zeros(3))
