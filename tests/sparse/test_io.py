"""Tests for Matrix Market I/O."""

import gzip

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market


def random_csr(n, nnz, seed=0):
    rng = np.random.default_rng(seed)
    return CooMatrix(
        (n, n),
        rng.integers(0, n, nnz),
        rng.integers(0, n, nnz),
        rng.standard_normal(nnz),
    ).to_csr()


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        A = random_csr(8, 20, seed=1)
        path = tmp_path / "a.mtx"
        write_matrix_market(path, A, comment="test matrix")
        B = read_matrix_market(path)
        np.testing.assert_allclose(B.to_dense(), A.to_dense(), atol=1e-15)

    def test_gzipped_roundtrip(self, tmp_path):
        A = random_csr(5, 10, seed=2)
        path = tmp_path / "a.mtx.gz"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        np.testing.assert_allclose(B.to_dense(), A.to_dense(), atol=1e-15)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("%%MatrixMarket")


class TestReadFormats:
    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 3 4.0\n"
        )
        A = read_matrix_market(path).to_dense()
        expected = np.array([[2.0, -1.0, 0.0], [-1.0, 0.0, 0.0], [0.0, 0.0, 4.0]])
        np.testing.assert_array_equal(A, expected)

    def test_skew_symmetric(self, tmp_path):
        path = tmp_path / "skew.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        A = read_matrix_market(path).to_dense()
        np.testing.assert_array_equal(A, [[0.0, -3.0], [3.0, 0.0]])

    def test_pattern(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        A = read_matrix_market(path).to_dense()
        np.testing.assert_array_equal(A, [[0.0, 1.0], [1.0, 0.0]])

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "1 1 1\n"
            "1 1 5.0\n"
        )
        A = read_matrix_market(path).to_dense()
        np.testing.assert_array_equal(A, [[5.0]])

    def test_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        # Array format is column-major.
        path.write_text(
            "%%MatrixMarket matrix array real general\n"
            "2 2\n"
            "1.0\n3.0\n2.0\n4.0\n"
        )
        A = read_matrix_market(path).to_dense()
        np.testing.assert_array_equal(A, [[1.0, 2.0], [3.0, 4.0]])


class TestReadErrors:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix market file\n")
        with pytest.raises(ValueError, match="bad header"):
            read_matrix_market(path)

    def test_complex_rejected(self, tmp_path):
        path = tmp_path / "cplx.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n"
        )
        with pytest.raises(ValueError, match="complex"):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n"
        )
        with pytest.raises(ValueError, match="expected 5 entries"):
            read_matrix_market(path)
