"""Tests for the simulated GPU runtime: devices, PCIe, context, counters."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.gpu.counters import Counters
from repro.gpu.device import DeviceArray
from repro.gpu.pcie import PcieBus
from repro.perf.machine import PcieSpec


class TestCounters:
    def test_totals(self):
        c = Counters()
        c.h2d_messages = 2
        c.d2h_messages = 3
        c.h2d_bytes = 10
        c.d2h_bytes = 20
        assert c.total_messages == 5
        assert c.total_bytes == 30

    def test_reset(self):
        c = Counters()
        c.kernel_launches = 5
        c.reset()
        assert c.kernel_launches == 0

    def test_mark_and_since(self):
        c = Counters()
        c.mark("start")
        c.h2d_messages += 4
        diff = c.since("start")
        assert diff["h2d_messages"] == 4
        assert diff["d2h_messages"] == 0

    def test_since_unknown_mark(self):
        with pytest.raises(KeyError):
            Counters().since("nope")

    def test_reset_invalidates_marks(self):
        # Regression: marks are snapshots of counter state, so a mark
        # surviving reset() would make since() report negative deltas.
        c = Counters()
        c.h2d_messages = 4
        c.mark("before")
        c.reset()
        with pytest.raises(KeyError):
            c.since("before")
        # Fresh marks after reset work as usual.
        c.mark("after")
        c.h2d_messages += 2
        assert c.since("after")["h2d_messages"] == 2


class TestPcieBus:
    def test_message_time(self):
        bus = PcieBus(PcieSpec(latency=1e-5, bandwidth=1e9))
        assert bus.message_time(0) == pytest.approx(1e-5)
        assert bus.message_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_shared_bus_serializes(self):
        bus = PcieBus(PcieSpec(latency=0.0, bandwidth=1e9, shared_bus=True))
        end1 = bus.schedule(0.0, int(1e9))  # 1 second
        end2 = bus.schedule(0.0, int(1e9))  # queues behind
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(2.0)

    def test_unshared_bus_overlaps(self):
        bus = PcieBus(PcieSpec(latency=0.0, bandwidth=1e9, shared_bus=False))
        end1 = bus.schedule(0.0, int(1e9))
        end2 = bus.schedule(0.0, int(1e9))
        assert end1 == end2 == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        bus = PcieBus(PcieSpec(latency=0.0, bandwidth=1.0))
        with pytest.raises(ValueError):
            bus.message_time(-1)


class TestDevice:
    def test_adopt_and_views(self):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        arr = dev.adopt(np.arange(6.0).reshape(2, 3))
        view = arr.view((slice(None), 1))
        assert view.shape == (2,)
        view.data[0] = 99.0
        assert arr.data[0, 1] == 99.0  # views share memory

    def test_kernel_advances_clock(self):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        before = dev.clock
        dev.charge_kernel("dot", "cublas", n=1_000_000)
        assert dev.clock > before

    def test_kernel_counts(self):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        dev.charge_kernel("dot", "cublas", n=100)
        assert ctx.counters.kernel_launches == 1
        assert ctx.counters.device_flops == pytest.approx(200.0)

    def test_residency_enforced(self):
        ctx = MultiGpuContext(2)
        a = ctx.devices[0].zeros(4)
        with pytest.raises(ValueError, match="gpu1"):
            ctx.devices[1].require_resident(a)

    def test_non_device_array_rejected(self):
        ctx = MultiGpuContext(1)
        with pytest.raises(TypeError):
            ctx.devices[0].require_resident(np.zeros(3))

    def test_clock_cannot_go_backwards(self):
        ctx = MultiGpuContext(1)
        with pytest.raises(ValueError):
            ctx.devices[0].advance(-1.0)


class TestContextTransfers:
    def test_h2d_copies_data(self):
        ctx = MultiGpuContext(1)
        src = np.arange(5.0)
        darr = ctx.h2d(ctx.devices[0], src)
        src[0] = -1.0  # mutation must not leak into the device copy
        np.testing.assert_array_equal(darr.data, [0, 1, 2, 3, 4])

    def test_d2h_copies_data(self):
        ctx = MultiGpuContext(1)
        darr = ctx.devices[0].adopt(np.arange(3.0))
        host = ctx.d2h(darr)
        host[0] = -1.0
        assert darr.data[0] == 0.0

    def test_transfer_counts_and_bytes(self):
        ctx = MultiGpuContext(2)
        ctx.h2d(ctx.devices[0], np.zeros(10))
        ctx.h2d(ctx.devices[1], np.zeros(4))
        ctx.d2h(ctx.devices[0].zeros(2))
        assert ctx.counters.h2d_messages == 2
        assert ctx.counters.h2d_bytes == 14 * 8
        assert ctx.counters.d2h_messages == 1
        assert ctx.counters.d2h_bytes == 16

    def test_h2d_advances_device_not_host(self):
        ctx = MultiGpuContext(1)
        h0 = ctx.host.clock
        ctx.h2d(ctx.devices[0], np.zeros(1000))
        assert ctx.host.clock == h0  # async: producer not blocked
        assert ctx.devices[0].clock > 0.0

    def test_d2h_advances_host_not_device(self):
        ctx = MultiGpuContext(1)
        darr = ctx.devices[0].zeros(1000)
        d0 = ctx.devices[0].clock
        ctx.d2h(darr)
        assert ctx.devices[0].clock == d0
        assert ctx.host.clock > 0.0

    def test_sync_aligns_clocks(self):
        ctx = MultiGpuContext(3)
        ctx.devices[1].advance(5.0)
        t = ctx.sync()
        assert t == pytest.approx(5.0)
        assert all(d.clock == t for d in ctx.devices)
        assert ctx.host.clock == t

    def test_reset_clocks(self):
        ctx = MultiGpuContext(2)
        ctx.devices[0].advance(1.0)
        with ctx.region("work"):
            ctx.devices[1].advance(2.0)
        ctx.reset_clocks()
        assert ctx.current_time() == 0.0
        assert ctx.timers == {}


class TestRegions:
    def test_region_accumulates(self):
        ctx = MultiGpuContext(1)
        with ctx.region("phase"):
            ctx.devices[0].advance(1.5)
        with ctx.region("phase"):
            ctx.devices[0].advance(0.5)
        assert ctx.timers["phase"] == pytest.approx(2.0)

    def test_region_uses_global_clock(self):
        ctx = MultiGpuContext(2)
        with ctx.region("phase"):
            ctx.devices[0].advance(1.0)
            ctx.devices[1].advance(3.0)  # slower device dominates
        assert ctx.timers["phase"] == pytest.approx(3.0)


class TestAllreduce:
    def test_sums_partials(self):
        ctx = MultiGpuContext(3)
        partials = [
            DeviceArray(np.full(4, float(d + 1)), dev)
            for d, dev in enumerate(ctx.devices)
        ]
        total = ctx.allreduce_sum(partials)
        np.testing.assert_array_equal(total, np.full(4, 6.0))

    def test_wrong_count_rejected(self):
        ctx = MultiGpuContext(2)
        with pytest.raises(ValueError, match="one partial per device"):
            ctx.allreduce_sum([ctx.devices[0].zeros(1)])

    def test_broadcast_reaches_all_devices(self):
        ctx = MultiGpuContext(3)
        out = ctx.broadcast(np.array([7.0]))
        assert len(out) == 3
        for d, arr in enumerate(out):
            assert arr.device is ctx.devices[d]
            assert arr.data[0] == 7.0

    def test_allreduce_message_count(self):
        ctx = MultiGpuContext(3)
        ctx.counters.reset()
        partials = [dev.zeros(2) for dev in ctx.devices]
        ctx.allreduce_sum(partials)
        assert ctx.counters.d2h_messages == 3

    def test_invalid_n_gpus(self):
        with pytest.raises(ValueError):
            MultiGpuContext(0)
