"""Tests for the multi-node execution context."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.gpu.multinode import MultiNodeContext, NetworkSpec, infiniband_qdr
from repro.matrices import poisson2d


class TestConstruction:
    def test_device_count(self):
        ctx = MultiNodeContext(2, 3)
        assert ctx.n_gpus == 6
        assert ctx.n_nodes == 2

    def test_node_assignment_blocked(self):
        ctx = MultiNodeContext(2, 3)
        nodes = [ctx.node_of(d) for d in ctx.devices]
        assert nodes == [0, 0, 0, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiNodeContext(0, 3)
        with pytest.raises(ValueError):
            MultiNodeContext(2, 0)
        with pytest.raises(ValueError):
            NetworkSpec(latency=-1.0, bandwidth=1.0)

    def test_default_network(self):
        assert infiniband_qdr().bandwidth == pytest.approx(3.2e9)


class TestTransferSemantics:
    def test_remote_transfer_slower_than_local(self):
        net = NetworkSpec(latency=50e-6, bandwidth=1e9)
        ctx = MultiNodeContext(2, 1, network=net)
        local, remote = ctx.devices
        ctx.h2d(local, np.zeros(1000))
        t_local = local.clock
        ctx.reset_clocks()
        ctx.h2d(remote, np.zeros(1000))
        t_remote = remote.clock
        assert t_remote > t_local + 40e-6  # pays the network latency

    def test_remote_d2h_counts_network_message(self):
        ctx = MultiNodeContext(2, 1)
        ctx.counters.reset()
        ctx.d2h(ctx.devices[1].zeros(10))  # remote device
        assert ctx.counters.d2h_messages == 2  # PCIe + network hop
        ctx.counters.reset()
        ctx.d2h(ctx.devices[0].zeros(10))  # local device
        assert ctx.counters.d2h_messages == 1

    def test_data_integrity(self):
        ctx = MultiNodeContext(2, 2)
        src = np.arange(7.0)
        darr = ctx.h2d(ctx.devices[3], src)
        np.testing.assert_array_equal(ctx.d2h(darr), src)

    def test_reset_clears_links(self):
        ctx = MultiNodeContext(2, 1)
        ctx.d2h(ctx.devices[1].zeros(100))
        ctx.reset_clocks()
        assert ctx.current_time() == 0.0
        assert all(link.busy_until == 0.0 for link in ctx._links)

    def test_per_node_buses_overlap(self):
        """Transfers from different nodes use independent PCIe buses."""
        ctx = MultiNodeContext(2, 1, network=NetworkSpec(1e-9, 1e12))
        nbytes = 10_000_000
        ctx.d2h(ctx.devices[0].zeros(nbytes // 8))
        t_after_one = ctx.host.clock
        ctx.reset_clocks()
        # Same payload from both nodes: buses overlap, only the (fast)
        # network serializes, so total < 2x the single transfer.
        ctx.d2h(ctx.devices[0].zeros(nbytes // 8))
        ctx.d2h(ctx.devices[1].zeros(nbytes // 8))
        assert ctx.host.clock < 1.9 * t_after_one


class TestSolversOnMultiNode:
    def test_gmres_correct(self, rng):
        A = poisson2d(12)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        ctx = MultiNodeContext(2, 2)
        r = gmres(A, b, ctx=ctx, m=20, tol=1e-10, max_restarts=60)
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_ca_gmres_correct(self, rng):
        A = poisson2d(12)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        ctx = MultiNodeContext(3, 2)
        r = ca_gmres(A, b, ctx=ctx, s=7, m=21, tol=1e-10, max_restarts=60)
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_numerics_independent_of_topology(self):
        """1 node x 4 GPUs and 2 nodes x 2 GPUs: identical mathematics."""
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        r1 = ca_gmres(
            A, b, ctx=MultiNodeContext(1, 4), s=5, m=10, tol=1e-8,
            max_restarts=30,
        )
        r2 = ca_gmres(
            A, b, ctx=MultiNodeContext(2, 2), s=5, m=10, tol=1e-8,
            max_restarts=30,
        )
        assert r1.n_iterations == r2.n_iterations
        np.testing.assert_allclose(r1.x, r2.x, atol=1e-12)

    def test_slower_network_increases_ca_advantage(self):
        """The paper's outlook: more expensive communication -> CA wins more."""
        A = poisson2d(24)
        b = np.ones(A.n_rows)
        speedups = {}
        for latency in (2e-6, 40e-6):
            net = NetworkSpec(latency=latency, bandwidth=3.2e9)
            r_g = gmres(
                A, b, ctx=MultiNodeContext(2, 2, network=net), m=20,
                tol=1e-14, max_restarts=1,
            )
            r_c = ca_gmres(
                A, b, ctx=MultiNodeContext(2, 2, network=net), s=10, m=20,
                tol=1e-14, max_restarts=2, basis="monomial",
            )
            speedups[latency] = r_g.time_per_restart() / r_c.time_per_restart()
        assert speedups[40e-6] > speedups[2e-6]
