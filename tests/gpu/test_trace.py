"""Tests for the structured event trace (repro.gpu.trace)."""

import json

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.gpu.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_appends_event(self):
        tr = TraceRecorder()
        tr.record("dot/cublas", "gpu0", "kernel", 1.0, 0.5, op="dot")
        (e,) = tr.events
        assert e.name == "dot/cublas"
        assert e.lane == "gpu0"
        assert e.kind == "kernel"
        assert e.start == 1.0 and e.duration == 0.5 and e.end == 1.5
        assert e.args["op"] == "dot"

    def test_disabled_recorder_drops_events(self):
        tr = TraceRecorder(enabled=False)
        tr.record("x", "gpu0", "kernel", 0.0, 1.0)
        assert tr.events == []

    def test_disabled_recorder_still_tracks_exclusive(self):
        tr = TraceRecorder(enabled=False)
        tr.region_enter("phase", 0.0)
        tr.region_exit("phase", 2.0)
        assert tr.exclusive_totals() == {"phase": 2.0}
        assert tr.events == []

    def test_region_nesting_exclusive_times(self):
        tr = TraceRecorder()
        tr.region_enter("outer", 0.0)
        tr.region_enter("inner", 1.0)
        tr.region_exit("inner", 3.0)
        tr.region_exit("outer", 4.0)
        totals = tr.exclusive_totals()
        assert totals["inner"] == pytest.approx(2.0)
        assert totals["outer"] == pytest.approx(2.0)  # 4 - 2 nested
        # Wall clock is fully attributed exactly once.
        assert sum(totals.values()) == pytest.approx(4.0)

    def test_region_mismatch_raises(self):
        tr = TraceRecorder()
        tr.region_enter("a", 0.0)
        with pytest.raises(ValueError, match="does not match"):
            tr.region_exit("b", 1.0)

    def test_region_exit_without_enter_raises(self):
        with pytest.raises(ValueError, match="no open region"):
            TraceRecorder().region_exit("a", 0.0)

    def test_region_totals_inclusive_and_self_nested(self):
        tr = TraceRecorder()
        tr.region_enter("outer", 0.0)
        tr.region_enter("outer", 1.0)  # recursive same-name span
        tr.region_exit("outer", 2.0)
        tr.region_exit("outer", 3.0)
        totals = tr.region_totals()
        # The nested same-name span must not double its parent's inclusive.
        assert totals["outer"]["inclusive"] == pytest.approx(3.0)
        assert totals["outer"]["exclusive"] == pytest.approx(3.0)
        assert totals["outer"]["count"] == 2

    def test_cycle_windows(self):
        tr = TraceRecorder()
        tr.mark_cycle(0.0)
        tr.mark_cycle(2.0)
        tr.record("k", "gpu0", "kernel", 2.0, 1.0)
        assert tr.cycle_windows() == [(0.0, 2.0), (2.0, 3.0)]

    def test_reset_clears_everything(self):
        tr = TraceRecorder()
        tr.record("k", "gpu0", "kernel", 0.0, 1.0)
        tr.region_enter("r", 0.0)
        tr.region_exit("r", 1.0)
        tr.mark_cycle(0.5)
        tr.reset()
        assert tr.events == []
        assert tr.cycle_marks == []
        assert tr.exclusive_totals() == {}


class TestContextIntegration:
    def test_kernel_charges_are_traced(self):
        ctx = MultiGpuContext(2)
        ctx.devices[1].charge_kernel("dot", "cublas", n=1000)
        kernels = [e for e in ctx.trace.events if e.kind == "kernel"]
        (e,) = kernels
        assert e.lane == "gpu1"
        assert e.name == "dot/cublas"
        assert e.duration == pytest.approx(ctx.devices[1].clock)

    def test_transfers_record_bus_intervals(self):
        ctx = MultiGpuContext(2)
        ctx.h2d(ctx.devices[0], np.zeros(100))
        ctx.d2h(ctx.devices[1].zeros(50))
        h2d = [e for e in ctx.trace.events if e.kind == "h2d"]
        d2h = [e for e in ctx.trace.events if e.kind == "d2h"]
        assert len(h2d) == 1 and len(d2h) == 1
        assert h2d[0].lane == "pcie" and d2h[0].lane == "pcie"
        assert h2d[0].args["bytes"] == 800
        assert d2h[0].args["bytes"] == 400
        assert h2d[0].duration == pytest.approx(ctx.bus.message_time(800))

    def test_shared_bus_intervals_serialize(self):
        ctx = MultiGpuContext(2)
        ctx.h2d(ctx.devices[0], np.zeros(1000))
        ctx.h2d(ctx.devices[1], np.zeros(1000))
        e1, e2 = [e for e in ctx.trace.events if e.kind == "h2d"]
        assert e2.start >= e1.end  # bus occupancy intervals do not overlap

    def test_nested_regions_do_not_double_count(self):
        ctx = MultiGpuContext(1)
        with ctx.region("outer"):
            ctx.devices[0].advance(1.0)
            with ctx.region("inner"):
                ctx.devices[0].advance(2.0)
            ctx.devices[0].advance(0.5)
        assert ctx.timers["inner"] == pytest.approx(2.0)
        assert ctx.timers["outer"] == pytest.approx(1.5)
        assert sum(ctx.timers.values()) == pytest.approx(3.5)

    def test_non_nested_region_matches_legacy_accumulation(self):
        ctx = MultiGpuContext(1)
        with ctx.region("phase"):
            ctx.devices[0].advance(1.5)
        with ctx.region("phase"):
            ctx.devices[0].advance(0.5)
        assert ctx.timers["phase"] == pytest.approx(2.0)
        inclusive = ctx.trace.region_totals()["phase"]["inclusive"]
        assert inclusive == pytest.approx(ctx.timers["phase"])

    def test_reset_clocks_clears_trace(self):
        ctx = MultiGpuContext(1)
        with ctx.region("work"):
            ctx.devices[0].charge_kernel("dot", "cublas", n=100)
        ctx.mark_cycle()
        ctx.reset_clocks()
        assert ctx.trace.events == []
        assert ctx.trace.cycle_marks == []
        assert ctx.timers == {}

    def test_kernel_counts_counter(self):
        ctx = MultiGpuContext(1)
        ctx.devices[0].charge_kernel("dot", "cublas", n=10)
        ctx.devices[0].charge_kernel("dot", "cublas", n=10)
        ctx.host.charge_small_dense("chol", 4)
        assert ctx.counters.kernel_counts["dot/cublas"] == 2
        assert ctx.counters.kernel_counts["chol/lapack"] == 1
        snap = ctx.counters.snapshot()
        assert snap["kernel_counts"]["dot/cublas"] == 2

    def test_counters_since_diffs_kernel_counts(self):
        ctx = MultiGpuContext(1)
        ctx.devices[0].charge_kernel("dot", "cublas", n=10)
        ctx.counters.mark("t0")
        ctx.devices[0].charge_kernel("dot", "cublas", n=10)
        ctx.devices[0].charge_kernel("axpy", "cublas", n=10)
        diff = ctx.counters.since("t0")
        assert diff["kernel_counts"]["dot/cublas"] == 1
        assert diff["kernel_counts"]["axpy/cublas"] == 1


class TestProfileAndExport:
    def _tiny_trace(self):
        ctx = MultiGpuContext(2)
        ctx.mark_cycle()
        with ctx.region("spmv"):
            ctx.h2d(ctx.devices[0], np.zeros(64))
            ctx.devices[0].charge_kernel("spmv", "ellpack", nnz=256, n_rows=64)
        with ctx.region("orth"):
            ctx.devices[1].charge_kernel("dot", "cublas", n=64)
            ctx.d2h(ctx.devices[1].zeros(1))
        return ctx

    def test_profile_regions_match_timers(self):
        ctx = self._tiny_trace()
        profile = ctx.trace.profile()
        for name, total in ctx.timers.items():
            assert profile["regions"][name]["inclusive"] == pytest.approx(total)

    def test_profile_kernels_and_transfers(self):
        ctx = self._tiny_trace()
        profile = ctx.trace.profile()
        assert profile["kernels"]["spmv/ellpack"]["count"] == 1
        assert "gpu0" in profile["kernels"]["spmv/ellpack"]["by_lane"]
        assert profile["transfers"]["h2d"]["count"] == 1
        assert profile["transfers"]["h2d"]["bytes"] == 64 * 8
        assert profile["transfers"]["d2h"]["count"] == 1
        assert profile["bus"]["messages"] == 2

    def test_profile_cycles(self):
        ctx = self._tiny_trace()
        profile = ctx.trace.profile()
        assert len(profile["cycles"]) == 1
        cycle = profile["cycles"][0]
        assert set(cycle["regions"]) == {"spmv", "orth"}
        assert cycle["duration"] == pytest.approx(profile["total_time"])

    def test_chrome_trace_structure(self):
        ctx = self._tiny_trace()
        doc = ctx.trace.to_chrome_trace()
        events = doc["traceEvents"]
        names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert {"host", "gpu0", "gpu1", "pcie", "regions"} <= names
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "expected complete (X) events"
        for e in spans:
            assert e["dur"] >= 0.0
            assert isinstance(e["tid"], int)

    def test_chrome_trace_roundtrips_through_json(self, tmp_path):
        ctx = self._tiny_trace()
        path = tmp_path / "trace.json"
        ctx.trace.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"kernel", "h2d", "d2h", "region"} <= cats


class TestSolverProfiles:
    def test_gmres_and_ca_gmres_attach_profile(self):
        from repro.core.ca_gmres import ca_gmres
        from repro.core.gmres import gmres
        from repro.matrices.stencil import poisson2d

        A = poisson2d(12)
        b = np.ones(A.n_rows)
        for result in (
            gmres(A, b, m=10, max_restarts=2),
            ca_gmres(A, b, s=3, m=9, max_restarts=2),
        ):
            profile = result.profile
            assert profile is not None
            assert len(profile["cycles"]) == result.n_restarts
            # Trace-derived region totals agree with the legacy timers view.
            for name, total in result.timers.items():
                assert profile["regions"][name]["inclusive"] == pytest.approx(
                    total
                )

    def test_pipelined_attaches_profile(self):
        from repro.core.pipelined import pipelined_gmres
        from repro.matrices.stencil import poisson2d

        A = poisson2d(10)
        b = np.ones(A.n_rows)
        result = pipelined_gmres(A, b, m=8, max_restarts=2)
        assert result.profile is not None
        assert len(result.profile["cycles"]) == result.n_restarts
