"""Tests for the device BLAS: numerical results and timing side effects."""

import numpy as np
import pytest

from repro.gpu import blas
from repro.gpu.context import MultiGpuContext
from repro.sparse.csr import csr_from_dense
from repro.sparse.ellpack import EllpackMatrix


@pytest.fixture
def ctx():
    return MultiGpuContext(1)


@pytest.fixture
def dev(ctx):
    return ctx.devices[0]


class TestBlas1:
    def test_dot(self, dev):
        x = dev.adopt(np.array([1.0, 2.0, 3.0]))
        y = dev.adopt(np.array([4.0, 5.0, 6.0]))
        out = blas.dot(x, y)
        assert out.data[0] == pytest.approx(32.0)
        assert out.device is dev

    def test_dot_shape_mismatch(self, dev):
        with pytest.raises(ValueError):
            blas.dot(dev.zeros(3), dev.zeros(4))

    def test_dot_cross_device_rejected(self):
        ctx = MultiGpuContext(2)
        x = ctx.devices[0].zeros(3)
        y = ctx.devices[1].zeros(3)
        with pytest.raises(ValueError, match="move it with an explicit transfer"):
            blas.dot(x, y)

    def test_nrm2_is_squared_norm(self, dev):
        x = dev.adopt(np.array([3.0, 4.0]))
        assert blas.nrm2(x).data[0] == pytest.approx(25.0)

    def test_axpy(self, dev):
        x = dev.adopt(np.array([1.0, 2.0]))
        y = dev.adopt(np.array([10.0, 20.0]))
        blas.axpy(2.0, x, y)
        np.testing.assert_array_equal(y.data, [12.0, 24.0])

    def test_scal(self, dev):
        x = dev.adopt(np.array([2.0, 4.0]))
        blas.scal(0.5, x)
        np.testing.assert_array_equal(x.data, [1.0, 2.0])

    def test_copy_into(self, dev):
        src = dev.adopt(np.array([1.0, 2.0]))
        dst = dev.zeros(2)
        blas.copy_into(dst, src)
        np.testing.assert_array_equal(dst.data, [1.0, 2.0])

    def test_kernels_advance_clock(self, ctx, dev):
        x = dev.zeros(1000)
        y = dev.zeros(1000)
        t0 = dev.clock
        blas.axpy(1.0, x, y)
        assert dev.clock > t0


class TestBlas23:
    def test_gemv_t(self, dev, rng):
        V = dev.adopt(rng.standard_normal((20, 4)))
        x = dev.adopt(rng.standard_normal(20))
        out = blas.gemv_t(V, x)
        np.testing.assert_allclose(out.data, V.data.T @ x.data, atol=1e-14)

    def test_gemv_n_update(self, dev, rng):
        V = dev.adopt(rng.standard_normal((10, 3)))
        r = dev.adopt(rng.standard_normal(3))
        x = dev.adopt(rng.standard_normal(10))
        expected = x.data - V.data @ r.data
        blas.gemv_n_update(V, r, x)
        np.testing.assert_allclose(x.data, expected, atol=1e-14)

    def test_gemm_tn(self, dev, rng):
        V = dev.adopt(rng.standard_normal((15, 3)))
        W = dev.adopt(rng.standard_normal((15, 5)))
        out = blas.gemm_tn(V, W)
        np.testing.assert_allclose(out.data, V.data.T @ W.data, atol=1e-14)

    def test_gemm_nn(self, dev, rng):
        V = dev.adopt(rng.standard_normal((8, 3)))
        B = dev.adopt(rng.standard_normal((3, 4)))
        out = blas.gemm_nn(V, B)
        np.testing.assert_allclose(out.data, V.data @ B.data, atol=1e-14)

    def test_gemm_nn_update(self, dev, rng):
        V = dev.adopt(rng.standard_normal((8, 3)))
        B = dev.adopt(rng.standard_normal((3, 4)))
        W = dev.adopt(rng.standard_normal((8, 4)))
        expected = W.data - V.data @ B.data
        blas.gemm_nn_update(V, B, W)
        np.testing.assert_allclose(W.data, expected, atol=1e-14)

    def test_ger_update(self, dev, rng):
        x = dev.adopt(rng.standard_normal(6))
        y = dev.adopt(rng.standard_normal(4))
        W = dev.adopt(rng.standard_normal((6, 4)))
        expected = W.data - np.outer(x.data, y.data)
        blas.ger_update(x, y, W)
        np.testing.assert_allclose(W.data, expected, atol=1e-14)

    def test_trsm_right(self, dev, rng):
        V = rng.standard_normal((12, 4))
        R = np.triu(rng.standard_normal((4, 4))) + 4.0 * np.eye(4)
        Vd = dev.adopt(V.copy())
        blas.trsm_right(Vd, R)
        np.testing.assert_allclose(Vd.data @ R, V, atol=1e-12)

    def test_trsm_shape_check(self, dev):
        with pytest.raises(ValueError):
            blas.trsm_right(dev.zeros((5, 3)), np.eye(4))

    def test_qr_panel(self, dev, rng):
        V = rng.standard_normal((10, 4))
        Q, R = blas.qr_panel(dev.adopt(V.copy()))
        np.testing.assert_allclose(Q.data @ R, V, atol=1e-12)
        np.testing.assert_allclose(Q.data.T @ Q.data, np.eye(4), atol=1e-12)

    def test_inner_dim_mismatch(self, dev):
        with pytest.raises(ValueError):
            blas.gemm_nn(dev.zeros((4, 3)), dev.zeros((2, 2)))


class TestSpmv:
    def test_spmv_ell(self, dev, rng):
        dense = rng.standard_normal((6, 6))
        dense[rng.random((6, 6)) < 0.6] = 0.0
        ell = EllpackMatrix.from_csr(csr_from_dense(dense))
        vals = dev.adopt(ell.values)
        cols = dev.adopt(ell.col_idx)
        x = dev.adopt(rng.standard_normal(6))
        out = dev.zeros(6)
        blas.spmv_ell(vals, cols, x, out)
        np.testing.assert_allclose(out.data, dense @ x.data, atol=1e-13)

    def test_spmv_csr_prefix(self, dev, rng):
        dense = rng.standard_normal((8, 8))
        dense[rng.random((8, 8)) < 0.5] = 0.0
        csr = csr_from_dense(dense)
        indptr = dev.adopt(csr.indptr)
        indices = dev.adopt(csr.indices)
        data = dev.adopt(csr.data)
        x = dev.adopt(rng.standard_normal(8))
        out = dev.zeros(8)
        blas.spmv_csr_prefix(indptr, indices, data, x, out, 5)
        np.testing.assert_allclose(out.data[:5], (dense @ x.data)[:5], atol=1e-13)

    def test_spmv_csr_prefix_bounds(self, dev):
        indptr = dev.adopt(np.array([0, 1], dtype=np.int64))
        indices = dev.adopt(np.array([0], dtype=np.int64))
        data = dev.adopt(np.array([1.0]))
        x = dev.adopt(np.ones(1))
        out = dev.zeros(1)
        with pytest.raises(ValueError):
            blas.spmv_csr_prefix(indptr, indices, data, x, out, 2)


class TestVariantTiming:
    def test_magma_gemv_faster_than_cublas(self):
        """The paper's optimized tall-skinny DGEMV is ~5x CUBLAS."""
        ctx = MultiGpuContext(1)
        t_cublas = ctx.perf.gpu_time("gemv_t", "cublas", n=500_000, k=30)
        t_magma = ctx.perf.gpu_time("gemv_t", "magma", n=500_000, k=30)
        assert t_cublas / t_magma > 3.0

    def test_batched_gemm_faster_than_cublas(self):
        ctx = MultiGpuContext(1)
        t_cublas = ctx.perf.gpu_time("gemm_tn", "cublas", n=500_000, k=30, j=30)
        t_batched = ctx.perf.gpu_time("gemm_tn", "batched", n=500_000, k=30, j=30)
        assert t_cublas / t_batched > 2.0

    def test_variants_numerically_identical(self, rng):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        V = dev.adopt(rng.standard_normal((50, 5)))
        x = dev.adopt(rng.standard_normal(50))
        a = blas.gemv_t(V, x, variant="cublas")
        b = blas.gemv_t(V, x, variant="magma")
        np.testing.assert_array_equal(a.data, b.data)
