"""Tests for the overlap (ready_at) transfer semantics."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext


class TestReadyAt:
    def test_d2h_ready_at_uses_earlier_time(self):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        payload = dev.zeros(1000)
        ready = dev.clock
        # Device then does a lot more compute (the "overlapped" work).
        dev.charge_kernel("gemm_tn", "batched", n=500_000, k=30, j=30)
        busy_until = dev.clock
        ctx.d2h(payload, ready_at=ready)
        # The transfer shipped from `ready`, not from the busy clock.
        assert ctx.host.clock < busy_until

    def test_d2h_without_ready_at_waits_for_device(self):
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        payload = dev.zeros(1000)
        dev.charge_kernel("gemm_tn", "batched", n=500_000, k=30, j=30)
        busy_until = dev.clock
        ctx.d2h(payload)
        assert ctx.host.clock >= busy_until

    def test_ready_at_cannot_be_in_future(self):
        """A bogus future ready_at is clamped to the device clock."""
        ctx = MultiGpuContext(1)
        dev = ctx.devices[0]
        payload = dev.zeros(10)
        ctx.d2h(payload, ready_at=dev.clock + 100.0)
        # The arrival is based on the real clock, not the future stamp.
        assert ctx.host.clock < 1.0

    def test_allreduce_ready_at(self):
        ctx = MultiGpuContext(2)
        partials = []
        ready = []
        for dev in ctx.devices:
            p = dev.adopt(np.array([1.0]))
            partials.append(p)
            ready.append(dev.clock)
            dev.charge_kernel("gemm_tn", "batched", n=500_000, k=30, j=30)
        total = ctx.allreduce_sum(partials, ready_at=ready)
        assert total[0] == pytest.approx(2.0)
        # The reduction rode under the device compute.
        assert ctx.host.clock < max(d.clock for d in ctx.devices)

    def test_allreduce_ready_at_length_checked(self):
        ctx = MultiGpuContext(2)
        partials = [dev.zeros(1) for dev in ctx.devices]
        with pytest.raises(ValueError, match="one entry per device"):
            ctx.allreduce_sum(partials, ready_at=[0.0])

    def test_multinode_ready_at(self):
        from repro.gpu.multinode import MultiNodeContext

        ctx = MultiNodeContext(2, 1)
        dev = ctx.devices[1]  # remote device
        payload = dev.zeros(100)
        ready = dev.clock
        dev.charge_kernel("gemm_tn", "batched", n=500_000, k=30, j=30)
        ctx.d2h(payload, ready_at=ready)
        assert ctx.host.clock < dev.clock
