"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.order.partition import Partition, block_row_partition


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=[1, 2, 3], ids=["1gpu", "2gpu", "3gpu"])
def ctx(request):
    """A context for each GPU count the paper evaluates."""
    return MultiGpuContext(request.param)


@pytest.fixture
def ctx1():
    return MultiGpuContext(1)


@pytest.fixture
def ctx2():
    return MultiGpuContext(2)


@pytest.fixture
def ctx3():
    return MultiGpuContext(3)


def make_dist_multivector(
    ctx: MultiGpuContext, dense: np.ndarray, partition: Partition | None = None
) -> tuple[DistMultiVector, Partition]:
    """Distribute a dense n x k array as a multivector."""
    n, k = dense.shape
    if partition is None:
        partition = block_row_partition(n, ctx.n_gpus)
    mv = DistMultiVector(ctx, partition, k)
    for d in range(ctx.n_gpus):
        mv.local[d].data[...] = dense[partition.rows_of(d)]
    return mv, partition


def gather_multivector(mv: DistMultiVector) -> np.ndarray:
    """Host copy of a distributed multivector (test-side, uncosted)."""
    out = np.empty((mv.n_rows, mv.n_cols))
    for d in range(mv.ctx.n_gpus):
        out[mv.partition.rows_of(d)] = mv.local[d].data
    return out
