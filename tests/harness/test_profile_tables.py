"""Tests for the trace-profile breakdown tables (repro.harness.profile)."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.harness.profile import (
    cycle_breakdown_table,
    kernel_breakdown_rows,
    profile_breakdown_table,
    region_breakdown_rows,
    resolve_profile,
)
from repro.matrices import poisson2d


@pytest.fixture(scope="module")
def solve_result():
    A = poisson2d(12)
    b = np.ones(A.n_rows)
    return ca_gmres(A, b, s=3, m=9, basis="monomial", max_restarts=2)


class TestResolveProfile:
    def test_accepts_solve_result(self, solve_result):
        profile = resolve_profile(solve_result)
        assert "regions" in profile and "kernels" in profile

    def test_accepts_bare_dict(self, solve_result):
        profile = solve_result.profile
        assert resolve_profile(profile) is profile

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_profile(42)


class TestBreakdownRows:
    def test_region_rows_match_timers(self, solve_result):
        rows = region_breakdown_rows(solve_result.profile)
        by_name = {row[0]: row for row in rows}
        # Region (inclusive) totals agree with the legacy ctx.timers view
        # on these non-nested solver regions.
        for name, seconds in solve_result.timers.items():
            assert by_name[name][1] == pytest.approx(1e3 * seconds)

    def test_region_rows_sorted_descending(self, solve_result):
        rows = region_breakdown_rows(solve_result.profile)
        inclusive = [row[1] for row in rows]
        assert inclusive == sorted(inclusive, reverse=True)

    def test_kernel_rows_costliest_first(self, solve_result):
        rows = kernel_breakdown_rows(solve_result.profile)
        times = [row[2] for row in rows]
        assert times == sorted(times, reverse=True)
        assert all(row[1] >= 1 for row in rows)  # launch counts

    def test_kernel_rows_top_limits(self, solve_result):
        assert len(kernel_breakdown_rows(solve_result.profile, top=3)) == 3


class TestTables:
    def test_profile_breakdown_table_sections(self, solve_result):
        text = profile_breakdown_table(solve_result, title="demo")
        assert "demo" in text
        assert "per-kernel" in text
        assert "PCIe" in text
        assert "spmv" in text or "mpk" in text

    def test_cycle_breakdown_table(self, solve_result):
        text = cycle_breakdown_table(solve_result)
        # One row per restart cycle.
        lines = [ln for ln in text.splitlines() if ln and ln[0].isdigit()]
        assert len(lines) == solve_result.n_restarts
