"""Tests for the ASCII plot renderer."""

import pytest

from repro.harness.plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        out = ascii_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o" in out  # first marker
        assert "o a" in lines[-1]  # legend

    def test_multiple_series_markers(self):
        out = ascii_plot([0, 1], {"up": [0.0, 1.0], "down": [1.0, 0.0]})
        assert "o" in out and "x" in out
        assert "o up" in out and "x down" in out

    @staticmethod
    def plot_rows(out):
        """The raster lines only (strip legend and x-axis labels)."""
        lines = out.splitlines()
        return [line for line in lines if "|" in line]

    def test_monotone_series_renders_monotone(self):
        out = ascii_plot([0, 1, 2, 3], {"y": [0.0, 1.0, 2.0, 3.0]}, width=20, height=8)
        cols = [line.index("o") for line in self.plot_rows(out) if "o" in line]
        # Raster rows go top (high y) to bottom: columns must decrease.
        assert cols == sorted(cols, reverse=True)

    def test_constant_series(self):
        out = ascii_plot([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert sum(line.count("o") for line in self.plot_rows(out)) == 3

    def test_none_values_skipped(self):
        out = ascii_plot([0, 1, 2], {"holey": [1.0, None, 3.0]})
        assert sum(line.count("o") for line in self.plot_rows(out)) == 2

    def test_logy(self):
        out = ascii_plot([0, 1, 2], {"exp": [1.0, 100.0, 10000.0]}, logy=True, height=9)
        # log scale spreads the three points over distinct rows.
        rows_with_marker = [line for line in self.plot_rows(out) if "o" in line]
        assert len(rows_with_marker) == 3

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_plot([0, 1], {"bad": [0.0, 1.0]}, logy=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([], {"a": []})
        with pytest.raises(ValueError):
            ascii_plot([1], {})
        with pytest.raises(ValueError, match="length mismatch"):
            ascii_plot([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError, match="at most"):
            ascii_plot([1], {str(i): [1.0] for i in range(9)})
