"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.harness.experiment import (
    ExperimentRecord,
    run_solver_experiment,
    solver_table_row,
)
from repro.harness.tables import format_float, format_series, format_table
from repro.matrices import poisson2d


class TestFormatFloat:
    def test_moderate_values_fixed(self):
        assert format_float(1.234567) == "1.235"

    def test_large_values_scientific(self):
        assert "e" in format_float(3.2e16)

    def test_small_values_scientific(self):
        assert "e" in format_float(5.4e-9)

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_none(self):
        assert format_float(None) == "-"

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_column_width_accommodates_data(self):
        out = format_table(["x"], [["longvalue"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(row)


class TestFormatSeries:
    def test_series_layout(self):
        out = format_series("s", [1, 2], {"a": [0.5, 1.5], "b": [10, 20]})
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "s"
        assert len(lines) == 4


class TestRunSolverExperiment:
    @pytest.fixture(scope="class")
    def matrix(self):
        return poisson2d(12)

    def test_gmres_record(self, matrix):
        rec = run_solver_experiment(
            "GMRES/CGS", matrix, np.ones(matrix.n_rows), "gmres", 2,
            m=12, tol=1e-6,
        )
        assert rec.converged
        assert rec.restarts >= 1
        assert rec.orth_ms > 0
        assert rec.total_ms >= rec.orth_ms
        assert rec.tsqr_ms == 0.0

    def test_ca_gmres_record(self, matrix):
        rec = run_solver_experiment(
            "CA/CholQR", matrix, np.ones(matrix.n_rows), "ca_gmres", 2,
            s=6, m=12, tol=1e-6,
        )
        assert rec.converged
        assert rec.tsqr_ms > 0
        assert rec.spmv_ms > 0

    def test_unknown_solver(self, matrix):
        with pytest.raises(ValueError, match="unknown solver"):
            run_solver_experiment(
                "x", matrix, np.ones(matrix.n_rows), "bicgstab", 1
            )

    def test_table_row_shape(self, matrix):
        rec = run_solver_experiment(
            "GMRES", matrix, np.ones(matrix.n_rows), "gmres", 1, m=12, tol=1e-6
        )
        rec.speedup = 1.5
        row = solver_table_row(rec)
        assert len(row) == 8
        assert row[-1] == "1.50"

    def test_speedup_placeholder(self):
        rec = ExperimentRecord(
            label="x", n_gpus=1, converged=True, restarts=1, iterations=1,
            orth_ms=1.0, tsqr_ms=0.0, spmv_ms=1.0, total_ms=2.0,
        )
        assert solver_table_row(rec)[-1] == "-"
