"""Tests for the preconditioning package."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.matrices import poisson2d
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.sparse.csr import csr_from_dense


def badly_scaled_spd(n=100, seed=0):
    """SPD matrix with wildly varying diagonal — Jacobi's sweet spot."""
    rng = np.random.default_rng(seed)
    A = poisson2d(int(np.sqrt(n)))
    scales = np.geomspace(1.0, 1e5, A.n_rows)
    # Symmetric scaling keeps SPD but ruins conditioning.
    return A.scale_rows(scales).scale_cols(scales)


class TestJacobi:
    def test_fold_is_column_scaling(self, rng):
        dense = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        A = csr_from_dense(dense)
        pre = JacobiPreconditioner(A)
        folded = pre.fold(A).to_dense()
        np.testing.assert_allclose(folded, dense / np.diag(dense)[None, :], atol=1e-14)

    def test_fold_preserves_sparsity(self):
        A = poisson2d(6)
        pre = JacobiPreconditioner(A)
        assert pre.fold(A).nnz == A.nnz

    def test_recover_inverts_fold(self, rng):
        dense = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        A = csr_from_dense(dense)
        pre = JacobiPreconditioner(A)
        x_true = rng.standard_normal(5)
        b = dense @ x_true
        y = np.linalg.solve(pre.fold(A).to_dense(), b)
        np.testing.assert_allclose(pre.recover(y), x_true, atol=1e-10)

    def test_zero_diagonal_survives(self):
        A = csr_from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        pre = JacobiPreconditioner(A)
        assert np.all(pre.diagonal == 1.0)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            JacobiPreconditioner(csr_from_dense(np.ones((2, 3))))


class TestBlockJacobi:
    def test_fold_solution_consistency(self, rng):
        dense = rng.standard_normal((12, 12)) + 12 * np.eye(12)
        A = csr_from_dense(dense)
        pre = BlockJacobiPreconditioner(A, block_size=4)
        x_true = rng.standard_normal(12)
        b = dense @ x_true
        y = np.linalg.solve(pre.fold(A).to_dense(), b)
        np.testing.assert_allclose(pre.recover(y), x_true, atol=1e-9)

    def test_fold_matches_dense_formula(self, rng):
        dense = rng.standard_normal((9, 9)) + 9 * np.eye(9)
        A = csr_from_dense(dense)
        pre = BlockJacobiPreconditioner(A, block_size=3)
        Minv = np.zeros((9, 9))
        for b0 in range(0, 9, 3):
            Minv[b0 : b0 + 3, b0 : b0 + 3] = np.linalg.inv(dense[b0 : b0 + 3, b0 : b0 + 3])
        np.testing.assert_allclose(pre.fold(A).to_dense(), dense @ Minv, atol=1e-10)

    def test_ragged_final_block(self, rng):
        dense = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        A = csr_from_dense(dense)
        pre = BlockJacobiPreconditioner(A, block_size=4)  # blocks 4, 4, 2
        assert pre.n_blocks == 3
        y = rng.standard_normal(10)
        x = pre.recover(y)
        assert x.shape == (10,)

    def test_block_size_one_equals_jacobi(self, rng):
        dense = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        A = csr_from_dense(dense)
        bj = BlockJacobiPreconditioner(A, block_size=1)
        jac = JacobiPreconditioner(A)
        np.testing.assert_allclose(
            bj.fold(A).to_dense(), jac.fold(A).to_dense(), atol=1e-12
        )

    def test_singular_block_regularized(self):
        dense = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 2.0], [1.0, 2.0, 3.0]])
        A = csr_from_dense(dense + 1e-30 * np.eye(3))
        pre = BlockJacobiPreconditioner(A, block_size=2)
        # The leading 2x2 block is singular; regularization must cope.
        assert np.all(np.isfinite(pre.recover(np.ones(3))))

    def test_validation(self):
        A = poisson2d(3)
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, block_size=0)
        pre = BlockJacobiPreconditioner(A, block_size=3)
        with pytest.raises(ValueError):
            pre.recover(np.ones(5))
        with pytest.raises(ValueError):
            pre.fold(poisson2d(4))


class TestPreconditionedSolvers:
    def test_gmres_jacobi_reduces_iterations(self):
        A = badly_scaled_spd()
        b = np.ones(A.n_rows)
        plain = gmres(A, b, m=20, tol=1e-8, balance=False, max_restarts=200)
        pre = gmres(
            A, b, m=20, tol=1e-8, balance=False, max_restarts=200,
            preconditioner=JacobiPreconditioner(A),
        )
        assert pre.converged
        assert pre.n_iterations < plain.n_iterations

    def test_gmres_preconditioned_solution_correct(self, rng):
        A = poisson2d(10)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = gmres(
            A, b, m=25, tol=1e-10, max_restarts=100,
            preconditioner=BlockJacobiPreconditioner(A, block_size=10),
        )
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_ca_gmres_with_preconditioner(self, rng):
        A = poisson2d(12)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = ca_gmres(
            A, b, s=6, m=18, tol=1e-10, max_restarts=100,
            preconditioner=BlockJacobiPreconditioner(A, block_size=12),
        )
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_block_jacobi_beats_plain_on_block_structured(self):
        """Block Jacobi accelerates a matrix with strong diagonal blocks."""
        rng = np.random.default_rng(3)
        n, bs = 120, 6
        dense = 0.05 * rng.standard_normal((n, n))
        for b0 in range(0, n, bs):
            block = rng.standard_normal((bs, bs))
            dense[b0 : b0 + bs, b0 : b0 + bs] = block @ block.T + bs * np.eye(bs)
        A = csr_from_dense(dense)
        b = np.ones(n)
        plain = gmres(A, b, m=20, tol=1e-8, balance=False, max_restarts=100)
        pre = gmres(
            A, b, m=20, tol=1e-8, balance=False, max_restarts=100,
            preconditioner=BlockJacobiPreconditioner(A, block_size=bs),
        )
        assert pre.converged
        assert pre.n_iterations < plain.n_iterations

    def test_x0_with_preconditioner_rejected(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="x0 with a preconditioner"):
            gmres(
                A, np.ones(16), m=8, x0=np.zeros(16),
                preconditioner=JacobiPreconditioner(A),
            )
