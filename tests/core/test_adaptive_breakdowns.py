"""Tests for the adaptive_s state machine, CholQR->CAQR fallback counting,
and the early-convergence details contract of ca_gmres."""

import importlib

import numpy as np
import pytest

from repro.core.ca_gmres import _adapt_block_length, ca_gmres

# The package re-exports the ca_gmres *function* under the submodule's name,
# so fetch the module itself for monkeypatching.
ca_mod = importlib.import_module("repro.core.ca_gmres")
from repro.matrices.stencil import poisson2d
from repro.orth.errors import CholeskyBreakdown


def _state(s_eff):
    return {"s_eff": s_eff, "history": []}


class TestAdaptBlockLength:
    def test_shrink_on_breakdown(self):
        state = _state(8)
        R = np.eye(8)  # perfectly conditioned — breakdown must still shrink
        _adapt_block_length(state, R, s_max=8, s_used=8, block_breakdowns=1)
        assert state["s_eff"] == 4
        assert state["history"] == [{"s_used": 8, "diag_ratio": 1.0}]

    def test_shrink_on_diag_ratio(self):
        state = _state(8)
        R = np.diag([1.0, 1e-11])  # ratio 1e11 > 1e10
        _adapt_block_length(state, R, s_max=8, s_used=8, block_breakdowns=0)
        assert state["s_eff"] == 4
        assert state["history"][0]["diag_ratio"] == pytest.approx(1e11)

    def test_shrink_floor_is_two(self):
        state = _state(2)
        _adapt_block_length(state, np.eye(2), s_max=8, s_used=2, block_breakdowns=1)
        assert state["s_eff"] == 2

    def test_regrow_when_healthy(self):
        state = _state(4)
        R = np.eye(4)  # ratio 1.0 < 1e4 — healthy basis
        _adapt_block_length(state, R, s_max=15, s_used=4, block_breakdowns=0)
        assert state["s_eff"] == 6  # ceil(1.5 * 4)

    def test_regrow_capped_at_requested_s(self):
        state = _state(12)
        _adapt_block_length(state, np.eye(12), s_max=15, s_used=12, block_breakdowns=0)
        assert state["s_eff"] == 15  # ceil(1.5*12)=18 capped at s_max

    def test_intermediate_ratio_holds_steady(self):
        state = _state(6)
        R = np.diag([1.0, 1e-6])  # 1e4 <= ratio <= 1e10: no change
        _adapt_block_length(state, R, s_max=15, s_used=6, block_breakdowns=0)
        assert state["s_eff"] == 6

    def test_empty_diag_counts_as_healthy(self):
        state = _state(4)
        _adapt_block_length(
            state, np.zeros((0, 0)), s_max=8, s_used=4, block_breakdowns=0
        )
        assert state["s_eff"] == 6
        assert state["history"][0]["diag_ratio"] == 1.0

    def test_adaptive_solve_records_history(self):
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=4, m=12, basis="monomial", adaptive_s=True,
                     max_restarts=2)
        assert "s_history" in r.details
        assert all(
            {"s_used", "diag_ratio"} <= set(entry)
            for entry in r.details["s_history"]
        )


class TestBreakdownFallback:
    def _patch_cholqr_to_break(self, monkeypatch):
        """Make every CholQR TSQR raise, forcing the CAQR fallback path."""
        real_tsqr = ca_mod.tsqr
        calls = {"cholqr": 0, "caqr": 0}

        def flaky_tsqr(ctx, panels, method="cholqr", variant=None, **kw):
            if method == "cholqr":
                calls["cholqr"] += 1
                raise CholeskyBreakdown("synthetic breakdown")
            calls[method] = calls.get(method, 0) + 1
            return real_tsqr(ctx, panels, method=method, variant=variant, **kw)

        monkeypatch.setattr(ca_mod, "tsqr", flaky_tsqr)
        return calls

    def test_fallback_counts_every_breakdown(self, monkeypatch):
        calls = self._patch_cholqr_to_break(monkeypatch)
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9, basis="monomial", tsqr_method="cholqr",
                     max_restarts=1, tol=1e-12)
        assert calls["cholqr"] > 0
        assert calls["caqr"] == calls["cholqr"]  # one retry per breakdown
        assert r.breakdowns == calls["cholqr"]

    def test_on_breakdown_raise_propagates(self, monkeypatch):
        self._patch_cholqr_to_break(monkeypatch)
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        with pytest.raises(CholeskyBreakdown):
            ca_gmres(A, b, s=3, m=9, basis="monomial", tsqr_method="cholqr",
                     on_breakdown="raise", max_restarts=1)

    def test_no_breakdowns_on_well_conditioned_solve(self):
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9, basis="monomial", max_restarts=2)
        assert r.breakdowns == 0


class TestEarlyConvergenceDetails:
    """A zero (or already-converged) rhs must still honor the documented
    details keys — previously a bare ``{}`` caused KeyError on callers."""

    def test_tsqr_errors_key_present(self):
        A = poisson2d(8)
        b = np.zeros(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9, collect_tsqr_errors=True)
        assert r.converged
        assert r.n_iterations == 0
        assert r.details["tsqr_errors"] == []

    def test_s_history_key_present(self):
        A = poisson2d(8)
        b = np.zeros(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9, adaptive_s=True)
        assert r.converged
        assert r.details["s_history"] == []

    def test_profile_attached_on_early_return(self):
        A = poisson2d(8)
        b = np.zeros(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9)
        assert r.profile is not None

    def test_keys_absent_when_not_requested(self):
        A = poisson2d(8)
        b = np.zeros(A.n_rows)
        r = ca_gmres(A, b, s=3, m=9)
        assert "tsqr_errors" not in r.details
        assert "s_history" not in r.details
