"""Tests for balancing, the Givens least-squares solver, and basis helpers."""

import numpy as np
import pytest

from repro.core.balance import balance_matrix
from repro.core.basis import build_change_of_basis, ritz_values
from repro.core.lsq import GivensHessenbergSolver, hessenberg_lstsq
from repro.matrices import poisson2d
from repro.mpk.shifts import ShiftOp
from repro.sparse.csr import csr_from_dense


class TestBalance:
    def test_row_norms_unit_after_row_scaling(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((8, 8)) * np.geomspace(1, 1e6, 8)[:, None]
        bal = balance_matrix(csr_from_dense(dense))
        # After both scalings, column norms are exactly 1.
        np.testing.assert_allclose(bal.matrix.col_norms(), np.ones(8), atol=1e-12)

    def test_solution_mapping(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        A = csr_from_dense(dense)
        bal = balance_matrix(A)
        x_true = rng.standard_normal(6)
        b = dense @ x_true
        # Solve the balanced system directly and map back.
        y = np.linalg.solve(bal.matrix.to_dense(), bal.scale_rhs(b))
        np.testing.assert_allclose(bal.unscale_solution(y), x_true, atol=1e-10)

    def test_improves_conditioning_of_badly_scaled_matrix(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        scales = np.geomspace(1, 1e8, 10)
        dense = scales[:, None] * base
        A = csr_from_dense(dense)
        bal = balance_matrix(A)
        assert np.linalg.cond(bal.matrix.to_dense()) < np.linalg.cond(dense) / 1e3

    def test_zero_row_kept_invertible_transform(self):
        dense = np.array([[1.0, 0.0], [0.0, 0.0]])
        bal = balance_matrix(csr_from_dense(dense))
        assert bal.row_scale[1] == 1.0

    def test_requires_square(self):
        with pytest.raises(ValueError):
            balance_matrix(csr_from_dense(np.ones((2, 3))))


class TestGivensSolver:
    def arnoldi(self, A_dense, b, m):
        """Reference Arnoldi: returns H ((m+1) x m) and beta."""
        n = A_dense.shape[0]
        beta = np.linalg.norm(b)
        Q = np.zeros((n, m + 1))
        Q[:, 0] = b / beta
        H = np.zeros((m + 1, m))
        for j in range(m):
            w = A_dense @ Q[:, j]
            for i in range(j + 1):
                H[i, j] = Q[:, i] @ w
                w -= H[i, j] * Q[:, i]
            H[j + 1, j] = np.linalg.norm(w)
            Q[:, j + 1] = w / H[j + 1, j]
        return H, beta

    def test_matches_numpy_lstsq(self, rng):
        A = rng.standard_normal((12, 12)) + 12 * np.eye(12)
        b = rng.standard_normal(12)
        H, beta = self.arnoldi(A, b, 6)
        solver = GivensHessenbergSolver(6, beta)
        for j in range(6):
            solver.append_column(H[: j + 2, j])
        y = solver.solve()
        rhs = np.zeros(7)
        rhs[0] = beta
        y_ref, *_ = np.linalg.lstsq(H, rhs, rcond=None)
        np.testing.assert_allclose(y, y_ref, atol=1e-10)

    def test_residual_estimate_matches_true_lsq_residual(self, rng):
        A = rng.standard_normal((10, 10)) + 10 * np.eye(10)
        b = rng.standard_normal(10)
        H, beta = self.arnoldi(A, b, 5)
        solver = GivensHessenbergSolver(5, beta)
        for j in range(5):
            est = solver.append_column(H[: j + 2, j])
            rhs = np.zeros(j + 2)
            rhs[0] = beta
            _, res, *_ = np.linalg.lstsq(H[: j + 2, : j + 1], rhs, rcond=None)
            true = np.sqrt(res[0]) if res.size else np.linalg.norm(
                rhs - H[: j + 2, : j + 1] @ np.linalg.lstsq(
                    H[: j + 2, : j + 1], rhs, rcond=None
                )[0]
            )
            assert est == pytest.approx(true, rel=1e-8, abs=1e-12)

    def test_overfill_raises(self):
        solver = GivensHessenbergSolver(1, 1.0)
        solver.append_column(np.array([1.0, 0.5]))
        with pytest.raises(RuntimeError, match="full"):
            solver.append_column(np.array([1.0, 0.5, 0.1]))

    def test_wrong_column_length(self):
        solver = GivensHessenbergSolver(3, 1.0)
        with pytest.raises(ValueError):
            solver.append_column(np.array([1.0, 2.0, 3.0]))

    def test_empty_solve(self):
        solver = GivensHessenbergSolver(3, 2.0)
        assert solver.solve().size == 0
        assert solver.residual_norm == pytest.approx(2.0)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GivensHessenbergSolver(0, 1.0)


class TestHessenbergLstsq:
    def test_matches_numpy(self, rng):
        t = 7
        H = np.triu(rng.standard_normal((t + 1, t)), k=-1)
        H[:t, :t] += np.diag(np.full(t, 5.0))  # well conditioned
        beta = 2.5
        y, res = hessenberg_lstsq(H, beta)
        rhs = np.zeros(t + 1)
        rhs[0] = beta
        y_ref, *_ = np.linalg.lstsq(H, rhs, rcond=None)
        np.testing.assert_allclose(y, y_ref, atol=1e-10)
        assert res == pytest.approx(np.linalg.norm(rhs - H @ y_ref), abs=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            hessenberg_lstsq(np.zeros((3, 3)), 1.0)


class TestChangeOfBasis:
    def test_monomial(self):
        B = build_change_of_basis([ShiftOp("none")] * 3)
        expected = np.zeros((4, 3))
        expected[1, 0] = expected[2, 1] = expected[3, 2] = 1.0
        np.testing.assert_array_equal(B, expected)

    def test_real_shifts(self):
        B = build_change_of_basis([ShiftOp("real", re=2.0), ShiftOp("real", re=-1.0)])
        assert B[0, 0] == 2.0 and B[1, 1] == -1.0
        assert B[1, 0] == 1.0 and B[2, 1] == 1.0

    def test_complex_pair(self):
        ops = [
            ShiftOp("complex_first", re=1.0, im=2.0),
            ShiftOp("complex_second", re=1.0, im=2.0),
        ]
        B = build_change_of_basis(ops)
        assert B[0, 1] == pytest.approx(-4.0)  # -(Im theta)^2
        assert B[0, 0] == B[1, 1] == 1.0

    def test_krylov_relation_holds(self, rng):
        """A [v0 w1] = [v0 w1 w2] B for MPK-generated vectors."""
        A = poisson2d(5)
        dense = A.to_dense()
        ops = [ShiftOp("real", re=1.3), ShiftOp("real", re=-0.4)]
        B = build_change_of_basis(ops)
        v0 = rng.standard_normal(A.n_rows)
        w1 = dense @ v0 - 1.3 * v0
        w2 = dense @ w1 + 0.4 * w1
        W = np.column_stack([v0, w1, w2])
        np.testing.assert_allclose(dense @ W[:, :2], W @ B, atol=1e-10)

    def test_complex_second_first_rejected(self):
        with pytest.raises(ValueError):
            build_change_of_basis([ShiftOp("complex_second", re=1.0, im=1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_change_of_basis([])


class TestRitzValues:
    def test_symmetric_matrix_eigenvalues(self, rng):
        M = rng.standard_normal((5, 5))
        H = M + M.T
        np.testing.assert_allclose(
            np.sort(ritz_values(H).real), np.sort(np.linalg.eigvalsh(H)), atol=1e-10
        )

    def test_empty(self):
        assert ritz_values(np.zeros((0, 0))).size == 0

    def test_requires_square(self):
        with pytest.raises(ValueError):
            ritz_values(np.zeros((3, 2)))
