"""Tests for the CA-Arnoldi eigenvalue estimator."""

import numpy as np
import pytest

from repro.core.arnoldi import host_ritz_values
from repro.core.eigen import ca_arnoldi_eigs
from repro.matrices import convection_diffusion2d, poisson2d
from repro.sparse.csr import csr_from_dense


class TestCaArnoldiEigs:
    def test_diagonal_matrix_exact(self):
        values = np.array([9.0, 6.0, 4.0, 2.5, 1.0, 0.5])
        A = csr_from_dense(np.diag(values))
        res = ca_arnoldi_eigs(A, s=3, m=6, seed=1)
        np.testing.assert_allclose(
            np.sort(res.ritz_values.real), np.sort(values), atol=1e-8
        )

    def test_dominant_eigenvalue_of_poisson(self):
        A = poisson2d(12)
        res = ca_arnoldi_eigs(A, s=10, m=30, seed=2)
        exact_max = np.linalg.eigvalsh(A.to_dense()).max()
        assert res.ritz_values[0].real == pytest.approx(exact_max, rel=1e-3)

    @pytest.mark.parametrize("n_gpus", [1, 3])
    def test_matches_host_arnoldi_extremes(self, n_gpus):
        """CA blocks span the same Krylov space as sequential Arnoldi."""
        A = convection_diffusion2d(10)
        m = 20
        ca = ca_arnoldi_eigs(A, n_gpus=n_gpus, s=5, m=m, seed=7)
        seq = host_ritz_values(A, m, seed=7)
        # Extreme Ritz values converge first; compare the dominant few.
        ca_top = np.sort(np.abs(ca.ritz_values))[::-1][:3]
        seq_top = np.sort(np.abs(seq))[::-1][:3]
        np.testing.assert_allclose(ca_top, seq_top, rtol=1e-6)

    def test_residual_estimates_flag_converged_pairs(self):
        A = csr_from_dense(np.diag([10.0, 3.0, 2.0, 1.0, 0.5]))
        res = ca_arnoldi_eigs(A, s=5, m=5, seed=3)
        # Full-dimension factorization: residuals small (limited by the
        # monomial basis's conditioning, not exactly zero), Ritz values
        # accurate, and the dominant pair is the most converged.
        assert np.all(res.residuals < 1e-2)
        assert res.residuals[0] < 1e-5
        np.testing.assert_allclose(
            np.sort(res.ritz_values.real), [0.5, 1.0, 2.0, 3.0, 10.0], atol=1e-5
        )

    def test_newton_shifts_accepted(self):
        A = poisson2d(10)
        seed_run = ca_arnoldi_eigs(A, s=5, m=15, seed=4)
        refined = ca_arnoldi_eigs(
            A, s=10, m=20, shifts=seed_run.ritz_values, seed=4
        )
        exact_max = np.linalg.eigvalsh(A.to_dense()).max()
        assert refined.ritz_values[0].real == pytest.approx(exact_max, rel=1e-3)

    def test_communication_scales_with_blocks_not_vectors(self):
        A = poisson2d(12)
        res_blocked = ca_arnoldi_eigs(A, n_gpus=2, s=10, m=20, seed=5)
        res_vector = ca_arnoldi_eigs(A, n_gpus=2, s=1, m=20, seed=5)
        blocked_msgs = (
            res_blocked.counters["d2h_messages"]
            + res_blocked.counters["h2d_messages"]
        )
        vector_msgs = (
            res_vector.counters["d2h_messages"]
            + res_vector.counters["h2d_messages"]
        )
        assert blocked_msgs < vector_msgs / 2

    def test_timers_present(self):
        A = poisson2d(8)
        res = ca_arnoldi_eigs(A, s=4, m=8)
        for key in ("mpk", "borth", "tsqr"):
            assert res.timers.get(key, 0.0) > 0.0

    def test_validation(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="square"):
            ca_arnoldi_eigs(csr_from_dense(np.ones((2, 3))))
        with pytest.raises(ValueError, match="need 1 <= s"):
            ca_arnoldi_eigs(A, s=0, m=4)
        with pytest.raises(ValueError, match="need 1 <= s"):
            ca_arnoldi_eigs(A, s=5, m=4)
        with pytest.raises(ValueError, match="v0"):
            ca_arnoldi_eigs(A, s=2, m=4, v0=np.ones(5))
        with pytest.raises(ValueError, match="zero"):
            ca_arnoldi_eigs(A, s=2, m=4, v0=np.zeros(16))
