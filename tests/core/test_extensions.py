"""Tests for the paper's extension features (Section VII future work).

* adaptive block length (``adaptive_s``) — their "adaptive schemes ... to
  adjust input parameters (m and s)";
* mixed-precision CholQR Gram product (``tsqr_variant="batched_sp"``) —
  their ref. [23].
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.gpu.context import MultiGpuContext
from repro.matrices import poisson2d
from repro.matrices.random_sparse import well_conditioned_tall_skinny
from repro.orth.tsqr import tsqr

from ..conftest import gather_multivector, make_dist_multivector


class TestAdaptiveS:
    def test_halves_s_after_breakdown(self):
        A = poisson2d(18)
        b = np.ones(A.n_rows)
        r = ca_gmres(
            A, b, s=30, m=30, basis="monomial", tsqr_method="cholqr",
            tol=1e-8, max_restarts=25, adaptive_s=True,
        )
        assert r.converged
        history = r.details["s_history"]
        assert history[0]["s_used"] == 30
        assert any(h["s_used"] < 30 for h in history)

    def test_grows_back_when_healthy(self):
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        r = ca_gmres(
            A, b, s=12, m=24, basis="newton", tsqr_method="cholqr",
            tol=1e-10, max_restarts=30, adaptive_s=True,
        )
        assert r.converged
        used = [h["s_used"] for h in r.details["s_history"]]
        # A healthy Newton basis keeps (or regains) the requested length.
        assert max(used) == 12

    def test_history_absent_when_disabled(self):
        A = poisson2d(10)
        r = ca_gmres(A, np.ones(A.n_rows), s=5, m=10, tol=1e-6)
        assert "s_history" not in r.details

    def test_adaptive_still_correct(self, rng):
        A = poisson2d(14)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = ca_gmres(
            A, b, s=14, m=28, basis="monomial", tol=1e-10,
            max_restarts=40, adaptive_s=True,
        )
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)


class TestMixedPrecisionCholQR:
    def test_single_precision_gram_accuracy(self, rng, ctx1):
        """The fp32 Gram limits orthogonality to ~sqrt(eps_single)*kappa."""
        V = well_conditioned_tall_skinny(2000, 8, condition=10.0, seed=1)
        mv, _ = make_dist_multivector(ctx1, V.copy())
        R = tsqr(ctx1, mv.panel(0, 8), method="cholqr", variant="batched_sp")
        Q = gather_multivector(mv)
        err = np.linalg.norm(np.eye(8) - Q.T @ Q)
        # Far worse than double precision, far better than garbage.
        assert 1e-9 < err < 1e-2
        # The factorization is still consistent at fp32 level.
        assert np.linalg.norm(Q @ R - V) / np.linalg.norm(V) < 1e-4

    def test_double_precision_reference_much_tighter(self, rng, ctx1):
        V = well_conditioned_tall_skinny(2000, 8, condition=10.0, seed=1)
        mv, _ = make_dist_multivector(ctx1, V.copy())
        tsqr(ctx1, mv.panel(0, 8), method="cholqr", variant="batched")
        Q = gather_multivector(mv)
        assert np.linalg.norm(np.eye(8) - Q.T @ Q) < 1e-12

    def test_sp_gram_faster_in_model(self):
        ctx = MultiGpuContext(1)
        t_dp = ctx.perf.gpu_time("gemm_tn", "batched", n=500_000, k=30, j=30)
        t_sp = ctx.perf.gpu_time("gemm_tn", "batched_sp", n=500_000, k=30, j=30)
        assert t_sp < 0.7 * t_dp

    def test_solver_with_sp_gram_converges(self):
        A = poisson2d(14)
        b = np.ones(A.n_rows)
        r = ca_gmres(
            A, b, s=7, m=14, basis="newton", tsqr_method="cholqr",
            tsqr_variant="batched_sp", tol=1e-6, max_restarts=30,
        )
        assert r.converged
