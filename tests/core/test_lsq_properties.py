"""Property-based tests (hypothesis) for least squares and balancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.balance import balance_matrix
from repro.core.lsq import GivensHessenbergSolver, hessenberg_lstsq
from repro.sparse.csr import csr_from_dense


@st.composite
def hessenberg_problems(draw):
    t = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    H = np.triu(rng.standard_normal((t + 1, t)), k=-1)
    # Keep it comfortably full rank.
    H[:t, :t] += np.diag(np.sign(np.diag(H[:t, :t]) + 0.5) * (3.0 + np.arange(t)))
    beta = float(draw(st.floats(0.1, 100.0)))
    return H, beta


@settings(max_examples=50, deadline=None)
@given(hessenberg_problems())
def test_hessenberg_lstsq_matches_numpy(problem):
    H, beta = problem
    t = H.shape[1]
    y, res = hessenberg_lstsq(H, beta)
    rhs = np.zeros(t + 1)
    rhs[0] = beta
    y_ref, *_ = np.linalg.lstsq(H, rhs, rcond=None)
    np.testing.assert_allclose(y, y_ref, atol=1e-8, rtol=1e-6)
    assert res == pytest.approx(np.linalg.norm(rhs - H @ y_ref), abs=1e-8)


@settings(max_examples=50, deadline=None)
@given(hessenberg_problems())
def test_incremental_equals_batch(problem):
    """Feeding columns one at a time == solving the full problem."""
    H, beta = problem
    t = H.shape[1]
    solver = GivensHessenbergSolver(t, beta)
    for j in range(t):
        solver.append_column(H[: j + 2, j])
    y_inc = solver.solve()
    y_batch, _ = hessenberg_lstsq(H, beta)
    np.testing.assert_allclose(y_inc, y_batch, atol=1e-10, rtol=1e-8)


@settings(max_examples=50, deadline=None)
@given(hessenberg_problems())
def test_residual_estimates_monotone(problem):
    """The Givens residual never increases as columns are added."""
    H, beta = problem
    t = H.shape[1]
    solver = GivensHessenbergSolver(t, beta)
    last = beta
    for j in range(t):
        est = solver.append_column(H[: j + 2, j])
        assert est <= last + 1e-9 * beta
        last = est


@st.composite
def square_matrices(draw):
    n = draw(st.integers(2, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense += np.diag(np.sign(np.diag(dense)) * n)
    # Optionally apply brutal row scaling.
    if draw(st.booleans()):
        dense *= np.geomspace(1.0, 1e8, n)[:, None]
    return dense


@settings(max_examples=50, deadline=None)
@given(square_matrices(), st.integers(0, 2**31 - 1))
def test_balance_preserves_solutions(dense, seed):
    """Solving the balanced system and unscaling == solving the original."""
    A = csr_from_dense(dense)
    bal = balance_matrix(A)
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(dense.shape[0])
    b = dense @ x_true
    y = np.linalg.solve(bal.matrix.to_dense(), bal.scale_rhs(b))
    x = bal.unscale_solution(y)
    np.testing.assert_allclose(x, x_true, rtol=1e-5, atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(square_matrices())
def test_balance_column_norms_unit(dense):
    A = csr_from_dense(dense)
    bal = balance_matrix(A)
    norms = bal.matrix.col_norms()
    nonzero = norms > 0
    np.testing.assert_allclose(norms[nonzero], 1.0, atol=1e-12)
