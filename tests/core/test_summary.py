"""Tests for SolveResult.summary()."""

import numpy as np

from repro.core.gmres import gmres
from repro.matrices import poisson2d


class TestSummary:
    def test_contains_key_facts(self):
        A = poisson2d(10)
        r = gmres(A, np.ones(A.n_rows), n_gpus=2, m=15, tol=1e-6)
        text = r.summary()
        assert "converged      : True" in text
        assert f"restarts       : {r.n_restarts}" in text
        assert "simulated time" in text
        assert "PCIe messages" in text
        assert "spmv=" in text

    def test_relative_residual_line(self):
        A = poisson2d(8)
        r = gmres(A, np.ones(A.n_rows), m=12, tol=1e-6)
        assert "rel. residual" in r.summary()

    def test_breakdown_line_only_when_present(self):
        from repro.core.convergence import ConvergenceHistory, SolveResult

        base = dict(
            x=np.zeros(2), converged=True, n_restarts=1, n_iterations=1,
            history=ConvergenceHistory(), timers={}, counters={},
        )
        assert "breakdowns" not in SolveResult(**base).summary()
        assert "breakdowns     : 3" in SolveResult(**base, breakdowns=3).summary()
