"""Cross-module integration tests: the paper's qualitative claims.

Each test exercises one end-to-end claim from the paper's evaluation with
the full stack (matrix generator -> partitioner -> MPK -> orth -> solver ->
performance model).
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.matrices import cant, convection_diffusion2d, g3_circuit, poisson2d
from repro.order import kway_partition


def residual(A, b, x):
    return np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b)


class TestSolversAgree:
    """GMRES and CA-GMRES compute the same Krylov iterates."""

    def test_same_solution_well_conditioned(self):
        A = convection_diffusion2d(16)
        b = np.ones(A.n_rows)
        r_g = gmres(A, b, m=20, tol=1e-10, max_restarts=60)
        r_ca = ca_gmres(A, b, s=10, m=20, tol=1e-10, max_restarts=60)
        assert r_g.converged and r_ca.converged
        np.testing.assert_allclose(r_g.x, r_ca.x, atol=1e-7)

    def test_device_count_does_not_change_mathematics(self):
        A = poisson2d(14)
        b = np.ones(A.n_rows)
        results = [
            ca_gmres(A, b, n_gpus=g, s=7, m=14, tol=1e-8) for g in (1, 2, 3)
        ]
        for r in results:
            assert r.converged
        assert len({r.n_iterations for r in results}) == 1
        np.testing.assert_allclose(results[0].x, results[2].x, atol=1e-9)


class TestCommunicationAvoidance:
    """Section VI: CA-GMRES communicates far less than GMRES per cycle."""

    def test_fewer_messages_per_cycle(self):
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        r_g = gmres(A, b, n_gpus=3, m=20, tol=1e-14, max_restarts=1)
        r_ca = ca_gmres(
            A, b, n_gpus=3, s=10, m=20, tol=1e-14, max_restarts=2,
            basis="monomial",
        )
        msg_g = r_g.counters["d2h_messages"] + r_g.counters["h2d_messages"]
        msg_ca = r_ca.counters["d2h_messages"] + r_ca.counters["h2d_messages"]
        cycles_g = max(r_g.n_restarts, 1)
        cycles_ca = max(r_ca.n_restarts, 1)
        assert msg_ca / cycles_ca < 0.5 * (msg_g / cycles_g)

    def test_orth_time_speedup_on_large_problem(self):
        """Fig. 14: BOrth+TSQR beats per-vector Orth by ~2-4x."""
        A = cant(nx=96, ny=16, nz=16)
        b = np.ones(A.n_rows)
        r_g = gmres(A, b, n_gpus=3, m=30, tol=1e-14, max_restarts=1)
        r_ca = ca_gmres(
            A, b, n_gpus=3, s=10, m=30, tol=1e-14, max_restarts=2,
            basis="monomial", tsqr_method="cholqr",
        )
        orth_g = r_g.timers["orth"] / max(r_g.n_restarts, 1)
        orth_ca = (
            r_ca.timers.get("borth", 0.0) + r_ca.timers.get("tsqr", 0.0)
        ) / max(r_ca.n_restarts, 1)
        assert orth_ca < orth_g / 1.5

    def test_ca_gmres_total_speedup(self):
        """The headline: CA-GMRES beats GMRES per restart loop."""
        A = cant(nx=96, ny=16, nz=16)
        b = np.ones(A.n_rows)
        r_g = gmres(A, b, n_gpus=3, m=30, tol=1e-14, max_restarts=1)
        r_ca = ca_gmres(
            A, b, n_gpus=3, s=10, m=30, tol=1e-14, max_restarts=2,
            basis="monomial",
        )
        assert r_ca.time_per_restart() < r_g.time_per_restart()

    def test_s1_ca_gmres_slower_than_gmres(self):
        """Fig. 14's first observation: CA-GMRES(1, m) is *slower* than
        GMRES because the block kernels degenerate."""
        A = poisson2d(24)
        b = np.ones(A.n_rows)
        r_g = gmres(A, b, n_gpus=2, m=20, tol=1e-14, max_restarts=1)
        r_ca = ca_gmres(
            A, b, n_gpus=2, s=1, m=20, tol=1e-14, max_restarts=2,
            basis="monomial",
        )
        assert r_ca.time_per_restart() > r_g.time_per_restart()


class TestNumericalStabilityStory:
    """Fig. 13 / Section VI-A inside the full solver."""

    def test_newton_basis_survives_larger_s_than_monomial(self):
        """With s = m = 30 the monomial basis condition number explodes;
        Newton + Leja keeps CholQR viable (fewer breakdowns)."""
        A = poisson2d(18)
        b = np.ones(A.n_rows)
        r_mono = ca_gmres(
            A, b, s=30, m=30, basis="monomial", tsqr_method="cholqr",
            tol=1e-8, max_restarts=25, on_breakdown="fallback",
        )
        r_newton = ca_gmres(
            A, b, s=30, m=30, basis="newton", tsqr_method="cholqr",
            tol=1e-8, max_restarts=25, on_breakdown="fallback",
        )
        assert r_newton.breakdowns <= r_mono.breakdowns
        assert r_newton.converged

    def test_tsqr_error_ordering_in_solver(self):
        """Orthogonality errors inside CA-GMRES: CAQR <= MGS <= CholQR."""
        A = g3_circuit(nx=32, ny=32)
        b = np.ones(A.n_rows)
        errs = {}
        for method in ("caqr", "mgs", "cholqr"):
            r = ca_gmres(
                A, b, s=10, m=20, tsqr_method=method, basis="newton",
                tol=1e-6, max_restarts=6, collect_tsqr_errors=True,
            )
            records = r.details["tsqr_errors"]
            errs[method] = max(e["orthogonality"] for e in records)
        assert errs["caqr"] <= errs["mgs"] * 10  # caqr at machine precision
        assert errs["caqr"] <= errs["cholqr"]

    def test_gram_condition_number_grows_with_s(self):
        """Fig. 12's kappa(B): the last Gram matrix of a cycle is worse for
        larger s (squared condition of an increasingly ill-conditioned
        basis)."""
        from repro.dist.multivector import DistMultiVector
        from repro.gpu.context import MultiGpuContext
        from repro.mpk.matrix_powers import MatrixPowersKernel
        from repro.order.partition import block_row_partition

        A = poisson2d(16)
        n = A.n_rows
        rng = np.random.default_rng(0)
        v0 = rng.standard_normal(n)
        conds = []
        for s in (4, 12):
            ctx = MultiGpuContext(1)
            part = block_row_partition(n, 1)
            mpk = MatrixPowersKernel(ctx, A, part, s)
            V = DistMultiVector(ctx, part, s + 1)
            V.set_column_from_host(0, v0 / np.linalg.norm(v0))
            mpk.run(V, 0)
            panel = V.local[0].data
            gram = panel.T @ panel
            conds.append(np.linalg.cond(gram))
        assert conds[1] > 1e3 * conds[0]
