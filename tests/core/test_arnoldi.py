"""Tests for the host-side Arnoldi process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arnoldi import host_arnoldi, host_ritz_values
from repro.matrices import poisson2d
from repro.sparse.csr import csr_from_dense, eye_csr


class TestHostArnoldi:
    def test_arnoldi_relation(self, rng):
        A = poisson2d(8)
        Q, H = host_arnoldi(A, 10, seed=1)
        k = H.shape[1]
        AQ = np.column_stack([A.matvec(Q[:, j]) for j in range(k)])
        np.testing.assert_allclose(AQ, Q @ H, atol=1e-10)

    def test_q_orthonormal(self):
        A = poisson2d(8)
        Q, H = host_arnoldi(A, 12, seed=2)
        np.testing.assert_allclose(
            Q.T @ Q, np.eye(Q.shape[1]), atol=1e-10
        )

    def test_h_upper_hessenberg(self):
        A = poisson2d(6)
        _, H = host_arnoldi(A, 8)
        k = H.shape[1]
        for j in range(k):
            np.testing.assert_allclose(H[j + 2 :, j], 0.0, atol=0)

    def test_invariant_subspace_early_exit(self):
        A = eye_csr(6, 3.0)
        Q, H = host_arnoldi(A, 5, seed=0)
        # A = 3I: the Krylov space is 1-dimensional.
        assert H.shape == (1, 1)
        assert H[0, 0] == pytest.approx(3.0)

    def test_custom_start_vector(self):
        A = poisson2d(5)
        v0 = np.ones(A.n_rows)
        Q, _ = host_arnoldi(A, 4, v0=v0)
        np.testing.assert_allclose(
            Q[:, 0], v0 / np.linalg.norm(v0), atol=1e-14
        )

    def test_validation(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="square"):
            host_arnoldi(csr_from_dense(np.ones((2, 3))), 2)
        with pytest.raises(ValueError, match="m must be"):
            host_arnoldi(A, 0)
        with pytest.raises(ValueError, match="shape"):
            host_arnoldi(A, 3, v0=np.ones(5))
        with pytest.raises(ValueError, match="zero"):
            host_arnoldi(A, 3, v0=np.zeros(16))

    def test_ritz_values_symmetric_within_field(self):
        """Ritz values of an SPD matrix lie inside its spectrum."""
        A = poisson2d(8)
        ritz = host_ritz_values(A, 15)
        eigs = np.linalg.eigvalsh(A.to_dense())
        assert np.all(np.abs(ritz.imag) < 1e-8)
        assert ritz.real.min() >= eigs.min() - 1e-8
        assert ritz.real.max() <= eigs.max() + 1e-8


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 12), st.integers(0, 2**31 - 1))
def test_arnoldi_property_relation_and_orthogonality(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) + n * np.eye(n)
    A = csr_from_dense(dense)
    m = min(n - 1, 6)
    Q, H = host_arnoldi(A, m, seed=seed)
    k = H.shape[1]
    np.testing.assert_allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-8)
    AQ = dense @ Q[:, :k]
    np.testing.assert_allclose(AQ, Q @ H, atol=1e-7 * max(1, np.abs(dense).max()))
