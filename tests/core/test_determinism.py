"""Determinism regressions: same inputs, same seeds — bit-identical runs.

The simulated machine has no real concurrency, so every solve — numerics,
modeled clocks, trace stream, and any injected fault schedule — must be a
pure function of its inputs.  These tests pin that property; a failure
here usually means someone introduced iteration over an unordered
container, wall-clock time, or an unseeded RNG into the hot path.
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.faults import FaultPlan
from repro.gpu.context import MultiGpuContext
from repro.matrices.stencil import poisson2d


def solve(solver, n_gpus, fault_plan=None):
    A = poisson2d(12)
    b = np.ones(A.n_rows)
    ctx = MultiGpuContext(n_gpus, fault_plan=fault_plan)
    kwargs = dict(ctx=ctx, m=10, tol=1e-8, max_restarts=30)
    if solver is ca_gmres:
        kwargs.update(s=5, m=15)
    with np.errstate(invalid="ignore", over="ignore"):
        result = solver(A, b, **kwargs)
    return result, ctx


def event_stream(ctx):
    return [
        (e.lane, e.kind, e.name, e.start, e.duration)
        for e in ctx.trace.events
    ]


def assert_identical(a, b):
    ra, ca = a
    rb, cb = b
    np.testing.assert_array_equal(ra.x, rb.x)
    assert ra.converged == rb.converged
    assert ra.n_iterations == rb.n_iterations
    assert ra.history.estimates == rb.history.estimates
    assert ra.history.true_residuals == rb.history.true_residuals
    assert ra.timers == rb.timers
    assert ra.total_time == rb.total_time
    assert event_stream(ca) == event_stream(cb)


@pytest.mark.parametrize("solver", [gmres, ca_gmres], ids=["gmres", "ca_gmres"])
@pytest.mark.parametrize("n_gpus", [1, 2, 3])
class TestSolverDeterminism:
    def test_repeat_run_bit_identical(self, solver, n_gpus):
        assert_identical(solve(solver, n_gpus), solve(solver, n_gpus))

    def test_repeat_run_with_faults_bit_identical(self, solver, n_gpus):
        plan = FaultPlan.from_rate(17, 2e-3)
        a = solve(solver, n_gpus, fault_plan=plan)
        b = solve(solver, n_gpus, fault_plan=plan)
        assert_identical(a, b)
        assert a[1].faults.schedule() == b[1].faults.schedule()


class TestFaultScheduleDeterminism:
    def test_same_seed_plan_reproduces_schedule_across_solvers(self):
        # The schedule depends on the opportunity stream (i.e. the solver),
        # but for a fixed solver it is a pure function of the plan seed.
        _, ca = solve(ca_gmres, 2, fault_plan=FaultPlan.from_rate(5, 3e-3))
        _, cb = solve(ca_gmres, 2, fault_plan=FaultPlan.from_rate(5, 3e-3))
        assert ca.faults.schedule() == cb.faults.schedule()
        assert len(ca.faults.schedule()) > 0

    def test_different_seed_different_schedule(self):
        _, ca = solve(ca_gmres, 2, fault_plan=FaultPlan.from_rate(5, 3e-3))
        _, cb = solve(ca_gmres, 2, fault_plan=FaultPlan.from_rate(6, 3e-3))
        assert ca.faults.schedule() != cb.faults.schedule()
