"""Tests for the standard GMRES driver."""

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.gpu.context import MultiGpuContext
from repro.matrices import convection_diffusion2d, poisson2d
from repro.matrices.random_sparse import random_sparse
from repro.order import kway_partition


def residual(A, b, x):
    return np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b)


class TestGmresConvergence:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    def test_poisson(self, n_gpus):
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        r = gmres(A, b, n_gpus=n_gpus, m=30, tol=1e-6)
        assert r.converged
        assert residual(A, b, r.x) < 1e-5

    def test_nonsymmetric(self):
        A = convection_diffusion2d(16, wind=(2.0, -1.0))
        b = np.ones(A.n_rows)
        r = gmres(A, b, m=25, tol=1e-8)
        assert r.converged
        assert residual(A, b, r.x) < 1e-7

    def test_diagonally_dominant_random(self, rng):
        A = random_sparse(200, 6.0, seed=5)
        b = rng.standard_normal(200)
        r = gmres(A, b, n_gpus=2, m=20, tol=1e-8)
        assert r.converged
        assert residual(A, b, r.x) < 1e-7

    @pytest.mark.parametrize("orth_method", ["cgs", "mgs"])
    def test_orth_methods_converge(self, orth_method):
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r = gmres(A, b, m=20, tol=1e-6, orth_method=orth_method)
        assert r.converged

    def test_kway_partition(self):
        A = poisson2d(14)
        part = kway_partition(A, 3)
        b = np.ones(A.n_rows)
        r = gmres(A, b, n_gpus=3, partition=part, m=25, tol=1e-6)
        assert r.converged
        assert residual(A, b, r.x) < 1e-5

    def test_x0_initial_guess(self, rng):
        A = poisson2d(10)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        # Start close to the solution: should converge in one cycle.
        x0 = x_true + 1e-6 * rng.standard_normal(A.n_rows)
        r = gmres(A, b, m=20, tol=1e-4, x0=x0)
        assert r.converged
        assert r.n_restarts == 1

    def test_exact_initial_guess(self, rng):
        A = poisson2d(8)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = gmres(A, b, m=10, x0=x_true)
        assert r.converged
        assert r.n_iterations == 0

    def test_balance_helps_badly_scaled_system(self, rng):
        A = poisson2d(10)
        scales = np.geomspace(1.0, 1e7, A.n_rows)
        A_scaled = A.scale_rows(scales)
        x_true = rng.standard_normal(A.n_rows)
        b = A_scaled.matvec(x_true)
        r_bal = gmres(A_scaled, b, m=30, tol=1e-8, balance=True, max_restarts=50)
        assert r_bal.converged
        np.testing.assert_allclose(r_bal.x, x_true, atol=1e-4)

    def test_max_restarts_respected(self):
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        r = gmres(A, b, m=5, tol=1e-14, max_restarts=2)
        assert not r.converged
        assert r.n_restarts == 2


class TestGmresBookkeeping:
    def test_timers_populated(self):
        A = poisson2d(10)
        r = gmres(A, np.ones(A.n_rows), m=10, tol=1e-6)
        for key in ("spmv", "orth", "update"):
            assert r.timers.get(key, 0.0) > 0.0
        # The host-side least squares overlaps device work under the
        # max-clock accounting; its bucket exists but may be ~0.
        assert "lsq" in r.timers

    def test_history_recorded(self):
        A = poisson2d(10)
        r = gmres(A, np.ones(A.n_rows), m=10, tol=1e-6)
        assert r.history.initial_residual > 0
        assert len(r.history.estimates) == r.n_iterations
        assert len(r.history.true_residuals) == r.n_restarts
        # Relative true residuals end below tolerance.
        assert r.history.relative()[-1] <= 1e-6

    def test_estimates_monotone_within_cycle(self):
        A = poisson2d(10)
        r = gmres(A, np.ones(A.n_rows), m=30, tol=1e-10, max_restarts=1)
        ests = [e for _, e in r.history.estimates]
        assert all(a >= b - 1e-12 for a, b in zip(ests, ests[1:]))

    def test_counters_snapshot(self):
        A = poisson2d(8)
        r = gmres(A, np.ones(A.n_rows), n_gpus=2, m=10, tol=1e-6)
        assert r.counters["d2h_messages"] > 0
        assert r.counters["kernel_launches"] > 0

    def test_more_gpus_reduce_per_restart_time(self):
        """Fig. 3: GMRES scales (time per restart drops) with GPU count —
        once the per-device work is large enough to beat PCIe latency."""
        from repro.matrices import cant

        A = cant(nx=96, ny=16, nz=16)  # ~2.4M nnz: bandwidth-dominated
        b = np.ones(A.n_rows)
        t1 = gmres(
            A, b, n_gpus=1, m=30, tol=1e-12, max_restarts=1
        ).time_per_restart()
        t3 = gmres(
            A, b, n_gpus=3, m=30, tol=1e-12, max_restarts=1
        ).time_per_restart()
        assert t3 < t1

    def test_result_total_time(self):
        A = poisson2d(8)
        r = gmres(A, np.ones(A.n_rows), m=10, tol=1e-6)
        assert r.total_time == pytest.approx(sum(r.timers.values()))


class TestGmresValidation:
    def test_rectangular_rejected(self):
        from repro.sparse.csr import csr_from_dense

        A = csr_from_dense(np.ones((3, 4)))
        with pytest.raises(ValueError, match="square"):
            gmres(A, np.ones(3))

    def test_wrong_b_shape(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="b must have shape"):
            gmres(A, np.ones(5))

    def test_bad_m(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="restart length"):
            gmres(A, np.ones(16), m=0)
        with pytest.raises(ValueError):
            gmres(A, np.ones(16), m=17)

    def test_zero_rhs_trivially_converged(self):
        A = poisson2d(4)
        r = gmres(A, np.zeros(16), m=8)
        assert r.converged
        np.testing.assert_array_equal(r.x, np.zeros(16))
