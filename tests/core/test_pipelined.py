"""Tests for pipelined GMRES (footnote 5's studied variant)."""

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.core.pipelined import pipelined_gmres
from repro.matrices import convection_diffusion2d, poisson2d


class TestPipelinedCorrectness:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    def test_converges(self, n_gpus):
        A = poisson2d(14)
        b = np.ones(A.n_rows)
        r = pipelined_gmres(A, b, n_gpus=n_gpus, m=20, tol=1e-8)
        assert r.converged
        res = np.linalg.norm(b - A.matvec(r.x)) / np.linalg.norm(b)
        assert res < 1e-7

    def test_same_krylov_iterates_as_standard(self):
        """Deferred normalization is exact: iteration counts and solutions
        match standard CGS-GMRES to round-off."""
        A = convection_diffusion2d(16)
        b = np.ones(A.n_rows)
        r_std = gmres(A, b, n_gpus=2, m=20, tol=1e-8)
        r_pipe = pipelined_gmres(A, b, n_gpus=2, m=20, tol=1e-8)
        assert r_pipe.n_iterations == r_std.n_iterations
        assert r_pipe.n_restarts == r_std.n_restarts
        np.testing.assert_allclose(r_pipe.x, r_std.x, rtol=1e-6, atol=1e-10)

    def test_exact_solution(self, rng):
        A = poisson2d(10)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = pipelined_gmres(A, b, m=25, tol=1e-10, max_restarts=100)
        assert r.converged
        np.testing.assert_allclose(r.x, x_true, atol=1e-6)

    def test_m_equal_one(self):
        A = poisson2d(6)
        b = np.ones(A.n_rows)
        r = pipelined_gmres(A, b, m=1, tol=1e-4, max_restarts=200)
        # Restarted GMRES(1) is slow but must make progress without errors.
        assert r.n_iterations > 0

    def test_validation(self):
        A = poisson2d(4)
        with pytest.raises(ValueError, match="square"):
            from repro.sparse.csr import csr_from_dense

            pipelined_gmres(csr_from_dense(np.ones((2, 3))), np.ones(2))
        with pytest.raises(ValueError, match="shape"):
            pipelined_gmres(A, np.ones(5))
        with pytest.raises(ValueError, match="non-finite"):
            pipelined_gmres(A, np.full(16, np.nan), m=4)
        with pytest.raises(ValueError, match="restart length"):
            pipelined_gmres(A, np.ones(16), m=0)

    def test_zero_rhs(self):
        A = poisson2d(4)
        r = pipelined_gmres(A, np.zeros(16), m=8)
        assert r.converged
        np.testing.assert_array_equal(r.x, np.zeros(16))


class TestPipelinedSchedule:
    def test_norm_reduction_overlaps_spmv(self):
        """The overlapped schedule must not be slower than paying the norm
        round trip on top of everything else (sanity of ready_at)."""
        from repro.gpu.context import MultiGpuContext

        A = poisson2d(20)
        b = np.ones(A.n_rows)
        r_pipe = pipelined_gmres(A, b, n_gpus=3, m=20, tol=1e-14, max_restarts=1)
        # Reference: standard GMRES with the *same* per-iteration message
        # structure but fully sequential (our mgs would be far worse; the
        # comparison is against fused CGS which has fewer round trips).
        r_std = gmres(A, b, n_gpus=3, m=20, tol=1e-14, max_restarts=1)
        # Paper's finding: the pipelined variant is in the same band as the
        # (already fused) CGS baseline — not a large win or loss.
        ratio = r_pipe.time_per_restart() / r_std.time_per_restart()
        assert 0.7 < ratio < 1.6

    def test_per_iteration_messages(self):
        """Pipelined CGS: 3 reductions/broadcast phases per iteration."""
        from repro.gpu.context import MultiGpuContext

        A = poisson2d(10)
        b = np.ones(A.n_rows)
        r = pipelined_gmres(A, b, n_gpus=2, m=10, tol=1e-14, max_restarts=1)
        assert r.counters["d2h_messages"] > 0
        assert r.counters["h2d_messages"] > 0
