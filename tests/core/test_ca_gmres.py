"""Tests for the CA-GMRES driver."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.matrices import convection_diffusion2d, poisson2d
from repro.matrices.random_sparse import random_sparse
from repro.order import kway_partition
from repro.orth.errors import CholeskyBreakdown


def residual(A, b, x):
    return np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b)


class TestCaGmresConvergence:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    def test_poisson_newton_cholqr(self, n_gpus):
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, n_gpus=n_gpus, s=10, m=30, tol=1e-6)
        assert r.converged
        assert residual(A, b, r.x) < 1e-5

    @pytest.mark.parametrize("tsqr_method", ["mgs", "cgs", "cholqr", "svqr", "caqr"])
    def test_all_tsqr_methods(self, tsqr_method):
        A = convection_diffusion2d(14)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=8, m=16, tol=1e-6, tsqr_method=tsqr_method)
        assert r.converged, tsqr_method
        assert residual(A, b, r.x) < 1e-5

    @pytest.mark.parametrize("borth_method", ["cgs", "mgs"])
    def test_borth_methods(self, borth_method):
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=6, m=18, tol=1e-6, borth_method=borth_method)
        assert r.converged

    def test_monomial_basis_small_s(self):
        """Monomial is usable for small s (the instability is in large s)."""
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=4, m=16, tol=1e-6, basis="monomial")
        assert r.converged

    def test_newton_tracks_gmres_iteration_counts(self):
        """CA-GMRES spans the same Krylov spaces: iteration counts match
        standard GMRES closely on a well-conditioned problem."""
        A = convection_diffusion2d(16)
        b = np.ones(A.n_rows)
        ref = gmres(A, b, m=24, tol=1e-8)
        ca = ca_gmres(A, b, s=8, m=24, tol=1e-8, basis="newton")
        assert ca.converged
        assert abs(ca.n_iterations - ref.n_iterations) <= 24  # within one cycle

    def test_s_equals_m(self):
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=16, m=16, tol=1e-6)
        assert r.converged

    def test_s_1(self):
        """s = 1: CA-GMRES degenerates to vector-at-a-time (slow but valid)."""
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=1, m=12, tol=1e-6)
        assert r.converged

    def test_partial_final_block(self):
        """m not divisible by s: the last block is shorter (paper: (20,30))."""
        A = poisson2d(14)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, s=8, m=20, tol=1e-6)  # blocks of 8, 8, 4
        assert r.converged

    def test_without_mpk_same_numerics(self):
        """use_mpk=False must give the same convergence path (same math)."""
        A = poisson2d(12)
        b = np.ones(A.n_rows)
        r_mpk = ca_gmres(A, b, s=6, m=18, tol=1e-6, use_mpk=True)
        r_spmv = ca_gmres(A, b, s=6, m=18, tol=1e-6, use_mpk=False)
        assert r_mpk.converged and r_spmv.converged
        assert r_mpk.n_iterations == r_spmv.n_iterations
        np.testing.assert_allclose(r_mpk.x, r_spmv.x, atol=1e-8)

    def test_kway_partition(self):
        A = poisson2d(14)
        part = kway_partition(A, 3)
        b = np.ones(A.n_rows)
        r = ca_gmres(A, b, n_gpus=3, partition=part, s=7, m=21, tol=1e-6)
        assert r.converged

    def test_x0(self, rng):
        A = poisson2d(10)
        x_true = rng.standard_normal(A.n_rows)
        b = A.matvec(x_true)
        r = ca_gmres(A, b, s=5, m=15, tol=1e-6, x0=x_true)
        assert r.converged
        assert r.n_iterations == 0


class TestBreakdownHandling:
    def make_hard_problem(self):
        """Monomial basis with large s on an SPD matrix with spread spectrum
        produces a numerically rank-deficient panel -> CholQR breaks."""
        A = poisson2d(16)
        b = np.ones(A.n_rows)
        return A, b

    def test_fallback_counts_breakdowns(self):
        A, b = self.make_hard_problem()
        r = ca_gmres(
            A, b, s=25, m=25, basis="monomial", tsqr_method="cholqr",
            tol=1e-8, max_restarts=40, on_breakdown="fallback",
        )
        # The monomial basis at s = 25 is numerically rank deficient:
        # CholQR must have broken down at least once, and the CAQR
        # fallback must keep the solver alive.
        assert r.breakdowns > 0

    def test_raise_mode(self):
        A, b = self.make_hard_problem()
        with pytest.raises(CholeskyBreakdown):
            ca_gmres(
                A, b, s=25, m=25, basis="monomial", tsqr_method="cholqr",
                tol=1e-8, max_restarts=5, on_breakdown="raise",
            )

    def test_reorth_improves_cgs_stability(self):
        """The paper's '2x CGS': reorthogonalization keeps CGS usable."""
        A = poisson2d(14)
        b = np.ones(A.n_rows)
        r2 = ca_gmres(
            A, b, s=14, m=28, basis="monomial", tsqr_method="cgs",
            reorth=2, tol=1e-6, max_restarts=60,
        )
        assert r2.converged


class TestBookkeeping:
    def test_timers_have_ca_phases(self):
        A = poisson2d(12)
        r = ca_gmres(A, np.ones(A.n_rows), s=6, m=12, tol=1e-6)
        for key in ("mpk", "borth", "tsqr", "update"):
            assert r.timers.get(key, 0.0) > 0.0, key
        assert "lsq" in r.timers  # may be ~0: host work overlaps devices

    def test_spmv_timer_when_mpk_disabled(self):
        A = poisson2d(12)
        r = ca_gmres(A, np.ones(A.n_rows), s=6, m=12, tol=1e-6, use_mpk=False)
        assert r.timers.get("mpk", 0.0) == 0.0
        assert r.timers.get("spmv", 0.0) > 0.0

    def test_collect_tsqr_errors(self):
        A = poisson2d(12)
        r = ca_gmres(
            A, np.ones(A.n_rows), s=6, m=12, tol=1e-8,
            collect_tsqr_errors=True, max_restarts=3,
        )
        errs = r.details["tsqr_errors"]
        assert len(errs) > 0
        for e in errs:
            assert e["orthogonality"] < 1e-8
            assert e["factorization"] < 1e-10
            assert "elementwise" in e

    def test_history_true_residuals_decrease(self):
        A = poisson2d(14)
        r = ca_gmres(A, np.ones(A.n_rows), s=7, m=14, tol=1e-8, max_restarts=30)
        rels = r.history.relative()
        assert rels[-1] < 1e-8
        assert rels[0] >= rels[-1]


class TestValidation:
    def test_bad_s(self):
        A = poisson2d(6)
        with pytest.raises(ValueError, match="1 <= s <= m"):
            ca_gmres(A, np.ones(36), s=0, m=10)
        with pytest.raises(ValueError):
            ca_gmres(A, np.ones(36), s=11, m=10)

    def test_bad_basis(self):
        A = poisson2d(6)
        with pytest.raises(ValueError, match="basis"):
            ca_gmres(A, np.ones(36), s=2, m=4, basis="chebyshev")

    def test_bad_breakdown_mode(self):
        A = poisson2d(6)
        with pytest.raises(ValueError, match="on_breakdown"):
            ca_gmres(A, np.ones(36), s=2, m=4, on_breakdown="ignore")

    def test_m_exceeds_n(self):
        A = poisson2d(3)
        with pytest.raises(ValueError, match="exceeds problem size"):
            ca_gmres(A, np.ones(9), s=2, m=10)

    def test_zero_rhs(self):
        A = poisson2d(4)
        r = ca_gmres(A, np.zeros(16), s=2, m=4)
        assert r.converged
