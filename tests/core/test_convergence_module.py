"""Tests for the convergence/result types."""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceHistory, SolveResult


def make_result(**overrides):
    defaults = dict(
        x=np.zeros(4),
        converged=True,
        n_restarts=4,
        n_iterations=40,
        history=ConvergenceHistory(),
        timers={"spmv": 2.0, "orth": 1.0},
        counters={},
    )
    defaults.update(overrides)
    return SolveResult(**defaults)


class TestConvergenceHistory:
    def test_record_and_read(self):
        h = ConvergenceHistory(initial_residual=10.0)
        h.record_estimate(1, 5.0)
        h.record_estimate(2, 2.5)
        h.record_true(10, 1.0)
        assert h.estimates == [(1, 5.0), (2, 2.5)]
        assert h.true_residuals == [(10, 1.0)]

    def test_relative(self):
        h = ConvergenceHistory(initial_residual=10.0)
        h.record_true(5, 5.0)
        h.record_true(10, 1.0)
        np.testing.assert_allclose(h.relative(), [0.5, 0.1])

    def test_relative_zero_initial(self):
        h = ConvergenceHistory(initial_residual=0.0)
        h.record_true(1, 0.0)
        np.testing.assert_array_equal(h.relative(), [0.0])

    def test_relative_empty(self):
        h = ConvergenceHistory(initial_residual=1.0)
        assert h.relative().size == 0


class TestSolveResult:
    def test_total_time(self):
        assert make_result().total_time == pytest.approx(3.0)

    def test_time_per_restart_total(self):
        assert make_result().time_per_restart() == pytest.approx(0.75)

    def test_time_per_restart_phase(self):
        assert make_result().time_per_restart("spmv") == pytest.approx(0.5)

    def test_time_per_restart_unknown_phase(self):
        assert make_result().time_per_restart("warp") == 0.0

    def test_zero_restarts_guard(self):
        r = make_result(n_restarts=0)
        assert r.time_per_restart() == pytest.approx(3.0)  # divides by 1

    def test_details_default(self):
        assert make_result().details == {}
