"""Tests for distributed multivectors."""

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector, DistVector
from repro.gpu.context import MultiGpuContext
from repro.order.partition import Partition, block_row_partition

from ..conftest import gather_multivector, make_dist_multivector


class TestDistMultiVector:
    def test_scatter_gather_roundtrip(self, ctx, rng):
        n = 20
        part = block_row_partition(n, ctx.n_gpus)
        mv = DistMultiVector(ctx, part, 3)
        v = rng.standard_normal(n)
        mv.set_column_from_host(1, v)
        np.testing.assert_array_equal(mv.gather_column_to_host(1), v)

    def test_noncontiguous_partition(self, ctx3, rng):
        n = 12
        part = Partition(np.array([0, 1, 2] * 4), 3)
        mv = DistMultiVector(ctx3, part, 2)
        v = rng.standard_normal(n)
        mv.set_column_from_host(0, v)
        np.testing.assert_array_equal(mv.gather_column_to_host(0), v)

    def test_column_views_share_storage(self, ctx1):
        part = block_row_partition(5, 1)
        mv = DistMultiVector(ctx1, part, 2)
        col = mv.column(0)[0]
        col.data[:] = 7.0
        np.testing.assert_array_equal(mv.local[0].data[:, 0], np.full(5, 7.0))

    def test_panel_views(self, ctx1, rng):
        dense = rng.standard_normal((8, 4))
        mv, _ = make_dist_multivector(ctx1, dense)
        panel = mv.panel(1, 3)[0]
        np.testing.assert_array_equal(panel.data, dense[:, 1:3])

    def test_column_out_of_range(self, ctx1):
        mv = DistMultiVector(ctx1, block_row_partition(4, 1), 2)
        with pytest.raises(IndexError):
            mv.column(2)

    def test_panel_out_of_range(self, ctx1):
        mv = DistMultiVector(ctx1, block_row_partition(4, 1), 2)
        with pytest.raises(IndexError):
            mv.panel(0, 3)

    def test_partition_context_mismatch(self, ctx2):
        with pytest.raises(ValueError, match="devices"):
            DistMultiVector(ctx2, block_row_partition(4, 3), 2)

    def test_set_column_wrong_shape(self, ctx1):
        mv = DistMultiVector(ctx1, block_row_partition(4, 1), 1)
        with pytest.raises(ValueError):
            mv.set_column_from_host(0, np.zeros(5))

    def test_transfers_are_counted(self, ctx3):
        mv = DistMultiVector(ctx3, block_row_partition(9, 3), 1)
        ctx3.counters.reset()
        mv.set_column_from_host(0, np.zeros(9))
        assert ctx3.counters.h2d_messages == 3
        mv.gather_column_to_host(0)
        assert ctx3.counters.d2h_messages == 3


class TestDistVector:
    def test_from_host_roundtrip(self, ctx, rng):
        n = 15
        part = block_row_partition(n, ctx.n_gpus)
        v = rng.standard_normal(n)
        dv = DistVector.from_host(ctx, part, v)
        np.testing.assert_array_equal(dv.to_host(), v)

    def test_parts_are_1d(self, ctx2):
        dv = DistVector(ctx2, block_row_partition(6, 2))
        for p in dv.parts():
            assert p.data.ndim == 1


class TestGatherHelper:
    def test_gather_matches_dense(self, ctx3, rng):
        dense = rng.standard_normal((10, 3))
        mv, _ = make_dist_multivector(ctx3, dense)
        np.testing.assert_array_equal(gather_multivector(mv), dense)
