"""Property-based tests (hypothesis) for the distributed layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.matrix import DistributedMatrix
from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.order.partition import Partition, block_row_partition
from repro.sparse.coo import CooMatrix


@st.composite
def distributed_systems(draw):
    n = draw(st.integers(4, 30))
    nnz = draw(st.integers(n, 4 * n))
    seed = draw(st.integers(0, 2**31 - 1))
    n_gpus = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    rows = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    vals = rng.standard_normal(rows.size)
    matrix = CooMatrix((n, n), rows, cols, vals).to_csr()
    if draw(st.booleans()):
        partition = block_row_partition(n, n_gpus)
    else:
        partition = Partition(rng.integers(0, n_gpus, n), n_gpus)
    return matrix, partition, seed


@settings(max_examples=35, deadline=None)
@given(distributed_systems())
def test_distributed_spmv_matches_host(system):
    """For any matrix and any partition, the halo-exchanged SpMV is exact."""
    matrix, partition, seed = system
    ctx = MultiGpuContext(partition.n_parts)
    dmat = DistributedMatrix(ctx, matrix, partition)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(matrix.n_rows)
    V = DistMultiVector(ctx, partition, 2)
    V.set_column_from_host(0, x)
    dmat.spmv(V, 0, V, 1)
    got = V.gather_column_to_host(1)
    ref = matrix.matvec(x)
    scale = max(np.abs(ref).max(), 1.0)
    np.testing.assert_allclose(got, ref, atol=1e-10 * scale)


@settings(max_examples=35, deadline=None)
@given(distributed_systems(), st.integers(1, 4))
def test_multivector_scatter_gather_roundtrip(system, n_cols):
    _, partition, seed = system
    ctx = MultiGpuContext(partition.n_parts)
    mv = DistMultiVector(ctx, partition, n_cols)
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((partition.n_rows, n_cols))
    for j in range(n_cols):
        mv.set_column_from_host(j, data[:, j])
    for j in range(n_cols):
        np.testing.assert_array_equal(mv.gather_column_to_host(j), data[:, j])


@settings(max_examples=25, deadline=None)
@given(distributed_systems())
def test_spmv_message_bound(system):
    """SpMV issues at most one d2h + one h2d message per device."""
    matrix, partition, _ = system
    ctx = MultiGpuContext(partition.n_parts)
    dmat = DistributedMatrix(ctx, matrix, partition)
    V = DistMultiVector(ctx, partition, 2)
    V.set_column_from_host(0, np.ones(matrix.n_rows))
    ctx.counters.reset()
    dmat.spmv(V, 0, V, 1)
    assert ctx.counters.d2h_messages <= partition.n_parts
    assert ctx.counters.h2d_messages <= partition.n_parts
