"""Tests for the distributed matrix and its SpMV."""

import numpy as np
import pytest

from repro.dist.matrix import DistributedMatrix, HaloPlan
from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.matrices import poisson2d, g3_circuit
from repro.order import kway_partition
from repro.order.partition import block_row_partition
from repro.matrices.random_sparse import random_sparse


class TestHaloPlan:
    def test_halo_excludes_owned(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 3)
        plan = HaloPlan(A, part)
        for d in range(3):
            assert not np.any(part.assignment[plan.halo[d]] == d)

    def test_halo_covers_needed_columns(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 3)
        plan = HaloPlan(A, part)
        for d in range(3):
            local = A.extract_rows(part.rows_of(d))
            needed = np.unique(local.indices)
            foreign = needed[part.assignment[needed] != d]
            np.testing.assert_array_equal(np.sort(plan.halo[d]), foreign)

    def test_single_device_no_halo(self):
        A = poisson2d(4)
        plan = HaloPlan(A, block_row_partition(A.n_rows, 1))
        assert plan.gather_volume() == 0

    def test_requires_square(self):
        from repro.sparse.csr import csr_from_dense

        A = csr_from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            HaloPlan(A, block_row_partition(2, 1))


class TestDistributedSpmv:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    def test_matches_host_reference(self, n_gpus, rng):
        A = poisson2d(7)
        ctx = MultiGpuContext(n_gpus)
        part = block_row_partition(A.n_rows, n_gpus)
        dmat = DistributedMatrix(ctx, A, part)
        x = rng.standard_normal(A.n_rows)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, x)
        dmat.spmv(V, 0, V, 1)
        np.testing.assert_allclose(
            V.gather_column_to_host(1), A.matvec(x), atol=1e-13
        )

    def test_kway_partition_spmv(self, rng):
        A = g3_circuit(nx=16, ny=16)
        ctx = MultiGpuContext(3)
        part = kway_partition(A, 3)
        dmat = DistributedMatrix(ctx, A, part)
        x = rng.standard_normal(A.n_rows)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, x)
        dmat.spmv(V, 0, V, 1)
        np.testing.assert_allclose(
            V.gather_column_to_host(1), A.matvec(x), atol=1e-12
        )

    def test_unsymmetric_matrix(self, rng):
        A = random_sparse(40, 5.0, seed=3)
        ctx = MultiGpuContext(2)
        part = block_row_partition(40, 2)
        dmat = DistributedMatrix(ctx, A, part)
        x = rng.standard_normal(40)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, x)
        dmat.spmv(V, 0, V, 1)
        np.testing.assert_allclose(
            V.gather_column_to_host(1), A.matvec(x), atol=1e-12
        )

    def test_message_count_per_spmv(self):
        A = poisson2d(6)
        ctx = MultiGpuContext(3)
        part = block_row_partition(A.n_rows, 3)
        dmat = DistributedMatrix(ctx, A, part)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, np.ones(A.n_rows))
        ctx.counters.reset()
        dmat.spmv(V, 0, V, 1)
        # Block-row split of a grid: end devices talk to the middle one.
        assert ctx.counters.d2h_messages <= 3
        assert ctx.counters.h2d_messages <= 3
        assert ctx.counters.d2h_messages >= 2

    def test_spmv_advances_clocks(self):
        A = poisson2d(5)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        dmat = DistributedMatrix(ctx, A, part)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, np.ones(A.n_rows))
        t0 = ctx.current_time()
        dmat.spmv(V, 0, V, 1)
        assert ctx.current_time() > t0

    def test_partition_mismatch_rejected(self):
        A = poisson2d(4)
        ctx = MultiGpuContext(2)
        with pytest.raises(ValueError):
            DistributedMatrix(ctx, A, block_row_partition(A.n_rows, 3))

    def test_repeated_spmv_consistent(self, rng):
        A = poisson2d(5)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        dmat = DistributedMatrix(ctx, A, part)
        V = DistMultiVector(ctx, part, 3)
        x = rng.standard_normal(A.n_rows)
        V.set_column_from_host(0, x)
        dmat.spmv(V, 0, V, 1)
        dmat.spmv(V, 1, V, 2)
        np.testing.assert_allclose(
            V.gather_column_to_host(2), A.matvec(A.matvec(x)), atol=1e-12
        )


class TestSpmvCostAccounting:
    def test_halo_placement_copy_charged(self):
        """spmv charges one own-part copy per device plus one halo copy per
        device with a nonempty halo (plus the exchange's gather copies)."""
        A = poisson2d(8)
        ctx = MultiGpuContext(3)
        part = block_row_partition(A.n_rows, 3)
        dmat = DistributedMatrix(ctx, A, part)
        x = DistMultiVector(ctx, part, 1)
        y = DistMultiVector(ctx, part, 1)
        x.set_column_from_host(0, np.ones(A.n_rows))
        ctx.reset_clocks()
        ctx.counters.reset()
        dmat.spmv(x, 0, y, 0)
        halo_devices = sum(1 for h in dmat.plan.halo if h.size > 0)
        senders = sum(1 for s in dmat.plan.send_local if s.size > 0)
        expected = senders + 3 + halo_devices
        assert halo_devices > 0
        assert ctx.counters.kernel_counts["copy/cublas"] == expected
