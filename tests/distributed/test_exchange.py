"""Tests for the host-staged exchange."""

import numpy as np
import pytest

from repro.dist.exchange import StagedExchange
from repro.faults import FaultEvent, FaultPlan, TransferCorruption
from repro.gpu.context import MultiGpuContext
from repro.order.partition import Partition, block_row_partition


def dist_parts(ctx, partition, vector):
    """Adopt slices of a host vector onto the devices (test helper)."""
    return [
        dev.adopt(vector[partition.rows_of(d)].copy())
        for d, dev in enumerate(ctx.devices)
    ]


class TestStagedExchange:
    def test_delivers_requested_values(self, rng):
        ctx = MultiGpuContext(3)
        n = 12
        part = block_row_partition(n, 3)
        # Each device asks for two elements owned by other devices.
        recv = [
            np.array([4, 8]),   # device 0 asks for elements of dev 1 and 2
            np.array([0, 11]),  # device 1
            np.array([3, 5]),   # device 2
        ]
        ex = StagedExchange(part, recv)
        v = rng.standard_normal(n)
        received = ex.exchange(ctx, dist_parts(ctx, part, v))
        for d in range(3):
            np.testing.assert_array_equal(received[d], v[recv[d]])

    def test_message_counts(self):
        ctx = MultiGpuContext(3)
        part = block_row_partition(9, 3)
        recv = [np.array([3]), np.array([0]), np.array([4])]
        ex = StagedExchange(part, recv)
        ctx.counters.reset()
        ex.exchange(ctx, dist_parts(ctx, part, np.zeros(9)))
        # Devices 0 and 1 send (dev 2's element {4} is owned by dev 1, and
        # nobody asks for dev 2's rows); all three devices receive.
        assert ctx.counters.d2h_messages == 2
        assert ctx.counters.h2d_messages == 3

    def test_empty_requests_no_messages(self):
        ctx = MultiGpuContext(2)
        part = block_row_partition(4, 2)
        ex = StagedExchange(part, [np.empty(0, np.int64), np.empty(0, np.int64)])
        ctx.counters.reset()
        received = ex.exchange(ctx, dist_parts(ctx, part, np.zeros(4)))
        assert ctx.counters.total_messages == 0
        assert all(r.size == 0 for r in received)

    def test_volumes(self):
        part = block_row_partition(10, 2)
        # dev0 asks for {5, 6}, dev1 asks for {0}; union = 3 elements
        ex = StagedExchange(part, [np.array([5, 6]), np.array([0])])
        assert ex.gather_volume() == 3
        assert ex.scatter_volume() == 3
        assert ex.total_volume() == 6

    def test_shared_request_gathered_once(self):
        # Two devices asking for the same element: gather counts it once.
        part = Partition(np.array([0, 1, 2]), 3)
        ex = StagedExchange(
            part, [np.array([2]), np.array([2]), np.empty(0, np.int64)]
        )
        assert ex.gather_volume() == 1
        assert ex.scatter_volume() == 2

    def test_rejects_owned_requests(self):
        part = block_row_partition(4, 2)
        with pytest.raises(ValueError, match="already owns"):
            StagedExchange(part, [np.array([0]), np.empty(0, np.int64)])

    def test_rejects_wrong_list_length(self):
        part = block_row_partition(4, 2)
        with pytest.raises(ValueError, match="one entry per part"):
            StagedExchange(part, [np.empty(0, np.int64)])

    def test_repeated_exchange_reuses_plan(self, rng):
        ctx = MultiGpuContext(2)
        part = block_row_partition(6, 2)
        ex = StagedExchange(part, [np.array([4]), np.array([1])])
        for _ in range(3):
            v = rng.standard_normal(6)
            rec = ex.exchange(ctx, dist_parts(ctx, part, v))
            assert rec[0][0] == v[4]
            assert rec[1][0] == v[1]

    def test_corrupted_transfer_retried_transparently(self, rng):
        # A scripted corruption on the first bus message: the exchange must
        # retry the transfer and still deliver the exact requested values.
        plan = FaultPlan.scripted(
            [FaultEvent("pcie", "corrupt", trigger=0, position=0)]
        )
        ctx = MultiGpuContext(2, fault_plan=plan)
        part = block_row_partition(6, 2)
        ex = StagedExchange(part, [np.array([4]), np.array([1])])
        v = rng.standard_normal(6)
        rec = ex.exchange(ctx, dist_parts(ctx, part, v))
        assert rec[0][0] == v[4]
        assert rec[1][0] == v[1]
        [recovery] = ctx.faults.recoveries
        assert recovery["action"] == "transfer-retry"

    def test_retry_budget_exhausted_raises(self):
        # Three consecutive corruptions exceed max_transfer_retries=2.
        plan = FaultPlan.scripted(
            [FaultEvent("pcie", "corrupt", trigger=t) for t in range(3)]
        )
        ctx = MultiGpuContext(2, fault_plan=plan)
        part = block_row_partition(6, 2)
        ex = StagedExchange(part, [np.array([4]), np.array([1])])
        with pytest.raises(TransferCorruption):
            ex.exchange(ctx, dist_parts(ctx, part, np.zeros(6)))

    def test_stage_masks_precomputed_and_consistent(self):
        # The per-device staging mask is exchange-invariant; it must be built
        # once in __init__ (hot path: one mask per device per halo exchange).
        part = block_row_partition(9, 3)
        recv = [np.array([3, 6]), np.array([0, 8]), np.array([1, 4])]
        ex = StagedExchange(part, recv)
        assert len(ex._stage_mask) == 3
        for d, mask in enumerate(ex._stage_mask):
            np.testing.assert_array_equal(
                mask, part.assignment[ex.union_requested] == d
            )
            assert mask.sum() == ex.send_local[d].size

    def test_staging_buffer_preallocated_and_reused(self, rng):
        # The staging buffer is exchange-invariant: allocated once in
        # __init__, never per call (hot path), and its reuse across
        # exchanges must be invisible — results bit-identical to a fresh
        # exchange object evaluating the same vector.
        ctx = MultiGpuContext(3)
        n = 12
        part = block_row_partition(n, 3)
        recv = [np.array([4, 8]), np.array([0, 11]), np.array([3, 5])]
        ex = StagedExchange(part, recv)
        assert ex._stage.size == ex.union_requested.size
        stage = ex._stage
        v1 = rng.standard_normal(n)
        v2 = rng.standard_normal(n)
        ex.exchange(ctx, dist_parts(ctx, part, v1))  # dirties the buffer
        got = ex.exchange(ctx, dist_parts(ctx, part, v2))
        assert ex._stage is stage  # no per-call reallocation
        fresh = StagedExchange(part, recv)
        ref = fresh.exchange(MultiGpuContext(3), dist_parts(ctx, part, v2))
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)
