"""Repartition equivalence for degraded-mode recovery.

The degrade path (`repro.core.degrade`) rebuilds the distributed state on
the surviving devices of a *shrunken* context.  These tests pin the key
invariant that makes that sound: a ``DistributedMatrix`` (and MPK plan)
built over ``k`` survivors of a degraded context produces **bit-identical**
SpMV / matrix-powers values to a fresh ``k``-device build — the numerics
are a pure function of the partition, not of which physical devices host
the parts.
"""

import numpy as np
import pytest

from repro.dist.matrix import DistributedMatrix
from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.matrices.stencil import poisson2d
from repro.mpk.matrix_powers import MatrixPowersKernel
from repro.mpk.shifts import monomial_shift_ops, newton_shift_ops
from repro.order.partition import block_row_partition


def degraded_context(n_start: int, survivors: int) -> MultiGpuContext:
    """A context built with ``n_start`` GPUs and shrunk to ``survivors``.

    Deactivates from the middle outward (gpu1 first), the interesting case
    for repartitioning: the survivors are not a contiguous prefix.
    """
    ctx = MultiGpuContext(n_start)
    order = [1, 2, 0]  # drop gpu1 first, then gpu2, never all
    for name in order[: n_start - survivors]:
        ctx.deactivate_device(name)
    assert ctx.n_gpus == survivors
    return ctx


def _shift_sets(s):
    return {
        "monomial": monomial_shift_ops(s),
        "newton": newton_shift_ops(
            np.array([4.0, 2.0 + 1.0j, 2.0 - 1.0j, 6.0]), s
        ),
    }


class TestSpmvEquivalence:
    @pytest.mark.parametrize("survivors", [1, 2, 3])
    def test_bit_identical_to_fresh_build(self, survivors, rng):
        A = poisson2d(9)
        v = rng.standard_normal(A.n_rows)
        part = block_row_partition(A.n_rows, survivors)

        results = []
        for ctx in (degraded_context(3, survivors), MultiGpuContext(survivors)):
            dmat = DistributedMatrix(ctx, A, part)
            V = DistMultiVector(ctx, part, 2)
            V.set_column_from_host(0, v)
            dmat.spmv(V, 0, V, 1)
            results.append(V.gather_column_to_host(1))
        np.testing.assert_array_equal(results[0], results[1])

    def test_spmv_matches_host_matvec(self, rng):
        A = poisson2d(9)
        v = rng.standard_normal(A.n_rows)
        ctx = degraded_context(3, 2)
        part = block_row_partition(A.n_rows, 2)
        dmat = DistributedMatrix(ctx, A, part)
        V = DistMultiVector(ctx, part, 2)
        V.set_column_from_host(0, v)
        dmat.spmv(V, 0, V, 1)
        np.testing.assert_allclose(
            V.gather_column_to_host(1), A.matvec(v), rtol=1e-13, atol=1e-13
        )


class TestMpkEquivalence:
    @pytest.mark.parametrize("survivors", [1, 2, 3])
    @pytest.mark.parametrize("basis", ["monomial", "newton"])
    def test_bit_identical_to_fresh_build(self, survivors, basis, rng):
        A = poisson2d(9)
        s = 4
        v = rng.standard_normal(A.n_rows)
        part = block_row_partition(A.n_rows, survivors)
        ops = _shift_sets(s)[basis]

        results = []
        for ctx in (degraded_context(3, survivors), MultiGpuContext(survivors)):
            mpk = MatrixPowersKernel(ctx, A, part, s)
            V = DistMultiVector(ctx, part, s + 1)
            V.set_column_from_host(0, v)
            mpk.run(V, 0, ops)
            results.append(
                np.stack([V.gather_column_to_host(k) for k in range(s + 1)])
            )
        np.testing.assert_array_equal(results[0], results[1])


class TestDeactivatedDeviceIsFenced:
    def test_transfers_to_lost_device_raise(self):
        from repro.faults.errors import DeviceLost

        ctx = MultiGpuContext(3)
        lost = ctx.deactivate_device("gpu1")
        with pytest.raises(DeviceLost):
            ctx.h2d(lost, np.ones(4))

    def test_deactivation_bookkeeping(self):
        ctx = MultiGpuContext(3)
        ctx.deactivate_device(1)
        assert ctx.n_gpus == 2
        assert ctx.inactive_devices == ["gpu1"]
        assert ctx.counters.device_deactivations == 1
        assert [d.name for d in ctx.devices] == ["gpu0", "gpu2"]

    def test_last_device_refused(self):
        ctx = MultiGpuContext(2)
        ctx.deactivate_device(0)
        with pytest.raises(ValueError, match="last active device"):
            ctx.deactivate_device(1)

    def test_reset_clocks_restores_roster(self):
        ctx = MultiGpuContext(3)
        ctx.deactivate_device("gpu2")
        ctx.reset_clocks()
        assert ctx.n_gpus == 3
        assert ctx.inactive_devices == []
        # Lanes are restored too: transfers to the device work again.
        ctx.h2d(ctx.devices[2], np.ones(4))
