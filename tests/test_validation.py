"""Tests for repro._validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_float64_array,
    as_index_array,
    check_in,
    check_nonnegative,
    check_positive,
    check_square,
    check_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(1, "x")
        check_positive(0.5, "x")

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-3, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative(-1, "x")


class TestCheckSquare:
    def test_accepts_square(self):
        check_square((3, 3))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square((3, 4))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            check_square((3,))


class TestCheckVector:
    def test_accepts_correct_length(self):
        check_vector(np.zeros(5), 5)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            check_vector(np.zeros(4), 5)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_vector(np.zeros((5, 1)), 5)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("a", {"a", "b"}, "opt")

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="opt must be one of"):
            check_in("c", {"a", "b"}, "opt")


class TestAsFloat64Array:
    def test_converts_list(self):
        out = as_float64_array([1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_float64_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_float64_array([np.inf])

    def test_no_copy_when_already_float64(self):
        arr = np.array([1.0, 2.0])
        assert as_float64_array(arr) is arr


class TestAsIndexArray:
    def test_converts(self):
        out = as_index_array([0, 1, 2])
        assert out.dtype == np.int64

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            as_index_array([0, -1])
