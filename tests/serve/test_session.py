"""SolverSession: warm/cold bit-identity, batching, and the API surface."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.matrices import poisson2d
from repro.serve import SolverSession


def assert_identical(a, b):
    """Byte-for-byte equality of two SolveResults, simulated state included."""
    assert np.array_equal(a.x, b.x)
    assert a.converged == b.converged
    assert a.n_restarts == b.n_restarts
    assert a.n_iterations == b.n_iterations
    assert a.history.initial_residual == b.history.initial_residual
    assert a.history.estimates == b.history.estimates
    assert a.history.true_residuals == b.history.true_residuals
    assert a.timers == b.timers
    assert a.counters == b.counters
    assert a.breakdowns == b.breakdowns


@pytest.fixture
def problem(rng):
    A = poisson2d(10)
    b = rng.standard_normal(A.n_rows)
    return A, b


class TestWarmColdBitIdentity:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    @pytest.mark.parametrize("basis", ["monomial", "newton"])
    def test_ca_session_matches_plan_free_solver(self, problem, n_gpus, basis):
        A, b = problem
        cfg = dict(n_gpus=n_gpus, s=4, m=12, basis=basis, tol=1e-8,
                   max_restarts=20)
        base = ca_gmres(A, b, **cfg)
        sess = SolverSession(A, solver="ca", **cfg)
        cold = sess.solve(b)
        warm = sess.solve(b)
        assert_identical(base, cold)
        assert_identical(cold, warm)

    @pytest.mark.parametrize("n_gpus", [1, 3])
    def test_gmres_session_matches_plan_free_solver(self, problem, n_gpus):
        A, b = problem
        cfg = dict(n_gpus=n_gpus, m=12, tol=1e-8, max_restarts=20)
        base = gmres(A, b, **cfg)
        sess = SolverSession(A, solver="gmres", **cfg)
        cold = sess.solve(b)
        warm = sess.solve(b)
        assert_identical(base, cold)
        assert_identical(cold, warm)

    @pytest.mark.parametrize("ordering", ["rcm", "kway"])
    def test_reordered_sessions_stay_bit_identical(self, problem, ordering):
        A, b = problem
        sess = SolverSession(A, solver="ca", n_gpus=2, ordering=ordering,
                             s=4, m=12, tol=1e-8, max_restarts=20)
        cold = sess.solve(b)
        warm = sess.solve(b)
        assert_identical(cold, warm)
        # The solution comes back in the *original* ordering.
        res = np.linalg.norm(b - A.matvec(cold.x)) / np.linalg.norm(b)
        assert cold.converged and res < 1e-6

    def test_warm_solve_hits_the_plan_cache(self, problem):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12, tol=1e-8)
        sess.solve(b)
        misses = sess.stats()["plan_misses"]
        hits = sess.stats()["plan_hits"]
        sess.solve(b)
        assert sess.stats()["plan_misses"] == misses  # no rebuild
        assert sess.stats()["plan_hits"] > hits
        assert sess.stats()["n_solves"] == 2

    def test_survives_reset_clocks(self, problem):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12, tol=1e-8)
        cold = sess.solve(b)
        sess.ctx.reset_clocks()
        sess.ctx.counters.reset()
        warm = sess.solve(b)
        assert_identical(cold, warm)


class TestSolveMany:
    def test_interleaved_matches_sequential_per_rhs(self, problem, rng):
        A, _ = problem
        bs = [rng.standard_normal(A.n_rows) for _ in range(3)]
        cfg = dict(n_gpus=2, s=4, m=12, tol=1e-8, max_restarts=20)
        sess = SolverSession(A, **cfg)
        batch = sess.solve_many(bs)
        ref = SolverSession(A, **cfg)
        for b, got in zip(bs, batch):
            want = ref.solve(b)
            assert np.array_equal(got.x, want.x)
            assert got.history.estimates == want.history.estimates
            assert got.history.true_residuals == want.history.true_residuals
            assert got.converged == want.converged
            assert got.n_iterations == want.n_iterations

    def test_sequential_flag_matches_interleaved_numerics(self, problem, rng):
        A, _ = problem
        bs = [rng.standard_normal(A.n_rows) for _ in range(2)]
        sess = SolverSession(A, n_gpus=2, s=4, m=12, tol=1e-8)
        inter = sess.solve_many(bs, interleave=True)
        seq = sess.solve_many(bs, interleave=False)
        for a, c in zip(inter, seq):
            assert np.array_equal(a.x, c.x)

    def test_empty_batch(self, problem):
        A, _ = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12)
        assert sess.solve_many([]) == []


class TestApiSurface:
    def test_unknown_solver_and_ordering_rejected(self, problem):
        A, _ = problem
        with pytest.raises(ValueError, match="unknown solver"):
            SolverSession(A, solver="pipelined")
        with pytest.raises(ValueError, match="unknown ordering"):
            SolverSession(A, ordering="metis")

    def test_structural_override_rejected(self, problem):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12)
        with pytest.raises(TypeError, match="not per-solve overridable"):
            sess.solve(b, s=8)
        with pytest.raises(TypeError, match="not per-solve overridable"):
            sess.solve(b, basis="monomial")

    def test_bad_rhs_shape_rejected(self, problem):
        A, _ = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12)
        with pytest.raises(ValueError, match="shape"):
            sess.solve(np.ones(A.n_rows + 1))

    def test_per_solve_overrides_apply(self, problem):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12, tol=1e-10,
                             max_restarts=50)
        loose = sess.solve(b, tol=1e-2, max_restarts=3)
        tight = sess.solve(b)
        assert loose.n_restarts <= 3
        assert tight.n_iterations >= loose.n_iterations

    def test_x0_override_in_original_ordering(self, problem, rng):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, ordering="rcm", s=4, m=12,
                             tol=1e-8)
        x_star = sess.solve(b).x
        warm_start = sess.solve(b, x0=x_star, max_restarts=1)
        res = np.linalg.norm(b - A.matvec(warm_start.x)) / np.linalg.norm(b)
        assert res < 1e-6

    def test_fingerprint_exposed_and_stable(self, problem):
        A, b = problem
        sess = SolverSession(A, n_gpus=2, s=4, m=12)
        fp = sess.fingerprint
        sess.solve(b)
        assert sess.fingerprint == fp
        assert fp.roster == ("gpu0", "gpu1")
        assert fp.m == 12
