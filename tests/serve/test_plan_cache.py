"""PlanCache: two-level caching, stats, and roster-aware invalidation."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.matrices import poisson2d
from repro.order.partition import Partition
from repro.serve import PlanCache


@pytest.fixture
def A():
    return poisson2d(8)


class TestHostPlans:
    def test_shared_across_m_and_roster(self, A):
        cache = PlanCache()
        h1 = cache.host_plan(A, "natural", balance=True)
        h2 = cache.host_plan(A, "natural", balance=True)
        assert h1 is h2
        assert cache.stats["host_hits"] == 1
        assert cache.stats["host_misses"] == 1

    def test_distinct_per_ordering_and_balance(self, A):
        cache = PlanCache()
        plans = {
            cache.host_plan(A, "natural", balance=True).key,
            cache.host_plan(A, "natural", balance=False).key,
            cache.host_plan(A, "rcm", balance=True).key,
            cache.host_plan(A, "kway", balance=True).key,
        }
        assert len(plans) == 4
        assert cache.stats["host_misses"] == 4

    def test_rcm_permutation_roundtrip(self, A, rng):
        cache = PlanCache()
        h = cache.host_plan(A, "rcm", balance=False)
        assert h.perm is not None
        v = rng.standard_normal(A.n_rows)
        np.testing.assert_array_equal(
            h.from_solve_order(h.to_solve_order(v)), v
        )

    def test_unknown_ordering_rejected(self, A):
        with pytest.raises(ValueError, match="unknown ordering"):
            PlanCache().host_plan(A, "metis")


class TestStructuralPlans:
    def test_hit_on_same_context_and_roster(self, A):
        cache = PlanCache()
        ctx = MultiGpuContext(2)
        host = cache.host_plan(A, "natural")
        p1 = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4,))
        p2 = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4,))
        assert p1 is p2
        assert cache.stats["plan_hits"] == 1
        assert cache.stats["plan_misses"] == 1

    def test_distinct_per_m_and_mpk_lengths(self, A):
        cache = PlanCache()
        ctx = MultiGpuContext(2)
        host = cache.host_plan(A, "natural")
        p1 = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4,))
        p2 = cache.structural_plan(ctx, host, m=20, mpk_lengths=(4,))
        p3 = cache.structural_plan(ctx, host, m=12, mpk_lengths=(5,))
        assert len({p1.key, p2.key, p3.key}) == 3
        assert p2.V.n_cols == 21

    def test_replaced_context_invalidates(self, A):
        cache = PlanCache()
        host = cache.host_plan(A, "natural")
        p1 = cache.structural_plan(MultiGpuContext(2), host, m=12)
        p2 = cache.structural_plan(MultiGpuContext(2), host, m=12)
        assert p1 is not p2
        assert cache.stats["invalidations"] == 1
        assert len(cache.plans) == 1  # stale entry replaced, not leaked

    def test_partition_mismatch_invalidates(self, A):
        cache = PlanCache()
        ctx = MultiGpuContext(2)
        host = cache.host_plan(A, "natural")
        p1 = cache.structural_plan(ctx, host, m=12)
        # Same roster, different assignment: a degraded-mode repartition.
        mid = A.n_rows // 3
        assignment = np.where(np.arange(A.n_rows) < mid, 0, 1)
        skew = Partition(assignment=assignment, n_parts=2)
        p2 = cache.structural_plan(ctx, host, m=12, partition=skew)
        assert p2 is not p1
        assert cache.stats["invalidations"] == 1
        # Asking again with the same partition now hits.
        p3 = cache.structural_plan(ctx, host, m=12, partition=skew)
        assert p3 is p2

    def test_prebuild_mpk_fills_the_plan_dict(self, A):
        cache = PlanCache()
        ctx = MultiGpuContext(2)
        host = cache.host_plan(A, "natural")
        p = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4, 2),
                                  prebuild_mpk=(4, 2))
        assert sorted(p.mpk) == [2, 4]
        # A cache hit must not rebuild existing closures.
        mpk4 = p.mpk[4]
        p2 = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4, 2),
                                   prebuild_mpk=(4,))
        assert p2.mpk[4] is mpk4

    def test_device_memory_accounting_positive(self, A):
        cache = PlanCache()
        ctx = MultiGpuContext(2)
        host = cache.host_plan(A, "natural")
        p = cache.structural_plan(ctx, host, m=12, mpk_lengths=(4,),
                                  prebuild_mpk=(4,))
        mem = p.device_memory_bytes()
        assert len(mem) == 2 and all(x > 0 for x in mem)


class TestInvalidation:
    def _two_roster_plans(self, A, cache):
        ctx3 = MultiGpuContext(3)
        host = cache.host_plan(A, "natural")
        full = cache.structural_plan(ctx3, host, m=12)
        # A survivor-roster plan on the same context, gpu1 dropped.
        ctx3.devices = [d for d in ctx3.all_devices if d.name != "gpu1"]
        survivors = cache.structural_plan(ctx3, host, m=12)
        ctx3.devices = list(ctx3.all_devices)
        return full, survivors

    def test_invalidate_device_drops_only_matching_rosters(self, A):
        cache = PlanCache()
        full, survivors = self._two_roster_plans(A, cache)
        assert len(cache.plans) == 2
        dropped = cache.invalidate_device("gpu1")
        assert dropped == 1
        assert survivors.key in cache.plans
        assert full.key not in cache.plans
        # Host plans are roster-free and must survive.
        assert len(cache.host_plans) == 1

    def test_clear_device_plans_keeps_host_plans(self, A):
        cache = PlanCache()
        self._two_roster_plans(A, cache)
        assert cache.clear_device_plans() == 2
        assert not cache.plans
        assert len(cache.host_plans) == 1
        assert cache.stats["invalidations"] == 2

    def test_invalidate_missing_key_is_noop(self, A):
        cache = PlanCache()
        full, _ = self._two_roster_plans(A, cache)
        assert cache.invalidate(full.key) is True
        assert cache.invalidate(full.key) is False
        assert cache.stats["invalidations"] == 1
