"""Sessions under faults: plan invalidation/derivation and campaign mode."""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.degrade import DegradePolicy
from repro.faults import FaultEvent, FaultPlan
from repro.faults.campaign import run_campaign
from repro.gpu.context import MultiGpuContext
from repro.matrices import poisson2d
from repro.serve import SolverSession

from .test_session import assert_identical


DROPOUT = FaultPlan.scripted([FaultEvent("gpu1", "dropout", trigger=40)])


@pytest.fixture
def problem(rng):
    A = poisson2d(10)
    b = rng.standard_normal(A.n_rows)
    return A, b


class TestDegradedSolves:
    def test_degraded_session_matches_plan_free_solver(self, problem):
        A, b = problem
        cfg = dict(s=4, m=12, basis="monomial", tol=1e-8, max_restarts=20)
        base = ca_gmres(
            A, b, ctx=MultiGpuContext(3, fault_plan=DROPOUT),
            degrade=DegradePolicy(strategy="block"), **cfg,
        )
        assert base.details["degradation"]["n_repartitions"] >= 1
        sess = SolverSession(A, solver="ca", n_gpus=3, **cfg)
        sess.arm_fault_plan(DROPOUT)
        got = sess.solve(b, degrade=DegradePolicy(strategy="block"))
        assert_identical(base, got)

    def test_survivor_plan_cached_and_replay_bit_identical(self, problem):
        A, b = problem
        sess = SolverSession(A, solver="ca", n_gpus=3, s=4, m=12,
                             basis="monomial", tol=1e-8, max_restarts=20)
        sess.arm_fault_plan(DROPOUT)
        first = sess.solve(b, degrade=DegradePolicy(strategy="block"))
        stats = sess.stats()
        # Full-roster plan + the survivor-roster plan derived mid-solve.
        assert stats["structural_plans"] == 2
        assert stats["plan_misses"] == 2
        # Replaying the identical trial reuses both plans, bit-identically.
        sess.arm_fault_plan(DROPOUT)
        second = sess.solve(b, degrade=DegradePolicy(strategy="block"))
        assert_identical(first, second)
        stats2 = sess.stats()
        assert stats2["structural_plans"] == 2
        assert stats2["plan_misses"] == 2
        assert stats2["plan_hits"] > stats["plan_hits"]

    def test_healthy_solve_after_degraded_uses_full_roster(self, problem):
        A, b = problem
        sess = SolverSession(A, solver="ca", n_gpus=3, s=4, m=12,
                             basis="monomial", tol=1e-8, max_restarts=20)
        healthy = sess.solve(b)
        sess.arm_fault_plan(DROPOUT)
        degraded = sess.solve(b, degrade=DegradePolicy(strategy="block"))
        assert "degradation" in degraded.details
        sess.arm_fault_plan(None)
        again = sess.solve(b)
        assert_identical(healthy, again)
        assert sess.fingerprint.roster == ("gpu0", "gpu1", "gpu2")

    def test_solve_many_falls_back_to_sequential_under_faults(self, problem, rng):
        A, _ = problem
        bs = [rng.standard_normal(A.n_rows) for _ in range(2)]
        sess = SolverSession(A, solver="ca", n_gpus=3, s=4, m=12,
                            basis="monomial", tol=1e-8, max_restarts=20)
        sess.arm_fault_plan(DROPOUT)
        batch = sess.solve_many(bs, degrade=DegradePolicy(strategy="block"))
        assert len(batch) == 2
        # Only the first solve sees the scripted dropout (triggers are
        # per-arming); it must report the degradation, sequentially.
        assert "degradation" in batch[0].details


class TestCampaignSessionMode:
    def test_session_campaign_records_byte_identical(self):
        kwargs = dict(
            solver="ca_gmres", problem="poisson2d", nx=12, n_gpus=2,
            seed=3, rate=2e-3, trials=3, s=4, m=12, tol=1e-6,
            max_restarts=30,
        )
        plain = run_campaign(**kwargs)
        served = run_campaign(session=True, **kwargs)
        assert served["trials"] == plain["trials"]
        assert served["totals"] == plain["totals"]
        assert "serving" not in plain
        serving = served["serving"]
        assert serving["n_solves"] == 3
        assert serving["structural_plans"] >= 1
        assert serving["plan_misses"] >= 1
        assert served["config"]["session"] is True

    def test_degrade_campaign_with_session(self):
        kwargs = dict(
            solver="ca_gmres", problem="poisson2d", nx=12, n_gpus=3,
            seed=1, rate=2e-3, kinds=("corrupt", "poison", "dropout"),
            trials=3, s=4, m=12, tol=1e-6, max_restarts=30, degrade=True,
        )
        plain = run_campaign(**kwargs)
        served = run_campaign(session=True, **kwargs)
        assert served["trials"] == plain["trials"]
        assert served["totals"] == plain["totals"]
