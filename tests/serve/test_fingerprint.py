"""Structural fingerprints: pattern-only hashing and key composition."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.serve.fingerprint import Fingerprint, fingerprint, pattern_hash, value_hash
from repro.sparse.csr import CsrMatrix


class TestPatternHash:
    def test_deterministic(self):
        A = poisson2d(6)
        assert pattern_hash(A) == pattern_hash(A)
        assert pattern_hash(A) == pattern_hash(A.copy())

    def test_value_changes_do_not_move_pattern(self):
        A = poisson2d(6)
        B = CsrMatrix(A.shape, A.indptr, A.indices, 2.0 * A.data)
        assert pattern_hash(A) == pattern_hash(B)
        assert value_hash(A) != value_hash(B)

    def test_pattern_changes_move_hash(self):
        A = poisson2d(6)
        B = poisson2d(7)
        assert pattern_hash(A) != pattern_hash(B)

    def test_shape_included(self):
        # Same (empty) index arrays, different shapes.
        a = CsrMatrix((2, 2), np.zeros(3, dtype=np.int64),
                      np.empty(0, dtype=np.int64), np.empty(0))
        b = CsrMatrix((3, 3), np.zeros(4, dtype=np.int64),
                      np.empty(0, dtype=np.int64), np.empty(0))
        assert pattern_hash(a) != pattern_hash(b)


class TestFingerprint:
    def test_roundtrip_fields(self):
        A = poisson2d(6)
        fp = fingerprint(A, "kway", 20, [5], ["gpu0", "gpu1"], True)
        assert fp.ordering == "kway"
        assert fp.m == 20
        assert fp.mpk_lengths == (5,)
        assert fp.roster == ("gpu0", "gpu1")
        assert fp.balance is True
        assert fp.preconditioner is None

    def test_hashable_and_distinct_by_roster(self):
        A = poisson2d(6)
        f2 = fingerprint(A, "natural", 20, [5], ["gpu0", "gpu1"], True)
        f3 = fingerprint(A, "natural", 20, [5], ["gpu0", "gpu1", "gpu2"], True)
        assert f2 != f3
        assert len({f2, f3, f2}) == 2

    def test_host_key_drops_roster_and_m(self):
        A = poisson2d(6)
        f2 = fingerprint(A, "rcm", 20, [5], ["gpu0"], True)
        f3 = fingerprint(A, "rcm", 30, [15], ["gpu0", "gpu1"], True)
        assert f2.host_key() == f3.host_key()

    def test_mpk_lengths_sorted(self):
        A = poisson2d(6)
        fa = fingerprint(A, "natural", 20, [15, 5], ["gpu0"], True)
        fb = fingerprint(A, "natural", 20, [5, 15], ["gpu0"], True)
        assert fa == fb

    def test_frozen(self):
        A = poisson2d(6)
        fp = fingerprint(A, "natural", 20, [], ["gpu0"], True)
        with pytest.raises(AttributeError):
            fp.m = 99
