"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig08" in out and "solve" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "CHOLQR" in out and "O(eps)" in out

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "DGEMM" in out and "DGEMV" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig10", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig10.txt").exists()

    def test_solve_small(self, capsys):
        code = main(
            ["solve", "--matrix", "g3_circuit", "--solver", "gmres",
             "--gpus", "1", "--max-restarts", "1"]
        )
        out = capsys.readouterr().out
        assert "time/restart" in out
        assert code in (0, 1)

    def test_trace_writes_chrome_trace_and_breakdown(self, tmp_path, capsys):
        import json

        code = main(
            ["trace", "--matrix", "poisson2d", "--nx", "12", "--solver",
             "ca_gmres", "--gpus", "2", "--m", "9", "--s", "3",
             "--max-restarts", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-kernel" in out and "regions" in out and "PCIe" in out
        trace_path = tmp_path / "trace_ca_gmres_poisson2d.json"
        assert trace_path.exists()
        doc = json.loads(trace_path.read_text())
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {"host", "gpu0", "gpu1", "pcie"} <= lanes
        assert (tmp_path / "trace_ca_gmres_poisson2d.txt").exists()

    def test_trace_gmres_solver(self, tmp_path, capsys):
        code = main(
            ["trace", "--solver", "gmres", "--nx", "10", "--m", "8",
             "--max-restarts", "1", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "trace_gmres_poisson2d.json").exists()

    def test_faults_campaign(self, capsys):
        code = main(
            ["faults", "--nx", "16", "--m", "12", "--s", "4",
             "--max-restarts", "40", "--trials", "2", "--rate", "1e-3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "Recoveries by action" in out
        assert "totals:" in out

    def test_faults_degrade_campaign(self, capsys):
        code = main(
            ["faults", "--nx", "16", "--m", "12", "--s", "4",
             "--max-restarts", "40", "--trials", "2", "--rate", "2e-3",
             "--gpus", "3", "--kinds", "corrupt,poison,stall,dropout",
             "--degrade", "--deadline", "1.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The degraded-mode columns and totals appear.
        assert "| rep | dev | ddl" in out
        assert "repartition(s)" in out

    def test_faults_writes_json(self, tmp_path, capsys):
        import json

        code = main(
            ["faults", "--nx", "12", "--m", "10", "--s", "4", "--trials", "1",
             "--rate", "0", "--max-restarts", "30", "--out", str(tmp_path)]
        )
        assert code == 0
        doc = json.loads(
            (tmp_path / "faults_ca_gmres_poisson2d_seed0.json").read_text()
        )
        assert doc["config"]["trials"] == 1
        assert doc["totals"]["injected"] == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_matrix_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--matrix", "bcsstk01"])
