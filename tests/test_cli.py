"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig08" in out and "solve" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "CHOLQR" in out and "O(eps)" in out

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "DGEMM" in out and "DGEMV" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig10", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig10.txt").exists()

    def test_solve_small(self, capsys):
        code = main(
            ["solve", "--matrix", "g3_circuit", "--solver", "gmres",
             "--gpus", "1", "--max-restarts", "1"]
        )
        out = capsys.readouterr().out
        assert "time/restart" in out
        assert code in (0, 1)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_matrix_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--matrix", "bcsstk01"])
