"""Tests for the performance model: machine spec, kernel models, calibration.

The calibration targets come straight from the paper's Fig. 11: the model
must place each kernel implementation in the right performance band so the
orthogonalization-time comparisons (Figs. 13-15) follow the paper's logic.
"""

import numpy as np
import pytest

from repro.perf.kernels import KERNEL_TABLE, kernel_flops_bytes, kernel_time
from repro.perf.machine import CpuSpec, GpuSpec, MachineSpec, PcieSpec, keeneland_node
from repro.perf.model import PerformanceModel


def gflops(op, variant, model, **shape):
    """Effective Gflop/s of one kernel under the model."""
    flops, _ = kernel_flops_bytes(op, variant, **shape)
    t = model.gpu_time(op, variant, **shape)
    return flops / t / 1e9


class TestMachineSpec:
    def test_keeneland_defaults(self):
        m = keeneland_node()
        assert m.n_gpus == 3
        assert m.cpu.cores == 16
        assert m.gpu.peak_gflops == pytest.approx(665.0)

    def test_gpu_count_capped(self):
        with pytest.raises(ValueError):
            keeneland_node(4)

    def test_invalid_gpu_spec(self):
        with pytest.raises(ValueError):
            GpuSpec("bad", -1.0, 1.0, 0.0, 1)

    def test_invalid_cpu_spec(self):
        with pytest.raises(ValueError):
            CpuSpec("bad", 0, 1.0, 1.0, 0.0)

    def test_invalid_pcie(self):
        with pytest.raises(ValueError):
            PcieSpec(latency=-1.0, bandwidth=1.0)


class TestKernelModels:
    def test_all_entries_have_positive_cost(self):
        for (op, variant), model in KERNEL_TABLE.items():
            shape = {}
            if op in ("dot", "axpy", "scal", "copy"):
                shape = {"n": 1000}
            elif op in ("gemv_t", "gemv_n", "trsm", "qr_panel"):
                shape = {"n": 1000, "k": 10}
            elif op in ("gemm_tn", "gemm_nn"):
                shape = {"n": 1000, "k": 10, "j": 10}
            elif op == "spmv":
                shape = {"nnz": 5000, "n_rows": 1000}
            t = kernel_time(op, variant, 665e9, 120e9, 7e-6, **shape)
            assert t > 0, f"{op}/{variant}"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel_time("nonsense", "cublas", 1e9, 1e9, 0.0, n=1)

    def test_time_scales_with_size(self):
        t1 = kernel_time("dot", "cublas", 665e9, 120e9, 0.0, n=1_000)
        t2 = kernel_time("dot", "cublas", 665e9, 120e9, 0.0, n=1_000_000)
        assert t2 > 100 * t1

    def test_overhead_dominates_small(self):
        t = kernel_time("dot", "cublas", 665e9, 120e9, 7e-6, n=10)
        assert t == pytest.approx(7e-6, rel=0.01)


class TestFig11Calibration:
    """Rates at n = 500k, s+1 = 30, the paper's steady-state regime."""

    @pytest.fixture
    def model(self):
        return PerformanceModel(keeneland_node())

    def test_cublas_dgemv_slow(self, model):
        rate = gflops("gemv_t", "cublas", model, n=500_000, k=30)
        assert 2.0 < rate < 10.0  # paper: ~5 Gflop/s

    def test_magma_dgemv_about_5x(self, model):
        cublas = gflops("gemv_t", "cublas", model, n=500_000, k=30)
        magma = gflops("gemv_t", "magma", model, n=500_000, k=30)
        assert 3.0 < magma / cublas < 8.0

    def test_cublas_dgemm_band(self, model):
        rate = gflops("gemm_tn", "cublas", model, n=500_000, k=30, j=30)
        assert 10.0 < rate < 30.0  # paper: ~20 Gflop/s

    def test_batched_dgemm_band(self, model):
        rate = gflops("gemm_tn", "batched", model, n=500_000, k=30, j=30)
        assert 45.0 < rate < 75.0  # paper: ~58 Gflop/s

    def test_ddot_band(self, model):
        rate = gflops("dot", "cublas", model, n=500_000)
        assert 8.0 < rate < 20.0  # BLAS-1 streaming

    def test_kernel_ordering_matches_paper(self, model):
        """batched DGEMM > MAGMA DGEMV > DDOT > CUBLAS DGEMV."""
        shape2 = dict(n=500_000, k=30)
        shape3 = dict(n=500_000, k=30, j=30)
        batched = gflops("gemm_tn", "batched", model, **shape3)
        magma = gflops("gemv_t", "magma", model, **shape2)
        ddot = gflops("dot", "cublas", model, n=500_000)
        cublas_gemv = gflops("gemv_t", "cublas", model, **shape2)
        assert batched > magma > ddot > cublas_gemv


class TestPerformanceModelFacade:
    def test_transfer_time(self):
        model = PerformanceModel(keeneland_node())
        t0 = model.transfer_time(0)
        assert t0 == pytest.approx(12e-6)
        t = model.transfer_time(5.8e9)
        assert t == pytest.approx(1.0 + 12e-6)

    def test_transfer_negative_rejected(self):
        with pytest.raises(ValueError):
            PerformanceModel().transfer_time(-5)

    def test_host_small_dense_ops(self):
        model = PerformanceModel()
        for op in ("chol", "qr", "svd", "eig", "lstsq_hessenberg", "trsv"):
            assert model.host_small_dense(op, 30) > 0

    def test_host_small_dense_unknown(self):
        with pytest.raises(KeyError):
            PerformanceModel().host_small_dense("nope", 4)

    def test_svd_costlier_than_chol(self):
        model = PerformanceModel()
        assert model.host_small_dense("svd", 60) > model.host_small_dense("chol", 60)

    def test_cpu_time_uses_cpu_rates(self):
        model = PerformanceModel()
        t_gpu = model.gpu_time("gemm_tn", "batched", n=500_000, k=30, j=30)
        t_cpu = model.cpu_time("gemm_tn", "mkl", n=500_000, k=30, j=30)
        assert t_cpu > t_gpu  # GPU wins on the big tall-skinny product
