"""Tests for the kernel autotuner."""

import pytest

from repro.perf.autotune import KernelAutotuner
from repro.perf.kernels import KERNEL_TABLE


class TestKernelAutotuner:
    @pytest.fixture
    def tuner(self):
        return KernelAutotuner()

    def test_candidates_are_device_variants(self, tuner):
        cands = tuner.candidates("gemm_tn")
        assert "batched" in cands and "cublas" in cands
        assert "mkl" not in cands  # host variant excluded
        assert "batched_sp" not in cands  # changes numerics

    def test_wide_gram_prefers_batched(self, tuner):
        assert tuner.best_variant("gemm_tn", n=500_000, k=30, j=30) == "batched"

    def test_gemv_prefers_magma(self, tuner):
        assert tuner.best_variant("gemv_t", n=500_000, k=30) == "magma"

    def test_best_is_actually_fastest(self, tuner):
        shape = dict(n=300_000, k=8, j=8)
        best = tuner.best_variant("gemm_tn", **shape)
        gpu = tuner.machine.gpu
        times = {
            v: KERNEL_TABLE[("gemm_tn", v)].time(
                gpu.peak_gflops * 1e9, gpu.mem_bandwidth, gpu.kernel_overhead,
                **shape,
            )
            for v in tuner.candidates("gemm_tn")
        }
        assert times[best] == min(times.values())

    def test_decision_cached(self, tuner):
        a = tuner.best_variant("gemv_t", n=1000, k=4)
        assert ("gemv_t", (("k", 4), ("n", 1000))) in tuner._cache
        assert tuner.best_variant("gemv_t", n=1000, k=4) == a

    def test_unknown_op(self, tuner):
        with pytest.raises(KeyError):
            tuner.best_variant("warp_drive", n=10)

    def test_tuning_table(self, tuner):
        shapes = [dict(n=100_000, k=k, j=k) for k in (2, 10, 30)]
        rows = tuner.tuning_table("gemm_tn", shapes)
        assert len(rows) == 3
        for shape, variant, t in rows:
            assert variant in tuner.candidates("gemm_tn")
            assert t > 0


class TestMemoryAccounting:
    def test_mpk_memory_grows_with_s(self):
        import numpy as np
        from repro.gpu.context import MultiGpuContext
        from repro.matrices import poisson2d
        from repro.mpk import MatrixPowersKernel
        from repro.order.partition import block_row_partition

        A = poisson2d(12)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        mem = [
            sum(MatrixPowersKernel(ctx, A, part, s).device_memory_bytes())
            for s in (1, 4, 8)
        ]
        assert mem[0] < mem[1] < mem[2]

    def test_mpk_fits_on_m2090(self):
        from repro.gpu.context import MultiGpuContext
        from repro.matrices import poisson2d
        from repro.mpk import MatrixPowersKernel
        from repro.order.partition import block_row_partition

        A = poisson2d(12)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        mpk = MatrixPowersKernel(ctx, A, part, 5)
        for per_device in mpk.device_memory_bytes():
            assert per_device < ctx.machine.gpu.memory_bytes

    def test_dist_matrix_memory_reported(self):
        from repro.dist.matrix import DistributedMatrix
        from repro.gpu.context import MultiGpuContext
        from repro.matrices import poisson2d
        from repro.order.partition import block_row_partition

        A = poisson2d(10)
        ctx = MultiGpuContext(2)
        dmat = DistributedMatrix(ctx, A, block_row_partition(A.n_rows, 2))
        mem = dmat.device_memory_bytes()
        assert len(mem) == 2
        assert all(m > 0 for m in mem)
