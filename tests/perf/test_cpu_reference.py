"""Tests for the Fig. 3 CPU-reference machine."""

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.gpu.context import MultiGpuContext
from repro.matrices import cant, poisson2d
from repro.perf.machine import cpu_reference_node, keeneland_node


class TestCpuReferenceNode:
    def test_single_device(self):
        spec = cpu_reference_node()
        assert spec.n_gpus == 1

    def test_device_rates_are_cpu_rates(self):
        spec = cpu_reference_node()
        base = keeneland_node(1)
        assert spec.gpu.peak_gflops == base.cpu.peak_gflops
        assert spec.gpu.mem_bandwidth == base.cpu.mem_bandwidth

    def test_interconnect_is_shared_memory(self):
        spec = cpu_reference_node()
        assert spec.pcie.latency < 1e-6
        assert not spec.pcie.shared_bus

    def test_solver_runs_on_cpu_reference(self):
        A = poisson2d(10)
        b = np.ones(A.n_rows)
        ctx = MultiGpuContext(1, machine=cpu_reference_node())
        r = gmres(A, b, ctx=ctx, m=15, tol=1e-6)
        assert r.converged

    def test_gpu_beats_cpu_on_large_matrix(self):
        """Fig. 3's premise: one M2090 out-streams the 16-core host."""
        A = cant(nx=48, ny=10, nz=10)
        b = np.ones(A.n_rows)
        ctx_cpu = MultiGpuContext(1, machine=cpu_reference_node())
        r_cpu = gmres(A, b, ctx=ctx_cpu, m=20, tol=1e-14, max_restarts=1)
        r_gpu = gmres(A, b, n_gpus=1, m=20, tol=1e-14, max_restarts=1)
        assert r_gpu.time_per_restart() < r_cpu.time_per_restart()

    def test_same_numerics_on_both_machines(self):
        A = poisson2d(8)
        b = np.ones(A.n_rows)
        ctx_cpu = MultiGpuContext(1, machine=cpu_reference_node())
        r_cpu = gmres(A, b, ctx=ctx_cpu, m=12, tol=1e-8)
        r_gpu = gmres(A, b, n_gpus=1, m=12, tol=1e-8)
        assert r_cpu.n_iterations == r_gpu.n_iterations
        np.testing.assert_allclose(r_cpu.x, r_gpu.x, atol=1e-12)
