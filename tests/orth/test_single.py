"""Tests for single-vector Arnoldi orthogonalization."""

import numpy as np
import pytest

from repro.orth.errors import OrthogonalizationError
from repro.orth.single import orthogonalize_vector

from ..conftest import gather_multivector, make_dist_multivector


def setup(ctx, rng, n=40, j=4):
    Q, _ = np.linalg.qr(rng.standard_normal((n, j)))
    v = rng.standard_normal(n)
    mv, _ = make_dist_multivector(ctx, np.hstack([Q, v[:, None]]))
    return mv, Q, v, j


class TestOrthogonalizeVector:
    @pytest.mark.parametrize("method", ["cgs", "mgs"])
    def test_hessenberg_column(self, method, rng, ctx):
        mv, Q, v, j = setup(ctx, rng)
        h = orthogonalize_vector(ctx, mv.panel(0, j), mv.column(j), method=method)
        np.testing.assert_allclose(h[:j], Q.T @ v, atol=1e-12)
        w = v - Q @ (Q.T @ v)
        assert h[j] == pytest.approx(np.linalg.norm(w), rel=1e-12)

    @pytest.mark.parametrize("method", ["cgs", "mgs"])
    def test_result_unit_norm_and_orthogonal(self, method, rng, ctx):
        mv, Q, v, j = setup(ctx, rng)
        orthogonalize_vector(ctx, mv.panel(0, j), mv.column(j), method=method)
        q_new = gather_multivector(mv)[:, j]
        assert np.linalg.norm(q_new) == pytest.approx(1.0, rel=1e-12)
        np.testing.assert_allclose(Q.T @ q_new, np.zeros(j), atol=1e-12)

    def test_first_vector_just_normalized(self, rng, ctx1):
        v = rng.standard_normal(20)
        mv, _ = make_dist_multivector(ctx1, v[:, None])
        h = orthogonalize_vector(ctx1, None, mv.column(0))
        assert h.shape == (1,)
        assert h[0] == pytest.approx(np.linalg.norm(v))

    def test_zero_vector_breakdown(self, ctx1):
        mv, _ = make_dist_multivector(ctx1, np.zeros((10, 1)))
        with pytest.raises(OrthogonalizationError, match="breakdown"):
            orthogonalize_vector(ctx1, None, mv.column(0))

    def test_unknown_method(self, rng, ctx1):
        mv, Q, v, j = setup(ctx1, rng)
        with pytest.raises(ValueError, match="unknown"):
            orthogonalize_vector(ctx1, mv.panel(0, j), mv.column(j), method="xxx")

    def test_methods_agree(self, rng):
        from repro.gpu.context import MultiGpuContext

        results = {}
        for method in ("cgs", "mgs"):
            ctx = MultiGpuContext(2)
            mv, Q, v, j = setup(ctx, np.random.default_rng(11))
            results[method] = orthogonalize_vector(
                ctx, mv.panel(0, j), mv.column(j), method=method
            )
        np.testing.assert_allclose(results["cgs"], results["mgs"], atol=1e-12)

    def test_cgs_fewer_messages_than_mgs(self, rng):
        from repro.gpu.context import MultiGpuContext

        counts = {}
        for method in ("cgs", "mgs"):
            ctx = MultiGpuContext(2)
            mv, Q, v, j = setup(ctx, np.random.default_rng(3), j=6)
            ctx.counters.reset()
            orthogonalize_vector(ctx, mv.panel(0, j), mv.column(j), method=method)
            counts[method] = ctx.counters.total_messages
        assert counts["cgs"] < counts["mgs"]
