"""Tests for the five TSQR variants and the dispatcher.

The shared contract: panels are overwritten with Q (orthonormal columns
distributed block-row), the returned R is upper triangular, and Q R
reconstructs the input panel.
"""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.matrices.random_sparse import well_conditioned_tall_skinny
from repro.orth.errors import CholeskyBreakdown, OrthogonalizationError
from repro.orth.tsqr import TSQR_METHODS, tsqr

from ..conftest import gather_multivector, make_dist_multivector

METHODS = sorted(TSQR_METHODS)


def run_tsqr(ctx, dense, method, **kwargs):
    mv, part = make_dist_multivector(ctx, dense.copy())
    R = tsqr(ctx, mv.panel(0, dense.shape[1]), method=method, **kwargs)
    return gather_multivector(mv), R


class TestSharedContract:
    @pytest.mark.parametrize("method", METHODS)
    def test_qr_reconstructs_panel(self, method, rng, ctx):
        V = rng.standard_normal((60, 7))
        Q, R = run_tsqr(ctx, V, method)
        np.testing.assert_allclose(Q @ R, V, atol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    def test_q_orthonormal(self, method, rng, ctx):
        V = rng.standard_normal((60, 7))
        Q, _ = run_tsqr(ctx, V, method)
        np.testing.assert_allclose(Q.T @ Q, np.eye(7), atol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    def test_r_upper_triangular(self, method, rng, ctx1):
        V = rng.standard_normal((30, 5))
        _, R = run_tsqr(ctx1, V, method)
        np.testing.assert_allclose(R, np.triu(R), atol=0)

    @pytest.mark.parametrize("method", METHODS)
    def test_r_positive_diagonal(self, method, rng, ctx1):
        V = rng.standard_normal((30, 5))
        _, R = run_tsqr(ctx1, V, method)
        assert np.all(np.diag(R) > 0)

    @pytest.mark.parametrize("method", METHODS)
    def test_single_column(self, method, rng, ctx1):
        v = rng.standard_normal((20, 1))
        Q, R = run_tsqr(ctx1, v, method)
        assert R[0, 0] == pytest.approx(np.linalg.norm(v))
        np.testing.assert_allclose(Q[:, 0], v[:, 0] / np.linalg.norm(v), atol=1e-14)

    @pytest.mark.parametrize("method", METHODS)
    def test_multi_gpu_matches_single_gpu_r(self, method, rng):
        """R must be independent of the device count (same math)."""
        V = rng.standard_normal((48, 6))
        _, R1 = run_tsqr(MultiGpuContext(1), V, method)
        _, R3 = run_tsqr(MultiGpuContext(3), V, method)
        np.testing.assert_allclose(R1, R3, atol=1e-10)


class TestStabilityOrdering:
    """Fig. 13's stability story: orthogonality error ranking by method."""

    def make_ill_conditioned(self, rng, kappa):
        return well_conditioned_tall_skinny(400, 10, condition=kappa, seed=42)

    def test_cholqr_error_scales_with_kappa_squared(self, rng, ctx1):
        V = self.make_ill_conditioned(rng, 1e5)
        Q, _ = run_tsqr(ctx1, V, "cholqr")
        err_chol = np.linalg.norm(np.eye(10) - Q.T @ Q)
        Q2, _ = run_tsqr(ctx1, V, "caqr")
        err_caqr = np.linalg.norm(np.eye(10) - Q2.T @ Q2)
        assert err_chol > 100 * err_caqr

    def test_mgs_beats_cholqr_on_ill_conditioned(self, rng, ctx1):
        V = self.make_ill_conditioned(rng, 1e6)
        Q_m, _ = run_tsqr(ctx1, V, "mgs")
        Q_c, _ = run_tsqr(ctx1, V, "cholqr")
        err_mgs = np.linalg.norm(np.eye(10) - Q_m.T @ Q_m)
        err_chol = np.linalg.norm(np.eye(10) - Q_c.T @ Q_c)
        assert err_mgs < err_chol

    def test_caqr_unconditionally_stable(self, rng, ctx1):
        V = self.make_ill_conditioned(rng, 1e7)
        Q, _ = run_tsqr(ctx1, V, "caqr")
        assert np.linalg.norm(np.eye(10) - Q.T @ Q) < 1e-12

    def test_cholqr_breaks_down_catastrophic_kappa(self, rng, ctx1):
        V = well_conditioned_tall_skinny(200, 8, condition=1e12, seed=7)
        with pytest.raises(CholeskyBreakdown):
            run_tsqr(ctx1, V, "cholqr")

    def test_svqr_survives_where_cholqr_fails(self, rng, ctx1):
        V = well_conditioned_tall_skinny(200, 8, condition=1e12, seed=7)
        Q, R = run_tsqr(ctx1, V, "svqr")
        # SVQR completes and still reconstructs the panel well.
        np.testing.assert_allclose(Q @ R, V, atol=1e-8)

    def test_svqr_survives_exactly_singular(self, rng, ctx1):
        V = rng.standard_normal((50, 4))
        V[:, 3] = V[:, 0] + V[:, 1]  # exact rank deficiency
        Q, R = run_tsqr(ctx1, V, "svqr")
        np.testing.assert_allclose(Q @ R, V, atol=1e-10)

    def test_reorthogonalization_restores_cgs(self, rng, ctx1):
        V = self.make_ill_conditioned(rng, 1e6)
        Q1, _ = run_tsqr(ctx1, V, "cgs", reorth=1)
        Q2, _ = run_tsqr(ctx1, V, "cgs", reorth=2)
        err1 = np.linalg.norm(np.eye(10) - Q1.T @ Q1)
        err2 = np.linalg.norm(np.eye(10) - Q2.T @ Q2)
        assert err2 < err1 / 10
        assert err2 < 1e-12

    def test_reorth_composes_r(self, rng, ctx1):
        V = rng.standard_normal((40, 5))
        Q, R = run_tsqr(ctx1, V, "cholqr", reorth=2)
        np.testing.assert_allclose(Q @ R, V, atol=1e-12)


class TestCommunicationCounts:
    """Fig. 10's GPU-CPU communication column, verified on the counters."""

    @pytest.mark.parametrize(
        "method,expected_phases",
        [("mgs", None), ("cgs", None), ("cholqr", 2), ("svqr", 2), ("caqr", 2)],
    )
    def test_phase_counts(self, method, expected_phases, rng):
        s_plus_1 = 6
        s = s_plus_1 - 1
        ctx = MultiGpuContext(3)
        V = rng.standard_normal((60, s_plus_1))
        mv, _ = make_dist_multivector(ctx, V)
        ctx.counters.reset()
        tsqr(ctx, mv.panel(0, s_plus_1), method=method)
        messages = ctx.counters.total_messages
        if expected_phases is None:
            expected_phases = (
                (s + 1) * (s + 2) if method == "mgs" else 2 * (s + 1)
            )
        # each phase moves one message per device
        assert messages == expected_phases * 3

    def test_cholqr_messages_independent_of_s(self, rng):
        ctx = MultiGpuContext(2)
        for k in (3, 8):
            V = rng.standard_normal((40, k))
            mv, _ = make_dist_multivector(ctx, V)
            ctx.counters.reset()
            tsqr(ctx, mv.panel(0, k), method="cholqr")
            assert ctx.counters.total_messages == 4  # 2 phases x 2 devices


class TestDispatcher:
    def test_unknown_method(self, rng, ctx1):
        V = rng.standard_normal((10, 2))
        mv, _ = make_dist_multivector(ctx1, V)
        with pytest.raises(ValueError, match="unknown TSQR method"):
            tsqr(ctx1, mv.panel(0, 2), method="qr_of_doom")

    def test_invalid_reorth(self, rng, ctx1):
        V = rng.standard_normal((10, 2))
        mv, _ = make_dist_multivector(ctx1, V)
        with pytest.raises(ValueError, match="reorth"):
            tsqr(ctx1, mv.panel(0, 2), reorth=0)

    def test_zero_column_breakdown(self, ctx1):
        V = np.zeros((10, 2))
        V[:, 0] = 1.0
        mv, _ = make_dist_multivector(ctx1, V)
        with pytest.raises(OrthogonalizationError):
            tsqr(ctx1, mv.panel(0, 2), method="mgs")

    def test_caqr_short_block_rejected(self, rng):
        # 3 GPUs x 2 rows each < 4 columns: local QR impossible.
        ctx = MultiGpuContext(3)
        V = rng.standard_normal((6, 4))
        mv, _ = make_dist_multivector(ctx, V)
        with pytest.raises(OrthogonalizationError, match="at least as many"):
            tsqr(ctx, mv.panel(0, 4), method="caqr")
