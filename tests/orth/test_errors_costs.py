"""Tests for error metrics (Fig. 13) and the cost table (Fig. 10)."""

import numpy as np
import pytest

from repro.orth.costs import TSQR_PROPERTY_TABLE, tsqr_properties
from repro.orth.errors import (
    elementwise_error,
    factorization_error,
    orthogonality_error,
)


class TestErrorMetrics:
    def test_orthogonality_of_exact_q(self, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((30, 5)))
        assert orthogonality_error(Q) < 1e-14

    def test_orthogonality_of_scaled_q(self, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((30, 5)))
        assert orthogonality_error(2.0 * Q) == pytest.approx(3.0, rel=1e-10)

    def test_factorization_error_exact(self, rng):
        V = rng.standard_normal((20, 4))
        Q, R = np.linalg.qr(V)
        assert factorization_error(V, Q, R) < 1e-14

    def test_factorization_error_detects_corruption(self, rng):
        V = rng.standard_normal((20, 4))
        Q, R = np.linalg.qr(V)
        R_bad = R + 0.1
        assert factorization_error(V, Q, R_bad) > 1e-3

    def test_factorization_error_zero_matrix(self):
        assert factorization_error(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((2, 2))) == 0.0

    def test_elementwise_error_exact(self, rng):
        V = rng.standard_normal((20, 4))
        Q, R = np.linalg.qr(V)
        assert elementwise_error(V, Q, R) < 1e-12

    def test_elementwise_ignores_zero_entries(self):
        V = np.array([[1.0, 0.0], [0.0, 2.0]])
        # Perfect factorization of V = I * V.
        assert elementwise_error(V, np.eye(2), V) == 0.0

    def test_elementwise_all_zero(self):
        assert elementwise_error(np.zeros((2, 2)), np.eye(2), np.zeros((2, 2))) == 0.0


class TestCostTable:
    def test_table_complete(self):
        assert set(TSQR_PROPERTY_TABLE) == {"mgs", "cgs", "cholqr", "svqr", "caqr"}

    def test_comm_phase_formulas(self):
        s = 14  # s+1 = 15
        assert tsqr_properties("mgs").comm_phases(s) == (s + 1) * (s + 2)
        assert tsqr_properties("cgs").comm_phases(s) == 2 * (s + 1)
        for method in ("cholqr", "svqr", "caqr"):
            assert tsqr_properties(method).comm_phases(s) == 2

    def test_flop_formulas(self):
        n, s = 10_000, 15
        assert tsqr_properties("mgs").flops(n, s) == pytest.approx(2 * n * s * s)
        assert tsqr_properties("caqr").flops(n, s) == pytest.approx(4 * n * s * s)

    def test_error_bound_strings(self):
        assert tsqr_properties("caqr").error_bound == "O(eps)"
        assert "kappa^2" in tsqr_properties("cholqr").error_bound

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            tsqr_properties("gram_schmidt_deluxe")

    def test_fig10_comm_matches_runtime_counters(self, rng):
        """The analytic phase counts equal measured messages / n_gpus."""
        from repro.gpu.context import MultiGpuContext
        from repro.orth.tsqr import tsqr
        from ..conftest import make_dist_multivector

        s = 4  # panel of s+1 = 5 columns
        for method in ("mgs", "cgs", "cholqr", "svqr", "caqr"):
            ctx = MultiGpuContext(2)
            V = rng.standard_normal((40, s + 1))
            mv, _ = make_dist_multivector(ctx, V)
            ctx.counters.reset()
            tsqr(ctx, mv.panel(0, s + 1), method=method)
            measured_phases = ctx.counters.total_messages / 2
            assert measured_phases == tsqr_properties(method).comm_phases(s)
