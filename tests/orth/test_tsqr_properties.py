"""Property-based TSQR matrix: every variant x basis x s x conditioning.

The paper's Fig. 10 assigns each TSQR kernel a loss-of-orthogonality
bound — MGS ``O(eps*kappa)``, CGS ``O(eps*kappa^s)``, CholQR/SVQR
``O(eps*kappa^2)``, CAQR ``O(eps)`` — and those bounds are exactly what
justifies the CholQR -> CAQR adaptive fallback in the solver.  This module
checks the bounds *empirically*: for every method, on Krylov panels in
both the monomial and Newton bases, across basis lengths ``s`` in
{2, 5, 10}, for well- and ill-conditioned panels:

* ``||Q^T Q - I||_2  <=  C * eps * kappa(P)^p`` with ``p`` taken from
  :data:`repro.orth.TSQR_PROPERTY_TABLE` (generous constant, capped — an
  exact-constant bound would be brittle, but the *exponent* is the claim);
* ``||P - Q R|| / ||P||`` stays at machine precision regardless of
  conditioning (every variant is residual-stable even when orthogonality
  degrades);
* CholQR is allowed to raise :class:`CholeskyBreakdown` on panels with
  ``kappa^2`` beyond 1/eps (that *is* its documented failure mode — the
  fallback's reason for existing); SVQR must survive everywhere.
"""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.matrices.stencil import poisson2d
from repro.mpk.shifts import newton_shift_ops
from repro.orth import TSQR_PROPERTY_TABLE
from repro.orth.errors import CholeskyBreakdown
from repro.orth.tsqr import TSQR_METHODS, tsqr

from ..conftest import gather_multivector, make_dist_multivector

METHODS = sorted(TSQR_METHODS)
BASES = ["monomial", "newton"]
S_VALUES = [2, 5, 10]
EPS = np.finfo(np.float64).eps

#: Generous constant in front of eps * kappa^p.  The *exponent* is the
#: property under test; the constant only absorbs norm inequalities.
BOUND_CONSTANT = 1e3

#: ||Q^T Q - I||_2 can approach ~1 when orthogonality is fully lost
#: (kappa^p beyond 1/eps); the capped bound still has to hold.
BOUND_CAP = 2.0


def exponent(method: str, s: int) -> float:
    """Parse the kappa exponent out of the Fig. 10 bound string."""
    bound = TSQR_PROPERTY_TABLE[method].error_bound
    if "kappa^s" in bound:
        return float(s)
    if "kappa^2" in bound:
        return 2.0
    if "kappa" in bound:
        return 1.0
    return 0.0


def krylov_panel(basis: str, s: int, seed: int = 2024) -> np.ndarray:
    """An n x (s+1) Krylov panel, columns normalized (as MPK produces)."""
    A = poisson2d(10).to_dense()
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(A.shape[0])
    v /= np.linalg.norm(v)
    if basis == "newton":
        # Spread over the Poisson spectrum (eigs of poisson2d lie in (0, 8)).
        ops = newton_shift_ops(np.linspace(0.5, 7.5, s), s)
    else:
        ops = [None] * s
    cols = [v]
    prev = None
    for op in ops:
        w = A @ cols[-1]
        if op is not None and op.kind != "none":
            w = w - op.re * cols[-1]
            if op.kind == "complex_second" and prev is not None:
                w = w + op.im**2 * prev
        prev = cols[-1]
        cols.append(w / np.linalg.norm(w))
    return np.column_stack(cols)


def ill_condition(panel: np.ndarray, spread: float = 1e6) -> np.ndarray:
    """Right-multiply by an upper triangular with geometric diagonal."""
    k = panel.shape[1]
    diag = np.geomspace(1.0, 1.0 / spread, k)
    return panel @ (np.triu(np.ones((k, k))) * diag[None, :])


def run_tsqr(panel: np.ndarray, method: str, n_gpus: int = 2):
    ctx = MultiGpuContext(n_gpus)
    mv, _ = make_dist_multivector(ctx, panel.copy())
    R = tsqr(ctx, mv.panel(0, panel.shape[1]), method=method)
    return gather_multivector(mv), R


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("basis", BASES)
@pytest.mark.parametrize("s", S_VALUES)
class TestOrthogonalityBounds:
    def check(self, panel, method, s):
        kappa = np.linalg.cond(panel)
        try:
            Q, R = run_tsqr(panel, method)
        except CholeskyBreakdown:
            if method == "cholqr" and EPS * kappa**2 > 0.1:
                return  # documented failure mode, adaptive fallback territory
            raise
        k = panel.shape[1]
        orth_err = np.linalg.norm(Q.T @ Q - np.eye(k), 2)
        bound = min(BOUND_CAP, BOUND_CONSTANT * EPS * kappa ** exponent(method, s))
        assert orth_err <= bound, (
            f"{method}: ||QtQ-I||={orth_err:.2e} exceeds "
            f"{bound:.2e} (kappa={kappa:.2e})"
        )
        resid = np.linalg.norm(panel - Q @ R) / np.linalg.norm(panel)
        assert resid <= 1e-13, f"{method}: residual {resid:.2e}"

    def test_well_conditioned(self, method, basis, s):
        self.check(krylov_panel(basis, s), method, s)

    def test_ill_conditioned(self, method, basis, s):
        self.check(ill_condition(krylov_panel(basis, s)), method, s)


class TestBasisConditioning:
    def test_newton_basis_better_conditioned_than_monomial(self):
        # The reason the Newton basis exists (paper Section IV-A): for long
        # bases the monomial panel's conditioning explodes, Newton's doesn't.
        mono = np.linalg.cond(krylov_panel("monomial", 10))
        newt = np.linalg.cond(krylov_panel("newton", 10))
        assert newt < 1e3 < mono


class TestSvqrSurvivesWhereCholqrBreaks:
    def test_svqr_survives_cholqr_breakdown_panel(self):
        # The most hostile panel in the matrix: monomial s=10, kappa ~ 5e11.
        panel = ill_condition(krylov_panel("monomial", 10))
        with pytest.raises(CholeskyBreakdown):
            run_tsqr(panel, "cholqr")
        Q, R = run_tsqr(panel, "svqr")  # must not raise
        assert np.all(np.isfinite(Q)) and np.all(np.isfinite(R))
