"""Property-based tests (hypothesis) for the combined Orth step."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.context import MultiGpuContext
from repro.orth.blockorth import orthogonalize_block

from ..conftest import gather_multivector, make_dist_multivector


@st.composite
def orth_problems(draw):
    n = draw(st.integers(20, 80))
    j = draw(st.integers(0, 6))
    k = draw(st.integers(1, 5))
    n_gpus = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**31 - 1))
    # CAQR needs local blocks at least k rows tall.
    if n < n_gpus * (j + k) + n_gpus:
        n = n_gpus * (j + k) + n_gpus
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, max(j, 1))))
    Q = Q[:, :j]
    V = rng.standard_normal((n, k))
    return Q, V, n_gpus


@settings(max_examples=30, deadline=None)
@given(
    orth_problems(),
    st.sampled_from(["cholqr", "cgs", "mgs", "svqr", "caqr"]),
    st.sampled_from(["cgs", "mgs"]),
    st.integers(1, 2),
)
def test_blockorth_decomposition_invariants(problem, tsqr_method, borth_method, reorth):
    """For any previous basis, panel, device count, methods, and reorth:

    V = Q C + Q_new R,  Q_new orthonormal,  Q^T Q_new = 0,  R upper tri.
    """
    Q, V, n_gpus = problem
    j, k = Q.shape[1], V.shape[1]
    ctx = MultiGpuContext(n_gpus)
    mv, _ = make_dist_multivector(ctx, np.hstack([Q, V]) if j else V.copy())
    q_panels = mv.panel(0, j) if j else None
    v_panels = mv.panel(j, j + k)
    res = orthogonalize_block(
        ctx, q_panels, v_panels,
        tsqr_method=tsqr_method, borth_method=borth_method, reorth=reorth,
    )
    full = gather_multivector(mv)
    Q_new = full[:, j : j + k]
    # Reconstruction.
    np.testing.assert_allclose(
        (Q @ res.C if j else 0) + Q_new @ res.R, V, atol=1e-8
    )
    # Orthonormality of the new block.
    np.testing.assert_allclose(Q_new.T @ Q_new, np.eye(k), atol=1e-8)
    # Orthogonality to the previous basis.
    if j:
        np.testing.assert_allclose(Q.T @ Q_new, np.zeros((j, k)), atol=1e-8)
    # R upper triangular with positive diagonal.
    np.testing.assert_allclose(res.R, np.triu(res.R), atol=0)
    assert np.all(np.diag(res.R) > 0)
