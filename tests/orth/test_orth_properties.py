"""Property-based tests (hypothesis) for the orthogonalization kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.context import MultiGpuContext
from repro.orth.tsqr import tsqr

from ..conftest import gather_multivector, make_dist_multivector


@st.composite
def panels(draw):
    n = draw(st.integers(12, 80))
    k = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, k))


@settings(max_examples=25, deadline=None)
@given(panels(), st.sampled_from(["mgs", "cgs", "cholqr", "svqr"]))
def test_tsqr_invariants_random_panels(V, method):
    """For any random (well-conditioned w.h.p.) panel: V = QR, Q^T Q = I,
    R upper triangular with positive diagonal."""
    ctx = MultiGpuContext(2)
    mv, _ = make_dist_multivector(ctx, V.copy())
    R = tsqr(ctx, mv.panel(0, V.shape[1]), method=method)
    Q = gather_multivector(mv)
    k = V.shape[1]
    assert np.linalg.norm(Q @ R - V) <= 1e-8 * max(np.linalg.norm(V), 1.0)
    assert np.linalg.norm(Q.T @ Q - np.eye(k)) < 1e-8
    assert np.allclose(R, np.triu(R))
    assert np.all(np.diag(R) > 0)


@settings(max_examples=20, deadline=None)
@given(panels())
def test_tsqr_methods_produce_same_r(V):
    """All variants factor the same panel: R agrees across methods."""
    rs = []
    for method in ("mgs", "cholqr", "caqr"):
        ctx = MultiGpuContext(1)
        mv, _ = make_dist_multivector(ctx, V.copy())
        if V.shape[0] < V.shape[1]:
            pytest.skip("panel not tall")
        rs.append(tsqr(ctx, mv.panel(0, V.shape[1]), method=method))
    np.testing.assert_allclose(rs[0], rs[1], atol=1e-7)
    np.testing.assert_allclose(rs[0], rs[2], atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(panels(), st.integers(1, 3))
def test_tsqr_device_count_invariance(V, n_gpus):
    """R must not depend on how rows are distributed."""
    if V.shape[0] < n_gpus * V.shape[1]:
        pytest.skip("blocks too short for CAQR-style distribution")
    results = []
    for g in (1, n_gpus):
        ctx = MultiGpuContext(g)
        mv, _ = make_dist_multivector(ctx, V.copy())
        results.append(tsqr(ctx, mv.panel(0, V.shape[1]), method="cholqr"))
    np.testing.assert_allclose(results[0], results[1], atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_scaling_equivariance(seed, k):
    """TSQR(alpha V) gives (Q, alpha R)."""
    rng = np.random.default_rng(seed)
    V = rng.standard_normal((30, k))
    alpha = 3.5
    r_factors = []
    for scale in (1.0, alpha):
        ctx = MultiGpuContext(1)
        mv, _ = make_dist_multivector(ctx, scale * V)
        r_factors.append(tsqr(ctx, mv.panel(0, k), method="cholqr"))
    np.testing.assert_allclose(alpha * r_factors[0], r_factors[1], rtol=1e-9)
