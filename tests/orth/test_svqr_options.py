"""Tests for SVQR's options and the Gram-methods' variant plumbing."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.matrices.random_sparse import well_conditioned_tall_skinny
from repro.orth.errors import OrthogonalizationError
from repro.orth.svqr import tsqr_svqr
from repro.orth.cholqr import tsqr_cholqr

from ..conftest import gather_multivector, make_dist_multivector


def run(fn, V, **kwargs):
    ctx = MultiGpuContext(2)
    mv, _ = make_dist_multivector(ctx, V.copy())
    R = fn(ctx, mv.panel(0, V.shape[1]), **kwargs)
    return gather_multivector(mv), R


class TestSvqrOptions:
    def test_scaling_improves_elementwise_behavior(self, rng):
        """The paper's [20] fix: diagonal scaling of the Gram matrix."""
        # Badly column-scaled panel: without Gram scaling the SVD mixes
        # scales and the factorization error of small columns degrades.
        V = well_conditioned_tall_skinny(400, 6, condition=100.0, seed=2)
        V = V * np.geomspace(1.0, 1e6, 6)[None, :]
        Q_scaled, R_scaled = run(tsqr_svqr, V, scale_gram=True)
        Q_raw, R_raw = run(tsqr_svqr, V, scale_gram=False)
        def col_err(Q, R):
            E = V - Q @ R
            return np.max(
                np.linalg.norm(E, axis=0) / np.linalg.norm(V, axis=0)
            )
        assert col_err(Q_scaled, R_scaled) <= 10 * col_err(Q_raw, R_raw)
        # And the scaled variant reconstructs each column to high accuracy.
        assert col_err(Q_scaled, R_scaled) < 1e-10

    def test_clamp_controls_rank_deficiency(self, rng):
        V = rng.standard_normal((60, 4))
        V[:, 3] = 2.0 * V[:, 1]  # exactly dependent
        Q, R = run(tsqr_svqr, V, clamp=1e-13)
        assert np.all(np.isfinite(Q)) and np.all(np.isfinite(R))
        np.testing.assert_allclose(Q @ R, V, atol=1e-9)

    def test_zero_column_rejected(self):
        V = np.zeros((20, 3))
        V[:, 0] = 1.0
        with pytest.raises(OrthogonalizationError, match="non-positive"):
            run(tsqr_svqr, V)

    def test_cublas_variant_same_numbers(self, rng):
        V = rng.standard_normal((50, 5))
        _, R_batched = run(tsqr_svqr, V, variant="batched")
        _, R_cublas = run(tsqr_svqr, V, variant="cublas")
        np.testing.assert_allclose(R_batched, R_cublas, atol=1e-12)


class TestCholqrVariants:
    def test_cublas_variant_same_numbers(self, rng):
        V = rng.standard_normal((50, 5))
        _, R_a = run(tsqr_cholqr, V, variant="batched")
        _, R_b = run(tsqr_cholqr, V, variant="cublas")
        np.testing.assert_allclose(R_a, R_b, atol=1e-12)

    def test_cublas_variant_slower_in_model(self, rng):
        V = rng.standard_normal((200_000, 30))
        times = {}
        for variant in ("batched", "cublas"):
            ctx = MultiGpuContext(1)
            mv, _ = make_dist_multivector(ctx, V.copy())
            ctx.reset_clocks()
            tsqr_cholqr(ctx, mv.panel(0, 30), variant=variant)
            times[variant] = ctx.current_time()
        assert times["cublas"] > 1.5 * times["batched"]
