"""Tests for autotuned kernel selection in TSQR (variant="auto")."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.orth.tsqr import _resolve_auto_variant, tsqr

from ..conftest import gather_multivector, make_dist_multivector


class TestAutoVariant:
    def test_cholqr_auto_picks_batched_for_wide_panels(self):
        ctx = MultiGpuContext(3)
        assert _resolve_auto_variant(ctx, "cholqr", 300_000, 30) == "batched"

    def test_cgs_auto_picks_magma(self):
        ctx = MultiGpuContext(2)
        assert _resolve_auto_variant(ctx, "cgs", 300_000, 20) == "magma"

    def test_mgs_auto_falls_back_to_only_variant(self):
        ctx = MultiGpuContext(1)
        assert _resolve_auto_variant(ctx, "mgs", 10_000, 5) == "cublas"

    @pytest.mark.parametrize("method", ["cholqr", "cgs", "svqr", "mgs", "caqr"])
    def test_auto_numerically_identical_to_default(self, method, rng):
        V = rng.standard_normal((60, 6))
        results = {}
        for variant in (None, "auto"):
            ctx = MultiGpuContext(2)
            mv, _ = make_dist_multivector(ctx, V.copy())
            R = tsqr(ctx, mv.panel(0, 6), method=method, variant=variant)
            results[variant] = (gather_multivector(mv), R)
        np.testing.assert_allclose(results[None][1], results["auto"][1], atol=1e-12)
        np.testing.assert_allclose(results[None][0], results["auto"][0], atol=1e-12)

    def test_solver_accepts_auto(self):
        from repro.core.ca_gmres import ca_gmres
        from repro.matrices import poisson2d

        A = poisson2d(10)
        r = ca_gmres(
            A, np.ones(A.n_rows), s=5, m=10, tol=1e-6,
            tsqr_method="cholqr", tsqr_variant="auto",
        )
        assert r.converged


class TestDriverInputValidation:
    def test_gmres_rejects_nan_rhs(self):
        from repro.core.gmres import gmres
        from repro.matrices import poisson2d

        A = poisson2d(4)
        b = np.ones(16)
        b[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            gmres(A, b, m=4)

    def test_ca_gmres_rejects_inf_rhs(self):
        from repro.core.ca_gmres import ca_gmres
        from repro.matrices import poisson2d

        A = poisson2d(4)
        b = np.ones(16)
        b[0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            ca_gmres(A, b, s=2, m=4)
