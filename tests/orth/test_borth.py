"""Tests for block orthogonalization (BOrth) and the combined Orth step."""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.orth.blockorth import orthogonalize_block
from repro.orth.borth import borth

from ..conftest import gather_multivector, make_dist_multivector


def setup_panels(ctx, rng, n=60, j=5, k=4):
    """An orthonormal Q (j cols) and a random panel V (k cols)."""
    Q_dense, _ = np.linalg.qr(rng.standard_normal((n, j)))
    V_dense = rng.standard_normal((n, k))
    full = np.hstack([Q_dense, V_dense])
    mv, part = make_dist_multivector(ctx, full)
    return mv, part, Q_dense, V_dense, j, k


class TestBorthMethods:
    @pytest.mark.parametrize("method", ["cgs", "mgs"])
    def test_projection_coefficients(self, method, rng, ctx):
        mv, _, Q, V, j, k = setup_panels(ctx, rng)
        C = borth(ctx, mv.panel(0, j), mv.panel(j, j + k), method=method)
        np.testing.assert_allclose(C, Q.T @ V, atol=1e-12)

    @pytest.mark.parametrize("method", ["cgs", "mgs"])
    def test_panel_orthogonal_to_basis_after(self, method, rng, ctx):
        mv, _, Q, V, j, k = setup_panels(ctx, rng)
        borth(ctx, mv.panel(0, j), mv.panel(j, j + k), method=method)
        result = gather_multivector(mv)[:, j : j + k]
        np.testing.assert_allclose(Q.T @ result, np.zeros((j, k)), atol=1e-12)

    @pytest.mark.parametrize("method", ["cgs", "mgs"])
    def test_reconstruction(self, method, rng, ctx1):
        mv, _, Q, V, j, k = setup_panels(ctx1, rng)
        C = borth(ctx1, mv.panel(0, j), mv.panel(j, j + k), method=method)
        W = gather_multivector(mv)[:, j : j + k]
        np.testing.assert_allclose(Q @ C + W, V, atol=1e-12)

    def test_methods_agree(self, rng):
        ctx_a, ctx_b = MultiGpuContext(2), MultiGpuContext(2)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        mv_a, _, _, _, j, k = setup_panels(ctx_a, rng_a)
        mv_b, _, _, _, _, _ = setup_panels(ctx_b, rng_b)
        C_a = borth(ctx_a, mv_a.panel(0, j), mv_a.panel(j, j + k), method="cgs")
        C_b = borth(ctx_b, mv_b.panel(0, j), mv_b.panel(j, j + k), method="mgs")
        np.testing.assert_allclose(C_a, C_b, atol=1e-12)

    def test_unknown_method(self, rng, ctx1):
        mv, _, _, _, j, k = setup_panels(ctx1, rng)
        with pytest.raises(ValueError, match="unknown BOrth"):
            borth(ctx1, mv.panel(0, j), mv.panel(j, j + k), method="nope")

    def test_cgs_communication_constant_in_j(self, rng):
        """Block CGS: 2 phases regardless of how many previous vectors."""
        for j in (2, 8):
            ctx = MultiGpuContext(2)
            mv, _, _, _, _, k = setup_panels(ctx, rng, j=j)
            ctx.counters.reset()
            borth(ctx, mv.panel(0, j), mv.panel(j, j + k), method="cgs")
            assert ctx.counters.total_messages == 2 * 2  # 2 phases x 2 devices

    def test_mgs_communication_linear_in_j(self, rng):
        """Column-wise MGS: j phases (Section V-A: BOrth communicates j times)."""
        counts = {}
        for j in (2, 6):
            ctx = MultiGpuContext(2)
            mv, _, _, _, _, k = setup_panels(ctx, rng, j=j)
            ctx.counters.reset()
            borth(ctx, mv.panel(0, j), mv.panel(j, j + k), method="mgs")
            counts[j] = ctx.counters.total_messages
        assert counts[6] == 3 * counts[2]


class TestOrthogonalizeBlock:
    @pytest.mark.parametrize("tsqr_method", ["cholqr", "cgs", "caqr"])
    def test_full_decomposition(self, tsqr_method, rng, ctx):
        mv, _, Q, V, j, k = setup_panels(ctx, rng)
        res = orthogonalize_block(
            ctx, mv.panel(0, j), mv.panel(j, j + k), tsqr_method=tsqr_method
        )
        Q_new = gather_multivector(mv)[:, j : j + k]
        np.testing.assert_allclose(Q @ res.C + Q_new @ res.R, V, atol=1e-11)
        np.testing.assert_allclose(Q_new.T @ Q_new, np.eye(k), atol=1e-11)
        np.testing.assert_allclose(Q.T @ Q_new, np.zeros((j, k)), atol=1e-11)

    def test_first_block_no_previous(self, rng, ctx1):
        V = rng.standard_normal((30, 4))
        mv, _ = make_dist_multivector(ctx1, V)
        res = orthogonalize_block(ctx1, None, mv.panel(0, 4))
        assert res.C.shape == (0, 4)
        Q_new = gather_multivector(mv)
        np.testing.assert_allclose(Q_new @ res.R, V, atol=1e-12)

    def test_reorth_improves_orthogonality(self, rng, ctx1):
        from repro.matrices.random_sparse import well_conditioned_tall_skinny

        n, j, k = 300, 4, 6
        Q_dense, _ = np.linalg.qr(rng.standard_normal((n, j)))
        V_dense = well_conditioned_tall_skinny(n, k, condition=3e4, seed=3)
        # Mix in components along Q so BOrth has real work to do.
        V_dense = V_dense + Q_dense @ rng.standard_normal((j, k))
        errs = {}
        for reorth in (1, 2):
            mv, _ = make_dist_multivector(ctx1, np.hstack([Q_dense, V_dense]))
            res = orthogonalize_block(
                ctx1,
                mv.panel(0, j),
                mv.panel(j, j + k),
                tsqr_method="cgs",
                reorth=reorth,
            )
            full = gather_multivector(mv)
            errs[reorth] = np.linalg.norm(
                np.eye(j + k) - full.T @ full
            )
            # decomposition holds for both
            np.testing.assert_allclose(
                Q_dense @ res.C + full[:, j:] @ res.R, V_dense, atol=1e-9
            )
        assert errs[2] <= errs[1]

    def test_invalid_reorth(self, rng, ctx1):
        mv, _, _, _, j, k = setup_panels(ctx1, rng)
        with pytest.raises(ValueError):
            orthogonalize_block(ctx1, mv.panel(0, j), mv.panel(j, j + k), reorth=0)
