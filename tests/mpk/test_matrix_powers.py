"""Tests for the executable matrix powers kernel."""

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.matrices import poisson2d, g3_circuit
from repro.matrices.random_sparse import random_sparse
from repro.mpk.matrix_powers import MatrixPowersKernel
from repro.mpk.shifts import ShiftOp
from repro.order import kway_partition
from repro.order.partition import block_row_partition


def run_mpk(A, n_gpus, s, v0, shift_ops=None, partition=None):
    ctx = MultiGpuContext(n_gpus)
    part = partition or block_row_partition(A.n_rows, n_gpus)
    mpk = MatrixPowersKernel(ctx, A, part, s)
    V = DistMultiVector(ctx, part, s + 1)
    V.set_column_from_host(0, v0)
    mpk.run(V, 0, shift_ops)
    return ctx, mpk, V


class TestMonomialCorrectness:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    @pytest.mark.parametrize("s", [1, 2, 5])
    def test_matches_repeated_spmv(self, n_gpus, s, rng):
        A = poisson2d(8)
        v0 = rng.standard_normal(A.n_rows)
        _, _, V = run_mpk(A, n_gpus, s, v0)
        ref = v0.copy()
        for k in range(1, s + 1):
            ref = A.matvec(ref)
            np.testing.assert_allclose(
                V.gather_column_to_host(k), ref, rtol=1e-13, atol=1e-13
            )

    def test_unsymmetric_matrix(self, rng):
        A = random_sparse(50, 4.0, seed=9)
        v0 = rng.standard_normal(50)
        _, _, V = run_mpk(A, 2, 4, v0)
        ref = v0.copy()
        for k in range(1, 5):
            ref = A.matvec(ref)
            np.testing.assert_allclose(
                V.gather_column_to_host(k), ref, rtol=1e-11, atol=1e-11
            )

    def test_kway_partition(self, rng):
        A = g3_circuit(nx=14, ny=14)
        part = kway_partition(A, 3)
        v0 = rng.standard_normal(A.n_rows)
        _, _, V = run_mpk(A, 3, 3, v0, partition=part)
        ref = v0.copy()
        for k in range(1, 4):
            ref = A.matvec(ref)
            np.testing.assert_allclose(
                V.gather_column_to_host(k), ref, rtol=1e-12, atol=1e-12
            )

    def test_repeated_invocations(self, rng):
        # MPK is called once per block within a restart loop; buffers must
        # not leak state between invocations.
        A = poisson2d(6)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        mpk = MatrixPowersKernel(ctx, A, part, 2)
        V = DistMultiVector(ctx, part, 5)
        v0 = rng.standard_normal(A.n_rows)
        V.set_column_from_host(0, v0)
        mpk.run(V, 0)
        mpk.run(V, 2)
        ref = v0.copy()
        for k in range(1, 5):
            ref = A.matvec(ref)
            np.testing.assert_allclose(
                V.gather_column_to_host(k), ref, rtol=1e-12, atol=1e-12
            )


class TestNewtonBasis:
    def test_real_shifts(self, rng):
        A = poisson2d(6)
        v0 = rng.standard_normal(A.n_rows)
        ops = [ShiftOp("real", re=1.5), ShiftOp("real", re=-0.5), ShiftOp("real", re=2.0)]
        _, _, V = run_mpk(A, 2, 3, v0, shift_ops=ops)
        ref = v0.copy()
        for op in ops:
            ref = A.matvec(ref) - op.re * ref
        np.testing.assert_allclose(
            V.gather_column_to_host(3), ref, rtol=1e-12, atol=1e-12
        )

    def test_complex_pair(self, rng):
        A = poisson2d(6)
        v0 = rng.standard_normal(A.n_rows)
        re, im = 1.2, 0.7
        ops = [
            ShiftOp("complex_first", re=re, im=im),
            ShiftOp("complex_second", re=re, im=im),
        ]
        _, _, V = run_mpk(A, 3, 2, v0, shift_ops=ops)
        v1 = A.matvec(v0) - re * v0
        v2 = A.matvec(v1) - re * v1 + im**2 * v0
        np.testing.assert_allclose(V.gather_column_to_host(1), v1, atol=1e-12)
        np.testing.assert_allclose(V.gather_column_to_host(2), v2, atol=1e-12)

    def test_complex_pair_spans_shifted_product(self, rng):
        # (A - re)^2 + im^2 == (A - theta)(A - conj(theta)) applied to v0.
        A = poisson2d(5)
        v0 = rng.standard_normal(A.n_rows)
        re, im = 0.9, 1.3
        ops = [
            ShiftOp("complex_first", re=re, im=im),
            ShiftOp("complex_second", re=re, im=im),
        ]
        _, _, V = run_mpk(A, 1, 2, v0, shift_ops=ops)
        dense = A.to_dense()
        theta = complex(re, im)
        M = (dense - theta * np.eye(dense.shape[0])) @ (
            dense - np.conj(theta) * np.eye(dense.shape[0])
        )
        np.testing.assert_allclose(
            V.gather_column_to_host(2), (M @ v0).real, atol=1e-11
        )

    def test_bad_pairing_rejected(self, rng):
        A = poisson2d(4)
        v0 = rng.standard_normal(A.n_rows)
        with pytest.raises(ValueError, match="complex_first"):
            run_mpk(A, 1, 2, v0, shift_ops=[
                ShiftOp("complex_first", re=1.0, im=1.0),
                ShiftOp("real", re=0.0),
            ])
        with pytest.raises(ValueError, match="dangling"):
            run_mpk(A, 1, 1, v0, shift_ops=[ShiftOp("complex_first", re=1.0, im=1.0)])


class TestCommunication:
    def test_single_exchange_phase(self):
        """MPK communicates once per invocation regardless of s."""
        A = poisson2d(8)
        for s in (1, 3, 6):
            ctx = MultiGpuContext(3)
            part = block_row_partition(A.n_rows, 3)
            mpk = MatrixPowersKernel(ctx, A, part, s)
            V = DistMultiVector(ctx, part, s + 1)
            V.set_column_from_host(0, np.ones(A.n_rows))
            ctx.counters.reset()
            mpk.run(V, 0)
            # at most one d2h + one h2d per device, independent of s
            assert ctx.counters.d2h_messages <= 3
            assert ctx.counters.h2d_messages <= 3

    def test_boundary_grows_with_s(self):
        A = poisson2d(10)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        sizes = []
        for s in (1, 2, 4):
            mpk = MatrixPowersKernel(ctx, A, part, s)
            sizes.append(sum(mpk.boundary_sizes()))
        assert sizes[0] < sizes[1] < sizes[2]

    def test_extra_nnz_positive_for_multi_gpu(self):
        A = poisson2d(8)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        mpk = MatrixPowersKernel(ctx, A, part, 3)
        assert all(x >= 0 for x in mpk.extra_nnz())
        assert sum(mpk.extra_nnz()) > 0

    def test_errors(self):
        A = poisson2d(4)
        ctx = MultiGpuContext(1)
        part = block_row_partition(A.n_rows, 1)
        with pytest.raises(ValueError):
            MatrixPowersKernel(ctx, A, part, 0)
        mpk = MatrixPowersKernel(ctx, A, part, 2)
        V = DistMultiVector(ctx, part, 2)  # too few columns
        with pytest.raises(IndexError):
            mpk.run(V, 0)
        V3 = DistMultiVector(ctx, part, 3)
        with pytest.raises(ValueError, match="shift ops"):
            mpk.run(V3, 0, [ShiftOp("none")])


class TestClosureValidation:
    """The per-device remap must reject columns outside the extended set."""

    def _truncated_deps(self, A, part, s):
        """Real dependencies, with device 1's last boundary shell row
        dropped — a closure violation.  The dropped row is owned by
        device 0, so it sits in device 0's extended set: a lookup scratch
        left over from device 0 maps it to an in-range (but wrong) slot,
        which is exactly the masking the reset guards against."""
        from repro.mpk.dependency import MpkDependency, compute_dependencies

        deps = list(compute_dependencies(A, part, s))
        dep = deps[1]
        assert dep.deltas[0].size > 1
        cut = dep.deltas[0][:-1]
        deps[1] = MpkDependency(
            owned=dep.owned,
            deltas=(cut,) + dep.deltas[1:],
            ext_rows=np.concatenate([dep.owned, cut] + list(dep.deltas[1:])),
            s=s,
        )
        return deps

    def test_closure_violation_detected(self, monkeypatch):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        bad = self._truncated_deps(A, part, 1)
        monkeypatch.setattr(
            "repro.mpk.matrix_powers.compute_dependencies",
            lambda *a, **k: bad,
        )
        ctx = MultiGpuContext(2)
        with pytest.raises(AssertionError, match="closure violated.*gpu1"):
            MatrixPowersKernel(ctx, A, part, 1)

    def test_valid_closure_accepted(self):
        A = poisson2d(6)
        ctx = MultiGpuContext(2)
        part = block_row_partition(A.n_rows, 2)
        MatrixPowersKernel(ctx, A, part, 3)  # must not raise


class TestCostAccounting:
    def test_halo_placement_copies_charged(self):
        """Every element entering the extended vector is a charged copy:
        one own-part copy plus one halo copy per device with a nonempty
        boundary, plus one result copy per generated column."""
        A = poisson2d(8)
        s = 3
        ctx = MultiGpuContext(3)
        part = block_row_partition(A.n_rows, 3)
        mpk = MatrixPowersKernel(ctx, A, part, s)
        V = DistMultiVector(ctx, part, s + 1)
        V.set_column_from_host(0, np.ones(A.n_rows))
        ctx.reset_clocks()
        ctx.counters.reset()
        mpk.run(V, 0)
        halo_devices = sum(1 for b in mpk.boundary_sizes() if b > 0)
        senders = sum(1 for s_ in mpk.exchange.send_local if s_.size > 0)
        # Per device: one gather-compress copy (senders only), one own-part
        # copy, one halo-placement copy (halo devices only), s result copies.
        expected = senders + 3 * (1 + s) + halo_devices
        assert ctx.counters.kernel_counts["copy/cublas"] == expected
        assert halo_devices > 0  # the fix is actually exercised
