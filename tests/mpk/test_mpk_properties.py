"""Property-based tests (hypothesis) for the matrix powers kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.mpk.dependency import compute_dependencies
from repro.mpk.matrix_powers import MatrixPowersKernel
from repro.mpk.shifts import ShiftOp
from repro.order.partition import Partition, block_row_partition
from repro.sparse.coo import CooMatrix


@st.composite
def sparse_systems(draw):
    """A random square matrix with a random partition."""
    n = draw(st.integers(6, 40))
    nnz = draw(st.integers(n, 5 * n))
    seed = draw(st.integers(0, 2**31 - 1))
    n_parts = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    rows = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, nnz)])
    vals = rng.standard_normal(rows.size) * 0.3
    vals[:n] += 2.0  # keep powers from overflowing immediately
    matrix = CooMatrix((n, n), rows, cols, vals).to_csr()
    kind = draw(st.sampled_from(["block", "random"]))
    if kind == "block":
        partition = block_row_partition(n, n_parts)
    else:
        partition = Partition(rng.integers(0, n_parts, n), n_parts)
    return matrix, partition, seed


@settings(max_examples=30, deadline=None)
@given(sparse_systems(), st.integers(1, 4))
def test_mpk_equals_repeated_spmv(system, s):
    """For ANY matrix/partition/s, MPK output == s sequential SpMVs."""
    matrix, partition, seed = system
    ctx = MultiGpuContext(partition.n_parts)
    mpk = MatrixPowersKernel(ctx, matrix, partition, s)
    V = DistMultiVector(ctx, partition, s + 1)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(matrix.n_rows)
    V.set_column_from_host(0, v0)
    mpk.run(V, 0)
    ref = v0
    for k in range(1, s + 1):
        ref = matrix.matvec(ref)
        got = V.gather_column_to_host(k)
        scale = max(np.abs(ref).max(), 1.0)
        np.testing.assert_allclose(got, ref, atol=1e-9 * scale)


@settings(max_examples=30, deadline=None)
@given(sparse_systems(), st.integers(1, 4))
def test_dependency_invariants(system, s):
    """Structural invariants of the boundary sets for any input."""
    matrix, partition, _ = system
    deps = compute_dependencies(matrix, partition, s)
    n = matrix.n_rows
    covered = np.zeros(n, dtype=int)
    for d, dep in enumerate(deps):
        covered[dep.owned] += 1
        # ext_rows has no duplicates and owned come first.
        assert np.unique(dep.ext_rows).size == dep.ext_rows.size
        np.testing.assert_array_equal(dep.ext_rows[: dep.n_owned], dep.owned)
        # shells are disjoint from owned rows and each other.
        all_shell = np.concatenate([*dep.deltas]) if dep.deltas else np.empty(0)
        assert np.unique(all_shell).size == all_shell.size
        assert not np.isin(all_shell, dep.owned).any()
        # i-sizes are consistent with the shell sizes.
        assert dep.i_size(1) == dep.ext_rows.size
        assert dep.i_size(s + 1) == dep.n_owned
    # Every row is owned by exactly one device.
    np.testing.assert_array_equal(covered, np.ones(n, dtype=int))


@settings(max_examples=20, deadline=None)
@given(sparse_systems(), st.integers(1, 3),
       st.floats(-2.0, 2.0, allow_nan=False))
def test_newton_shift_linearity(system, s, theta):
    """Real-shifted MPK equals MPK of the shifted matrix (monomial)."""
    matrix, partition, seed = system
    shifted = matrix.add_scaled_identity(-theta)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(matrix.n_rows)

    def run(mat, ops):
        ctx = MultiGpuContext(partition.n_parts)
        mpk = MatrixPowersKernel(ctx, mat, partition, s)
        V = DistMultiVector(ctx, partition, s + 1)
        V.set_column_from_host(0, v0)
        mpk.run(V, 0, ops)
        return V.gather_column_to_host(s)

    newton = run(matrix, [ShiftOp("real", re=theta)] * s)
    monomial_shifted = run(shifted, [ShiftOp("none")] * s)
    scale = max(np.abs(monomial_shifted).max(), 1.0)
    np.testing.assert_allclose(newton, monomial_shifted, atol=1e-9 * scale)
