"""Tests for MPK structural analysis (Figs. 6-7 metrics)."""

import numpy as np
import pytest

from repro.matrices import poisson2d, g3_circuit, cant
from repro.mpk.analysis import (
    communication_volume,
    computational_overhead,
    mpk_structure_report,
    spmv_communication_volume,
    surface_to_volume,
)
from repro.order import kway_partition, rcm
from repro.order.partition import block_row_partition


class TestSurfaceToVolume:
    def test_grows_with_s(self):
        A = poisson2d(12)
        part = block_row_partition(A.n_rows, 3)
        ratios = [np.mean(surface_to_volume(A, part, s)) for s in (1, 2, 4, 6)]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_single_device_zero(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 1)
        assert surface_to_volume(A, part, 3) == [0.0]

    def test_banded_matrix_linear_growth(self):
        """cant's banded structure: surface grows ~linearly in s (Fig. 6)."""
        A = cant(nx=16, ny=4, nz=4)
        part = block_row_partition(A.n_rows, 3)
        r = [np.mean(surface_to_volume(A, part, s)) for s in (1, 2, 3, 4)]
        increments = np.diff(r)
        # near-constant increments => linear growth
        assert increments.max() / max(increments.min(), 1e-12) < 2.5

    def test_ordering_reduces_surface_for_scrambled_graph(self):
        """Fig. 6 left: natural ordering of G3_circuit is catastrophic;
        RCM and KWY shrink the surface dramatically."""
        A = g3_circuit(nx=20, ny=20)
        n = A.n_rows
        s = 3
        natural = np.mean(surface_to_volume(A, block_row_partition(n, 3), s))
        rcm_mat = A.permute(rcm(A))
        with_rcm = np.mean(surface_to_volume(rcm_mat, block_row_partition(n, 3), s))
        kwy = np.mean(surface_to_volume(A, kway_partition(A, 3), s))
        assert with_rcm < natural / 2
        assert kwy < natural / 2


class TestComputationalOverhead:
    def test_positive_and_growing(self):
        A = poisson2d(10)
        part = block_row_partition(A.n_rows, 2)
        w = [np.mean(computational_overhead(A, part, s)) for s in (1, 2, 4)]
        assert 0 < w[0] < w[1] < w[2]

    def test_superlinear_in_s_for_linear_surface(self):
        """If the surface grows linearly, W(s) is ~quadratic (Sec. IV-B)."""
        A = cant(nx=16, ny=4, nz=4)
        part = block_row_partition(A.n_rows, 2)
        w2 = np.mean(computational_overhead(A, part, 2))
        w4 = np.mean(computational_overhead(A, part, 4))
        assert w4 > 2.5 * w2


class TestCommunicationVolume:
    def test_s1_equals_spmv(self):
        A = poisson2d(8)
        part = block_row_partition(A.n_rows, 3)
        assert communication_volume(A, part, 1, 60) == spmv_communication_volume(
            A, part, 60
        )

    def test_volume_decreases_in_calls_but_grows_in_payload(self):
        # Per-invocation payload grows with s; number of invocations drops.
        A = poisson2d(10)
        part = block_row_partition(A.n_rows, 2)
        v1 = communication_volume(A, part, 1, 60)
        v5 = communication_volume(A, part, 5, 60)
        assert v5 > 0
        # For a 1-wide band, |delta(1:s)| ~ s so total volume ~ constant.
        assert v5 < 3 * v1

    def test_ceil_division_of_m(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        # m=10, s=4 -> 3 invocations
        v = communication_volume(A, part, 4, 10)
        per_call = communication_volume(A, part, 4, 4)
        assert v == pytest.approx(3 * per_call)

    def test_invalid_m(self):
        A = poisson2d(4)
        with pytest.raises(ValueError):
            communication_volume(A, block_row_partition(A.n_rows, 2), 2, 0)


class TestStructureReport:
    def test_report_keys_and_lengths(self):
        A = poisson2d(8)
        part = block_row_partition(A.n_rows, 2)
        rep = mpk_structure_report(A, part, [1, 2, 3], m=30)
        assert rep["s"] == [1, 2, 3]
        for key in (
            "surface_to_volume_mean",
            "surface_to_volume_max",
            "overhead_per_restart",
            "comm_volume",
        ):
            assert len(rep[key]) == 3

    def test_max_at_least_mean(self):
        A = poisson2d(8)
        part = block_row_partition(A.n_rows, 3)
        rep = mpk_structure_report(A, part, [2, 4], m=20)
        for mx, mean in zip(
            rep["surface_to_volume_max"], rep["surface_to_volume_mean"]
        ):
            assert mx >= mean - 1e-12
