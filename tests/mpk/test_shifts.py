"""Tests for Newton shifts and Leja ordering."""

import numpy as np
import pytest

from repro.mpk.shifts import (
    ShiftOp,
    leja_order,
    modified_leja_order,
    monomial_shift_ops,
    newton_shift_ops,
)


class TestLejaOrder:
    def test_is_permutation(self):
        pts = np.array([1.0, -2.0, 3.0, 0.5, -1.5], dtype=complex)
        order = leja_order(pts)
        np.testing.assert_array_equal(np.sort(order), np.arange(5))

    def test_first_is_max_modulus(self):
        pts = np.array([1.0, -5.0, 3.0], dtype=complex)
        assert leja_order(pts)[0] == 1

    def test_second_maximizes_distance(self):
        pts = np.array([10.0, 9.9, -10.0], dtype=complex)
        order = leja_order(pts)
        # After 10 (or -10), the farthest point is the opposite extreme.
        assert {order[0], order[1]} == {0, 2}

    def test_empty(self):
        assert leja_order(np.array([], dtype=complex)).size == 0

    def test_single_point(self):
        assert leja_order(np.array([2.0 + 1j])).tolist() == [0]

    def test_consecutive_distances_large(self):
        # Leja keeps consecutive points far apart compared to sorted order.
        rng = np.random.default_rng(5)
        pts = rng.standard_normal(20) + 0j
        ordered = pts[leja_order(pts)]
        leja_min_gap = np.abs(np.diff(ordered[:5])).min()
        sorted_pts = np.sort_complex(pts)
        sorted_min_gap = np.abs(np.diff(sorted_pts[:5])).min()
        assert leja_min_gap > sorted_min_gap


class TestModifiedLejaOrder:
    def test_real_points_preserved(self):
        pts = np.array([3.0, -1.0, 2.0], dtype=complex)
        out = modified_leja_order(pts)
        assert np.all(np.abs(out.imag) < 1e-12)
        np.testing.assert_allclose(np.sort(out.real), [-1.0, 2.0, 3.0])

    def test_conjugate_pairs_adjacent(self):
        pts = np.array([2.0, 1.0 + 1j, 1.0 - 1j, -3.0], dtype=complex)
        out = modified_leja_order(pts)
        # find the complex entry: its conjugate must follow immediately
        for i, z in enumerate(out):
            if z.imag > 1e-12:
                assert np.isclose(out[i + 1], np.conj(z))

    def test_multiset_preserved(self):
        pts = np.array([1 + 2j, 1 - 2j, 3.0, -0.5 + 1j, -0.5 - 1j], dtype=complex)
        out = modified_leja_order(pts)
        np.testing.assert_allclose(
            np.sort_complex(out), np.sort_complex(pts), atol=1e-12
        )

    def test_empty(self):
        assert modified_leja_order(np.array([], dtype=complex)).size == 0


class TestNewtonShiftOps:
    def test_real_only(self):
        ops = newton_shift_ops(np.array([2.0, -1.0, 0.5]), 3)
        assert len(ops) == 3
        assert all(op.kind == "real" for op in ops)

    def test_complex_pairs_expand(self):
        ritz = np.array([1.0 + 1j, 1.0 - 1j, 2.0])
        ops = newton_shift_ops(ritz, 3)
        kinds = [op.kind for op in ops]
        # a pair occupies two adjacent slots
        if "complex_first" in kinds:
            i = kinds.index("complex_first")
            assert kinds[i + 1] == "complex_second"

    def test_recycling_when_s_exceeds_count(self):
        ops = newton_shift_ops(np.array([1.0]), 4)
        assert len(ops) == 4
        assert all(op.re == 1.0 for op in ops)

    def test_pair_never_straddles_end(self):
        ritz = np.array([1.0 + 2j, 1.0 - 2j])
        ops = newton_shift_ops(ritz, 3)  # odd length with only a pair
        assert len(ops) == 3
        assert ops[-1].kind != "complex_first"

    def test_empty_ritz_gives_monomial(self):
        ops = newton_shift_ops(np.array([]), 2)
        assert all(op.kind == "none" for op in ops)

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            newton_shift_ops(np.array([1.0]), 0)


class TestMonomialShiftOps:
    def test_length_and_kind(self):
        ops = monomial_shift_ops(5)
        assert len(ops) == 5
        assert all(op.kind == "none" for op in ops)

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            monomial_shift_ops(0)


class TestShiftOp:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ShiftOp("bogus")
