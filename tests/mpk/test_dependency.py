"""Tests for the MPK boundary-set recursion."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.mpk.dependency import compute_dependencies
from repro.order.partition import Partition, block_row_partition
from repro.sparse.csr import csr_from_dense, eye_csr


def tridiag(n):
    dense = 2.0 * np.eye(n)
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = -1.0
    return csr_from_dense(dense)


class TestBoundarySets:
    def test_tridiagonal_shells_grow_by_one(self):
        # Device 0 owns rows 0..4 of a 10-row tridiagonal matrix: shell k
        # adds exactly one row on the right boundary.
        A = tridiag(10)
        part = block_row_partition(10, 2)
        s = 3
        deps = compute_dependencies(A, part, s)
        dep0 = deps[0]
        np.testing.assert_array_equal(dep0.deltas[0], [5])
        np.testing.assert_array_equal(dep0.deltas[1], [6])
        np.testing.assert_array_equal(dep0.deltas[2], [7])

    def test_shells_are_disjoint_and_foreign(self):
        A = poisson2d(8)
        part = block_row_partition(A.n_rows, 3)
        deps = compute_dependencies(A, part, 4)
        for d, dep in enumerate(deps):
            seen = set(dep.owned.tolist())
            for shell in dep.deltas:
                shell_set = set(shell.tolist())
                assert not (shell_set & seen)
                seen |= shell_set

    def test_ext_rows_level_ordered(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        deps = compute_dependencies(A, part, 3)
        dep = deps[0]
        expected = np.concatenate([dep.owned, *dep.deltas])
        np.testing.assert_array_equal(dep.ext_rows, expected)

    def test_i_sizes_monotone(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        dep = compute_dependencies(A, part, 4)[0]
        sizes = [dep.i_size(k) for k in range(1, 6)]
        assert sizes == sorted(sizes, reverse=True)
        assert dep.i_size(5) == dep.n_owned  # i^(d,s+1) = owned rows

    def test_active_rows_prefix(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        dep = compute_dependencies(A, part, 3)[0]
        # step s computes only owned rows; step 1 computes i^(d,2)
        assert dep.active_rows(3) == dep.n_owned
        assert dep.active_rows(1) == dep.i_size(2)

    def test_delta_range(self):
        A = poisson2d(6)
        part = block_row_partition(A.n_rows, 2)
        dep = compute_dependencies(A, part, 3)[0]
        # delta_range(1) = all shells; delta_range(s) = first shell only
        assert dep.delta_range(1).size == dep.boundary.size
        assert dep.delta_range(3).size == dep.deltas[0].size

    def test_identity_matrix_no_boundary(self):
        deps = compute_dependencies(eye_csr(8), block_row_partition(8, 2), 3)
        for dep in deps:
            assert dep.boundary.size == 0

    def test_shells_match_bfs_distance(self):
        # delta^(d,k) is the distance-(s-k+1) shell from the owned block.
        A = poisson2d(7)
        part = block_row_partition(A.n_rows, 2)
        s = 3
        dep = compute_dependencies(A, part, s)[0]
        dense = A.to_dense() != 0
        reach = set(dep.owned.tolist())
        for level, shell in enumerate(dep.deltas, start=1):
            neighbors = set()
            for i in reach:
                neighbors |= set(np.flatnonzero(dense[i]).tolist())
            expected = neighbors - reach
            assert set(shell.tolist()) == expected
            reach |= expected

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            compute_dependencies(eye_csr(4), block_row_partition(4, 2), 0)

    def test_requires_square(self):
        A = csr_from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            compute_dependencies(A, block_row_partition(2, 1), 1)

    def test_k_out_of_range(self):
        dep = compute_dependencies(eye_csr(4), block_row_partition(4, 2), 2)[0]
        with pytest.raises(ValueError):
            dep.i_size(0)
        with pytest.raises(ValueError):
            dep.active_rows(3)

    def test_directed_structure_used(self):
        # Row 0 reads column 1 but not vice versa: only device 0 needs halo.
        dense = np.array([[1.0, 0.5], [0.0, 1.0]])
        A = csr_from_dense(dense)
        part = Partition(np.array([0, 1]), 2)
        deps = compute_dependencies(A, part, 1)
        assert deps[0].boundary.tolist() == [1]
        assert deps[1].boundary.tolist() == []
