"""Convergence-difficulty regression tests for the suite analogs.

The analogs were tuned so restart counts land near the paper's (DESIGN.md
and Fig. 14): these tests pin that tuning so generator changes that would
silently trivialize (or explode) the experiments are caught.
"""

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.matrices import cant, dielfilter, g3_circuit, nlpkkt


class TestSuiteDifficulty:
    def test_cant_restart_count_near_paper(self):
        """Paper: 7 restarts of GMRES(60) for cant."""
        A = cant(nx=24, ny=8, nz=8)
        r = gmres(A, np.ones(A.n_rows), m=60, tol=1e-4, max_restarts=40)
        assert r.converged
        assert 4 <= r.n_restarts <= 12

    def test_g3_circuit_restart_count_order(self):
        """Paper: 16 restarts of GMRES(30); analog within ~2x at small n."""
        A = g3_circuit(nx=96, ny=96)
        r = gmres(A, np.ones(A.n_rows), m=30, tol=1e-4, max_restarts=60)
        assert r.converged
        assert 4 <= r.n_restarts <= 32

    def test_dielfilter_is_slowest_convergent(self):
        """Paper: 176 restarts of GMRES(180); analog needs several."""
        A = dielfilter()
        r = gmres(A, np.ones(A.n_rows), m=180, tol=1e-4, max_restarts=20)
        assert r.converged
        assert r.n_restarts >= 4

    @pytest.mark.slow
    def test_nlpkkt_hundreds_of_iterations(self):
        """Paper: 746 GMRES(120) iterations; analog needs several hundred."""
        A = nlpkkt(nx=12)
        rng = np.random.default_rng(0)
        r = gmres(A, rng.standard_normal(A.n_rows), m=120, tol=1e-4,
                  max_restarts=20)
        assert r.converged
        assert r.n_iterations >= 200
