"""Tests for the paper-suite registry and spectral property estimation."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.matrices.suite import (
    PAPER_SUITE,
    dominant_ritz_ratio,
    load_suite_matrix,
)


class TestSuiteRegistry:
    def test_all_four_matrices_present(self):
        assert set(PAPER_SUITE) == {"cant", "g3_circuit", "dielfilter", "nlpkkt"}

    @pytest.mark.parametrize("name", sorted(PAPER_SUITE))
    def test_constructors_produce_square_matrices(self, name):
        A, info = load_suite_matrix(name)
        assert A.n_rows == A.n_cols
        assert A.n_rows > 1000  # reduced scale but non-trivial
        assert info.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown suite matrix"):
            load_suite_matrix("bcsstk01")

    @pytest.mark.parametrize("name", sorted(PAPER_SUITE))
    def test_density_close_to_paper(self, name):
        A, info = load_suite_matrix(name)
        measured = A.nnz / A.n_rows
        assert measured == pytest.approx(info.paper_nnz_per_row, rel=0.45)

    def test_parameters_match_paper_tables(self):
        assert PAPER_SUITE["cant"].gmres_m == 60
        assert PAPER_SUITE["g3_circuit"].gmres_m == 30
        assert PAPER_SUITE["dielfilter"].gmres_m == 180
        assert PAPER_SUITE["nlpkkt"].gmres_m == 120
        assert PAPER_SUITE["nlpkkt"].ca_s == 10
        assert PAPER_SUITE["cant"].ordering == "natural"


class TestDominantRitzRatio:
    def test_diagonal_matrix_exact(self):
        from repro.sparse.csr import csr_from_dense

        A = csr_from_dense(np.diag([10.0, 7.0, 3.0, 1.0, 0.5]))
        t1, t2 = dominant_ritz_ratio(A, n_iter=5)
        assert t1 == pytest.approx(10.0, rel=1e-6)
        assert t2 == pytest.approx(7.0, rel=1e-4)

    def test_poisson_close_eigenvalues(self):
        """Large discretizations cluster their top eigenvalues — the
        property that makes the monomial basis ill-conditioned."""
        A = poisson2d(20)
        t1, t2 = dominant_ritz_ratio(A, n_iter=50)
        assert t1 >= t2 > 0
        assert t1 / t2 < 1.05

    def test_ratio_of_suite_matrices_near_one(self):
        A, info = load_suite_matrix("cant")
        t1, t2 = dominant_ritz_ratio(A, n_iter=40)
        # The paper's theta1/theta2 are all within 3% of 1.
        assert 1.0 <= t1 / t2 < 1.2

    def test_too_small_matrix(self):
        from repro.sparse.csr import eye_csr

        with pytest.raises(ValueError):
            dominant_ritz_ratio(eye_csr(1))
