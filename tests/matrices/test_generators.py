"""Tests for the matrix generators."""

import numpy as np
import pytest

from repro.matrices import (
    cant,
    convection_diffusion2d,
    dielfilter,
    g3_circuit,
    nlpkkt,
    poisson2d,
    poisson3d,
    random_banded,
    random_sparse,
    stencil3d,
    well_conditioned_tall_skinny,
)
from repro.order.rcm import matrix_bandwidth


class TestPoisson:
    def test_poisson2d_known_small(self):
        A = poisson2d(2).to_dense()
        expected = np.array(
            [
                [4, -1, -1, 0],
                [-1, 4, 0, -1],
                [-1, 0, 4, -1],
                [0, -1, -1, 4],
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(A, expected)

    def test_poisson2d_symmetric_and_spd(self):
        A = poisson2d(6).to_dense()
        np.testing.assert_array_equal(A, A.T)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_poisson2d_rectangular(self):
        A = poisson2d(3, 5)
        assert A.shape == (15, 15)

    def test_poisson3d_row_sums(self):
        # Interior rows of the Dirichlet Laplacian sum to 0.
        A = poisson3d(5)
        sums = A.matvec(np.ones(A.n_rows))
        center = 2 * 25 + 2 * 5 + 2  # index of an interior node
        assert sums[center] == pytest.approx(0.0)

    def test_poisson3d_nnz_per_row(self):
        A = poisson3d(8)
        assert 6.0 < A.nnz / A.n_rows <= 7.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            poisson2d(0)
        with pytest.raises(ValueError):
            poisson3d(2, 0, 2)


class TestConvectionDiffusion:
    def test_nonsymmetric(self):
        A = convection_diffusion2d(6, wind=(2.0, 1.0)).to_dense()
        assert not np.allclose(A, A.T)

    def test_diagonally_dominant(self):
        A = convection_diffusion2d(6)
        dense = A.to_dense()
        diag = np.abs(np.diag(dense))
        off = np.abs(dense).sum(axis=1) - diag
        assert np.all(diag >= off - 1e-12)

    def test_zero_wind_is_symmetric(self):
        A = convection_diffusion2d(5, wind=(0.0, 0.0)).to_dense()
        np.testing.assert_allclose(A, A.T)


class TestStencil3d:
    def test_multi_dof_block_structure(self):
        A = stencil3d((2, 2, 2), [(0, 0, 0)], [1.0], dofs_per_node=2)
        dense = A.to_dense()
        assert dense.shape == (16, 16)
        # diagonal blocks only
        assert dense[0, 2] == 0.0
        assert dense[0, 1] != 0.0  # intra-node coupling

    def test_custom_coupling(self):
        A = stencil3d(
            (2, 1, 1), [(0, 0, 0)], [2.0], dofs_per_node=2, coupling=np.eye(2)
        )
        np.testing.assert_array_equal(A.to_dense(), 2.0 * np.eye(4))

    def test_offset_validation(self):
        with pytest.raises(ValueError, match="equal lengths"):
            stencil3d((2, 2, 2), [(0, 0, 0)], [1.0, 2.0])


class TestPaperAnalogs:
    def test_cant_shape_and_density(self):
        A = cant()
        assert A.n_rows == 2 * 48 * 10 * 10
        assert 40 <= A.nnz / A.n_rows <= 70  # paper: 64.2, boundary-truncated

    def test_cant_symmetric(self):
        A = cant(nx=6, ny=4, nz=4)
        dense = A.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_cant_naturally_banded(self):
        """cant's defining property (Fig. 6): small natural bandwidth."""
        A = cant(nx=24, ny=5, nz=5)
        assert matrix_bandwidth(A) < A.n_rows / 5

    def test_g3_circuit_density(self):
        A = g3_circuit(nx=40, ny=40)
        assert 4.0 <= A.nnz / A.n_rows <= 5.6  # paper: 4.8

    def test_g3_circuit_scrambled_has_no_locality(self):
        scrambled = g3_circuit(nx=24, ny=24, scramble=True, long_range_fraction=0.0)
        ordered = g3_circuit(nx=24, ny=24, scramble=False, long_range_fraction=0.0)
        assert matrix_bandwidth(scrambled) > 3 * matrix_bandwidth(ordered)

    def test_g3_circuit_spd(self):
        A = g3_circuit(nx=12, ny=12).to_dense()
        np.testing.assert_allclose(A, A.T, atol=1e-12)
        assert np.linalg.eigvalsh(A).min() > 0

    def test_g3_circuit_deterministic(self):
        A = g3_circuit(nx=10, ny=10)
        B = g3_circuit(nx=10, ny=10)
        np.testing.assert_array_equal(A.to_dense(), B.to_dense())

    def test_dielfilter_density(self):
        A = dielfilter()
        assert 30 <= A.nnz / A.n_rows <= 45  # paper: 41.9

    def test_dielfilter_shift_moves_spectrum_toward_indefinite(self):
        """The EM analog pushes part of the spectrum toward/past zero.

        On small grids the unshifted minimum eigenvalue is larger (fewer
        low-frequency modes), so indefiniteness is checked with a larger
        explicit shift; the direction of the shift is the invariant.
        """
        eigs_small = np.linalg.eigvalsh(dielfilter(nx=5, ny=5, nz=5, shift=3.0).to_dense())
        assert eigs_small.min() < 0 < eigs_small.max()
        base = np.linalg.eigvalsh(dielfilter(nx=5, ny=5, nz=5, shift=0.0).to_dense())
        shifted = np.linalg.eigvalsh(dielfilter(nx=5, ny=5, nz=5, shift=1.5).to_dense())
        np.testing.assert_allclose(shifted, base - 1.5, atol=1e-10)

    def test_nlpkkt_density(self):
        A = nlpkkt()
        # paper: 26.9; the analog sits lower because boundary truncation
        # on an 18^3 grid trims ~25% of the 27-point stencil.
        assert 15 <= A.nnz / A.n_rows <= 32

    def test_nlpkkt_symmetric_indefinite(self):
        A = nlpkkt(nx=4, ny=4, nz=4).to_dense()
        np.testing.assert_allclose(A, A.T, atol=1e-12)
        eigs = np.linalg.eigvalsh(A)
        assert eigs.min() < 0 < eigs.max()

    def test_nlpkkt_saddle_block_structure(self):
        nx = 3
        A = nlpkkt(nx=nx, ny=nx, nz=nx, delta=0.1).to_dense()
        n_nodes = nx**3
        # (2,2) block is -delta I.
        np.testing.assert_allclose(
            A[n_nodes:, n_nodes:], -0.1 * np.eye(n_nodes), atol=1e-12
        )

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            g3_circuit(nx=1)
        with pytest.raises(ValueError):
            nlpkkt(nx=1)


class TestRandomGenerators:
    def test_random_banded_within_band(self):
        A = random_banded(30, 3, seed=1)
        assert matrix_bandwidth(A) <= 3

    def test_random_banded_nonsingular(self):
        A = random_banded(20, 2, seed=2, dominant=True)
        assert np.linalg.cond(A.to_dense()) < 1e4

    def test_random_sparse_density(self):
        A = random_sparse(500, 8.0, seed=3)
        assert 6.0 < A.nnz / A.n_rows <= 9.0

    def test_random_sparse_has_full_diagonal(self):
        A = random_sparse(50, 3.0, seed=4)
        assert np.all(A.diagonal() != 0.0)

    def test_tall_skinny_condition(self):
        V = well_conditioned_tall_skinny(100, 6, condition=1e4, seed=5)
        s = np.linalg.svd(V, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e4, rel=1e-6)

    def test_tall_skinny_validation(self):
        with pytest.raises(ValueError):
            well_conditioned_tall_skinny(3, 5)
        with pytest.raises(ValueError):
            well_conditioned_tall_skinny(10, 2, condition=0.5)

    def test_random_generator_validation(self):
        with pytest.raises(ValueError):
            random_banded(0, 1)
        with pytest.raises(ValueError):
            random_sparse(10, 0.5)
