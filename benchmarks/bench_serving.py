"""Serving benchmark — cold-plan vs warm-plan latency and throughput.

A solver service answers repeated ``solve(b)`` requests against one
operator.  The *cold* path pays the full structural setup per request —
k-way partitioning, the distributed matrix with its halo index sets, the
MPK dependency closure, the staged-exchange staging sets — while the
*warm* path (:class:`repro.serve.SolverSession`) computes that plan once
and reuses it.  This benchmark measures both on the Fig. 14 matrix suite
(cant / G3_circuit / dielFilter analogs) under a latency-oriented serving
configuration (k-way ordering, one restart cycle per request), checks the
answers are bit-identical, and reports batched multi-RHS throughput via
``solve_many``.

Both entry points emit ``BENCH_serving.json`` at the repo root:

* ``pytest benchmarks/bench_serving.py`` — quick mode, asserts shape
  (bit-identity, warm faster than cold);
* ``python benchmarks/bench_serving.py [--quick] [--out PATH]`` — the
  standalone runner (full mode by default; CI uses ``--quick``).

All wall-clock numbers time the *host* process driving the simulator;
simulated time is identical cold vs warm by construction (structural
setup is uncosted) and recorded once per case as a cross-check.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_serving.json"

# Latency-oriented serving configs on the Fig. 14 matrices: s stays at the
# paper's 15; m is a short serving restart length; k-way ordering is the
# expensive high-quality plan that reuse amortizes.
CASES = {
    "cant": dict(
        build=("cant", dict(nx=96, ny=16, nz=16)),
        m=30, s=15, reorth=2,
    ),
    "g3_circuit": dict(
        build=("g3_circuit", dict(nx=400, ny=400)),
        m=15, s=15, reorth=1,
    ),
    "dielfilter": dict(
        build=("dielfilter", dict(nx=24, ny=24, nz=24)),
        m=30, s=15, reorth=2,
    ),
}

QUICK_CASES = {
    "cant": dict(
        build=("cant", dict(nx=48, ny=10, nz=10)),
        m=30, s=15, reorth=2,
    ),
    "g3_circuit": dict(
        build=("g3_circuit", dict(nx=128)),
        m=15, s=15, reorth=1,
    ),
    "dielfilter": dict(
        build=("dielfilter", dict(nx=16, ny=16, nz=16)),
        m=30, s=15, reorth=2,
    ),
}

N_GPUS = 3
WARM_SOLVES = 4
BATCH_RHS = 4
QUICK_WARM_SOLVES = 2
QUICK_BATCH_RHS = 2


def _build_matrix(spec):
    from repro import matrices

    name, kwargs = spec
    return getattr(matrices, name)(**kwargs)


def bench_case(name, spec, warm_solves, batch_rhs):
    """Time one matrix: cold plan+solve, warm solves, batched solve_many."""
    from repro.serve import SolverSession

    A = _build_matrix(spec["build"])
    rng = np.random.default_rng(20140519)
    b = rng.standard_normal(A.n_rows)

    def make_session():
        return SolverSession(
            A, solver="ca", n_gpus=N_GPUS, ordering="kway",
            m=spec["m"], s=spec["s"], reorth=spec["reorth"],
            basis="monomial", tsqr_method="cholqr",
            tol=1e-4, max_restarts=1,
        )

    # Cold: build the session (ordering + partition + distributed state)
    # and answer the first request, which also builds the MPK closure.
    t0 = time.perf_counter()
    session = make_session()
    cold = session.solve(b)
    cold_s = time.perf_counter() - t0

    # Warm: repeated requests against the cached plan.
    warm_times = []
    warm = cold
    for _ in range(warm_solves):
        t0 = time.perf_counter()
        warm = session.solve(b)
        warm_times.append(time.perf_counter() - t0)
    warm_s = sum(warm_times) / len(warm_times)

    # Batched throughput: distinct RHSs, interleaved restart cycles.
    bs = [rng.standard_normal(A.n_rows) for _ in range(batch_rhs)]
    t0 = time.perf_counter()
    batch = session.solve_many(bs)
    batch_s = time.perf_counter() - t0

    stats = session.stats()
    return {
        "matrix": name,
        "n": int(A.n_rows),
        "nnz": int(A.nnz),
        "m": spec["m"],
        "s": spec["s"],
        "n_gpus": N_GPUS,
        "cold_latency_s": cold_s,
        "warm_latency_s": warm_s,
        "warm_latencies_s": warm_times,
        "speedup": cold_s / warm_s,
        "bit_identical": bool(np.array_equal(cold.x, warm.x)),
        "sim_time_ms": 1e3 * cold.total_time,
        "iterations": int(cold.n_iterations),
        "batch_rhs": batch_rhs,
        "batch_wall_s": batch_s,
        "batch_throughput_rhs_per_s": batch_rhs / batch_s if batch_s > 0 else None,
        "warm_throughput_rhs_per_s": 1.0 / warm_s if warm_s > 0 else None,
        "batch_converged": int(sum(r.converged for r in batch)),
        "plan_stats": stats,
    }


def run_bench(quick=False):
    cases = QUICK_CASES if quick else CASES
    warm_solves = QUICK_WARM_SOLVES if quick else WARM_SOLVES
    batch_rhs = QUICK_BATCH_RHS if quick else BATCH_RHS
    records = [
        bench_case(name, spec, warm_solves, batch_rhs)
        for name, spec in cases.items()
    ]
    speedups = [r["speedup"] for r in records]
    return {
        "benchmark": "serving",
        "mode": "quick" if quick else "full",
        "generated_by": "benchmarks/bench_serving.py",
        "config": {
            "n_gpus": N_GPUS,
            "ordering": "kway",
            "basis": "monomial",
            "tsqr_method": "cholqr",
            "tol": 1e-4,
            "max_restarts": 1,
            "warm_solves": warm_solves,
            "batch_rhs": batch_rhs,
        },
        "cases": records,
        "summary": {
            "min_speedup": min(speedups),
            "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
            "all_bit_identical": all(r["bit_identical"] for r in records),
        },
    }


def format_report(result):
    from repro.harness import format_table

    rows = [
        [
            r["matrix"], r["n"], f"{r['m']},{r['s']}",
            f"{1e3 * r['cold_latency_s']:.0f}",
            f"{1e3 * r['warm_latency_s']:.0f}",
            f"{r['speedup']:.2f}x",
            f"{r['batch_throughput_rhs_per_s']:.2f}",
            "yes" if r["bit_identical"] else "NO",
        ]
        for r in result["cases"]
    ]
    s = result["summary"]
    table = format_table(
        ["matrix", "n", "m,s", "cold ms", "warm ms", "speedup",
         "batch rhs/s", "bit-id"],
        rows,
        title=(
            f"Serving latency — plan reuse on {result['config']['n_gpus']} "
            f"simulated GPUs ({result['mode']} mode)"
        ),
    )
    tail = (
        f"speedup: min {s['min_speedup']:.2f}x, "
        f"geomean {s['geomean_speedup']:.2f}x; "
        f"warm == cold bit-identical: {s['all_bit_identical']}"
    )
    return table + "\n" + tail


def write_json(result, path=DEFAULT_JSON):
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------------
# pytest entry (quick mode: runs in CI's benchmark pass)
# ---------------------------------------------------------------------------
def test_serving_plan_reuse(record_output):
    result = run_bench(quick=True)
    record_output("serving", format_report(result))
    write_json(result)
    assert result["summary"]["all_bit_identical"]
    # Quick mode shrinks the matrices, so only the shape is asserted here
    # (warm strictly faster); the >= 3x criterion is for the full-mode run
    # recorded in BENCH_serving.json at the repo root.
    assert result["summary"]["min_speedup"] > 1.0


# ---------------------------------------------------------------------------
# standalone runner
# ---------------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small matrices, fewer repeats (CI smoke mode)")
    parser.add_argument("--out", default=str(DEFAULT_JSON),
                        help="output JSON path (default: repo-root "
                             "BENCH_serving.json)")
    args = parser.parse_args(argv)
    result = run_bench(quick=args.quick)
    print(format_report(result))
    path = write_json(result, args.out)
    print(f"\nwrote {path}")
    ok = result["summary"]["all_bit_identical"] and (
        result["summary"]["min_speedup"] > (1.0 if args.quick else 3.0)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())
