"""Fig. 8 — matrix powers kernel performance versus s.

Generates m = 100 basis vectors with MPK(s) on 3 simulated GPUs and
reports the total simulated time (communication included) and the
SpMV-kernel-only time, exactly the two curves of Fig. 8.  Expected shape:
the SpMV time grows ~linearly with s (redundant boundary flops) while the
total time drops steeply from s = 1 (latency amortized) and bottoms out at
a moderate s — the paper's headline MPK result (up to ~16% / 11% saved for
cant / G3_circuit).
"""

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.harness import format_series
from repro.matrices import cant, g3_circuit
from repro.mpk import MatrixPowersKernel
from repro.order import block_row_partition, kway_partition

N_GPUS = 3
M = 100
S_VALUES = [1, 2, 3, 4, 5, 6, 8, 10]

CASES = {
    # paper Fig. 8: cant with natural ordering, G3_circuit with k-way
    "cant": lambda: (cant(nx=48, ny=10, nz=10), "natural"),
    "g3_circuit": lambda: (g3_circuit(nx=96, ny=96), "kway"),
}


def sweep(matrix, ordering):
    n = matrix.n_rows
    part = (
        kway_partition(matrix, N_GPUS)
        if ordering == "kway"
        else block_row_partition(n, N_GPUS)
    )
    total_ms, spmv_ms = [], []
    v0 = np.ones(n) / np.sqrt(n)
    for s in S_VALUES:
        ctx = MultiGpuContext(N_GPUS)
        mpk = MatrixPowersKernel(ctx, matrix, part, s)
        V = DistMultiVector(ctx, part, s + 1)
        V.set_column_from_host(0, v0)
        ctx.reset_clocks()
        calls = -(-M // s)
        spmv_only = 0.0
        for _ in range(calls):
            with ctx.region("mpk"):
                mpk.run(V, 0)
            # continue the chain from the last generated vector
            for d in range(N_GPUS):
                V.local[d].data[:, 0] = V.local[d].data[:, s]
        total_ms.append(1e3 * ctx.timers["mpk"])
        # SpMV-only: modeled kernel time of every per-step product.
        for d, dep in enumerate(mpk.deps):
            indptr = mpk._local[d][0].data
            for k in range(1, s + 1):
                active = dep.active_rows(k)
                spmv_only += ctx.perf.gpu_time(
                    "spmv", "ellpack", nnz=int(indptr[active]), n_rows=active
                )
        spmv_ms.append(1e3 * spmv_only * calls / N_GPUS)
    return {"total (ms)": total_ms, "spmv only (ms)": spmv_ms}


@pytest.mark.parametrize("name", sorted(CASES))
def test_fig08_mpk_performance(benchmark, record_output, name):
    matrix, ordering = CASES[name]()
    series = benchmark.pedantic(
        lambda: sweep(matrix, ordering), rounds=1, iterations=1
    )
    table = format_series(
        "s", S_VALUES, series,
        title=f"Fig. 8 — MPK time to generate m={M} vectors, {name} analog "
              f"({ordering} ordering, {N_GPUS} GPUs, simulated ms)",
    )
    record_output(f"fig08_{name}", table)

    total = series["total (ms)"]
    spmv = series["spmv only (ms)"]
    # SpMV-only time grows with s (redundant computation).
    assert spmv[-1] > spmv[0]
    # Communication gap (total - spmv) shrinks from s=1.
    gap = [t - c for t, c in zip(total, spmv)]
    assert min(gap[1:]) < gap[0]
    # Some s > 1 beats the s = 1 baseline (the paper's 11-16% saving).
    assert min(total[1:]) < total[0]
