"""Ablation — GPU SpMV storage format: ELLPACK vs JDS vs CSR.

The paper's GPU SpMV uses ELLPACK (Fig. 3 caption), which streams
perfectly but pads every row to the longest one.  This ablation measures
the padding overhead across the suite and on a pathological hub-row matrix,
and evaluates the modeled SpMV time of each format (ELLPACK pays for padded
slots; JDS streams exactly nnz; CSR streams nnz at a lower irregular-access
efficiency).

Expected shape: for the near-uniform stencil matrices ELLPACK's padding is
small and it wins; for skewed row lengths JDS wins decisively.
"""

import numpy as np
import pytest

from repro.harness import format_table
from repro.matrices import cant, g3_circuit, nlpkkt
from repro.matrices.random_sparse import random_sparse
from repro.perf.model import PerformanceModel
from repro.sparse.csr import csr_from_dense
from repro.sparse.ellpack import EllpackMatrix
from repro.sparse.jds import JdsMatrix


def hub_matrix(n=4000, seed=0):
    """A few hub rows touching many columns: ELLPACK's worst case."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    dense[np.arange(n), np.arange(n)] = 4.0
    cols = rng.integers(0, n, 3 * n)
    rows = rng.integers(0, n, 3 * n)
    dense[rows, cols] = 1.0
    for hub in rng.choice(n, size=4, replace=False):
        dense[hub, rng.integers(0, n, n // 4)] = 1.0
    return csr_from_dense(dense)


CASES = {
    "cant": lambda: cant(nx=24, ny=8, nz=8),
    "g3_circuit": lambda: g3_circuit(nx=64, ny=64),
    "nlpkkt": lambda: nlpkkt(nx=10),
    "hub (worst case)": hub_matrix,
}


def build_table():
    model = PerformanceModel()
    rows = []
    metrics = {}
    for name, build in CASES.items():
        A = build()
        ell = EllpackMatrix.from_csr(A)
        jds = JdsMatrix.from_csr(A)
        t_ell = model.gpu_time("spmv", "ellpack", nnz=ell.padded_size, n_rows=A.n_rows)
        t_jds = model.gpu_time("spmv", "ellpack", nnz=jds.nnz, n_rows=A.n_rows)
        t_csr = model.gpu_time("spmv", "csr", nnz=A.nnz, n_rows=A.n_rows)
        metrics[name] = (ell.padding_ratio(), t_ell, t_jds, t_csr)
        rows.append(
            [name, A.n_rows, round(A.nnz / A.n_rows, 1),
             round(ell.padding_ratio(), 2),
             1e6 * t_ell, 1e6 * t_jds, 1e6 * t_csr]
        )
    return rows, metrics


def test_ablation_spmv_format(benchmark, record_output):
    rows, metrics = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = format_table(
        ["matrix", "n", "nnz/row", "ELL padding", "ELL us", "JDS us", "CSR us"],
        rows,
        title="Ablation — GPU SpMV format (modeled kernel time per SpMV)",
    )
    record_output("ablation_spmv_format", table)

    # Stencil matrices: modest padding, ELLPACK within ~2x of JDS.
    for name in ("cant", "g3_circuit"):
        pad, t_ell, t_jds, _ = metrics[name]
        assert pad < 2.0, name
        assert t_ell < 2.0 * t_jds, name
    # Hub matrix: padding explodes and JDS wins decisively.
    pad, t_ell, t_jds, t_csr = metrics["hub (worst case)"]
    assert pad > 10.0
    assert t_jds < t_ell / 5.0
    # JDS also beats the irregular CSR kernel (dense streaming).
    assert t_jds < t_csr
