"""Ablation — the basis length s (the paper's "adjust input parameters").

Sweeps s for CA-GMRES on the cant analog at fixed m and reports the time
per restart loop, split by phase.  Expected shape (Sections IV+VI):
s = 1 is the degenerate slow case; moderate s amortizes communication
latency; very large s pays MPK's redundant computation and the basis
conditioning (CholQR breakdowns under the monomial seed blocks) — a
U-shaped total with a broad minimum, which is why the paper picks
s = 10-15.
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.harness import format_table
from repro.matrices import cant

S_VALUES = [1, 2, 5, 10, 15, 30]
M = 60


def sweep():
    A = cant(nx=96, ny=16, nz=16)
    b = np.ones(A.n_rows)
    ref = gmres(A, b, n_gpus=3, m=M, tol=1e-14, max_restarts=1)
    rows = [
        ["GMRES", "-", 1e3 * ref.timers["orth"], 1e3 * ref.timers["spmv"],
         1e3 * ref.time_per_restart(), "-"]
    ]
    totals = {}
    for s in S_VALUES:
        r = ca_gmres(
            A, b, n_gpus=3, s=s, m=M, tol=1e-14, max_restarts=2,
            basis="monomial", tsqr_method="cholqr",
        )
        cycles = max(r.n_restarts, 1)
        orth = (r.timers.get("borth", 0) + r.timers.get("tsqr", 0)) / cycles
        spmv = (r.timers.get("mpk", 0) + r.timers.get("spmv", 0)) / cycles
        totals[s] = r.time_per_restart()
        rows.append(
            [f"CA-GMRES s={s}", r.breakdowns, 1e3 * orth, 1e3 * spmv,
             1e3 * totals[s], f"{ref.time_per_restart() / totals[s]:.2f}"]
        )
    return rows, totals, ref.time_per_restart()


def test_ablation_s_sweep(benchmark, record_output):
    rows, totals, ref_total = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["config", "breakdowns", "Orth/Res ms", "SpMV/Res ms",
         "Total/Res ms", "SpdUp"],
        rows,
        title=f"Ablation — basis length s, cant analog, m = {M} (3 GPUs)",
    )
    record_output("ablation_svalue", table)

    # s = 1 is slower than GMRES (the degenerate case).
    assert totals[1] > ref_total
    # Some moderate s beats GMRES.
    best_s = min(totals, key=totals.get)
    assert totals[best_s] < ref_total
    assert 2 <= best_s <= 30
    # The sweep is roughly U-shaped: the best s beats both extremes.
    assert totals[best_s] <= totals[1] and totals[best_s] <= totals[30]
