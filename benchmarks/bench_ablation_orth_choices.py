"""Ablations — orthogonalization design choices.

1. **Reorthogonalization** ("2x" in Fig. 14): one pass vs two, for CGS and
   CholQR, on a moderately ill-conditioned monomial basis — cost roughly
   doubles, orthogonality error drops by orders of magnitude.
2. **Mixed-precision Gram** (the authors' ref. [23]): CholQR with an fp32
   Gram product — faster Gram, orthogonality limited to fp32 levels.
3. **Newton vs monomial basis** (Section IV-A): same s, same solver;
   Newton avoids CholQR breakdowns and keeps restart counts stable.
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.gpu.context import MultiGpuContext
from repro.harness import format_table
from repro.matrices import poisson2d
from repro.matrices.random_sparse import well_conditioned_tall_skinny
from repro.order.partition import block_row_partition
from repro.dist.multivector import DistMultiVector
from repro.orth import orthogonality_error, tsqr


def factor(method, variant, reorth, V):
    ctx = MultiGpuContext(3)
    part = block_row_partition(V.shape[0], 3)
    mv = DistMultiVector(ctx, part, V.shape[1])
    for d in range(3):
        mv.local[d].data[...] = V[part.rows_of(d)]
    ctx.reset_clocks()
    tsqr(ctx, mv.panel(0, V.shape[1]), method=method, variant=variant,
         reorth=reorth)
    Q = np.empty_like(V)
    for d in range(3):
        Q[part.rows_of(d)] = mv.local[d].data
    return orthogonality_error(Q), ctx.current_time()


def test_ablation_reorthogonalization(benchmark, record_output):
    V = well_conditioned_tall_skinny(60_000, 16, condition=3e5, seed=4)

    def run():
        rows = []
        out = {}
        for method in ("cgs", "cholqr"):
            for reorth in (1, 2):
                err, t = factor(method, None, reorth, V)
                label = f"{'2x ' if reorth == 2 else ''}{method.upper()}"
                out[(method, reorth)] = (err, t)
                rows.append([label, err, 1e3 * t])
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_output(
        "ablation_reorth",
        format_table(
            ["config", "||I-Q'Q||", "sim ms"],
            rows,
            title="Ablation — reorthogonalization on a kappa=3e5 panel "
                  "(60k x 16, 3 GPUs)",
        ),
    )
    for method in ("cgs", "cholqr"):
        err1, t1 = out[(method, 1)]
        err2, t2 = out[(method, 2)]
        assert err2 < err1 / 10, method  # much better orthogonality
        assert 1.5 * t1 < t2 < 3.0 * t1, method  # ~2x the cost


def test_ablation_mixed_precision(benchmark, record_output):
    V = well_conditioned_tall_skinny(200_000, 30, condition=10.0, seed=5)

    def run():
        out = {}
        for variant, label in (("batched", "fp64 Gram"), ("batched_sp", "fp32 Gram")):
            err, t = factor("cholqr", variant, 1, V)
            out[label] = (err, t)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, err, 1e3 * t] for label, (err, t) in out.items()]
    record_output(
        "ablation_mixed_precision",
        format_table(
            ["config", "||I-Q'Q||", "sim ms"],
            rows,
            title="Ablation — mixed-precision CholQR Gram (200k x 30, 3 GPUs)",
        ),
    )
    assert out["fp32 Gram"][1] < out["fp64 Gram"][1]  # faster
    assert out["fp32 Gram"][0] > 100 * out["fp64 Gram"][0]  # less accurate
    assert out["fp32 Gram"][0] < 1e-2  # still usable


def test_ablation_basis_choice(benchmark, record_output):
    A = poisson2d(18)
    b = np.ones(A.n_rows)

    def run():
        out = {}
        for basis in ("monomial", "newton"):
            r = ca_gmres(
                A, b, s=25, m=25, basis=basis, tsqr_method="cholqr",
                tol=1e-8, max_restarts=30, on_breakdown="fallback",
            )
            out[basis] = r
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [basis, r.converged, r.n_restarts, r.breakdowns]
        for basis, r in out.items()
    ]
    record_output(
        "ablation_basis",
        format_table(
            ["basis", "converged", "restarts", "CholQR breakdowns"],
            rows,
            title="Ablation — monomial vs Newton-Leja basis, "
                  "CA-GMRES(25, 25) on 2-D Poisson",
        ),
    )
    assert out["newton"].breakdowns < out["monomial"].breakdowns
    assert out["newton"].converged
