"""Fig. 15 — normalized time per restart loop, all four matrices.

The paper's summary bar chart: for each matrix, the time per restart loop
of GMRES and CA-GMRES on 1-3 GPUs, normalized by GMRES on one GPU, with
the CA-GMRES speedup annotated.  CA-GMRES uses MPK only where it beats
SpMV (the paper's rule); nlpkkt uses s = 10 as in the paper.

Expected shape: normalized bars shrink with GPU count; every CA-GMRES bar
is shorter than the same-GPU GMRES bar; speedups land in the paper's
1.3 - 2.1 band.
"""

import numpy as np
import pytest

from repro.harness import format_table
from repro.harness.experiment import run_solver_experiment
from repro.matrices import cant, dielfilter, g3_circuit, nlpkkt
from repro.order import kway_partition

MAX_RESTARTS = 3

CASES = {
    "cant": dict(build=lambda: cant(nx=96, ny=16, nz=16), m=60, s=15, kway=False, reorth=2),
    "g3_circuit": dict(build=lambda: g3_circuit(nx=400, ny=400), m=30, s=15, kway=True, reorth=1),
    "dielfilter": dict(build=lambda: dielfilter(), m=180, s=15, kway=True, reorth=2),
    "nlpkkt": dict(build=lambda: nlpkkt(), m=120, s=10, kway=True, reorth=1),
}


def run_case(spec):
    A = spec["build"]()
    b = np.ones(A.n_rows)
    m, s = spec["m"], spec["s"]
    rows = []
    base = None
    speedups = {}
    for g in (1, 2, 3):
        part = kway_partition(A, g) if spec["kway"] and g > 1 else None
        rec_g = run_solver_experiment(
            "GMRES", A, b, "gmres", g, partition=part, m=m, tol=1e-4,
            orth_method="cgs", max_restarts=MAX_RESTARTS,
        )
        if base is None:
            base = rec_g.total_ms
        # Decide MPK vs SpMV the paper's way: use whichever is faster.
        candidates = []
        for use_mpk in (True, False):
            rec = run_solver_experiment(
                "CA-GMRES", A, b, "ca_gmres", g, partition=part, m=m, s=s,
                tol=1e-4, basis="newton", tsqr_method="cholqr",
                reorth=spec["reorth"], use_mpk=use_mpk,
                max_restarts=MAX_RESTARTS,
            )
            candidates.append((rec.total_ms, use_mpk, rec))
        best_ms, used_mpk, rec_ca = min(candidates, key=lambda t: t[0])
        speedups[g] = rec_g.total_ms / best_ms
        rows.append(
            [
                g,
                rec_g.total_ms / base,
                best_ms / base,
                "MPK" if used_mpk else "SpMV",
                f"{speedups[g]:.2f}",
            ]
        )
    return rows, speedups


def test_fig15_normalized(benchmark, record_output):
    def run_all():
        out = {}
        for name, spec in CASES.items():
            out[name] = run_case(spec)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    blocks = []
    for name, (rows, _) in results.items():
        blocks.append(
            format_table(
                ["GPUs", "GMRES (norm)", "CA-GMRES (norm)", "kernel", "SpdUp"],
                rows,
                title=f"Fig. 15 — {name} analog, time/restart normalized to "
                      "GMRES on 1 GPU",
            )
        )
    record_output("fig15_normalized", "\n\n".join(blocks))

    for name, (rows, speedups) in results.items():
        # CA-GMRES beats GMRES at every device count.
        for g in (1, 2, 3):
            assert speedups[g] > 1.0, (name, g)
        # Normalized GMRES bars shrink with device count.
        norm_g = [row[1] for row in rows]
        assert norm_g[2] < norm_g[0]
