"""Fig. 11 — tall-skinny kernel performance: DGEMM, DGEMV, and TSQR.

(a) DGEMM (the CholQR/SVQR Gram product) for CUBLAS / MKL / batched;
(b) DGEMV (the CGS projection) for CUBLAS / MKL / MAGMA;
(c) TSQR effective Gflop/s for the five methods on 1-3 GPUs.

(a) and (b) evaluate the calibrated cost models across the paper's n range
(10^5 .. 10^6 rows, s + 1 = 30 columns); (c) runs the real distributed
factorizations on the simulator and reports effective Gflop/s computed the
paper's way (DGEQRF+DORGQR flops over measured time).

Expected shape: batched DGEMM ~3x CUBLAS DGEMM and above MKL; MAGMA DGEMV
~5x CUBLAS DGEMV; in (c) CholQR/SVQR on top, CGS in the middle, MGS and
CAQR at the bottom, all scaling with GPU count.
"""

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.harness import format_series, format_table
from repro.order.partition import block_row_partition
from repro.orth import tsqr
from repro.perf.kernels import kernel_flops_bytes
from repro.perf.model import PerformanceModel

K = 30  # s + 1 = 30, the paper's panel width
N_VALUES = [100_000, 200_000, 400_000, 700_000, 1_000_000]


def model_gflops(model, op, variant, cpu=False, **shape):
    flops, _ = kernel_flops_bytes(op, variant, **shape)
    t = model.cpu_time(op, variant, **shape) if cpu else model.gpu_time(op, variant, **shape)
    return flops / t / 1e9


def test_fig11a_dgemm(benchmark, record_output):
    model = PerformanceModel()

    def sweep():
        return {
            "cublas": [model_gflops(model, "gemm_tn", "cublas", n=n, k=K, j=K) for n in N_VALUES],
            "mkl (16 cores)": [model_gflops(model, "gemm_tn", "mkl", cpu=True, n=n, k=K, j=K) for n in N_VALUES],
            "batched": [model_gflops(model, "gemm_tn", "batched", n=n, k=K, j=K) for n in N_VALUES],
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_output(
        "fig11a_dgemm",
        format_series("n", N_VALUES, series,
                      title=f"Fig. 11(a) — tall-skinny DGEMM Gflop/s (k = j = {K})"),
    )
    tail = -1
    assert series["batched"][tail] > 2.0 * series["cublas"][tail]
    assert series["batched"][tail] > series["mkl (16 cores)"][tail]
    assert 45 < series["batched"][tail] < 75  # paper: ~58 Gflop/s


def test_fig11b_dgemv(benchmark, record_output):
    model = PerformanceModel()

    def sweep():
        return {
            "cublas": [model_gflops(model, "gemv_t", "cublas", n=n, k=K) for n in N_VALUES],
            "mkl (16 cores)": [model_gflops(model, "gemv_t", "mkl", cpu=True, n=n, k=K) for n in N_VALUES],
            "magma": [model_gflops(model, "gemv_t", "magma", n=n, k=K) for n in N_VALUES],
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_output(
        "fig11b_dgemv",
        format_series("n", N_VALUES, series,
                      title=f"Fig. 11(b) — tall-skinny DGEMV Gflop/s (k = {K})"),
    )
    tail = -1
    assert 3.0 < series["magma"][tail] / series["cublas"][tail] < 8.0
    assert series["cublas"][tail] < series["mkl (16 cores)"][tail]


def tsqr_effective_gflops(method: str, n_gpus: int, n: int = 300_000) -> float:
    """The paper's metric: DGEQRF+DORGQR flops over orthogonalization time."""
    ctx = MultiGpuContext(n_gpus)
    part = block_row_partition(n, n_gpus)
    mv = DistMultiVector(ctx, part, K)
    rng = np.random.default_rng(1)
    for d in range(n_gpus):
        mv.local[d].data[...] = rng.standard_normal(mv.local[d].data.shape)
    ctx.reset_clocks()
    tsqr(ctx, mv.panel(0, K), method=method)
    elapsed = ctx.current_time()
    lapack_flops = 2.0 * n * K * K + 2.0 * n * K * K  # GEQRF + ORGQR
    return lapack_flops / elapsed / 1e9


def test_fig11c_tsqr(benchmark, record_output):
    methods = ["mgs", "cgs", "cholqr", "svqr", "caqr"]

    def sweep():
        return {
            m: [tsqr_effective_gflops(m, g) for g in (1, 2, 3)] for m in methods
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[m.upper()] + [series[m][g - 1] for g in (1, 2, 3)] for m in methods]
    record_output(
        "fig11c_tsqr",
        format_table(
            ["method", "1 GPU", "2 GPUs", "3 GPUs"],
            rows,
            title=f"Fig. 11(c) — TSQR effective Gflop/s, 300k x {K} panel",
        ),
    )
    # Paper ordering on 1 GPU: CholQR/SVQR > CGS > MGS ~ CAQR.
    one = {m: series[m][0] for m in methods}
    assert one["cholqr"] > one["cgs"] > one["mgs"]
    assert one["svqr"] > one["cgs"]
    assert abs(np.log(one["caqr"] / one["mgs"])) < np.log(6)  # same band
    # Each method scales with device count.
    for m in ("cholqr", "cgs"):
        assert series[m][2] > series[m][0]
