"""Ablation — partitioning algorithm (the paper's footnote 3).

"We also tested using recursive bisection algorithms, but the k-way
partitioning that minimizes the edge-cut often gave smaller surfaces and
better load balances."

Compares natural block rows, recursive bisection, and k-way partitioning
on the circuit analog: edge cut, balance, MPK surface-to-volume, and the
SpMV communication volume they imply.
"""

import numpy as np
import pytest

from repro.harness import format_table
from repro.matrices import g3_circuit
from repro.mpk.analysis import communication_volume, surface_to_volume
from repro.order import (
    block_row_partition,
    kway_partition,
    partition_quality,
    recursive_bisection,
)
from repro.sparse.graph import adjacency_structure

N_GPUS = 3
S = 5


def build_table():
    A = g3_circuit(nx=96, ny=96)
    graph = adjacency_structure(A)
    parts = {
        "natural": block_row_partition(A.n_rows, N_GPUS),
        "recursive bisection": recursive_bisection(A, N_GPUS),
        "k-way": kway_partition(A, N_GPUS),
    }
    rows = []
    metrics = {}
    for label, part in parts.items():
        q = partition_quality(graph, part)
        s2v = float(np.mean(surface_to_volume(A, part, S)))
        vol = communication_volume(A, part, S, 100)
        metrics[label] = (q["edge_cut"], s2v, vol)
        rows.append(
            [label, q["edge_cut"], f"{q['imbalance']:.3f}", s2v, vol]
        )
    return rows, metrics


def test_ablation_partitioner(benchmark, record_output):
    rows, metrics = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = format_table(
        ["partitioner", "edge cut", "imbalance", f"surface/vol (s={S})",
         "MPK comm vol (m=100)"],
        rows,
        title="Ablation — partitioning algorithm, G3_circuit analog "
              f"({N_GPUS} parts)",
    )
    record_output("ablation_partitioner", table)

    # The paper's claim: k-way beats recursive bisection beats natural.
    assert metrics["k-way"][0] <= metrics["recursive bisection"][0]
    assert metrics["recursive bisection"][0] < metrics["natural"][0]
    assert metrics["k-way"][1] < metrics["natural"][1]
    assert metrics["k-way"][2] < metrics["natural"][2]
