"""Fig. 13 — TSQR error norms inside CA-GMRES on the G3_circuit analog.

Runs CA-GMRES(20, 30) and CA-GMRES(30, 30) with each orthogonalization
strategy, collecting per-TSQR orthogonality (||I - Q^T Q||), factorization
(||A - QR|| / ||A||), and element-wise errors, and reports min / mean / max
— the paper's bar-plus-error-bar data.

Expected shape (Section VI-A): every method reaches a similar (tiny)
factorization error; orthogonality errors order CAQR < MGS < CholQR/SVQR,
with CGS needing reorthogonalization ("2x CGS"); errors are worse for
(s, m) = (30, 30) than (20, 30) except where the (20, 30) split produces a
more ill-conditioned 20-vector block (longer error bars, as the paper
notes).
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.harness import format_table
from repro.matrices import g3_circuit

# "2x" prefixes mirror the paper's reorthogonalized configurations.
CONFIGS = [
    ("mgs", 1, "MGS"),
    ("cgs", 2, "2x CGS"),
    ("cholqr", 1, "CholQR"),
    ("svqr", 1, "SVQR"),
    ("caqr", 1, "CAQR"),
]


def collect_errors(A, s, m):
    b = np.ones(A.n_rows)
    out = {}
    for method, reorth, label in CONFIGS:
        r = ca_gmres(
            A, b, s=s, m=m, tsqr_method=method, reorth=reorth,
            basis="newton", tol=1e-8, max_restarts=6,
            collect_tsqr_errors=True, on_breakdown="fallback",
        )
        records = r.details["tsqr_errors"]
        assert records, label
        out[label] = {
            "orth": [e["orthogonality"] for e in records],
            "fact": [e["factorization"] for e in records],
            "elem": [e["elementwise"] for e in records],
            "breakdowns": r.breakdowns,
        }
    return out


@pytest.mark.parametrize("s,m", [(20, 30), (30, 30)], ids=["s20m30", "s30m30"])
def test_fig13_tsqr_errors(benchmark, record_output, s, m):
    A = g3_circuit(nx=96, ny=96)
    data = benchmark.pedantic(lambda: collect_errors(A, s, m), rounds=1, iterations=1)
    rows = []
    for label, stats in data.items():
        rows.append(
            [
                label,
                float(np.min(stats["orth"])),
                float(np.mean(stats["orth"])),
                float(np.max(stats["orth"])),
                float(np.mean(stats["fact"])),
                float(np.mean(stats["elem"])),
                stats["breakdowns"],
            ]
        )
    table = format_table(
        ["method", "orth min", "orth mean", "orth max", "fact mean",
         "elem mean", "breakdowns"],
        rows,
        title=f"Fig. 13 — TSQR errors in CA-GMRES({s}, {m}), "
              f"G3_circuit analog (1 GPU)",
    )
    record_output(f"fig13_s{s}m{m}", table)

    mean_orth = {row[0]: row[2] for row in rows}
    mean_fact = {row[0]: row[4] for row in rows}
    # Factorization errors are uniformly tiny for every method.
    assert all(v < 1e-12 for v in mean_fact.values())
    # Orthogonality ordering: CAQR at machine precision, below CholQR/SVQR.
    assert mean_orth["CAQR"] < 1e-12
    assert mean_orth["CAQR"] <= mean_orth["CholQR"]
    assert mean_orth["CAQR"] <= mean_orth["SVQR"]
    # MGS is no worse than the Gram-matrix methods (kappa vs kappa^2).
    assert mean_orth["MGS"] <= 10 * mean_orth["CholQR"]
