"""Fig. 10 — TSQR variant property table, with measured verification.

Regenerates the paper's table (error bound class, leading flop count,
BLAS level, GPU-CPU communication count) and verifies the communication
column against the runtime's actual message counters for every method on
1-3 GPUs.
"""

import numpy as np
import pytest

from repro.gpu.context import MultiGpuContext
from repro.dist.multivector import DistMultiVector
from repro.harness import format_table
from repro.order.partition import block_row_partition
from repro.orth import TSQR_PROPERTY_TABLE, tsqr, tsqr_properties

S = 14  # panel of s + 1 = 15 columns, a paper-typical block
N_ROWS = 6_000


def measure_messages(method: str, n_gpus: int) -> int:
    ctx = MultiGpuContext(n_gpus)
    part = block_row_partition(N_ROWS, n_gpus)
    mv = DistMultiVector(ctx, part, S + 1)
    rng = np.random.default_rng(0)
    for d in range(n_gpus):
        mv.local[d].data[...] = rng.standard_normal(mv.local[d].data.shape)
    ctx.counters.reset()
    tsqr(ctx, mv.panel(0, S + 1), method=method)
    return ctx.counters.total_messages


def build_table():
    rows = []
    for method, props in sorted(TSQR_PROPERTY_TABLE.items()):
        analytic = props.comm_phases(S)
        measured = {g: measure_messages(method, g) for g in (1, 2, 3)}
        rows.append(
            [
                method.upper(),
                props.error_bound,
                props.flops_leading,
                props.blas_level,
                analytic,
                measured[1],
                measured[2],
                measured[3],
            ]
        )
    return rows


def test_fig10_tsqr_properties(benchmark, record_output):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = format_table(
        ["method", "||I-Q'Q||", "flops", "BLAS", "phases (analytic)",
         "msgs 1gpu", "msgs 2gpu", "msgs 3gpu"],
        rows,
        title=f"Fig. 10 — TSQR properties for an n x {S + 1} panel "
              f"(messages measured on the simulated runtime)",
    )
    record_output("fig10_tsqr_properties", table)

    # Measured messages = analytic phases x device count, for every method.
    for row in rows:
        method, analytic = row[0].lower(), row[4]
        for g, measured in zip((1, 2, 3), row[5:8]):
            assert measured == analytic * g, (method, g)
    # The paper's ordering: MGS >> CGS >> CholQR = SVQR = CAQR = 2.
    phases = {row[0].lower(): row[4] for row in rows}
    assert phases["mgs"] == (S + 1) * (S + 2)
    assert phases["cgs"] == 2 * (S + 1)
    assert phases["cholqr"] == phases["svqr"] == phases["caqr"] == 2
