"""Fig. 6 — surface-to-volume ratio of the matrix powers kernel.

Plots ``nnz(A(delta^(d,1:s), :)) / nnz(A^(d))`` versus the basis length
``s`` for the cant (banded) and G3_circuit (scrambled netlist) analogs on
3 GPUs under the paper's three orderings.  Expected shape: the natural
ordering of G3_circuit explodes (no locality), RCM/k-way tame it but it
still grows superlinearly; cant grows roughly linearly under every
ordering.
"""

import numpy as np
import pytest

from repro.harness import format_series
from repro.matrices import cant, g3_circuit
from repro.mpk.analysis import surface_to_volume
from repro.order import block_row_partition, kway_partition, rcm

N_GPUS = 3
S_VALUES = [1, 2, 3, 4, 5, 6, 8, 10]

CASES = {
    "cant": lambda: cant(nx=48, ny=10, nz=10),
    "g3_circuit": lambda: g3_circuit(nx=96, ny=96),
}


def sweep(matrix):
    n = matrix.n_rows
    series = {}
    configs = {
        "natural": (matrix, block_row_partition(n, N_GPUS)),
        "rcm": (matrix.permute(rcm(matrix)), block_row_partition(n, N_GPUS)),
        "kway": (matrix, kway_partition(matrix, N_GPUS)),
    }
    for label, (mat, part) in configs.items():
        series[label] = [
            float(np.mean(surface_to_volume(mat, part, s))) for s in S_VALUES
        ]
    return series


@pytest.mark.parametrize("name", sorted(CASES))
def test_fig06_surface_to_volume(benchmark, record_output, name):
    matrix = CASES[name]()

    series = benchmark.pedantic(lambda: sweep(matrix), rounds=1, iterations=1)
    table = format_series(
        "s", S_VALUES, series,
        title=f"Fig. 6 — surface-to-volume ratio, {name} analog "
              f"(n={matrix.n_rows}, {N_GPUS} GPUs)",
    )
    record_output(f"fig06_{name}", table)

    # Shape assertions from the paper.
    for label in ("natural", "rcm", "kway"):
        values = series[label]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:])), (
            f"{label}: ratio must be non-decreasing in s"
        )
    if name == "g3_circuit":
        # Reordering shrinks the surface dramatically for the netlist
        # (the natural ordering saturates at the full index set early).
        assert series["rcm"][1] < series["natural"][1] / 2
        assert series["kway"][1] < series["natural"][1] / 2
    if name == "cant":
        # Banded matrix: roughly linear growth under the natural ordering.
        increments = np.diff(series["natural"])
        assert increments.max() < 3.0 * max(increments.min(), 1e-9)
