"""Fig. 3 — GMRES performance: 16-core CPU vs 1-3 GPUs.

The paper's Fig. 3 shows time per restart loop of standard GMRES on the
CPU (threaded MKL, CSR SpMV) and on 1-3 GPUs (ELLPACK SpMV), split into
SpMV and Orth.  Regenerated here on the cant and G3_circuit analogs with
the calibrated cost models; expected shape: the CPU is slowest, each added
GPU helps, and SpMV dominates Orth for the sparser matrix.
"""

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.gpu.context import MultiGpuContext
from repro.harness import format_table
from repro.matrices import cant, g3_circuit
from repro.order import kway_partition
from repro.perf.machine import cpu_reference_node


CASES = {
    # paper: cant natural ordering, GMRES(60); G3_circuit k-way, GMRES(30)
    "cant": dict(build=lambda: cant(nx=96, ny=16, nz=16), m=60, kway=False),
    "g3_circuit": dict(build=lambda: g3_circuit(nx=400, ny=400), m=30, kway=True),
}


def run_case(name, spec):
    A = spec["build"]()
    b = np.ones(A.n_rows)
    m = spec["m"]
    rows = []
    # CPU reference: the solver on one host-rate "device".
    ctx = MultiGpuContext(1, machine=cpu_reference_node())
    r = gmres(A, b, ctx=ctx, m=m, tol=1e-30, max_restarts=2)
    rows.append(
        ["CPU (16-core)", r.n_iterations,
         1e3 * r.timers["spmv"] / r.n_restarts,
         1e3 * r.timers["orth"] / r.n_restarts,
         1e3 * r.time_per_restart()]
    )
    for n_gpus in (1, 2, 3):
        part = kway_partition(A, n_gpus) if spec["kway"] and n_gpus > 1 else None
        r = gmres(A, b, n_gpus=n_gpus, partition=part, m=m, tol=1e-30,
                  max_restarts=2)
        rows.append(
            [f"{n_gpus} GPU", r.n_iterations,
             1e3 * r.timers["spmv"] / r.n_restarts,
             1e3 * r.timers["orth"] / r.n_restarts,
             1e3 * r.time_per_restart()]
        )
    return A, format_table(
        ["config", "iters", "SpMV/Res ms", "Orth/Res ms", "Total/Res ms"],
        rows,
        title=f"Fig. 3 — GMRES({m}) on {name} analog "
              f"(n={A.n_rows}, nnz/row={A.nnz / A.n_rows:.1f}, simulated)",
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_fig03_gmres_baseline(benchmark, record_output, name):
    spec = CASES[name]

    def run():
        return run_case(name, spec)

    A, table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_output(f"fig03_{name}", table)
    # Shape assertions: GPUs beat the CPU; 3 GPUs beat 1.
    lines = table.splitlines()
    totals = [float(line.split("|")[-1]) for line in lines[3:]]
    assert totals[1] < totals[0], "1 GPU should beat the CPU reference"
    assert totals[3] < totals[1], "3 GPUs should beat 1 GPU"
