"""Fig. 14 — the CA-GMRES vs GMRES table.

For each matrix (cant / G3_circuit / dielFilter analogs) regenerates the
paper's rows: GMRES with MGS and CGS on 1-3 GPUs, CA-GMRES(1, m) (the
degenerate case, slower than GMRES), and CA-GMRES(s, m) with the paper's
orthogonalization choice on 1-3 GPUs, reporting restart counts, Orth /
TSQR / SpMV / total time per restart loop, and the speedup over same-GPU
GMRES/CGS.

Expected shape: MGS-GMRES much slower than CGS-GMRES; CA-GMRES(1, m)
slower than GMRES; CA-GMRES(s, m) 1.1-2x faster; everything scales with
device count.  Restart loops are capped (the timing columns are
per-restart averages, which is what Fig. 14 reports).
"""

import numpy as np
import pytest

from repro.harness import format_table, profile_breakdown_table
from repro.harness.experiment import run_solver_experiment, solver_table_row
from repro.matrices import cant, dielfilter, g3_circuit
from repro.order import kway_partition

MAX_RESTARTS = 4

CASES = {
    "cant": dict(
        build=lambda: cant(nx=96, ny=16, nz=16),
        m=60, s=15, reorth=2, kway=False,
        label_ca="CA-GMRES(15,60) 2xCholQR",
    ),
    "g3_circuit": dict(
        build=lambda: g3_circuit(nx=400, ny=400),
        m=30, s=15, reorth=1, kway=True,
        label_ca="CA-GMRES(15,30) CholQR",
    ),
    "dielfilter": dict(
        build=lambda: dielfilter(),
        m=180, s=15, reorth=2, kway=True,
        label_ca="CA-GMRES(15,180) 2xCholQR",
    ),
}


def run_case(name, spec):
    A = spec["build"]()
    b = np.ones(A.n_rows)
    m, s = spec["m"], spec["s"]
    parts = {
        g: (kway_partition(A, g) if spec["kway"] and g > 1 else None)
        for g in (1, 2, 3)
    }
    rows = []
    records = {}
    # GMRES with MGS (1 GPU only, as the paper's tables do).
    rec = run_solver_experiment(
        "GMRES MGS", A, b, "gmres", 1, m=m, tol=1e-4,
        orth_method="mgs", max_restarts=MAX_RESTARTS,
    )
    records[("mgs", 1)] = rec
    rows.append(solver_table_row(rec))
    # GMRES with CGS on 1-3 GPUs: the reference configuration.
    for g in (1, 2, 3):
        rec = run_solver_experiment(
            "GMRES CGS", A, b, "gmres", g, partition=parts[g], m=m,
            tol=1e-4, orth_method="cgs", max_restarts=MAX_RESTARTS,
        )
        records[("cgs", g)] = rec
        rows.append(solver_table_row(rec))
    # CA-GMRES(1, m): the degenerate slow case.
    rec = run_solver_experiment(
        "CA-GMRES(1,m)", A, b, "ca_gmres", 1, m=m, s=1, tol=1e-4,
        basis="monomial", tsqr_method="cholqr",
        max_restarts=min(MAX_RESTARTS, 2),
    )
    records[("ca1", 1)] = rec
    rows.append(solver_table_row(rec))
    # CA-GMRES(s, m) with the paper's orthogonalization.
    for g in (1, 2, 3):
        rec = run_solver_experiment(
            spec["label_ca"], A, b, "ca_gmres", g, partition=parts[g],
            m=m, s=s, tol=1e-4, basis="newton", tsqr_method="cholqr",
            reorth=spec["reorth"], max_restarts=MAX_RESTARTS,
        )
        rec.speedup = records[("cgs", g)].total_ms / rec.total_ms
        records[("ca", g)] = rec
        rows.append(solver_table_row(rec))
    table = format_table(
        ["GPUs", "solver", "Rest.", "Orth/Res ms", "TSQR/Res ms",
         "SpMV/Res ms", "Total/Res ms", "SpdUp"],
        rows,
        title=f"Fig. 14 — {name} analog (n={A.n_rows}, "
              f"nnz/row={A.nnz / A.n_rows:.1f}, restart cap {MAX_RESTARTS})",
    )
    return records, table


@pytest.mark.parametrize("name", sorted(CASES))
def test_fig14_ca_gmres(benchmark, record_output, name):
    spec = CASES[name]
    records, table = benchmark.pedantic(
        lambda: run_case(name, spec), rounds=1, iterations=1
    )
    record_output(f"fig14_{name}", table)
    # Per-kernel attribution from the event trace (the paper's Fig. 11-style
    # breakdown) for the headline CA-GMRES configuration on 3 GPUs.
    record_output(
        f"fig14_{name}_kernels",
        profile_breakdown_table(
            records[("ca", 3)].raw,
            title=f"{spec['label_ca']} on 3 GPUs — {name}",
        ),
    )

    # Paper shape 1: MGS-GMRES is much slower than CGS-GMRES.
    assert records[("mgs", 1)].orth_ms > 2.0 * records[("cgs", 1)].orth_ms
    # Paper shape 2: CA-GMRES(1, m) is slower than GMRES.
    assert records[("ca1", 1)].total_ms > records[("cgs", 1)].total_ms
    # Paper shape 3: CA-GMRES(s, m) beats GMRES on every device count.
    for g in (1, 2, 3):
        assert records[("ca", g)].speedup > 1.0, (name, g)
    # Paper shape 4: both solvers get faster with more GPUs.
    assert records[("cgs", 3)].total_ms < records[("cgs", 1)].total_ms
    assert records[("ca", 3)].total_ms < records[("ca", 1)].total_ms
