"""Outlook experiment — CA-GMRES across multiple compute nodes.

The paper closes with: "we would like to study ... the performance of
CA-GMRES on a larger number of GPUs, in particular, the GPUs distributed
over multiple compute nodes, where the communication is more expensive."

This bench runs that experiment on the simulator: GMRES vs CA-GMRES on
2 nodes x 3 GPUs while sweeping the inter-node network latency from
InfiniBand-QDR (2 us) to Ethernet-class (100 us).  Expected shape: the
CA-GMRES speedup grows monotonically with network latency — the more
expensive communication is, the more avoiding it pays.
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.core.gmres import gmres
from repro.gpu.multinode import MultiNodeContext, NetworkSpec
from repro.harness import format_table
from repro.matrices import cant

LATENCIES_US = [2, 10, 40, 100]


def sweep():
    A = cant(nx=96, ny=16, nz=16)
    b = np.ones(A.n_rows)
    rows = []
    speedups = []
    for lat_us in LATENCIES_US:
        net = NetworkSpec(latency=lat_us * 1e-6, bandwidth=3.2e9)
        r_g = gmres(
            A, b, ctx=MultiNodeContext(2, 3, network=net), m=30,
            tol=1e-14, max_restarts=1,
        )
        r_c = ca_gmres(
            A, b, ctx=MultiNodeContext(2, 3, network=net), s=10, m=30,
            tol=1e-14, max_restarts=2, basis="monomial",
        )
        speedup = r_g.time_per_restart() / r_c.time_per_restart()
        speedups.append(speedup)
        rows.append(
            [lat_us, 1e3 * r_g.time_per_restart(),
             1e3 * r_c.time_per_restart(), f"{speedup:.2f}"]
        )
    return rows, speedups


def test_multinode_outlook(benchmark, record_output):
    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["net latency (us)", "GMRES ms/restart", "CA-GMRES ms/restart", "SpdUp"],
        rows,
        title="Outlook — 2 nodes x 3 GPUs, cant analog, network latency sweep",
    )
    record_output("multinode_outlook", table)

    # CA-GMRES always wins across nodes...
    assert all(s > 1.0 for s in speedups)
    # ...and its advantage grows as communication gets more expensive.
    assert all(a <= b + 0.02 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 1.3 * speedups[0]
