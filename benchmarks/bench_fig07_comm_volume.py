"""Fig. 7 — total communication volume of the matrix powers kernel.

``(m/s) * (|union_d delta^(d,1:s)| + sum_d |delta^(d,1:s)|)`` versus s for
m = 100 generated vectors, under the paper's three orderings.  Expected
shape: volume falls steeply from s = 1 (fewer exchange phases), then
flattens; for the banded cant with RCM/natural the per-phase payload grows
~linearly so the total volume stays near-constant or keeps dropping, while
k-way on cant costs more volume than RCM (the paper's observation).
"""

import pytest

from repro.harness import format_series
from repro.matrices import cant, g3_circuit
from repro.mpk.analysis import communication_volume
from repro.order import block_row_partition, kway_partition, rcm

N_GPUS = 3
M = 100
S_VALUES = [1, 2, 3, 4, 5, 6, 8, 10]

CASES = {
    "cant": lambda: cant(nx=48, ny=10, nz=10),
    "g3_circuit": lambda: g3_circuit(nx=96, ny=96),
}


def sweep(matrix):
    n = matrix.n_rows
    configs = {
        "natural": (matrix, block_row_partition(n, N_GPUS)),
        "rcm": (matrix.permute(rcm(matrix)), block_row_partition(n, N_GPUS)),
        "kway": (matrix, kway_partition(matrix, N_GPUS)),
    }
    return {
        label: [communication_volume(mat, part, s, M) for s in S_VALUES]
        for label, (mat, part) in configs.items()
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_fig07_comm_volume(benchmark, record_output, name):
    matrix = CASES[name]()
    series = benchmark.pedantic(lambda: sweep(matrix), rounds=1, iterations=1)
    table = format_series(
        "s", S_VALUES, series,
        title=f"Fig. 7 — MPK communication volume over m={M} iterations, "
              f"{name} analog (elements, {N_GPUS} GPUs)",
    )
    record_output(f"fig07_{name}", table)

    for label, values in series.items():
        assert all(v > 0 for v in values)
    if name == "g3_circuit":
        # Irregular graph: the first shells are big, so volume falls
        # steeply from s = 1 (Section IV-B).
        for label, values in series.items():
            assert values[3] < values[0], f"{label}: no drop from s=1"
    if name == "cant":
        # Banded matrix: |delta(1:s)| grows ~linearly with s, so the total
        # volume stays near-constant (the paper: MPK needs *more* total
        # volume than SpMV here, traded for latency).
        values = series["natural"]
        assert max(values) / min(values) < 1.3
