"""Shared infrastructure for the paper-figure benchmarks.

Every ``bench_figXX`` module regenerates one table/figure of the paper.
The regenerated rows/series are printed to stdout (visible with ``-s``)
and archived under ``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Run everything with:

    pytest benchmarks/ --benchmark-only

The pytest-benchmark timings measure the *wall-clock* cost of driving the
simulator; the scientific content (the paper's numbers) is in the printed
tables, which report *simulated* time from the performance model.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_output(results_dir):
    """Return a writer that prints and archives a benchmark's table."""

    def _write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _write
