"""Fig. 12 — the test-matrix table.

For each suite analog: size, nnz/row, the dominant Ritz-value ratio
theta_1/theta_2 (the quantity controlling monomial-basis degeneration),
and kappa(B) — the condition number of the last Gram matrix of a restart
cycle generated with the paper's per-matrix (s, m) parameters.

The paper's values are printed alongside for comparison.  Expected shape:
theta_1/theta_2 very close to 1 for every matrix; kappa(B) enormous
(>> 1/eps for cant, large for the others).
"""

import numpy as np
import pytest

from repro.dist.multivector import DistMultiVector
from repro.gpu.context import MultiGpuContext
from repro.harness import format_table
from repro.matrices.suite import PAPER_SUITE, dominant_ritz_ratio, load_suite_matrix
from repro.mpk import MatrixPowersKernel, monomial_shift_ops
from repro.order.partition import block_row_partition
from repro.core.balance import balance_matrix


def gram_condition(matrix, s, m, basis="monomial") -> float:
    """kappa of the Gram matrix of the last MPK block of one restart cycle.

    ``basis="monomial"`` reflects the shiftless first cycle (worst case);
    ``basis="newton"`` uses Leja-ordered Ritz shifts from a short Arnoldi
    run, which is what every cycle after the first actually executes.
    """
    from repro.core.basis import newton_shift_ops
    from repro.matrices.suite import _arnoldi_ritz

    A = balance_matrix(matrix).matrix
    n = A.n_rows
    ctx = MultiGpuContext(1)
    part = block_row_partition(n, 1)
    V = DistMultiVector(ctx, part, m + 1)
    rng = np.random.default_rng(5)
    v0 = rng.standard_normal(n)
    V.set_column_from_host(0, v0 / np.linalg.norm(v0))
    shifts = _arnoldi_ritz(A, min(m, 40)) if basis == "newton" else None
    j = 0
    last_panel = None
    while j < m:
        s_cur = min(s, m - j)
        mpk = MatrixPowersKernel(ctx, A, part, s_cur)
        ops = (
            newton_shift_ops(shifts, s_cur)
            if shifts is not None
            else monomial_shift_ops(s_cur)
        )
        mpk.run(V, j, ops)
        last_panel = V.local[0].data[:, j : j + s_cur + 1]
        # Normalize the seed of the next block so scales stay bounded.
        col = V.local[0].data[:, j + s_cur]
        col /= np.linalg.norm(col)
        j += s_cur
    gram = last_panel.T @ last_panel
    return float(np.linalg.cond(gram))


def build_table():
    rows = []
    for name in ("cant", "g3_circuit", "dielfilter", "nlpkkt"):
        A, info = load_suite_matrix(name)
        t1, t2 = dominant_ritz_ratio(A, n_iter=40)
        m_eff = min(info.gmres_m, 60)
        kappa_mono = gram_condition(A, info.ca_s, m_eff, basis="monomial")
        kappa_newton = gram_condition(A, info.ca_s, m_eff, basis="newton")
        rows.append(
            [
                name,
                info.source,
                A.n_rows,
                A.nnz / A.n_rows,
                t1 / t2,
                info.paper_theta_ratio,
                kappa_mono,
                kappa_newton,
                info.paper_kappa_gram,
            ]
        )
    return rows


def test_fig12_matrix_table(benchmark, record_output):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = format_table(
        ["name", "source", "n", "nnz/n", "th1/th2", "paper th1/th2",
         "kappa(B) mono", "kappa(B) newton", "paper kappa(B)"],
        rows,
        title="Fig. 12 — test matrices (analogs at reduced scale)",
    )
    record_output("fig12_matrices", table)

    by_name = {row[0]: row for row in rows}
    for name, row in by_name.items():
        theta_ratio = row[4]
        # Clustered dominant eigenvalues, as in the paper (all < 1.1).
        assert 1.0 <= theta_ratio < 1.3, name
        # The monomial Gram matrix is severely ill-conditioned everywhere.
        assert row[6] > 1e6, name
        # Newton-Leja shifts tame the Gram matrix substantially.
        assert row[7] < row[6], name
    # cant's Gram matrix is the worst of the suite in the paper (3.26e16).
    assert by_name["cant"][6] > 1e12
