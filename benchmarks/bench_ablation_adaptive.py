"""Ablation — adaptive block length (Section VII future work).

Fixed s = m on the monomial basis drives CholQR into repeated breakdowns;
the adaptive scheme halves the working block length when the R-factor
conditioning degrades and recovers it when the basis is healthy.
"""

import numpy as np
import pytest

from repro.core.ca_gmres import ca_gmres
from repro.harness import format_table
from repro.matrices import poisson2d


def test_ablation_adaptive_s(benchmark, record_output):
    A = poisson2d(20)
    b = np.ones(A.n_rows)

    def run():
        out = {}
        for adaptive in (False, True):
            r = ca_gmres(
                A, b, s=30, m=30, basis="monomial", tsqr_method="cholqr",
                tol=1e-8, max_restarts=40, on_breakdown="fallback",
                adaptive_s=adaptive,
            )
            out[adaptive] = r
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for adaptive, r in out.items():
        s_used = (
            [h["s_used"] for h in r.details.get("s_history", [])]
            if adaptive
            else ["30 (fixed)"]
        )
        rows.append(
            [
                "adaptive" if adaptive else "fixed",
                r.converged,
                r.n_restarts,
                r.breakdowns,
                str(s_used[:8]),
            ]
        )
    record_output(
        "ablation_adaptive",
        format_table(
            ["scheme", "converged", "restarts", "breakdowns", "s choices"],
            rows,
            title="Ablation — fixed vs adaptive block length, "
                  "monomial CA-GMRES(30, 30)",
        ),
    )
    assert out[True].converged
    assert out[True].breakdowns <= out[False].breakdowns
    history = out[True].details["s_history"]
    assert any(h["s_used"] < 30 for h in history), "adaptive never adapted"
