"""Command-line interface: regenerate paper figures and run demo solves.

Usage::

    python -m repro list                      # available experiments
    python -m repro fig06 [--out results/]    # regenerate one figure
    python -m repro solve --matrix g3_circuit --solver ca_gmres --gpus 3
    python -m repro suite                     # Fig. 12 matrix table
    python -m repro trace --solver ca_gmres   # Chrome trace + breakdown
    python -m repro faults --seed 0 --rate 1e-3   # fault campaign

The figure commands drive the same code as ``pytest benchmarks/`` but
without the pytest machinery, so they are convenient for interactive use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _cmd_list(_args) -> int:
    print("experiments:")
    for name, doc in sorted(_EXPERIMENTS.items()):
        print(f"  {name:8s} {doc}")
    print("\nother commands: solve, suite, trace, faults, serve, metrics")
    return 0


def _write(out_dir: str | None, name: str, text: str) -> None:
    print(text)
    if out_dir:
        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"{name}.txt").write_text(text + "\n")


def _cmd_fig06(args) -> int:
    from repro.harness import format_series
    from repro.matrices import cant, g3_circuit
    from repro.mpk.analysis import surface_to_volume
    from repro.order import block_row_partition, kway_partition, rcm

    s_values = [1, 2, 3, 4, 5, 6, 8, 10]
    for name, matrix in (
        ("cant", cant(nx=48, ny=10, nz=10)),
        ("g3_circuit", g3_circuit(nx=96, ny=96)),
    ):
        n = matrix.n_rows
        series = {}
        configs = {
            "natural": (matrix, block_row_partition(n, 3)),
            "rcm": (matrix.permute(rcm(matrix)), block_row_partition(n, 3)),
            "kway": (matrix, kway_partition(matrix, 3)),
        }
        for label, (mat, part) in configs.items():
            series[label] = [
                float(np.mean(surface_to_volume(mat, part, s))) for s in s_values
            ]
        _write(
            args.out, f"fig06_{name}",
            format_series("s", s_values, series,
                          title=f"Fig. 6 — surface-to-volume, {name} (3 GPUs)"),
        )
    return 0


def _cmd_fig10(args) -> int:
    from repro.harness import format_table
    from repro.orth import TSQR_PROPERTY_TABLE

    s = 14
    rows = [
        [m.upper(), p.error_bound, p.flops_leading, p.blas_level, p.comm_phases(s)]
        for m, p in sorted(TSQR_PROPERTY_TABLE.items())
    ]
    _write(
        args.out, "fig10",
        format_table(
            ["method", "||I-Q'Q||", "flops", "BLAS", f"comm (s={s})"],
            rows, title="Fig. 10 — TSQR properties",
        ),
    )
    return 0


def _cmd_fig11(args) -> int:
    from repro.harness import format_series
    from repro.perf.kernels import kernel_flops_bytes
    from repro.perf.model import PerformanceModel

    model = PerformanceModel()
    n_values = [100_000, 400_000, 1_000_000]

    def rate(op, variant, cpu=False, **shape):
        flops, _ = kernel_flops_bytes(op, variant, **shape)
        t = (
            model.cpu_time(op, variant, **shape)
            if cpu
            else model.gpu_time(op, variant, **shape)
        )
        return flops / t / 1e9

    gemm = {
        v: [rate("gemm_tn", v, cpu=(v == "mkl"), n=n, k=30, j=30) for n in n_values]
        for v in ("cublas", "mkl", "batched")
    }
    gemv = {
        v: [rate("gemv_t", v, cpu=(v == "mkl"), n=n, k=30) for n in n_values]
        for v in ("cublas", "mkl", "magma")
    }
    _write(args.out, "fig11a",
           format_series("n", n_values, gemm, title="Fig. 11(a) — DGEMM Gflop/s"))
    _write(args.out, "fig11b",
           format_series("n", n_values, gemv, title="Fig. 11(b) — DGEMV Gflop/s"))
    return 0


def _cmd_fig08(args) -> int:
    from repro.dist.multivector import DistMultiVector
    from repro.gpu.context import MultiGpuContext
    from repro.harness import ascii_plot, format_series
    from repro.matrices import cant
    from repro.mpk import MatrixPowersKernel
    from repro.order import block_row_partition

    s_values = [1, 2, 3, 4, 5, 6, 8, 10]
    m = 100
    matrix = cant(nx=48, ny=10, nz=10)
    part = block_row_partition(matrix.n_rows, 3)
    v0 = np.ones(matrix.n_rows) / np.sqrt(matrix.n_rows)
    totals = []
    for s in s_values:
        ctx = MultiGpuContext(3)
        mpk = MatrixPowersKernel(ctx, matrix, part, s)
        V = DistMultiVector(ctx, part, s + 1)
        V.set_column_from_host(0, v0)
        ctx.reset_clocks()
        for _ in range(-(-m // s)):
            with ctx.region("mpk"):
                mpk.run(V, 0)
        totals.append(1e3 * ctx.timers["mpk"])
    _write(
        args.out, "fig08",
        format_series("s", s_values, {"total (ms)": totals},
                      title=f"Fig. 8 — MPK time for m={m} vectors, cant analog"),
    )
    print()
    print(ascii_plot(s_values, {"MPK total ms": totals}, width=48, height=10))
    return 0


def _cmd_suite(args) -> int:
    from repro.harness import format_table
    from repro.matrices.suite import PAPER_SUITE, dominant_ritz_ratio, load_suite_matrix

    rows = []
    for name in sorted(PAPER_SUITE):
        A, info = load_suite_matrix(name)
        t1, t2 = dominant_ritz_ratio(A, n_iter=40)
        rows.append(
            [name, info.source, A.n_rows, round(A.nnz / A.n_rows, 2),
             round(t1 / t2, 4), info.gmres_m, info.ca_s]
        )
    _write(
        args.out, "suite",
        format_table(
            ["name", "source", "n", "nnz/n", "th1/th2", "m", "s"],
            rows, title="Test-matrix suite (Fig. 12 analogs)",
        ),
    )
    return 0


def _cmd_solve(args) -> int:
    from repro.core.ca_gmres import ca_gmres
    from repro.core.gmres import gmres
    from repro.matrices.suite import load_suite_matrix
    from repro.order import kway_partition

    A, info = load_suite_matrix(args.matrix)
    b = np.ones(A.n_rows)
    partition = (
        kway_partition(A, args.gpus)
        if info.ordering == "kway" and args.gpus > 1
        else None
    )
    common = dict(
        n_gpus=args.gpus, partition=partition, m=info.gmres_m,
        tol=args.tol, max_restarts=args.max_restarts,
    )
    if args.solver == "gmres":
        result = gmres(A, b, **common)
    else:
        result = ca_gmres(A, b, s=info.ca_s, **common)
    print(f"matrix     : {args.matrix} (n={A.n_rows}, nnz/row={A.nnz / A.n_rows:.1f})")
    print(f"solver     : {args.solver} on {args.gpus} simulated GPU(s)")
    print(f"converged  : {result.converged}")
    print(f"restarts   : {result.n_restarts}  iterations: {result.n_iterations}")
    print(f"time/restart (simulated): {1e3 * result.time_per_restart():.2f} ms")
    phases = {k: f"{1e3 * v:.2f}" for k, v in sorted(result.timers.items())}
    print(f"phase ms   : {phases}")
    return 0 if result.converged or args.max_restarts else 1


def _cmd_trace(args) -> int:
    """Run one solver config, write a Chrome trace + text breakdown."""
    from repro.core.ca_gmres import ca_gmres
    from repro.core.gmres import gmres
    from repro.core.pipelined import pipelined_gmres
    from repro.gpu.context import MultiGpuContext
    from repro.harness import cycle_breakdown_table, profile_breakdown_table
    from repro.matrices.stencil import (
        convection_diffusion2d,
        poisson2d,
        poisson3d,
    )

    builders = {
        "poisson2d": poisson2d,
        "poisson3d": poisson3d,
        "convdiff2d": convection_diffusion2d,
    }
    A = builders[args.matrix](args.nx)
    b = np.ones(A.n_rows)
    ctx = MultiGpuContext(args.gpus)
    common = dict(
        ctx=ctx, m=args.m, tol=args.tol, max_restarts=args.max_restarts
    )
    if args.solver == "gmres":
        result = gmres(A, b, **common)
    elif args.solver == "pipelined":
        result = pipelined_gmres(A, b, **common)
    else:
        result = ca_gmres(A, b, s=args.s, **common)

    out_dir = Path(args.out or "results")
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"trace_{args.solver}_{args.matrix}"
    trace_path = out_dir / f"{stem}.json"
    ctx.trace.write_chrome_trace(trace_path)

    title = (
        f"{args.solver} on {args.gpus} simulated GPU(s), "
        f"{args.matrix} nx={args.nx} (n={A.n_rows})"
    )
    text = "\n\n".join(
        [
            profile_breakdown_table(result, title=title),
            cycle_breakdown_table(result),
        ]
    )
    print(text)
    (out_dir / f"{stem}.txt").write_text(text + "\n")
    n_events = len(ctx.trace.events)
    lanes = ", ".join(ctx.trace.lanes())
    print(
        f"\nwrote {trace_path} ({n_events} events; lanes: {lanes})\n"
        "open it in chrome://tracing or https://ui.perfetto.dev"
    )
    return 0


def _cmd_faults(args) -> int:
    """Run a deterministic fault-injection campaign; print recovery tables."""
    import json

    from repro.faults.campaign import campaign_tables, run_campaign

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    registry = None
    if args.metrics_out:
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
    campaign = run_campaign(
        solver=args.solver, problem=args.matrix, nx=args.nx,
        n_gpus=args.gpus, seed=args.seed, rate=args.rate, kinds=kinds,
        trials=args.trials, s=args.s, m=args.m, tol=args.tol,
        max_restarts=args.max_restarts, stall_factor=args.stall_factor,
        max_faults=args.max_faults, degrade=args.degrade,
        deadline=args.deadline, session=args.session, metrics=registry,
    )
    print(campaign_tables(campaign))
    if registry is not None:
        from repro.metrics import write_snapshot

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_snapshot(registry, path)
        print(f"\nwrote metrics snapshot {path} ({len(registry)} families)")
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / (
            f"faults_{args.solver}_{args.matrix}_seed{args.seed}.json"
        )
        path.write_text(json.dumps(campaign, indent=2) + "\n")
        print(f"\nwrote {path}")
    # A campaign "fails" only when a fault went unrecovered without being
    # reported as such — aborted trials are a *successful* structured
    # outcome, so the exit code reflects crashes alone (exceptions).
    return 0


def _cmd_serve(args) -> int:
    """Stand up a solver session and serve repeated / batched solves."""
    import time

    from repro.harness import format_table
    from repro.matrices.stencil import (
        convection_diffusion2d,
        poisson2d,
        poisson3d,
    )
    from repro.serve import SolverSession

    builders = {
        "poisson2d": poisson2d,
        "poisson3d": poisson3d,
        "convdiff2d": convection_diffusion2d,
    }
    A = builders[args.matrix](args.nx)
    rng = np.random.default_rng(args.seed)
    bs = [rng.standard_normal(A.n_rows) for _ in range(max(args.rhs, 1))]

    kwargs = dict(
        n_gpus=args.gpus, ordering=args.ordering, m=args.m,
        tol=args.tol, max_restarts=args.max_restarts,
    )
    if args.solver == "ca":
        kwargs.update(s=args.s, basis=args.basis)
    session = SolverSession(A, solver=args.solver, **kwargs)

    rows = []
    t0 = time.perf_counter()
    cold = session.solve(bs[0])
    t_cold = time.perf_counter() - t0
    rows.append(["cold solve", f"{1e3 * t_cold:.1f}",
                 f"{1e3 * cold.total_time:.2f}", cold.n_iterations,
                 "yes" if cold.converged else "no"])
    t0 = time.perf_counter()
    warm = session.solve(bs[0])
    t_warm = time.perf_counter() - t0
    rows.append(["warm solve", f"{1e3 * t_warm:.1f}",
                 f"{1e3 * warm.total_time:.2f}", warm.n_iterations,
                 "yes" if warm.converged else "no"])
    if len(bs) > 1:
        t0 = time.perf_counter()
        batch = session.solve_many(bs)
        t_batch = time.perf_counter() - t0
        rows.append([
            f"solve_many x{len(bs)}", f"{1e3 * t_batch:.1f}",
            f"{1e3 * batch[-1].total_time:.2f}",
            sum(r.n_iterations for r in batch),
            f"{sum(r.converged for r in batch)}/{len(bs)}",
        ])
    print(format_table(
        ["request", "wall ms", "sim ms", "iters", "conv"], rows,
        title=(
            f"Serving — {args.solver} on {args.gpus} simulated GPU(s), "
            f"{args.matrix} nx={args.nx} (n={A.n_rows}), "
            f"ordering={args.ordering}"
        ),
    ))
    stats = session.stats()
    identical = bool(np.array_equal(cold.x, warm.x))
    print(
        f"\nplan cache : {stats['structural_plans']} structural / "
        f"{stats['host_plans']} host plan(s); "
        f"{stats['plan_hits']} hit(s), {stats['plan_misses']} miss(es), "
        f"{stats['invalidations']} invalidation(s) over "
        f"{stats['n_solves']} solve(s)"
    )
    print(f"fingerprint: pattern {session.fingerprint.pattern[:16]}…, "
          f"roster {'+'.join(session.fingerprint.roster)}")
    print(f"warm == cold (bit-identical): {identical}")
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(f"plan reuse : warm solve {speedup:.1f}x faster (wall-clock)")
    return 0 if identical else 1


def _cmd_metrics(args) -> int:
    """Run the fig14-suite serving workload; export registry + timings."""
    import json

    from repro.metrics import (
        deterministic_snapshot,
        to_prometheus,
        write_snapshot,
    )
    from repro.metrics.workload import run_workload

    registry, fig14_doc = run_workload(
        n_gpus=args.gpus, suite=args.suite, basis=args.basis
    )
    print(to_prometheus(registry), end="")

    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "metrics.prom").write_text(to_prometheus(registry))
        write_snapshot(registry, out_dir / "metrics.json")
        (out_dir / "fig14_sim.json").write_text(
            json.dumps(fig14_doc, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"\nwrote {out_dir}/metrics.prom, {out_dir}/metrics.json, "
            f"{out_dir}/fig14_sim.json ({len(registry)} metric families)"
        )

    if args.check:
        registry2, fig14_doc2 = run_workload(
            n_gpus=args.gpus, suite=args.suite, basis=args.basis
        )
        same_snapshot = json.dumps(
            deterministic_snapshot(registry), sort_keys=True
        ) == json.dumps(deterministic_snapshot(registry2), sort_keys=True)
        same_timings = fig14_doc == fig14_doc2
        print(
            f"\ndeterminism check: snapshot "
            f"{'bit-identical' if same_snapshot else 'MISMATCH'}, "
            f"timings {'bit-identical' if same_timings else 'MISMATCH'} "
            "across two consecutive runs (wall-clock metrics excluded)"
        )
        if not (same_snapshot and same_timings):
            return 1
    return 0


_EXPERIMENTS = {
    "fig06": "MPK surface-to-volume ratio vs s",
    "fig08": "MPK run time vs s (with ASCII plot)",
    "fig10": "TSQR property table",
    "fig11": "tall-skinny kernel Gflop/s (model)",
}

_HANDLERS = {
    "list": _cmd_list,
    "fig06": _cmd_fig06,
    "fig08": _cmd_fig08,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "suite": _cmd_suite,
    "solve": _cmd_solve,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CA-GMRES reproduction: figures and demo solves",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("list", "fig06", "fig08", "fig10", "fig11", "suite"):
        p = sub.add_parser(name)
        p.add_argument("--out", default=None, help="directory for table files")
    p = sub.add_parser("solve")
    p.add_argument("--matrix", default="g3_circuit",
                   choices=["cant", "g3_circuit", "dielfilter", "nlpkkt"])
    p.add_argument("--solver", default="ca_gmres", choices=["gmres", "ca_gmres"])
    p.add_argument("--gpus", type=int, default=3)
    p.add_argument("--tol", type=float, default=1e-4)
    p.add_argument("--max-restarts", type=int, default=10)
    p = sub.add_parser(
        "trace",
        help="run one solver config, write a Chrome trace_event JSON "
             "(chrome://tracing / Perfetto) and a kernel breakdown table",
    )
    p.add_argument("--matrix", default="poisson2d",
                   choices=["poisson2d", "poisson3d", "convdiff2d"])
    p.add_argument("--nx", type=int, default=30,
                   help="stencil grid dimension (n = nx^2 or nx^3)")
    p.add_argument("--solver", default="ca_gmres",
                   choices=["gmres", "ca_gmres", "pipelined"])
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--m", type=int, default=20)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--tol", type=float, default=1e-4)
    p.add_argument("--max-restarts", type=int, default=3)
    p.add_argument("--out", default=None, help="output directory (default results/)")
    p = sub.add_parser(
        "faults",
        help="run a seeded fault-injection campaign and print the "
             "injection/recovery summary tables",
    )
    p.add_argument("--solver", default="ca_gmres",
                   choices=["gmres", "ca_gmres", "pipelined"])
    p.add_argument("--matrix", default="poisson2d",
                   choices=["poisson2d", "poisson3d", "convdiff2d"])
    p.add_argument("--nx", type=int, default=30,
                   help="stencil grid dimension (n = nx^2 or nx^3)")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--seed", type=int, default=0,
                   help="root seed; trial i uses seed+i")
    p.add_argument("--rate", type=float, default=1e-3,
                   help="per-opportunity fault probability")
    p.add_argument("--kinds", default="corrupt,poison,stall",
                   help="comma-separated fault kinds (add 'dropout' for "
                        "hard device loss)")
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--m", type=int, default=20)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--max-restarts", type=int, default=80)
    p.add_argument("--stall-factor", type=float, default=8.0)
    p.add_argument("--max-faults", type=int, default=None,
                   help="cap on rate-drawn injections per trial")
    p.add_argument("--degrade", action="store_true",
                   help="absorb device dropouts by repartitioning over "
                        "the surviving GPUs instead of aborting")
    p.add_argument("--deadline", type=float, default=None,
                   help="simulated-time budget per trial in seconds; the "
                        "solve stops at the first restart boundary past it")
    p.add_argument("--out", default=None,
                   help="also write the campaign JSON to this directory")
    p.add_argument("--session", action="store_true",
                   help="share one solver session (cached structural plan) "
                        "across all trials, re-arming the fault plan per "
                        "trial; records are byte-identical either way")
    p.add_argument("--metrics-out", default=None,
                   help="aggregate every trial's telemetry into a metrics "
                        "registry and write its JSON snapshot to this file")
    p = sub.add_parser(
        "serve",
        help="stand up a solver session: plan once, then serve repeated "
             "and batched solves against the same matrix",
    )
    p.add_argument("--matrix", default="poisson2d",
                   choices=["poisson2d", "poisson3d", "convdiff2d"])
    p.add_argument("--nx", type=int, default=30,
                   help="stencil grid dimension (n = nx^2 or nx^3)")
    p.add_argument("--solver", default="ca", choices=["ca", "gmres"])
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--ordering", default="natural",
                   choices=["natural", "rcm", "kway"])
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--m", type=int, default=20)
    p.add_argument("--basis", default="newton", choices=["newton", "monomial"])
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--max-restarts", type=int, default=40)
    p.add_argument("--rhs", type=int, default=4,
                   help="right-hand sides for the batched solve_many demo")
    p.add_argument("--seed", type=int, default=0, help="RHS generator seed")
    p = sub.add_parser(
        "metrics",
        help="run the fig14-suite serving workload, print Prometheus text "
             "exposition, and write the JSON snapshot + simulated timings",
    )
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--suite", default="quick", choices=["quick", "tiny"],
                   help="workload: 'quick' = reduced fig14 matrices, "
                        "'tiny' = one small stencil (smoke tests)")
    p.add_argument("--basis", default="newton", choices=["newton", "monomial"])
    p.add_argument("--out", default=None,
                   help="directory for metrics.prom / metrics.json / "
                        "fig14_sim.json")
    p.add_argument("--check", action="store_true",
                   help="run the workload twice and verify the "
                        "deterministic (simulated-time) metrics are "
                        "bit-identical across runs")
    args = parser.parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
