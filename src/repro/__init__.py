"""repro — CA-GMRES on multicores with multiple (simulated) GPUs.

A complete reproduction of

    I. Yamazaki, H. Anzt, S. Tomov, M. Hoemmen, J. Dongarra,
    "Improving the Performance of CA-GMRES on Multicores with Multiple
    GPUs", IPDPS 2014.

Quick start
-----------
>>> import numpy as np
>>> from repro import ca_gmres, gmres
>>> from repro.matrices import poisson2d
>>> A = poisson2d(32)                      # 1024 x 1024 SPD stencil
>>> b = np.ones(A.n_rows)
>>> result = ca_gmres(A, b, n_gpus=3, s=10, m=30, tsqr_method="cholqr")
>>> bool(result.converged)
True

Packages
--------
``repro.core``     GMRES / CA-GMRES drivers, Newton shifts, least squares.
``repro.mpk``      Matrix powers kernel + structural analysis (Figs. 6-8).
``repro.orth``     TSQR variants, BOrth, error metrics (Figs. 9-11, 13).
``repro.gpu``      Simulated multi-GPU runtime (devices, PCIe, counters).
``repro.perf``     Machine + kernel cost models (calibrated to Fig. 11).
``repro.dist``     Block-row distributed matrices and multivectors.
``repro.sparse``   CSR / ELLPACK / COO formats, Matrix Market I/O.
``repro.order``    RCM, k-way partitioning, block-row partitions.
``repro.matrices`` Synthetic analogs of the paper's test matrices (Fig. 12).
``repro.harness``  Experiment runner and table/series formatting.
"""

from .core import ca_gmres, gmres
from .core.convergence import SolveResult
from .gpu.context import MultiGpuContext
from .sparse import CooMatrix, CsrMatrix, EllpackMatrix

__version__ = "1.0.0"

__all__ = [
    "ca_gmres",
    "gmres",
    "SolveResult",
    "MultiGpuContext",
    "CooMatrix",
    "CsrMatrix",
    "EllpackMatrix",
    "__version__",
]
