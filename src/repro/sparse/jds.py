"""JDS (jagged diagonal storage) sparse format.

ELLPACK pads every row to the longest row, which wastes memory and
bandwidth when row lengths are skewed (e.g. the circuit matrices' hub
nodes).  JDS fixes this: rows are sorted by decreasing length and the
k-th nonzeros of all rows that have one are stored contiguously (a
"jagged diagonal"), so the GPU streams fully dense arrays with zero
padding at the cost of a row permutation.

This is the standard alternative GPU SpMV format from the same era as the
paper; :class:`JdsMatrix` lets the benchmarks quantify ELLPACK's padding
overhead against it.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix

__all__ = ["JdsMatrix"]


class JdsMatrix:
    """Sparse matrix in jagged-diagonal storage.

    Attributes
    ----------
    perm
        Row permutation: ``perm[i]`` is the original index of the i-th
        (longest-first) stored row.
    jd_ptr
        Start offset of each jagged diagonal in ``values``/``col_idx``
        (length ``n_diags + 1``).
    values, col_idx
        The jagged diagonals, concatenated; diagonal ``d`` holds the d-th
        nonzero of every row with at least ``d + 1`` entries, in permuted
        row order.
    """

    def __init__(self, shape, perm, jd_ptr, values, col_idx):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        self.shape = (n_rows, n_cols)
        self.perm = np.ascontiguousarray(perm, dtype=np.int64)
        self.jd_ptr = np.ascontiguousarray(jd_ptr, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        if self.perm.shape != (n_rows,):
            raise ValueError("perm must have one entry per row")
        if np.any(np.sort(self.perm) != np.arange(n_rows)):
            raise ValueError("perm must be a permutation of the rows")
        if self.jd_ptr.size == 0 or self.jd_ptr[0] != 0:
            raise ValueError("jd_ptr must start at 0")
        if self.jd_ptr[-1] != self.values.size:
            raise ValueError("jd_ptr must end at nnz")
        if np.any(np.diff(self.jd_ptr) < 0):
            raise ValueError("jd_ptr must be non-decreasing")
        if self.values.shape != self.col_idx.shape:
            raise ValueError("values and col_idx must have equal length")
        if self.col_idx.size and (
            self.col_idx.min() < 0 or self.col_idx.max() >= max(n_cols, 1)
        ):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_diags(self) -> int:
        """Number of jagged diagonals (the maximum row length)."""
        return int(self.jd_ptr.size - 1)

    @classmethod
    def from_csr(cls, csr: CsrMatrix) -> "JdsMatrix":
        """Convert from CSR (rows sorted by decreasing length, stable)."""
        n_rows, _ = csr.shape
        lengths = np.diff(csr.indptr)
        perm = np.argsort(-lengths, kind="stable").astype(np.int64)
        sorted_lengths = lengths[perm]
        max_len = int(sorted_lengths.max()) if n_rows else 0
        # diag_counts[d] = number of rows with length > d
        diag_counts = np.array(
            [int((sorted_lengths > d).sum()) for d in range(max_len)],
            dtype=np.int64,
        )
        jd_ptr = np.zeros(max_len + 1, dtype=np.int64)
        np.cumsum(diag_counts, out=jd_ptr[1:])
        values = np.empty(csr.nnz, dtype=np.float64)
        col_idx = np.empty(csr.nnz, dtype=np.int64)
        for d in range(max_len):
            rows = perm[: diag_counts[d]]
            src = csr.indptr[rows] + d
            sl = slice(jd_ptr[d], jd_ptr[d + 1])
            values[sl] = csr.data[src]
            col_idx[sl] = csr.indices[src]
        return cls(csr.shape, perm, jd_ptr, values, col_idx)

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR (row-sorted column indices)."""
        from .coo import CooMatrix

        n_rows, n_cols = self.shape
        rows = np.empty(self.nnz, dtype=np.int64)
        for d in range(self.n_diags):
            sl = slice(self.jd_ptr[d], self.jd_ptr[d + 1])
            count = self.jd_ptr[d + 1] - self.jd_ptr[d]
            rows[sl] = self.perm[:count]
        return CooMatrix(self.shape, rows, self.col_idx, self.values).to_csr()

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """SpMV one jagged diagonal at a time (fully dense streams)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[1]} columns, "
                f"x has {x.shape[0]}"
            )
        permuted = np.zeros(self.shape[0], dtype=np.float64)
        for d in range(self.n_diags):
            sl = slice(self.jd_ptr[d], self.jd_ptr[d + 1])
            count = self.jd_ptr[d + 1] - self.jd_ptr[d]
            permuted[:count] += self.values[sl] * x[self.col_idx[sl]]
        if out is None:
            out = np.zeros(self.shape[0], dtype=np.float64)
        else:
            out[:] = 0.0
        out[self.perm] = permuted
        return out

    def padding_ratio(self) -> float:
        """Always 1.0 — JDS stores no padding (ELLPACK's selling point)."""
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JdsMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"n_diags={self.n_diags})"
        )
