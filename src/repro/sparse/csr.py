"""Compressed sparse row (CSR) matrix.

CSR is the CPU-side format of the paper (Fig. 3 caption) and the format every
structural operation in this library works on: row extraction for the matrix
powers kernel, symmetric permutation for reordering, row/column scaling for
matrix balancing, and the reference SpMV.

All kernels are vectorized NumPy; the only Python-level loops are over rows in
operations that are inherently sequential (none in the hot paths).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float64_array, as_index_array

__all__ = ["CsrMatrix", "csr_from_dense", "eye_csr"]


class CsrMatrix:
    """Sparse matrix in compressed sparse row format.

    Parameters
    ----------
    shape
        ``(n_rows, n_cols)``.
    indptr
        Row pointer array of length ``n_rows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices
        Column indices, not required to be sorted within a row unless
        stated by the producing routine (``CooMatrix.to_csr`` sorts them).
    data
        Nonzero values, parallel to ``indices``.
    """

    def __init__(self, shape, indptr, indices, data):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        self.shape = (n_rows, n_cols)
        self.indptr = as_index_array(indptr, "indptr")
        self.indices = as_index_array(indices, "indices")
        self.data = as_float64_array(data, "data")
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have equal length")
        # Negative indices are rejected by as_index_array above; they would
        # otherwise silently wrap around via fancy indexing in
        # matvec/scale_cols, producing wrong results instead of an error.
        if self.indices.size and self.indices.max() >= n_cols:
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries in each row (length ``n_rows``)."""
        return np.diff(self.indptr)

    def copy(self) -> "CsrMatrix":
        """Deep copy."""
        return CsrMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy()
        )

    # ------------------------------------------------------------------
    # Numerical kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix-vector product ``y = A @ x``.

        Implemented with a segmented sum (``np.add.reduceat``) so the whole
        product is a handful of vectorized operations.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.n_cols:
            raise ValueError(
                f"dimension mismatch: matrix has {self.n_cols} columns, x has {x.shape[0]}"
            )
        if out is None:
            out = np.zeros(self.n_rows, dtype=np.float64)
        else:
            out[:] = 0.0
        if self.nnz == 0:
            return out
        products = self.data * x[self.indices]
        # reduceat needs segment starts strictly inside the array; empty rows
        # are handled by masking them out afterwards.
        starts = self.indptr[:-1]
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            sums = np.add.reduceat(products, starts[nonempty])
            out[nonempty] = sums
        return out

    def matvec_rows(self, x: np.ndarray, n_active_rows: int, out: np.ndarray) -> np.ndarray:
        """SpMV restricted to the leading ``n_active_rows`` rows.

        Used by the matrix powers kernel, whose per-step working set is a
        prefix of the level-ordered extended local matrix.  ``out`` must have
        length >= ``n_active_rows``; only that prefix is written.
        """
        if n_active_rows < 0 or n_active_rows > self.n_rows:
            raise ValueError(f"n_active_rows out of range: {n_active_rows}")
        end = self.indptr[n_active_rows]
        products = self.data[:end] * x[self.indices[:end]]
        out[:n_active_rows] = 0.0
        diffs = np.diff(self.indptr[: n_active_rows + 1])
        nonempty = np.flatnonzero(diffs > 0)
        if nonempty.size:
            sums = np.add.reduceat(products, self.indptr[:-1][nonempty])
            out[nonempty] = sums
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transpose product ``x = A.T @ y`` (scatter-add formulation)."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape[0] != self.n_rows:
            raise ValueError("dimension mismatch in rmatvec")
        out = np.zeros(self.n_cols, dtype=np.float64)
        if self.nnz == 0:
            return out
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * y[row_ids])
        return out

    def to_dense(self) -> np.ndarray:
        """Return the dense equivalent."""
        out = np.zeros(self.shape, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        out[row_ids, self.indices] = self.data
        return out

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where absent)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        mask = row_ids == self.indices
        diag_rows = row_ids[mask]
        keep = diag_rows < n
        diag[diag_rows[keep]] = self.data[mask][keep]
        return diag

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def extract_rows(self, row_ids) -> "CsrMatrix":
        """Return the submatrix ``A(rows, :)`` in the given row order.

        This is the paper's :math:`A(\\mathbf{i}, :)` operation used to build
        local and boundary submatrices for MPK.
        """
        row_ids = as_index_array(row_ids, "row_ids")
        if row_ids.size and row_ids.max() >= self.n_rows:
            raise ValueError("row index out of range")
        counts = np.diff(self.indptr)[row_ids]
        new_indptr = np.zeros(row_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        total = int(new_indptr[-1])
        new_indices = np.empty(total, dtype=np.int64)
        new_data = np.empty(total, dtype=np.float64)
        # Gather each selected row's slice.  Build a single index vector:
        # for row r with slice [a, b), we need positions a..b-1.
        starts = self.indptr[row_ids]
        if total:
            offsets = np.arange(total) - np.repeat(new_indptr[:-1], counts)
            src = np.repeat(starts, counts) + offsets
            new_indices[:] = self.indices[src]
            new_data[:] = self.data[src]
        return CsrMatrix((row_ids.size, self.n_cols), new_indptr, new_indices, new_data)

    def transpose(self) -> "CsrMatrix":
        """Return ``A.T`` as a new CSR matrix (column indices sorted)."""
        n_rows, n_cols = self.shape
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        row_ids = np.repeat(np.arange(n_rows), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        return CsrMatrix(
            (n_cols, n_rows), indptr, row_ids[order], self.data[order]
        )

    def permute(self, perm) -> "CsrMatrix":
        """Symmetric permutation ``A(perm, perm)`` for a square matrix.

        ``perm[k]`` is the original index of the row/column placed at
        position ``k`` (i.e. "new order lists old ids"), matching the output
        convention of :func:`repro.order.rcm`.
        """
        perm = as_index_array(perm, "perm")
        if self.n_rows != self.n_cols:
            raise ValueError("permute requires a square matrix")
        if perm.size != self.n_rows:
            raise ValueError("perm has wrong length")
        if perm.size and perm.max() >= self.n_rows:
            raise ValueError("perm entries must be in [0, n_rows)")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        rows_perm = self.extract_rows(perm)
        new_indices = inv[rows_perm.indices]
        # Keep column indices sorted within each row for determinism.
        result = CsrMatrix(self.shape, rows_perm.indptr, new_indices, rows_perm.data)
        return result.sort_indices()

    def sort_indices(self) -> "CsrMatrix":
        """Return a copy with column indices sorted within each row."""
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        order = np.lexsort((self.indices, row_ids))
        return CsrMatrix(
            self.shape, self.indptr.copy(), self.indices[order], self.data[order]
        )

    def scale_rows(self, scale: np.ndarray) -> "CsrMatrix":
        """Return ``diag(scale) @ A``."""
        scale = as_float64_array(scale, "scale")
        if scale.shape != (self.n_rows,):
            raise ValueError("scale has wrong length")
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        return CsrMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data * scale[row_ids]
        )

    def scale_cols(self, scale: np.ndarray) -> "CsrMatrix":
        """Return ``A @ diag(scale)``."""
        scale = as_float64_array(scale, "scale")
        if scale.shape != (self.n_cols,):
            raise ValueError("scale has wrong length")
        return CsrMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data * scale[self.indices]
        )

    def row_norms(self, ord: float = 2.0) -> np.ndarray:
        """Per-row vector norms of the stored values."""
        out = np.zeros(self.n_rows, dtype=np.float64)
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if not nonempty.size:
            return out
        if ord == 2.0:
            sums = np.add.reduceat(self.data**2, self.indptr[:-1][nonempty])
            out[nonempty] = np.sqrt(sums)
        elif ord == 1.0:
            out[nonempty] = np.add.reduceat(np.abs(self.data), self.indptr[:-1][nonempty])
        elif ord == np.inf:
            out[nonempty] = np.maximum.reduceat(np.abs(self.data), self.indptr[:-1][nonempty])
        else:
            raise ValueError(f"unsupported norm order {ord!r}")
        return out

    def col_norms(self, ord: float = 2.0) -> np.ndarray:
        """Per-column vector norms of the stored values."""
        out = np.zeros(self.n_cols, dtype=np.float64)
        if self.nnz == 0:
            return out
        if ord == 2.0:
            np.add.at(out, self.indices, self.data**2)
            np.sqrt(out, out=out)
        elif ord == 1.0:
            np.add.at(out, self.indices, np.abs(self.data))
        elif ord == np.inf:
            np.maximum.at(out, self.indices, np.abs(self.data))
        else:
            raise ValueError(f"unsupported norm order {ord!r}")
        return out

    def add_scaled_identity(self, alpha: float) -> "CsrMatrix":
        """Return ``A + alpha * I`` for a square matrix.

        Implemented through COO so that rows lacking a stored diagonal gain
        one; used by shifted generators and the Newton-basis tests.
        """
        from .coo import CooMatrix

        if self.n_rows != self.n_cols:
            raise ValueError("add_scaled_identity requires a square matrix")
        n = self.n_rows
        row_ids = np.repeat(np.arange(n), np.diff(self.indptr))
        rows = np.concatenate([row_ids, np.arange(n)])
        cols = np.concatenate([self.indices, np.arange(n)])
        data = np.concatenate([self.data, np.full(n, float(alpha))])
        return CooMatrix(self.shape, rows, cols, data).to_csr()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"


def csr_from_dense(dense: np.ndarray, tol: float = 0.0) -> CsrMatrix:
    """Build a :class:`CsrMatrix` from a dense array.

    Entries with ``abs(value) <= tol`` are dropped.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("dense must be 2-D")
    mask = np.abs(dense) > tol
    rows, cols = np.nonzero(mask)
    indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CsrMatrix(dense.shape, indptr, cols.astype(np.int64), dense[mask])


def eye_csr(n: int, value: float = 1.0) -> CsrMatrix:
    """Return ``value * I`` of order ``n`` in CSR format."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return CsrMatrix(
        (n, n),
        np.arange(n + 1, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        np.full(n, float(value)),
    )
