"""Adjacency-graph utilities over CSR structure.

The matrix powers kernel, RCM ordering, and k-way partitioning all operate on
the adjacency graph of ``A`` (Section IV of the paper).  These routines work
purely on the symbolic structure (``indptr``/``indices``) and are vectorized
level-by-level: a BFS front is expanded with one fancy-indexing gather per
level rather than per vertex.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix

__all__ = [
    "adjacency_structure",
    "symmetrize_structure",
    "bfs_levels",
    "pseudo_peripheral_node",
    "connected_components",
    "expand_front",
]


def adjacency_structure(matrix: CsrMatrix, drop_diagonal: bool = True) -> CsrMatrix:
    """Return the symmetrized 0/1 adjacency structure of a square matrix.

    The adjacency graph of ``A`` has an edge {i, j} whenever ``a_ij`` or
    ``a_ji`` is stored.  Values are set to 1.0; the diagonal is dropped by
    default (self-loops are irrelevant to reachability).
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("adjacency_structure requires a square matrix")
    sym = symmetrize_structure(matrix)
    if not drop_diagonal:
        return sym
    row_ids = np.repeat(np.arange(sym.n_rows), np.diff(sym.indptr))
    keep = row_ids != sym.indices
    counts = np.zeros(sym.n_rows, dtype=np.int64)
    np.add.at(counts, row_ids[keep], 1)
    indptr = np.zeros(sym.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CsrMatrix(sym.shape, indptr, sym.indices[keep], np.ones(int(keep.sum())))


def symmetrize_structure(matrix: CsrMatrix) -> CsrMatrix:
    """Return the structure of ``A + A.T`` with all values set to 1.0."""
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("symmetrize_structure requires a square matrix")
    from .coo import CooMatrix

    row_ids = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
    rows = np.concatenate([row_ids, matrix.indices])
    cols = np.concatenate([matrix.indices, row_ids])
    coo = CooMatrix(matrix.shape, rows, cols, np.ones(rows.size))
    sym = coo.to_csr()
    sym.data[:] = 1.0
    return sym


def expand_front(graph: CsrMatrix, front: np.ndarray, visited: np.ndarray) -> np.ndarray:
    """One BFS expansion: unvisited neighbors of ``front``.

    ``visited`` is a boolean mask updated in place (the returned vertices are
    marked visited).  Vectorized: a single gather of all neighbor lists in the
    front followed by de-duplication.
    """
    if front.size == 0:
        return front
    starts = graph.indptr[front]
    counts = graph.indptr[front + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    neighbors = graph.indices[np.repeat(starts, counts) + offsets]
    fresh = neighbors[~visited[neighbors]]
    fresh = np.unique(fresh)
    visited[fresh] = True
    return fresh


def bfs_levels(graph: CsrMatrix, root: int) -> np.ndarray:
    """Breadth-first level of every vertex from ``root`` (-1 if unreachable)."""
    n = graph.n_rows
    if not 0 <= root < n:
        raise ValueError(f"root out of range: {root}")
    levels = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    front = np.array([root], dtype=np.int64)
    level = 0
    while front.size:
        levels[front] = level
        front = expand_front(graph, front, visited)
        level += 1
    return levels


def pseudo_peripheral_node(graph: CsrMatrix, start: int = 0) -> int:
    """George-Liu pseudo-peripheral vertex heuristic.

    Repeatedly BFS from the current candidate and move to a minimum-degree
    vertex in the last (deepest) level until the eccentricity stops growing.
    Used as the RCM starting vertex and for partition seeds.
    """
    n = graph.n_rows
    if n == 0:
        raise ValueError("graph is empty")
    if not 0 <= start < n:
        raise ValueError(f"start out of range: {start}")
    degrees = graph.row_nnz()
    node = int(start)
    last_ecc = -1
    for _ in range(n):  # bounded; terminates far earlier in practice
        levels = bfs_levels(graph, node)
        reachable = levels >= 0
        ecc = int(levels[reachable].max()) if reachable.any() else 0
        if ecc <= last_ecc:
            return node
        last_ecc = ecc
        deepest = np.flatnonzero(levels == ecc)
        node = int(deepest[np.argmin(degrees[deepest])])
    return node


def connected_components(graph: CsrMatrix) -> np.ndarray:
    """Label connected components (0-based labels, length ``n``)."""
    n = graph.n_rows
    labels = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    current = 0
    for seed in range(n):
        if visited[seed]:
            continue
        visited[seed] = True
        front = np.array([seed], dtype=np.int64)
        while front.size:
            labels[front] = current
            front = expand_front(graph, front, visited)
        current += 1
    return labels
