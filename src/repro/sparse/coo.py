"""COO (triplet) sparse matrix builder.

COO is the natural assembly format: generators append ``(i, j, value)``
triplets and convert to CSR once at the end.  Duplicate entries are summed
during conversion, matching the usual finite-element assembly semantics.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float64_array, as_index_array

__all__ = ["CooMatrix"]


class CooMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    shape
        ``(n_rows, n_cols)``.
    rows, cols, data
        Parallel arrays of triplets.  May be empty.  Duplicates are allowed
        and are summed when converting to CSR.
    """

    def __init__(self, shape, rows=(), cols=(), data=()):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {shape}")
        self.shape = (n_rows, n_cols)
        self.rows = as_index_array(rows, "rows")
        self.cols = as_index_array(cols, "cols")
        self.data = as_float64_array(data, "data")
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ValueError(
                "rows, cols, data must have equal lengths, got "
                f"{self.rows.size}, {self.cols.size}, {self.data.size}"
            )
        if self.rows.size:
            if self.rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if self.cols.max() >= n_cols:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summation)."""
        return int(self.data.size)

    def to_csr(self):
        """Convert to :class:`~repro.sparse.CsrMatrix`, summing duplicates."""
        from .csr import CsrMatrix

        n_rows, n_cols = self.shape
        if self.nnz == 0:
            indptr = np.zeros(n_rows + 1, dtype=np.int64)
            return CsrMatrix(
                self.shape,
                indptr,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        # Sort lexicographically by (row, col) and sum runs of duplicates.
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        v = self.data[order]
        new_run = np.empty(r.size, dtype=bool)
        new_run[0] = True
        np.logical_or(r[1:] != r[:-1], c[1:] != c[:-1], out=new_run[1:])
        run_id = np.cumsum(new_run) - 1
        n_unique = run_id[-1] + 1
        values = np.zeros(n_unique, dtype=np.float64)
        np.add.at(values, run_id, v)
        rows_u = r[new_run]
        cols_u = c[new_run]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows_u + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(self.shape, indptr, cols_u, values)

    def to_dense(self) -> np.ndarray:
        """Return a dense array, summing duplicate triplets."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"


class CooBuilder:
    """Incremental triplet accumulator.

    Appending single triplets to NumPy arrays is quadratic; this builder
    accumulates Python lists of array *chunks* and concatenates once.
    """

    def __init__(self, shape):
        self.shape = (int(shape[0]), int(shape[1]))
        self._rows: list = []
        self._cols: list = []
        self._data: list = []

    def add(self, rows, cols, data) -> None:
        """Append a chunk of triplets (arrays or scalars)."""
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        data = np.atleast_1d(np.asarray(data, dtype=np.float64))
        rows, cols, data = np.broadcast_arrays(rows, cols, data)
        self._rows.append(rows.ravel())
        self._cols.append(cols.ravel())
        self._data.append(data.ravel())

    def build(self) -> CooMatrix:
        """Materialize the accumulated triplets as a :class:`CooMatrix`."""
        if not self._rows:
            return CooMatrix(self.shape)
        return CooMatrix(
            self.shape,
            np.concatenate(self._rows),
            np.concatenate(self._cols),
            np.concatenate(self._data),
        )
