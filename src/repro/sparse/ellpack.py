"""ELLPACK/ITPACK sparse format.

The paper runs GPU SpMV on the ELLPACK layout (Fig. 3 caption): each row is
padded to the maximum row length so the nonzeros form dense 2-D arrays that
GPUs can stream with coalesced accesses.  On the simulated device the same
layout lets NumPy process the product one padded column at a time, which is
the vectorization-friendly equivalent.

ELLPACK wastes memory when row lengths are skewed; :meth:`EllpackMatrix.from_csr`
reports the padding ratio so benchmarks can account for it, mirroring the
format-choice discussion in the paper.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix

__all__ = ["EllpackMatrix"]


class EllpackMatrix:
    """Sparse matrix in ELLPACK layout.

    Attributes
    ----------
    values
        ``(n_rows, width)`` float64 array; padded slots hold 0.0.
    col_idx
        ``(n_rows, width)`` int64 array; padded slots repeat the row's own
        index (a standard trick: the padded product term is ``0.0 * x[i]``,
        which never reads out of bounds).
    """

    def __init__(self, shape, values: np.ndarray, col_idx: np.ndarray):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        values = np.ascontiguousarray(values, dtype=np.float64)
        col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        if values.shape != col_idx.shape:
            raise ValueError("values and col_idx must have the same shape")
        if values.ndim != 2 or values.shape[0] != n_rows:
            raise ValueError(
                f"values must be (n_rows, width) with n_rows={n_rows}, got {values.shape}"
            )
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= max(n_cols, 1)):
            raise ValueError("column index out of range")
        self.shape = (n_rows, n_cols)
        self.values = values
        self.col_idx = col_idx

    @property
    def width(self) -> int:
        """Padded row width (max nonzeros per row)."""
        return int(self.values.shape[1])

    @property
    def nnz(self) -> int:
        """Number of non-padding entries."""
        return int(np.count_nonzero(self.values))

    @property
    def padded_size(self) -> int:
        """Total stored slots including padding."""
        return int(self.values.size)

    @classmethod
    def from_csr(cls, csr: CsrMatrix) -> "EllpackMatrix":
        """Convert from CSR, padding every row to the maximum row length."""
        n_rows, n_cols = csr.shape
        counts = np.diff(csr.indptr)
        width = int(counts.max()) if n_rows and counts.size else 0
        values = np.zeros((n_rows, max(width, 1) if n_rows else 0), dtype=np.float64)
        # Self-referential padding keeps gathers in range.
        col_idx = np.tile(
            np.arange(n_rows, dtype=np.int64)[:, None],
            (1, max(width, 1) if n_rows else 0),
        )
        if n_rows and n_cols:
            col_idx = np.minimum(col_idx, n_cols - 1)
        if width:
            row_ids = np.repeat(np.arange(n_rows), counts)
            offsets = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], counts)
            values[row_ids, offsets] = csr.data
            col_idx[row_ids, offsets] = csr.indices
        return cls(csr.shape, values, col_idx)

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR, dropping padded (zero) slots."""
        mask = self.values != 0.0
        counts = mask.sum(axis=1)
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrMatrix(
            self.shape, indptr, self.col_idx[mask], self.values[mask]
        )

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """SpMV ``y = A @ x`` column-of-the-padded-layout at a time.

        Each iteration of the (short, width-length) loop is a fully
        vectorized gather + fused multiply-add over all rows, the NumPy
        analog of the coalesced ELLPACK GPU kernel.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"dimension mismatch: matrix has {self.shape[1]} columns, x has {x.shape[0]}"
            )
        if out is None:
            out = np.zeros(self.shape[0], dtype=np.float64)
        else:
            out[:] = 0.0
        for j in range(self.width):
            out += self.values[:, j] * x[self.col_idx[:, j]]
        return out

    def to_dense(self) -> np.ndarray:
        """Return the dense equivalent (padding contributes nothing)."""
        return self.to_csr().to_dense()

    def padding_ratio(self) -> float:
        """Stored slots divided by true nonzeros (>= 1.0; 1.0 = no waste)."""
        nnz = self.nnz
        return float(self.padded_size) / nnz if nnz else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EllpackMatrix(shape={self.shape}, width={self.width}, nnz={self.nnz})"
        )
