"""Sparse-matrix substrate.

The paper stores matrices in CSR on the CPU and ELLPACK on the GPUs
(Fig. 3 caption).  This package implements both formats from scratch on top
of NumPy arrays, plus a COO builder, Matrix Market I/O, and adjacency-graph
utilities used by the reordering/partitioning and matrix-powers layers.

Public classes
--------------
:class:`CooMatrix`
    Triplet builder; duplicate entries are summed on conversion.
:class:`CsrMatrix`
    Compressed sparse row; the workhorse format (row slicing, SpMV,
    transpose, permutation, scaling).
:class:`EllpackMatrix`
    ELLPACK/ITPACK layout with padded rows; the GPU SpMV format.
"""

from .coo import CooMatrix
from .csr import CsrMatrix, csr_from_dense, eye_csr
from .ellpack import EllpackMatrix
from .jds import JdsMatrix
from .graph import (
    adjacency_structure,
    bfs_levels,
    connected_components,
    pseudo_peripheral_node,
    symmetrize_structure,
)
from .io import read_matrix_market, write_matrix_market

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "EllpackMatrix",
    "JdsMatrix",
    "csr_from_dense",
    "eye_csr",
    "adjacency_structure",
    "symmetrize_structure",
    "bfs_levels",
    "pseudo_peripheral_node",
    "connected_components",
    "read_matrix_market",
    "write_matrix_market",
]
