"""Matrix Market I/O.

The paper's matrices come from the University of Florida collection, which is
distributed in Matrix Market format.  We implement a reader/writer for the
``coordinate real general/symmetric`` and ``array`` flavors so users can drop
the real UF files in (when they have network access) and run every benchmark
against the genuine matrices instead of our synthetic analogs.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from .coo import CooMatrix
from .csr import CsrMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open_text(path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path) -> CsrMatrix:
    """Read a Matrix Market file (optionally gzipped) into CSR.

    Supports ``matrix coordinate real|integer|pattern general|symmetric|
    skew-symmetric`` and ``matrix array real general``.  Symmetric storage is
    expanded to full structure; pattern entries get value 1.0.
    """
    with _open_text(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file: bad header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"malformed MatrixMarket header: {header!r}")
        _, obj, fmt, field, symmetry = [p.lower() for p in parts[:5]]
        if obj != "matrix":
            raise ValueError(f"unsupported object type {obj!r}")
        if field == "complex":
            raise ValueError("complex matrices are not supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        size = line.split()
        if fmt == "coordinate":
            n_rows, n_cols, nnz = int(size[0]), int(size[1]), int(size[2])
            raw = np.loadtxt(fh, dtype=np.float64, ndmin=2, max_rows=nnz)
            if raw.shape[0] != nnz:
                raise ValueError(
                    f"expected {nnz} entries, file contains {raw.shape[0]}"
                )
            if nnz == 0:
                rows = np.empty(0, dtype=np.int64)
                cols = np.empty(0, dtype=np.int64)
                vals = np.empty(0, dtype=np.float64)
            else:
                rows = raw[:, 0].astype(np.int64) - 1
                cols = raw[:, 1].astype(np.int64) - 1
                if field == "pattern":
                    vals = np.ones(nnz, dtype=np.float64)
                else:
                    vals = raw[:, 2].astype(np.float64)
            if symmetry in ("symmetric", "skew-symmetric"):
                off = rows != cols
                sign = -1.0 if symmetry == "skew-symmetric" else 1.0
                rows = np.concatenate([rows, cols[off]])
                cols_new = np.concatenate([cols, raw[:, 0].astype(np.int64)[off] - 1])
                vals = np.concatenate([vals, sign * vals[off]])
                cols = cols_new
            elif symmetry != "general":
                raise ValueError(f"unsupported symmetry {symmetry!r}")
            return CooMatrix((n_rows, n_cols), rows, cols, vals).to_csr()
        if fmt == "array":
            n_rows, n_cols = int(size[0]), int(size[1])
            data = np.loadtxt(fh, dtype=np.float64)
            dense = np.asarray(data, dtype=np.float64).reshape(n_cols, n_rows).T
            from .csr import csr_from_dense

            return csr_from_dense(dense)
        raise ValueError(f"unsupported format {fmt!r}")


def write_matrix_market(path, matrix: CsrMatrix, comment: str = "") -> None:
    """Write a CSR matrix as ``coordinate real general`` Matrix Market."""
    with _open_text(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
        row_ids = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
        for r, c, v in zip(row_ids, matrix.indices, matrix.data):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
