"""Small argument-validation helpers shared across the library.

These are deliberately tiny: validation failures raise early with a message
that names the offending argument, which keeps the numerical kernels free of
ad-hoc ``assert`` statements while still failing loudly on misuse.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_square",
    "check_vector",
    "check_in",
    "as_float64_array",
    "as_index_array",
]


def check_positive(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive number."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(value, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_square(shape, name: str = "matrix") -> None:
    """Raise ``ValueError`` unless ``shape`` is (n, n)."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape}")


def check_vector(x: np.ndarray, n: int, name: str = "x") -> None:
    """Raise ``ValueError`` unless ``x`` is a length-``n`` 1-D array."""
    if x.ndim != 1 or x.shape[0] != n:
        raise ValueError(f"{name} must be a 1-D array of length {n}, got shape {x.shape}")


def check_in(value, allowed, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(allowed)}, got {value!r}")


def as_float64_array(x, name: str = "array") -> np.ndarray:
    """Return ``x`` as a contiguous float64 ndarray (no copy when possible)."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def as_index_array(x, name: str = "index array") -> np.ndarray:
    """Return ``x`` as a contiguous int64 ndarray, checking non-negativity."""
    arr = np.ascontiguousarray(x, dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise ValueError(f"{name} contains negative indices")
    return arr
