"""Distributed (block-row) matrices and multivectors over simulated GPUs.

The paper distributes ``A`` and the Krylov basis vectors in block-row format
(Section III): device ``d`` owns the rows in its partition part and stores a
local ELLPACK matrix whose column indices are remapped into an *extended
local vector* ``[own rows | halo rows]``.  The halo (the paper's boundary
set for s = 1) is exchanged through the CPU before each SpMV, exactly per
the Setup phase of Fig. 4.
"""

from .multivector import DistMultiVector, DistVector
from .exchange import StagedExchange
from .matrix import DistributedMatrix, HaloPlan

__all__ = [
    "DistMultiVector",
    "DistVector",
    "StagedExchange",
    "DistributedMatrix",
    "HaloPlan",
]
