"""Distributed vectors and multivectors.

A :class:`DistMultiVector` is an ``n x m`` dense multivector split block-row
across the context's devices; each device holds a ``(local_n, m)`` panel.
Column and panel accessors return *views* (no copies), mirroring how the
GPU code operates on sub-panels of the stored basis ``V_{1:m+1}``.
"""

from __future__ import annotations

import numpy as np

from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from ..order.partition import Partition

__all__ = ["DistMultiVector", "DistVector"]


class DistMultiVector:
    """Block-row distributed ``n x n_cols`` multivector.

    Parameters
    ----------
    ctx
        The execution context (one panel per device).
    partition
        Row ownership; part ``d`` maps to ``ctx.devices[d]``.
    n_cols
        Number of columns (``m + 1`` for the GMRES basis).
    """

    def __init__(self, ctx: MultiGpuContext, partition: Partition, n_cols: int):
        if partition.n_parts != ctx.n_gpus:
            raise ValueError(
                f"partition has {partition.n_parts} parts but context has "
                f"{ctx.n_gpus} devices"
            )
        if n_cols < 1:
            raise ValueError("n_cols must be >= 1")
        self.ctx = ctx
        self.partition = partition
        self.n_cols = int(n_cols)
        self.local = [
            dev.zeros((partition.rows_of(d).size, n_cols))
            for d, dev in enumerate(ctx.devices)
        ]

    @property
    def n_rows(self) -> int:
        return self.partition.n_rows

    # -- views -------------------------------------------------------------
    def column(self, j: int) -> list[DeviceArray]:
        """Per-device views of column ``j``."""
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column {j} out of range [0, {self.n_cols})")
        return [panel.view((slice(None), j)) for panel in self.local]

    def panel(self, j0: int, j1: int) -> list[DeviceArray]:
        """Per-device views of columns ``[j0, j1)``."""
        if not 0 <= j0 <= j1 <= self.n_cols:
            raise IndexError(f"panel [{j0}, {j1}) out of range")
        return [panel.view((slice(None), slice(j0, j1))) for panel in self.local]

    # -- host movement (costed) ---------------------------------------------
    def set_column_from_host(self, j: int, vector: np.ndarray) -> None:
        """Scatter a global host vector into column ``j`` (one h2d/device)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.n_rows,):
            raise ValueError(
                f"vector must have shape ({self.n_rows},), got {vector.shape}"
            )
        for d, dev in enumerate(self.ctx.devices):
            rows = self.partition.rows_of(d)
            arrived = self.ctx.h2d(dev, vector[rows])
            self.local[d].data[:, j] = arrived.data

    def gather_column_to_host(self, j: int) -> np.ndarray:
        """Gather column ``j`` into a global host vector (one d2h/device)."""
        out = np.empty(self.n_rows, dtype=np.float64)
        for d in range(self.ctx.n_gpus):
            rows = self.partition.rows_of(d)
            out[rows] = self.ctx.d2h(self.column(j)[d])
        return out


class DistVector(DistMultiVector):
    """A single distributed vector (``n_cols == 1``) with flat accessors."""

    def __init__(self, ctx: MultiGpuContext, partition: Partition):
        super().__init__(ctx, partition, 1)

    def parts(self) -> list[DeviceArray]:
        """Per-device 1-D views of the vector."""
        return self.column(0)

    def set_from_host(self, vector: np.ndarray) -> None:
        """Scatter a global host vector (one h2d per device)."""
        self.set_column_from_host(0, vector)

    def to_host(self) -> np.ndarray:
        """Gather to a global host vector (one d2h per device)."""
        return self.gather_column_to_host(0)

    @classmethod
    def from_host(
        cls, ctx: MultiGpuContext, partition: Partition, vector: np.ndarray
    ) -> "DistVector":
        """Build and fill in one step."""
        out = cls(ctx, partition)
        out.set_from_host(vector)
        return out
