"""Generic host-staged gather/scatter exchange.

Both the per-iteration SpMV halo exchange and the matrix powers kernel's
setup phase move vector elements the same way (Fig. 4 Setup):

* every device compresses the elements of its own part that *any* other
  device needs and ships them to the CPU (<= 1 d2h message per device);
* the CPU assembles them into a staging buffer;
* every device receives exactly the elements it asked for
  (<= 1 h2d message per device).

:class:`StagedExchange` precomputes the index sets once (on the CPU, before
the iteration starts — as the paper does) and replays the exchange for any
source vector.
"""

from __future__ import annotations

import numpy as np

from ..faults.errors import TransferCorruption
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from ..order.partition import Partition

__all__ = ["StagedExchange"]


class StagedExchange:
    """Precomputed CPU-staged exchange for a fixed set of requested elements.

    Parameters
    ----------
    partition
        Row ownership.
    recv_global
        ``recv_global[d]`` lists the *global* indices of the non-owned
        elements device ``d`` must receive (sorted, unique, none owned
        by ``d``).
    max_transfer_retries
        How many times to re-issue a transfer that arrives corrupted
        (detected via ``ctx.validate_transfers``).  Corruption is
        transient — the source buffer is intact — so a retry delivers
        clean bytes at the cost of one extra (costed) bus message.  After
        the budget is exhausted :class:`TransferCorruption` propagates to
        the solver's panel/cycle retry machinery.
    """

    def __init__(
        self,
        partition: Partition,
        recv_global: list[np.ndarray],
        max_transfer_retries: int = 2,
    ):
        self.max_transfer_retries = int(max_transfer_retries)
        if len(recv_global) != partition.n_parts:
            raise ValueError("recv_global must have one entry per part")
        self.partition = partition
        self.recv_global = [
            np.ascontiguousarray(r, dtype=np.int64) for r in recv_global
        ]
        for d, req in enumerate(self.recv_global):
            if req.size and np.any(partition.assignment[req] == d):
                raise ValueError(f"device {d} requested elements it already owns")
        owned = [partition.rows_of(d) for d in range(partition.n_parts)]
        nonempty = [r for r in self.recv_global if r.size]
        self.union_requested = (
            np.unique(np.concatenate(nonempty))
            if nonempty
            else np.empty(0, dtype=np.int64)
        )
        # send_local[d]: positions within device d's own part to compress.
        # _stage_mask[d]: which staging slots device d's gather fills — like
        # send_local this is invariant across exchanges, so it is computed
        # once here instead of on the per-iteration halo-exchange hot path.
        self.send_local = []
        self._stage_mask = []
        for d in range(partition.n_parts):
            mask = partition.assignment[self.union_requested] == d
            mine = self.union_requested[mask]
            self.send_local.append(np.searchsorted(owned[d], mine))
            self._stage_mask.append(mask)
        # staging positions of each device's incoming elements
        self._stage_pos = [
            np.searchsorted(self.union_requested, req) for req in self.recv_global
        ]
        # The staging buffer itself is exchange-invariant in size and every
        # slot is rewritten by the gather phase of each call, so it is
        # allocated once here instead of on every (hot-path) exchange.
        self._stage = np.empty(self.union_requested.size, dtype=np.float64)

    # -- volumes (paper Section IV-B accounting) ---------------------------
    def gather_volume(self) -> int:
        """Elements moved GPU->CPU per exchange: ``|union_d requested_d|``."""
        return int(self.union_requested.size)

    def scatter_volume(self) -> int:
        """Elements moved CPU->GPU per exchange: ``sum_d |requested_d|``."""
        return int(sum(r.size for r in self.recv_global))

    def total_volume(self) -> int:
        """Gather + scatter element count per exchange."""
        return self.gather_volume() + self.scatter_volume()

    # -- execution ----------------------------------------------------------
    def _retried(self, ctx: MultiGpuContext, transfer, what: str):
        """Run ``transfer()``, re-issuing it on transient corruption."""
        last = None
        for attempt in range(self.max_transfer_retries + 1):
            try:
                result = transfer()
            except TransferCorruption as exc:
                last = exc
                continue
            if attempt:
                ctx.faults.note_recovery(
                    "transfer-retry", time=ctx.current_time(), what=what,
                    attempts=attempt,
                )
            return result
        raise last

    def exchange(
        self, ctx: MultiGpuContext, x_parts: list[DeviceArray]
    ) -> list[np.ndarray]:
        """Run one exchange of the current values of ``x_parts``.

        Returns ``received[d]``: the values of ``recv_global[d]`` now resident
        on device ``d`` (already transferred; the caller places them).
        Issues at most one d2h and one h2d message per device — plus up to
        ``max_transfer_retries`` re-issues per transfer when the context
        detects corrupted payloads.
        """
        if len(x_parts) != self.partition.n_parts:
            raise ValueError("x_parts must have one entry per device")
        stage = self._stage
        for d, dev in enumerate(ctx.devices):
            send = self.send_local[d]
            if send.size == 0:
                continue
            compressed = DeviceArray(x_parts[d].data[send], dev)
            dev.charge_kernel("copy", "cublas", n=send.size)
            arrived = self._retried(
                ctx, lambda: ctx.d2h(compressed), f"gather d2h {dev.name}"
            )
            stage[self._stage_mask[d]] = arrived
        received: list[np.ndarray] = []
        for d, dev in enumerate(ctx.devices):
            pos = self._stage_pos[d]
            if pos.size == 0:
                received.append(np.empty(0, dtype=np.float64))
                continue
            arrived = self._retried(
                ctx, lambda: ctx.h2d(dev, stage[pos]), f"scatter h2d {dev.name}"
            )
            received.append(arrived.data)
        return received
