"""Block-row distributed sparse matrix with host-staged halo exchange.

Implements the paper's SpMV communication pattern (the Setup phase of
Fig. 4, with s = 1):

1. each GPU compresses the elements of its own vector part that *other*
   GPUs need and sends them to the CPU (one d2h message per device);
2. the CPU expands them into a full staging vector;
3. each GPU receives exactly the halo elements it requires (one h2d message
   per device) and expands them, together with its own part, into the
   extended local vector ``z = [own | halo]``;
4. each GPU runs a local ELLPACK SpMV on its remapped rows.

The index sets are precomputed on the CPU before the iteration begins, as
the paper does; the exchange itself is the generic
:class:`~repro.dist.exchange.StagedExchange`.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..order.partition import Partition
from ..sparse.csr import CsrMatrix
from ..sparse.ellpack import EllpackMatrix
from .exchange import StagedExchange
from .multivector import DistMultiVector

__all__ = ["HaloPlan", "DistributedMatrix"]


class HaloPlan(StagedExchange):
    """SpMV halo: each device requests the non-owned columns of its rows."""

    def __init__(self, matrix: CsrMatrix, partition: Partition):
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("HaloPlan requires a square matrix")
        if matrix.n_rows != partition.n_rows:
            raise ValueError("matrix and partition sizes disagree")
        self.owned = [partition.rows_of(d) for d in range(partition.n_parts)]
        halos = []
        for d in range(partition.n_parts):
            local = matrix.extract_rows(self.owned[d])
            needed = np.unique(local.indices)
            halos.append(needed[partition.assignment[needed] != d])
        super().__init__(partition, halos)
        self.halo = self.recv_global


class DistributedMatrix:
    """Square sparse matrix distributed block-row over the context's devices.

    Each device stores ``A(rows_d, :)`` in ELLPACK with column indices
    remapped into the extended local vector ``[own | halo]``.  This is the
    standard-GMRES SpMV operator; the matrix powers kernel
    (:class:`repro.mpk.MatrixPowersKernel`) generalizes it to ``s`` steps.

    Parameters
    ----------
    ctx
        Execution context.
    matrix
        The global CSR matrix (host side).
    partition
        Row ownership (must have ``ctx.n_gpus`` parts).
    """

    def __init__(self, ctx: MultiGpuContext, matrix: CsrMatrix, partition: Partition):
        if partition.n_parts != ctx.n_gpus:
            raise ValueError("partition parts must equal context device count")
        self.ctx = ctx
        self.global_matrix = matrix
        self.partition = partition
        self.plan = HaloPlan(matrix, partition)
        self.local_ell = []
        self._z = []
        n = matrix.n_rows
        lookup = np.empty(n, dtype=np.int64)
        for d, dev in enumerate(ctx.devices):
            owned = self.plan.owned[d]
            halo = self.plan.halo[d]
            ext = np.concatenate([owned, halo])
            lookup[ext] = np.arange(ext.size)
            local = matrix.extract_rows(owned)
            remapped = CsrMatrix(
                (owned.size, max(ext.size, 1)),
                local.indptr,
                lookup[local.indices],
                local.data,
            )
            ell = EllpackMatrix.from_csr(remapped)
            # Matrix distribution is one-time setup: adopt without transfer.
            self.local_ell.append((dev.adopt(ell.values), dev.adopt(ell.col_idx)))
            self._z.append(dev.zeros(max(ext.size, 1)))

    @property
    def n_rows(self) -> int:
        return self.global_matrix.n_rows

    def spmv(
        self, x: DistMultiVector, j_in: int, y: DistMultiVector, j_out: int
    ) -> None:
        """Distributed ``y[:, j_out] = A @ x[:, j_in]`` with halo exchange."""
        x_parts = x.column(j_in)
        y_parts = y.column(j_out)
        received = self.plan.exchange(self.ctx, x_parts)
        for d, dev in enumerate(self.ctx.devices):
            z = self._z[d]
            n_own = self.plan.owned[d].size
            # Expand own part + received halo into the extended vector.
            z.data[:n_own] = x_parts[d].data
            dev.charge_kernel("copy", "cublas", n=n_own)
            if received[d].size:
                # Halo placement is a device copy too (same undercounting as
                # the MPK setup phase had: the own-row copy was charged but
                # the halo copy was free).
                z.data[n_own : n_own + received[d].size] = received[d]
                dev.charge_kernel("copy", "cublas", n=received[d].size)
            values, col_idx = self.local_ell[d]
            blas.spmv_ell(values, col_idx, z, y_parts[d])

    def device_memory_bytes(self) -> list[int]:
        """Per-device bytes of the resident SpMV state (ELLPACK + buffer)."""
        out = []
        for d in range(self.ctx.n_gpus):
            values, col_idx = self.local_ell[d]
            out.append(int(values.nbytes + col_idx.nbytes + self._z[d].nbytes))
        return out

    def spmv_host_reference(self, x_host: np.ndarray) -> np.ndarray:
        """Uncosted host-side reference product (for testing)."""
        return self.global_matrix.matvec(x_host)
