"""Solver sessions: plan once, solve many.

:class:`SolverSession` binds one matrix + one solver configuration to one
:class:`~repro.gpu.context.MultiGpuContext` and answers repeated
``solve(b)`` calls.  The first call computes the structural plan —
ordering, partition, distributed matrix, MPK dependency closure,
staged-exchange index sets, autotuner decisions — and caches it under a
structural fingerprint; every later call (including after
``ctx.reset_clocks()`` or a mid-solve repartition) reuses it.  Warm solves
are bit-identical to cold ones: the plan holds no RHS-dependent state, and
structural setup is uncosted in the simulated timeline, so even the
simulated timers/counters match exactly — only host wall-clock changes.

``solve_many`` batches right-hand sides over the shared plan.  By default
the restart cycles of all pending solves are interleaved round-robin on
the context (the serving analogue of pipelining independent queries);
numerics are per-RHS independent, so each returned
:class:`~repro.core.convergence.SolveResult` is byte-for-byte what a
sequential ``solve`` would have produced, while the simulated timers and
counters describe the whole interleaved batch.  Fault injection,
degradation policies, and deadlines force the sequential path — their
replay determinism is defined per-solve.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..core.ca_gmres import CaGmresRun
from ..core.convergence import SolveResult
from ..core.gmres import GmresRun
from ..gpu.context import MultiGpuContext
from ..gpu.trace import REGION_LANE
from ..sparse.csr import CsrMatrix
from .fingerprint import Fingerprint
from .plan import ORDERINGS, PlanCache, StructuralPlan

__all__ = ["SolverSession"]

#: Arguments solve() may override per call (everything else is structural
#: and fixed at session construction).
_PER_SOLVE_KWARGS = frozenset(
    {
        "x0",
        "tol",
        "max_restarts",
        "degrade",
        "deadline",
        "collect_tsqr_errors",
        "adaptive_s",
        "on_breakdown",
        "max_panel_retries",
    }
)


class SolverSession:
    """A long-lived solver bound to one matrix, config, and context.

    Parameters
    ----------
    matrix
        The system matrix (original ordering; the session permutes).
    solver
        ``"ca"`` (CA-GMRES, the default) or ``"gmres"``.
    ctx, n_gpus
        Execution context, or the GPU count to build one with.
    ordering
        ``"natural"``, ``"rcm"`` (bandwidth-reducing permutation), or
        ``"kway"`` (graph partition; rows stay in native order).
    m, s, basis, balance, tol, max_restarts, preconditioner
        Solver configuration, as in :func:`repro.core.ca_gmres.ca_gmres` /
        :func:`repro.core.gmres.gmres`.  ``m`` defaults to 60 for CA-GMRES
        and 30 for GMRES.
    cache
        Optional shared :class:`~repro.serve.plan.PlanCache`; sessions on
        the same context may share one to pool host-level plans.
    metrics
        Optional :class:`~repro.metrics.registry.MetricsRegistry`.  The
        session then records serving telemetry — request counts, cold vs
        warm host wall-clock latency (``repro_serve_request_seconds``,
        nondeterministic by nature), batch occupancy for
        :meth:`solve_many`, per-cycle simulated durations via the
        solvers' ``on_cycle`` hook, and the full per-solve runtime +
        convergence telemetry (see :mod:`repro.metrics.collect`) — and
        attaches itself to the plan cache for hit/miss accounting.
    metrics_label
        Value for the ``matrix`` label on this session's metrics
        (defaults to empty; pass the workload name, e.g. ``"cant"``).
    **solver_kwargs
        Remaining solver options (``tsqr_method``, ``reorth``,
        ``use_mpk``, ``orth_method``, ``degrade``, ``deadline``, ...)
        forwarded verbatim to the solver.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        solver: str = "ca",
        ctx: MultiGpuContext | None = None,
        n_gpus: int = 1,
        ordering: str = "natural",
        m: int | None = None,
        s: int = 15,
        basis: str = "newton",
        balance: bool = True,
        tol: float = 1e-4,
        max_restarts: int = 500,
        preconditioner=None,
        cache: PlanCache | None = None,
        metrics=None,
        metrics_label: str = "",
        **solver_kwargs,
    ):
        if solver not in ("ca", "gmres"):
            raise ValueError(f"unknown solver {solver!r}; choose 'ca' or 'gmres'")
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; choose from {ORDERINGS}"
            )
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("SolverSession requires a square matrix")
        self.matrix = matrix
        self.solver = solver
        self.ctx = ctx if ctx is not None else MultiGpuContext(n_gpus)
        self.ordering = ordering
        self.m = int(m) if m is not None else (60 if solver == "ca" else 30)
        self.s = int(s)
        self.basis = basis
        self.balance = bool(balance)
        self.tol = float(tol)
        self.max_restarts = int(max_restarts)
        self.preconditioner = preconditioner
        self.solver_kwargs = dict(solver_kwargs)
        self.cache = cache if cache is not None else PlanCache()
        self.metrics = metrics
        self.metrics_label = str(metrics_label)
        if metrics is not None:
            self.cache.metrics = metrics
        self.n_solves = 0
        if solver == "ca":
            use_mpk = self.solver_kwargs.get("use_mpk", True)
            self._mpk_lengths = (
                tuple(sorted({self.s, self.m % self.s} - {0})) if use_mpk else ()
            )
        else:
            self._mpk_lengths = ()

    # ------------------------------------------------------------------
    @property
    def plan(self) -> StructuralPlan:
        """The structural plan for the context's *active* roster.

        Built on first access (or first :meth:`solve`), then reused.
        """
        host = self.cache.host_plan(
            self.matrix, self.ordering, self.balance, self.preconditioner
        )
        return self.cache.structural_plan(
            self.ctx, host, self.m, self._mpk_lengths
        )

    @property
    def fingerprint(self) -> Fingerprint:
        """The full plan key for the current roster."""
        return self.plan.key

    def stats(self) -> dict:
        """Cache hit/miss/invalidation counters plus session totals."""
        out = dict(self.cache.stats)
        out["n_solves"] = self.n_solves
        out["host_plans"] = len(self.cache.host_plans)
        out["structural_plans"] = len(self.cache.plans)
        return out

    def arm_fault_plan(self, fault_plan) -> None:
        """Re-arm the session's context with a new fault plan.

        The structural plan survives — it holds no fault state — so one
        session can serve a whole fault campaign's trials.
        """
        self.ctx.arm_fault_plan(fault_plan)

    @property
    def _solver_label(self) -> str:
        return "ca_gmres" if self.solver == "ca" else "gmres"

    # ------------------------------------------------------------------
    def _make_run(self, b: np.ndarray, overrides: dict):
        bad = set(overrides) - _PER_SOLVE_KWARGS
        if bad:
            raise TypeError(
                f"not per-solve overridable: {sorted(bad)} "
                "(fix these at session construction)"
            )
        if self.ctx.inactive_devices:
            # A previous degraded solve left the roster shrunken; the solver
            # would restore it anyway — do it first so the plan lookup keys
            # on the full roster (the survivor-roster entry stays cached for
            # the next mid-solve repartition).
            self.ctx.reset_clocks()
        plan_misses_before = self.cache.stats["plan_misses"]
        plan = self.plan
        host = plan.host
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.matrix.n_rows,):
            raise ValueError(
                f"b must have shape ({self.matrix.n_rows},), got {b.shape}"
            )
        kwargs = dict(self.solver_kwargs)
        kwargs.pop("use_mpk", None)
        kwargs.update(overrides)
        if self.metrics is not None and "on_cycle" not in kwargs:
            from ..metrics.collect import cycle_observer

            kwargs["on_cycle"] = cycle_observer(
                self.metrics, solver=self._solver_label, matrix=self.metrics_label
            )
        x0 = kwargs.pop("x0", None)
        if x0 is not None:
            x0 = host.to_solve_order(np.asarray(x0, dtype=np.float64))
        common = dict(
            ctx=self.ctx,
            plan=plan,
            m=self.m,
            tol=kwargs.pop("tol", self.tol),
            max_restarts=kwargs.pop("max_restarts", self.max_restarts),
            x0=x0,
        )
        b_p = host.to_solve_order(b)
        if self.solver == "ca":
            use_mpk = self.solver_kwargs.get("use_mpk", True)
            run = CaGmresRun(
                host.matrix, b_p, s=self.s, basis=self.basis,
                use_mpk=use_mpk, **common, **kwargs,
            )
        else:
            run = GmresRun(host.matrix, b_p, **common, **kwargs)
        if self.cache.stats["plan_misses"] > plan_misses_before:
            # The run constructor reset the clocks and wiped the trace —
            # re-emit the plan-build marker onto the fresh timeline so cold
            # runs show where their structural plan came from.
            self.ctx.trace.record(
                "plan-build", REGION_LANE, "plan", self.ctx.current_time(),
                0.0, **self.cache.last_structural_build,
            )
        run._serve_host = host
        return run

    def _postprocess(self, run) -> SolveResult:
        result = run.result()
        self.n_solves += 1
        host = run._serve_host
        if host.perm is None:
            return result
        return dataclasses.replace(result, x=host.from_solve_order(result.x))

    def solve(self, b: np.ndarray, **overrides) -> SolveResult:
        """Solve ``A x = b`` reusing the session's structural plan.

        ``overrides`` may adjust per-solve options (``tol``,
        ``max_restarts``, ``x0``, ``degrade``, ``deadline``, ...);
        structural options are fixed for the session's lifetime.
        """
        if self.metrics is None:
            return self._postprocess(self._make_run(b, overrides))
        from ..metrics.collect import (
            observe_solve,
            serve_request_seconds,
            serve_requests_total,
        )

        labels = {"solver": self._solver_label, "matrix": self.metrics_label}
        misses_before = (
            self.cache.stats["plan_misses"] + self.cache.stats["host_misses"]
        )
        wall_start = time.perf_counter()
        result = self._postprocess(self._make_run(b, overrides))
        wall = time.perf_counter() - wall_start
        misses_after = (
            self.cache.stats["plan_misses"] + self.cache.stats["host_misses"]
        )
        plan = "cold" if misses_after > misses_before else "warm"
        serve_request_seconds(self.metrics).observe(wall, plan=plan, **labels)
        serve_requests_total(self.metrics).inc(mode="single", **labels)
        observe_solve(self.metrics, self.ctx, result, **labels)
        return result

    def solve_many(
        self,
        bs,
        interleave: bool | None = None,
        **overrides,
    ) -> list[SolveResult]:
        """Solve one system per right-hand side over the shared plan.

        With ``interleave`` (the default when no fault plan, degrade
        policy, or deadline is active) the pending solves' restart cycles
        are multiplexed round-robin on the context.  Per-RHS numerics are
        independent — each result's ``x``/``history`` is byte-for-byte
        identical to a sequential :meth:`solve` — while simulated timers
        and counters describe the batch as a whole.  Pass
        ``interleave=False`` to force fully sequential solves (required,
        and auto-selected, whenever fault replay determinism matters).
        """
        bs = list(bs)
        if interleave is None:
            interleave = not (
                self.ctx.faults.active
                or "degrade" in overrides
                or "deadline" in overrides
                or self.solver_kwargs.get("degrade") is not None
                or self.solver_kwargs.get("deadline") is not None
            )
        if not interleave:
            return [self.solve(b, **overrides) for b in bs]
        runs = [self._make_run(b, overrides) for b in bs]
        pending = list(runs)
        rounds = 0
        step_calls = 0
        while pending:
            rounds += 1
            step_calls += len(pending)
            pending = [run for run in pending if run.step()]
        results = [self._postprocess(run) for run in runs]
        if self.metrics is not None and runs:
            from ..metrics.collect import (
                observe_context,
                observe_result,
                serve_batch_occupancy,
                serve_batch_rhs_total,
                serve_requests_total,
            )

            labels = {"solver": self._solver_label, "matrix": self.metrics_label}
            # Occupancy: fraction of round-robin slots still holding live
            # solves; 1.0 means every RHS ran for the full batch duration.
            occupancy = step_calls / (rounds * len(runs)) if rounds else 1.0
            serve_batch_occupancy(self.metrics).set(occupancy, **labels)
            serve_batch_rhs_total(self.metrics).inc(len(runs), **labels)
            serve_requests_total(self.metrics).inc(
                len(runs), mode="batched", **labels
            )
            # The trace/counters describe the interleaved batch as a whole
            # (each run's constructor reset the clocks; the last reset
            # precedes the first cycle), so bridge the context once.
            observe_context(self.metrics, self.ctx, **labels)
            for result in results:
                observe_result(self.metrics, result, **labels)
        return results
