"""Solver serving: structural-plan caching and batched multi-RHS solves.

The paper's CA-GMRES spends significant *host* time before the first
iteration: reordering, k-way partitioning, the MPK dependency closure
(δ^(d,1:s) per device), the staged-exchange index sets, and the autotuner's
variant decisions.  All of that is a pure function of the matrix sparsity
*pattern* and the solver configuration — not of the right-hand side — so a
service answering repeated solves against the same operator should compute
it once.

:class:`~repro.serve.session.SolverSession` does exactly that: the first
``solve(b)`` builds a :class:`~repro.serve.plan.StructuralPlan` keyed by a
structural :func:`~repro.serve.fingerprint.fingerprint` (sparsity-pattern
hash + ordering + basis lengths + device roster) and every later solve —
including after ``ctx.reset_clocks()`` or a mid-solve repartition — reuses
it.  Warm solves are bit-identical to cold ones; only host wall-clock time
changes (structural setup is uncosted in the simulated timeline).

``solve_many`` batches several right-hand sides over one plan, interleaving
their restart cycles on the shared context.
"""

from .fingerprint import fingerprint, pattern_hash
from .plan import PlanCache, StructuralPlan
from .session import SolverSession

__all__ = [
    "SolverSession",
    "StructuralPlan",
    "PlanCache",
    "fingerprint",
    "pattern_hash",
]
