"""Structural fingerprints for plan caching.

Everything the serving layer precomputes — ordering, partition, MPK
dependency closure, exchange index sets, autotuner decisions — depends on
the matrix *sparsity pattern* and the solver configuration, never on the
numerical values of ``b`` (and on the values of ``A`` only through
balancing, which the plan also owns).  The fingerprint captures exactly
those inputs, so two sessions agree on a plan key iff their plans would be
structurally identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = ["pattern_hash", "value_hash", "fingerprint", "Fingerprint"]


def pattern_hash(matrix: CsrMatrix) -> str:
    """SHA-256 of the sparsity pattern (shape + indptr + indices).

    Deliberately excludes ``matrix.data``: the ordering, partition, halo
    and MPK dependency structure are functions of the pattern alone.
    """
    h = hashlib.sha256()
    h.update(np.asarray(matrix.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(matrix.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(matrix.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def value_hash(matrix: CsrMatrix) -> str:
    """SHA-256 of the nonzero values (used to detect operator swaps)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(matrix.data, dtype=np.float64).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Fingerprint:
    """Hashable plan-cache key.

    Attributes
    ----------
    pattern
        :func:`pattern_hash` of the (unpermuted) matrix.
    ordering
        ``"natural"`` / ``"rcm"`` / ``"kway"``.
    m
        Restart length (fixes the basis multivector width ``m + 1``).
    mpk_lengths
        Sorted tuple of MPK block lengths the solver will request
        (``{s, m % s} - {0}`` for CA-GMRES, ``()`` for standard GMRES).
    roster
        Names of the active devices the plan's distributed state lives on.
    balance
        Whether diagonal balancing is folded into the operator.
    preconditioner
        ``repr`` of the folded preconditioner (``None`` for none) — plans
        with different folded operators must not collide.
    """

    pattern: str
    ordering: str
    m: int
    mpk_lengths: tuple
    roster: tuple
    balance: bool
    preconditioner: str | None

    def host_key(self) -> tuple:
        """The roster-independent part (host-side ordering/balance plan)."""
        return (self.pattern, self.ordering, self.balance, self.preconditioner)


def fingerprint(
    matrix: CsrMatrix,
    ordering: str,
    m: int,
    mpk_lengths,
    roster,
    balance: bool,
    preconditioner=None,
) -> Fingerprint:
    """Build the :class:`Fingerprint` for one (matrix, config, roster)."""
    return Fingerprint(
        pattern=pattern_hash(matrix),
        ordering=str(ordering),
        m=int(m),
        mpk_lengths=tuple(sorted(int(x) for x in mpk_lengths)),
        roster=tuple(str(r) for r in roster),
        balance=bool(balance),
        preconditioner=None if preconditioner is None else repr(preconditioner),
    )
