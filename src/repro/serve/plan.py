"""Structural plans: the reusable, RHS-independent half of a solve.

A solve against a fixed operator splits cleanly into

* **structure** — ordering permutation, balancing, row partition, the
  distributed ELLPACK matrix with its halo index sets, the basis
  multivector, the MPK dependency closures, and the staged-exchange
  staging buffers.  Pure functions of the sparsity pattern + config +
  device roster; *expensive* on the host (k-way partitioning and the MPK
  closure dominate) and wholly uncosted in the simulated timeline.
* **numerics** — everything touching ``b``: the RHS/solution vectors and
  the iteration itself.

:class:`StructuralPlan` owns the first half.  :class:`PlanCache` builds
plans on demand, keyed by :class:`~repro.serve.fingerprint.Fingerprint`,
and splits the roster-independent host work (:class:`HostPlan`) from the
roster-dependent device state so a mid-solve repartition invalidates only
the latter.

Bit-identity
------------
Reusing a plan across solves is numerically safe by construction: every
device buffer a plan holds is either fully rewritten before it is read
(basis columns, the SpMV extended vector) or carries the prefix-write /
prefix-read closure property (MPK ping-pong buffers), so stale contents
from a previous solve can never leak into a later one.  The serving tests
assert byte-for-byte equality of warm and cold solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.balance import balance_matrix
from ..dist.matrix import DistributedMatrix
from ..dist.multivector import DistMultiVector
from ..gpu.trace import REGION_LANE
from ..mpk.matrix_powers import MatrixPowersKernel
from ..order.kway import kway_partition
from ..order.partition import Partition, block_row_partition
from ..order.rcm import rcm
from ..sparse.csr import CsrMatrix
from .fingerprint import Fingerprint, pattern_hash

__all__ = ["HostPlan", "StructuralPlan", "PlanCache"]

#: Orderings the serving layer understands.
ORDERINGS = ("natural", "rcm", "kway")


@dataclass
class HostPlan:
    """Roster-independent structural state (survives any repartition).

    Attributes
    ----------
    key
        The :meth:`Fingerprint.host_key` tuple this entry is cached under.
    ordering
        ``"natural"`` / ``"rcm"`` / ``"kway"``.
    perm
        RCM permutation (``perm[k]`` = original index at position ``k``),
        or ``None`` for orderings that keep the native row order.
    matrix
        The (possibly permuted) matrix in solve ordering.
    bal
        :class:`~repro.core.balance.BalanceResult` or ``None``.
    operator
        The folded + balanced operator the iteration runs on.
    preconditioner
        The preconditioner folded into ``operator`` (or ``None``).
    """

    key: tuple
    ordering: str
    perm: np.ndarray | None
    matrix: CsrMatrix
    bal: object | None
    operator: CsrMatrix
    preconditioner: object | None

    def to_solve_order(self, v: np.ndarray) -> np.ndarray:
        """Map a vector from original ordering into solve ordering."""
        return v if self.perm is None else v[self.perm]

    def from_solve_order(self, v: np.ndarray) -> np.ndarray:
        """Map a vector from solve ordering back to the original."""
        if self.perm is None:
            return v
        out = np.empty_like(v)
        out[self.perm] = v
        return out


class StructuralPlan:
    """Roster-dependent structural state for one (host plan, partition).

    Exposes exactly the attributes the solvers' ``plan=`` path consumes:
    ``partition`` / ``dmat`` / ``V`` / ``mpk`` plus the host-plan
    delegates ``bal`` / ``operator`` / ``preconditioner``, and
    :meth:`derive` for degraded-mode repartitions.  ``mpk`` is a plain
    ``dict`` the solver fills through its own per-length accessor, so MPK
    closures built during the first solve persist for every later one.
    """

    def __init__(
        self,
        key: Fingerprint,
        host: HostPlan,
        ctx,
        partition: Partition,
        cache: "PlanCache",
    ):
        self.key = key
        self.host = host
        self.ctx = ctx
        self.partition = partition
        self.dmat = DistributedMatrix(ctx, host.operator, partition)
        self.V = DistMultiVector(ctx, partition, key.m + 1)
        self.mpk: dict[int, MatrixPowersKernel] = {}
        self._cache = cache

    @property
    def m(self) -> int:
        return self.key.m

    @property
    def bal(self):
        return self.host.bal

    @property
    def operator(self) -> CsrMatrix:
        return self.host.operator

    @property
    def preconditioner(self):
        return self.host.preconditioner

    def ensure_mpk(self, lengths) -> None:
        """Prebuild MPK closures for the given block lengths."""
        for length in lengths:
            if length not in self.mpk:
                self.mpk[length] = MatrixPowersKernel(
                    self.ctx, self.operator, self.partition, int(length)
                )

    def derive(self, new_partition: Partition, mpk_lengths=()) -> "StructuralPlan":
        """Plan for the current (shrunken) roster after a repartition.

        Routed through the owning :class:`PlanCache`: the first
        degradation to a given roster builds the survivor plan, later
        degradations to the same roster reuse it.  A cached entry whose
        partition disagrees with ``new_partition`` is invalidated and
        rebuilt.
        """
        return self._cache.structural_plan(
            self.ctx,
            self.host,
            self.key.m,
            self.key.mpk_lengths or mpk_lengths,
            partition=new_partition,
            prebuild_mpk=mpk_lengths,
        )

    def device_memory_bytes(self) -> list[int]:
        """Per-device resident bytes of the plan's distributed state."""
        total = list(self.dmat.device_memory_bytes())
        for d in range(len(total)):
            total[d] += int(self.V.local[d].nbytes)
        for mpk in self.mpk.values():
            for d, nbytes in enumerate(mpk.device_memory_bytes()):
                total[d] += nbytes
        return total


def _same_partition(a: Partition, b: Partition) -> bool:
    return a.n_parts == b.n_parts and np.array_equal(a.assignment, b.assignment)


@dataclass
class PlanCache:
    """Two-level plan cache with roster-aware invalidation.

    Level 1 caches :class:`HostPlan` entries (ordering + balancing), keyed
    by the roster-independent :meth:`Fingerprint.host_key`.  Level 2
    caches :class:`StructuralPlan` entries keyed by the full
    :class:`Fingerprint` — these hold device-resident state, so entries
    are dropped when their roster or context goes away while the host
    entries survive untouched.

    With a :class:`~repro.metrics.registry.MetricsRegistry` attached via
    :attr:`metrics`, every lookup increments
    ``repro_plan_cache_requests_total{level,outcome}``, every drop
    ``repro_plan_cache_invalidations_total``, and every miss observes its
    *host wall-clock* build time in ``repro_plan_build_seconds{level}``
    (flagged nondeterministic).  Structural-plan builds additionally leave
    a zero-duration ``plan-build`` marker on the trace's region lane
    (kind ``"plan"``) carrying the measured ``host_seconds`` — visible in
    Chrome-trace exports without perturbing ``ctx.timers`` or the
    simulated timeline, so warm/cold solves stay bit-identical.
    """

    host_plans: dict = field(default_factory=dict)
    plans: dict = field(default_factory=dict)
    stats: dict = field(
        default_factory=lambda: {
            "host_hits": 0,
            "host_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "invalidations": 0,
        }
    )
    metrics: object | None = None
    #: Args of the most recent structural-plan build's trace marker.  The
    #: solver run constructors reset the context clocks (wiping the trace),
    #: so :class:`~repro.serve.session.SolverSession` re-emits the marker
    #: from this stash once the run — and its fresh trace — exists.
    last_structural_build: dict | None = field(default=None, compare=False)

    def _note_request(self, level: str, outcome: str) -> None:
        if self.metrics is not None:
            from ..metrics.collect import plan_cache_requests_total

            plan_cache_requests_total(self.metrics).inc(level=level, outcome=outcome)

    def _note_build(self, level: str, seconds: float) -> None:
        if self.metrics is not None:
            from ..metrics.collect import plan_build_seconds

            plan_build_seconds(self.metrics).observe(seconds, level=level)

    # -- level 1: host plans ------------------------------------------------
    def host_plan(
        self,
        matrix: CsrMatrix,
        ordering: str = "natural",
        balance: bool = True,
        preconditioner=None,
    ) -> HostPlan:
        """Fetch or build the ordering/balance plan for ``matrix``."""
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; choose from {ORDERINGS}"
            )
        key = (
            pattern_hash(matrix),
            ordering,
            bool(balance),
            None if preconditioner is None else repr(preconditioner),
        )
        cached = self.host_plans.get(key)
        if cached is not None:
            self.stats["host_hits"] += 1
            self._note_request("host", "hit")
            return cached
        self.stats["host_misses"] += 1
        self._note_request("host", "miss")
        build_start = time.perf_counter()
        perm = rcm(matrix) if ordering == "rcm" else None
        A_p = matrix.permute(perm) if perm is not None else matrix
        A_pre = preconditioner.fold(A_p) if preconditioner is not None else A_p
        bal = balance_matrix(A_pre) if balance else None
        plan = HostPlan(
            key=key,
            ordering=ordering,
            perm=perm,
            matrix=A_p,
            bal=bal,
            operator=bal.matrix if bal is not None else A_pre,
            preconditioner=preconditioner,
        )
        self.host_plans[key] = plan
        self._note_build("host", time.perf_counter() - build_start)
        return plan

    # -- level 2: roster-dependent plans ------------------------------------
    def structural_plan(
        self,
        ctx,
        host: HostPlan,
        m: int,
        mpk_lengths=(),
        partition: Partition | None = None,
        prebuild_mpk=(),
    ) -> StructuralPlan:
        """Fetch or build the device-level plan for the *active* roster."""
        roster = tuple(dev.name for dev in ctx.devices)
        key = Fingerprint(
            pattern=host.key[0],
            ordering=host.ordering,
            m=int(m),
            mpk_lengths=tuple(sorted(int(x) for x in mpk_lengths)),
            roster=roster,
            balance=host.key[2],
            preconditioner=host.key[3],
        )
        cached = self.plans.get(key)
        if cached is not None:
            stale = cached.ctx is not ctx or (
                partition is not None
                and not _same_partition(cached.partition, partition)
            )
            if not stale:
                self.stats["plan_hits"] += 1
                self._note_request("structural", "hit")
                cached.ensure_mpk(prebuild_mpk)
                return cached
            self.invalidate(key)
        self.stats["plan_misses"] += 1
        self._note_request("structural", "miss")
        build_start = time.perf_counter()
        if partition is None:
            if host.ordering == "kway":
                partition = kway_partition(host.operator, len(roster))
            else:
                partition = block_row_partition(host.operator.n_rows, len(roster))
        plan = StructuralPlan(key, host, ctx, partition, self)
        plan.ensure_mpk(prebuild_mpk)
        self.plans[key] = plan
        host_seconds = time.perf_counter() - build_start
        self._note_build("structural", host_seconds)
        # Zero-duration marker on the region lane: plan construction is host
        # work outside the simulated timeline, so it must not shift clocks or
        # region totals — kind "plan" keeps it out of region aggregation.
        self.last_structural_build = dict(
            host_seconds=host_seconds,
            level="structural",
            m=int(m),
            roster=list(roster),
        )
        ctx.trace.record(
            "plan-build",
            REGION_LANE,
            "plan",
            ctx.current_time(),
            0.0,
            **self.last_structural_build,
        )
        return plan

    # -- invalidation --------------------------------------------------------
    def invalidate(self, key: Fingerprint) -> bool:
        """Drop one structural plan (host plans are never affected)."""
        if key in self.plans:
            del self.plans[key]
            self.stats["invalidations"] += 1
            if self.metrics is not None:
                from ..metrics.collect import plan_cache_invalidations_total

                plan_cache_invalidations_total(self.metrics).inc()
            return True
        return False

    def invalidate_device(self, name: str) -> int:
        """Drop every structural plan whose roster includes ``name``.

        Called when a device is retired for good; host plans — ordering
        and balancing know nothing of devices — survive.
        """
        doomed = [k for k in self.plans if name in k.roster]
        for k in doomed:
            self.invalidate(k)
        return len(doomed)

    def clear_device_plans(self) -> int:
        """Drop all structural plans (e.g. when the context is replaced)."""
        n = len(self.plans)
        for k in list(self.plans):
            self.invalidate(k)
        return n
