"""Performance (cost) models for the simulated machine.

The paper's testbed is a Keeneland compute node: two 8-core Intel Sandy
Bridge (Xeon E5) CPUs and three NVIDIA M2090 (Fermi) GPUs on PCIe gen-2.
This package describes that machine (:mod:`~repro.perf.machine`) and provides
roofline-style cost models for every kernel the solvers issue
(:mod:`~repro.perf.kernels`), calibrated against the paper's own Fig. 11
kernel measurements.  The simulated GPU runtime (:mod:`repro.gpu`) charges
device/host clocks using :class:`~repro.perf.model.PerformanceModel`.

Numerical results never depend on this package — it only produces *time*.
"""

from .machine import (
    CpuSpec,
    GpuSpec,
    MachineSpec,
    PcieSpec,
    cpu_reference_node,
    keeneland_node,
)
from .kernels import KernelModel, KERNEL_TABLE, kernel_time
from .model import PerformanceModel
from .autotune import KernelAutotuner

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "PcieSpec",
    "MachineSpec",
    "keeneland_node",
    "cpu_reference_node",
    "KernelModel",
    "KERNEL_TABLE",
    "kernel_time",
    "PerformanceModel",
    "KernelAutotuner",
]
