"""Machine description of the paper's testbed.

One compute node of the Keeneland system (Georgia Tech): two eight-core Intel
Sandy Bridge Xeon E5 CPUs and three NVIDIA Tesla M2090 GPUs.  Numbers below
are public vendor/STREAM figures for those parts:

* M2090 (Fermi GF110): 665 Gflop/s double-precision peak, 177 GB/s raw
  memory bandwidth, ~120 GB/s sustained with ECC enabled; kernel launch
  overhead ~7 microseconds on Fermi-era CUDA.
* Xeon E5 (Sandy Bridge) 2.6 GHz, 8 DP flops/cycle/core x 16 cores ≈
  333 Gflop/s node peak; ~60 GB/s sustained node STREAM bandwidth.
* PCIe gen 2 x16: ~6 GB/s sustained per direction, ~10-15 microseconds
  end-to-end latency for a small pinned transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "PcieSpec",
    "MachineSpec",
    "keeneland_node",
    "cpu_reference_node",
]


@dataclass(frozen=True)
class GpuSpec:
    """One GPU: peak double-precision rate and sustained memory bandwidth."""

    name: str
    peak_gflops: float  # double-precision peak, Gflop/s
    mem_bandwidth: float  # sustained device memory bandwidth, bytes/s
    kernel_overhead: float  # per-kernel-launch overhead, seconds
    memory_bytes: int  # device memory capacity, bytes

    def __post_init__(self):
        if min(self.peak_gflops, self.mem_bandwidth, self.memory_bytes) <= 0:
            raise ValueError("GPU spec rates must be positive")
        if self.kernel_overhead < 0:
            raise ValueError("kernel_overhead must be non-negative")


@dataclass(frozen=True)
class CpuSpec:
    """The host multicore: aggregate peak and sustained bandwidth."""

    name: str
    cores: int
    peak_gflops: float
    mem_bandwidth: float  # bytes/s
    small_op_overhead: float  # fixed cost of a threaded small BLAS/LAPACK call

    def __post_init__(self):
        if self.cores <= 0 or min(self.peak_gflops, self.mem_bandwidth) <= 0:
            raise ValueError("CPU spec must be positive")


@dataclass(frozen=True)
class PcieSpec:
    """Host-device interconnect: per-message latency and bandwidth."""

    latency: float  # seconds per message
    bandwidth: float  # bytes/s per direction
    shared_bus: bool = True  # transfers from different GPUs serialize

    def __post_init__(self):
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("PCIe spec must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """A complete compute node: host CPU + ``n_gpus`` identical GPUs + bus."""

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    pcie: PcieSpec
    n_gpus: int

    def __post_init__(self):
        if self.n_gpus < 0:
            raise ValueError("n_gpus must be non-negative")


def keeneland_node(n_gpus: int = 3) -> MachineSpec:
    """The paper's testbed: 2x8-core Sandy Bridge + up to 3 NVIDIA M2090."""
    if not 0 <= n_gpus <= 3:
        raise ValueError("a Keeneland node has at most 3 GPUs")
    return MachineSpec(
        name="keeneland-kids-node",
        cpu=CpuSpec(
            name="2x Xeon E5 (Sandy Bridge, 8 cores each)",
            cores=16,
            peak_gflops=333.0,
            mem_bandwidth=60.0e9,
            small_op_overhead=2.0e-6,
        ),
        gpu=GpuSpec(
            name="NVIDIA Tesla M2090 (Fermi)",
            peak_gflops=665.0,
            mem_bandwidth=120.0e9,
            kernel_overhead=7.0e-6,
            memory_bytes=6 * 1024**3,
        ),
        pcie=PcieSpec(latency=12.0e-6, bandwidth=5.8e9, shared_bus=True),
        n_gpus=n_gpus,
    )


def cpu_reference_node() -> MachineSpec:
    """The CPU-only reference of Fig. 3: the solver runs on one "device"
    whose rates are the 16-core host's (threaded MKL) and whose
    "interconnect" is shared memory (no latency, memory-speed bandwidth).

    Use with ``MultiGpuContext(1, machine=cpu_reference_node())`` to time
    the MKL-based CPU GMRES the paper compares against.
    """
    base = keeneland_node(1)
    return MachineSpec(
        name="cpu-reference-16-core-snb",
        cpu=base.cpu,
        gpu=GpuSpec(
            name="host-as-device (threaded MKL)",
            peak_gflops=base.cpu.peak_gflops,
            mem_bandwidth=base.cpu.mem_bandwidth,
            kernel_overhead=base.cpu.small_op_overhead,
            memory_bytes=64 * 1024**3,
        ),
        pcie=PcieSpec(latency=1e-7, bandwidth=base.cpu.mem_bandwidth, shared_bus=False),
        n_gpus=1,
    )
