"""Per-kernel cost models, calibrated to the paper's Fig. 11.

Every kernel cost is a roofline:

    time = overhead + flops / min(eff_compute * peak, intensity * eff_bw * bw)

where ``intensity = flops / bytes`` is the kernel's arithmetic intensity.
``eff_compute`` and ``eff_bw`` are per-(kernel, implementation-variant)
efficiency factors.  The variants mirror the implementations the paper
compares:

* ``cublas``  — stock CUBLAS 4.2, which Fig. 11 shows performing poorly on
  tall-skinny shapes (DGEMV ~5 Gflop/s, DGEMM ~20 Gflop/s at s+1 = 30);
* ``magma``   — the authors' optimized tall-skinny DGEMV (one thread block
  per column dot-product), ~5x over CUBLAS;
* ``batched`` — their batched DGEMM built from CUBLAS ``gemmBatched`` over
  row panels plus a reduction (~58 Gflop/s at s+1 = 30);
* ``mkl``     — threaded MKL on the 16-core host (the CPU reference).

The calibration targets are the Fig. 11 steady-state rates; the model then
*predicts* every other shape (including the s-dependence of orthogonalization
cost in Figs. 13-15) from the same constants.  Flop counts follow the paper's
Fig. 10 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["KernelModel", "KERNEL_TABLE", "kernel_time", "kernel_flops_bytes"]

_F64 = 8  # bytes per double
_I64 = 8  # bytes per index (we store int64 indices)


@dataclass(frozen=True)
class KernelModel:
    """Cost model for one kernel implementation.

    Attributes
    ----------
    flops, bytes_moved
        Callables mapping the kernel's shape keywords to flop / byte counts.
    eff_compute
        Fraction of peak flop rate attainable in the compute-bound limit.
    eff_bandwidth
        Fraction of sustained memory bandwidth attainable in the
        memory-bound limit.
    launches
        Number of kernel launches issued (each pays the launch overhead);
        may be a callable of the shape keywords.
    """

    flops: Callable[..., float]
    bytes_moved: Callable[..., float]
    eff_compute: float
    eff_bandwidth: float
    launches: Callable[..., float] | int = 1
    eff_scale: Callable[..., float] | None = None

    def time(self, peak_flops: float, bandwidth: float, overhead: float, **shape) -> float:
        """Modeled execution time in seconds on a device with given rates."""
        flops = float(self.flops(**shape))
        nbytes = float(self.bytes_moved(**shape))
        launches = self.launches(**shape) if callable(self.launches) else self.launches
        t = launches * overhead
        if flops <= 0 and nbytes <= 0:
            return t
        scale = self.eff_scale(**shape) if self.eff_scale is not None else 1.0
        compute_rate = scale * self.eff_compute * peak_flops
        intensity = flops / nbytes if nbytes > 0 else float("inf")
        mem_rate = intensity * scale * self.eff_bandwidth * bandwidth
        rate = min(compute_rate, mem_rate)
        if flops > 0:
            t += flops / rate
        else:  # pure data movement (copies)
            t += nbytes / (scale * self.eff_bandwidth * bandwidth)
        return t


# ----------------------------------------------------------------------
# Shape -> flops / bytes.  n = long dimension (rows), k/j = short dims,
# nnz = stored nonzeros, batch = number of sub-GEMMs.
# ----------------------------------------------------------------------
def _dot_flops(n):
    return 2.0 * n


def _dot_bytes(n):
    return 2.0 * _F64 * n


def _axpy_flops(n):
    return 2.0 * n


def _axpy_bytes(n):
    return 3.0 * _F64 * n


def _scal_flops(n):
    return 1.0 * n


def _scal_bytes(n):
    return 2.0 * _F64 * n


def _copy_flops(n):
    return 0.0


def _copy_bytes(n):
    return 2.0 * _F64 * n


def _gemv_t_flops(n, k):
    # y(k) = V(n,k)^T x(n)
    return 2.0 * n * k


def _gemv_t_bytes(n, k):
    return _F64 * (n * k + n + k)


def _gemv_n_flops(n, k):
    # x(n) -= V(n,k) y(k)
    return 2.0 * n * k


def _gemv_n_bytes(n, k):
    return _F64 * (n * k + 2.0 * n + k)


def _gemm_tn_flops(n, k, j):
    # B(k,j) = V(n,k)^T W(n,j)
    return 2.0 * n * k * j


def _gemm_tn_bytes(n, k, j):
    return _F64 * (n * k + n * j + k * j)


def _gemm_nn_flops(n, k, j):
    # W(n,j) -= V(n,k) B(k,j)
    return 2.0 * n * k * j


def _gemm_nn_bytes(n, k, j):
    return _F64 * (n * k + 2.0 * n * j + k * j)


def _trsm_flops(n, k):
    # V(n,k) := V(n,k) R(k,k)^{-1}
    return 1.0 * n * k * k


def _trsm_bytes(n, k):
    return _F64 * (2.0 * n * k + k * k / 2.0)


def _qr_panel_flops(n, k):
    # GEQR2 + explicit Q formation (paper Fig. 10: 4 n s^2 for CAQR)
    return 4.0 * n * k * k


def _qr_panel_bytes(n, k):
    # Each of the k reflectors streams the trailing panel: ~ 8 n k^2 / 2
    return _F64 * (n * k * k)


def _spmv_flops(nnz, n_rows):
    return 2.0 * nnz


def _spmv_bytes(nnz, n_rows):
    # matrix values + indices + source gathers + result write
    return (_F64 + _I64) * nnz + _F64 * nnz + 2.0 * _F64 * n_rows


def _batched_launches(n, k, j, batch=None):
    # one batched launch + one reduction launch
    return 2.0


def _gemm_tn_bytes_sp(n, k, j):
    # single-precision operands: half the traffic of _gemm_tn_bytes
    return _F64 / 2.0 * (n * k + n * j + k * j)


def _narrow_panel_penalty(n, k, j):
    """Block (GEMM-class) kernels lose efficiency on very narrow panels.

    A GEMM tuned for blocks cannot amortize its tiling when the panel has
    only a couple of columns — the reason the paper's CA-GMRES(1, m) is
    *slower* than GMRES (Section VI-B: "these kernels are not optimized for
    orthogonalizing one vector at a time").  Full efficiency from ~5
    columns up; a single-column panel runs at ~40%.
    """
    return min(1.0, 0.25 + 0.15 * min(k, j))


KERNEL_TABLE: dict[tuple[str, str], KernelModel] = {
    # ---- BLAS-1 ----
    ("dot", "cublas"): KernelModel(_dot_flops, _dot_bytes, 0.05, 0.90),
    ("axpy", "cublas"): KernelModel(_axpy_flops, _axpy_bytes, 0.05, 0.90),
    ("scal", "cublas"): KernelModel(_scal_flops, _scal_bytes, 0.05, 0.90),
    ("copy", "cublas"): KernelModel(_copy_flops, _copy_bytes, 1.0, 0.90),
    ("dot", "mkl"): KernelModel(_dot_flops, _dot_bytes, 0.10, 0.85),
    ("axpy", "mkl"): KernelModel(_axpy_flops, _axpy_bytes, 0.10, 0.85),
    ("scal", "mkl"): KernelModel(_scal_flops, _scal_bytes, 0.10, 0.85),
    ("copy", "mkl"): KernelModel(_copy_flops, _copy_bytes, 1.0, 0.85),
    # ---- tall-skinny DGEMV (TSQR/CGS, BOrth/MGS) ----
    # CUBLAS 4.2 parallelizes DGEMV over rows of the output; with k ~ 30
    # outputs it cannot fill a Fermi, hence the very low efficiencies
    # (calibration: ~5 Gflop/s at k = 30 in Fig. 11b).
    ("gemv_t", "cublas"): KernelModel(_gemv_t_flops, _gemv_t_bytes, 0.010, 0.18),
    ("gemv_n", "cublas"): KernelModel(_gemv_n_flops, _gemv_n_bytes, 0.012, 0.22),
    # MAGMA tall-skinny DGEMV: one thread block per column dot-product
    # (calibration: ~5x CUBLAS, ~25 Gflop/s at k = 30).
    ("gemv_t", "magma"): KernelModel(_gemv_t_flops, _gemv_t_bytes, 0.06, 0.88),
    ("gemv_n", "magma"): KernelModel(_gemv_n_flops, _gemv_n_bytes, 0.06, 0.88),
    ("gemv_t", "mkl"): KernelModel(_gemv_t_flops, _gemv_t_bytes, 0.05, 0.80),
    ("gemv_n", "mkl"): KernelModel(_gemv_n_flops, _gemv_n_bytes, 0.05, 0.80),
    # ---- tall-skinny DGEMM (CholQR/SVQR Gram, BOrth/CGS) ----
    # CUBLAS 4.2 blocks for large square GEMM; a (30 x n)(n x 30) product
    # runs at ~20 Gflop/s (Fig. 11a).
    ("gemm_tn", "cublas"): KernelModel(
        _gemm_tn_flops, _gemm_tn_bytes, 0.030, 0.35, eff_scale=_narrow_panel_penalty
    ),
    ("gemm_nn", "cublas"): KernelModel(
        _gemm_nn_flops, _gemm_nn_bytes, 0.035, 0.40, eff_scale=_narrow_panel_penalty
    ),
    # The authors' batched DGEMM over row panels + reduction: ~58 Gflop/s.
    ("gemm_tn", "batched"): KernelModel(
        _gemm_tn_flops, _gemm_tn_bytes, 0.087, 0.95, launches=_batched_launches,
        eff_scale=_narrow_panel_penalty,
    ),
    ("gemm_nn", "batched"): KernelModel(
        _gemm_nn_flops, _gemm_nn_bytes, 0.095, 0.95, launches=_batched_launches,
        eff_scale=_narrow_panel_penalty,
    ),
    # Mixed-precision Gram product (the authors' follow-up [23]): operands
    # cast to float32, so half the memory traffic and twice the peak.
    ("gemm_tn", "batched_sp"): KernelModel(
        _gemm_tn_flops, _gemm_tn_bytes_sp, 0.174, 0.95, launches=_batched_launches,
        eff_scale=_narrow_panel_penalty,
    ),
    ("gemm_tn", "mkl"): KernelModel(_gemm_tn_flops, _gemm_tn_bytes, 0.10, 0.85),
    ("gemm_nn", "mkl"): KernelModel(_gemm_nn_flops, _gemm_nn_bytes, 0.10, 0.85),
    # MAGMA-style GEMM on very skinny shapes (rank-1/rank-few updates used
    # by BOrth/MGS): behaves like the optimized tall-skinny GEMV.
    ("gemm_tn", "magma"): KernelModel(
        _gemm_tn_flops, _gemm_tn_bytes, 0.06, 0.88, eff_scale=_narrow_panel_penalty
    ),
    ("gemm_nn", "magma"): KernelModel(
        _gemm_nn_flops, _gemm_nn_bytes, 0.06, 0.88, eff_scale=_narrow_panel_penalty
    ),
    # ---- triangular solve on the tall-skinny panel (CholQR/SVQR apply) ----
    ("trsm", "magma"): KernelModel(_trsm_flops, _trsm_bytes, 0.06, 0.80),
    ("trsm", "cublas"): KernelModel(_trsm_flops, _trsm_bytes, 0.02, 0.30),
    ("trsm", "mkl"): KernelModel(_trsm_flops, _trsm_bytes, 0.08, 0.80),
    # ---- local QR panel factorization (CAQR's per-GPU GEQR2 + Q build) ----
    # BLAS-1/2 bound; Fig. 11c shows CAQR tracking MGS (~10 Gflop/s).
    ("qr_panel", "magma"): KernelModel(_qr_panel_flops, _qr_panel_bytes, 0.016, 0.11),
    ("qr_panel", "mkl"): KernelModel(_qr_panel_flops, _qr_panel_bytes, 0.06, 0.60),
    # ---- sparse matrix-vector product ----
    ("spmv", "ellpack"): KernelModel(_spmv_flops, _spmv_bytes, 0.08, 0.85),
    ("spmv", "csr"): KernelModel(_spmv_flops, _spmv_bytes, 0.05, 0.60),
    ("spmv", "mkl"): KernelModel(_spmv_flops, _spmv_bytes, 0.08, 0.80),
}


def kernel_time(
    op: str,
    variant: str,
    peak_flops: float,
    bandwidth: float,
    overhead: float,
    **shape,
) -> float:
    """Time one kernel on a device described by the given raw rates."""
    try:
        model = KERNEL_TABLE[(op, variant)]
    except KeyError:
        raise KeyError(f"no kernel model for op={op!r} variant={variant!r}") from None
    return model.time(peak_flops, bandwidth, overhead, **shape)


def kernel_flops_bytes(op: str, variant: str, **shape) -> tuple[float, float]:
    """Flop and byte counts for one kernel invocation (for counters)."""
    model = KERNEL_TABLE[(op, variant)]
    return float(model.flops(**shape)), float(model.bytes_moved(**shape))
