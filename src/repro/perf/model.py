"""The performance model facade used by the simulated runtime.

:class:`PerformanceModel` binds a :class:`~repro.perf.machine.MachineSpec` to
the kernel cost table and answers three questions:

* how long does GPU kernel X with shape S take (``gpu_time``),
* how long does the threaded-host version take (``cpu_time``),
* how long does moving N bytes across PCIe take (``transfer_time``),

plus small-dense host LAPACK costs (Cholesky/QR/SVD/eig of the s x s Gram
and Hessenberg matrices), which the paper runs on the CPU.
"""

from __future__ import annotations

from .kernels import kernel_time
from .machine import MachineSpec, keeneland_node

__all__ = ["PerformanceModel"]


class PerformanceModel:
    """Cost oracle for one machine.

    Parameters
    ----------
    machine
        Machine description; defaults to the paper's Keeneland node.
    """

    def __init__(self, machine: MachineSpec | None = None):
        self.machine = machine if machine is not None else keeneland_node()

    # ------------------------------------------------------------------
    # Device kernels
    # ------------------------------------------------------------------
    def gpu_time(self, op: str, variant: str, **shape) -> float:
        """Modeled time of one GPU kernel (seconds)."""
        gpu = self.machine.gpu
        return kernel_time(
            op,
            variant,
            peak_flops=gpu.peak_gflops * 1e9,
            bandwidth=gpu.mem_bandwidth,
            overhead=gpu.kernel_overhead,
            **shape,
        )

    def cpu_time(self, op: str, variant: str = "mkl", **shape) -> float:
        """Modeled time of one threaded host kernel (seconds)."""
        cpu = self.machine.cpu
        return kernel_time(
            op,
            variant,
            peak_flops=cpu.peak_gflops * 1e9,
            bandwidth=cpu.mem_bandwidth,
            overhead=cpu.small_op_overhead,
            **shape,
        )

    # ------------------------------------------------------------------
    # Host small-dense LAPACK (s x s / (m+1) x m problems)
    # ------------------------------------------------------------------
    def host_small_dense(self, op: str, k: int) -> float:
        """Cost of a small k x k dense factorization on the host.

        Small problems are latency-dominated; the flop term uses a modest
        sequential rate (~8 Gflop/s) because threaded LAPACK does not scale
        at these sizes.
        """
        flops = {
            "chol": k**3 / 3.0,
            "qr": 4.0 * k**3 / 3.0,
            "svd": 20.0 * k**3,
            "eig": 25.0 * k**3,
            "lstsq_hessenberg": 3.0 * k**2,  # Givens on an upper Hessenberg
            "trsv": k**2,
        }.get(op)
        if flops is None:
            raise KeyError(f"unknown host small-dense op {op!r}")
        return self.machine.cpu.small_op_overhead + flops / 8.0e9

    # ------------------------------------------------------------------
    # PCIe
    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: float) -> float:
        """Latency + bandwidth cost of one host<->device message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        pcie = self.machine.pcie
        return pcie.latency + nbytes / pcie.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PerformanceModel({self.machine.name!r})"
