"""Kernel-variant autotuning.

The paper repeatedly points at autotuning (footnotes 7 and 8: "we are
investigating ... the potential of using an auto-tuner to improve the
performance"): the best implementation of a tall-skinny kernel depends on
the shape.  :class:`KernelAutotuner` picks, per (op, shape), the fastest
variant available in the cost table — the model-level equivalent of an
empirical tuning sweep — and caches the decision.

Used with ``variant="auto"`` kernels become shape-adaptive: e.g. a GEMM on
a 2-column panel may route to the MAGMA GEMV-style kernel while the
30-column Gram product routes to the batched implementation.
"""

from __future__ import annotations

from .kernels import KERNEL_TABLE
from .machine import MachineSpec, keeneland_node

__all__ = ["KernelAutotuner"]

# Variants that execute on the device (host 'mkl' entries are not eligible).
_DEVICE_VARIANTS = ("cublas", "magma", "batched", "batched_sp", "ellpack", "csr")
# batched_sp changes numerics (fp32); exclude from transparent autotuning.
_TRANSPARENT = tuple(v for v in _DEVICE_VARIANTS if v != "batched_sp")


class KernelAutotuner:
    """Pick the fastest device variant for each kernel shape.

    Parameters
    ----------
    machine
        The machine whose rates drive the decision (default: the paper's
        Keeneland node).
    """

    def __init__(self, machine: MachineSpec | None = None):
        self.machine = machine if machine is not None else keeneland_node()
        self._cache: dict[tuple, str] = {}

    def candidates(self, op: str) -> list[str]:
        """Device variants available for ``op`` (numerics-preserving)."""
        return [
            variant
            for (table_op, variant) in KERNEL_TABLE
            if table_op == op and variant in _TRANSPARENT
        ]

    def best_variant(self, op: str, **shape) -> str:
        """The fastest variant of ``op`` at this shape (cached)."""
        key = (op, tuple(sorted(shape.items())))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        gpu = self.machine.gpu
        options = self.candidates(op)
        if not options:
            raise KeyError(f"no device variants for op {op!r}")
        best = min(
            options,
            key=lambda v: KERNEL_TABLE[(op, v)].time(
                gpu.peak_gflops * 1e9,
                gpu.mem_bandwidth,
                gpu.kernel_overhead,
                **shape,
            ),
        )
        self._cache[key] = best
        return best

    def tuning_table(self, op: str, shapes: list[dict]) -> list[tuple]:
        """Decision table for a shape sweep: ``(shape, variant, time)``."""
        gpu = self.machine.gpu
        rows = []
        for shape in shapes:
            variant = self.best_variant(op, **shape)
            t = KERNEL_TABLE[(op, variant)].time(
                gpu.peak_gflops * 1e9, gpu.mem_bandwidth, gpu.kernel_overhead,
                **shape,
            )
            rows.append((dict(shape), variant, t))
        return rows
