"""Host-side Arnoldi process.

A small sequential Arnoldi used for spectral diagnostics: Newton-shift
seeding outside the solver, the Fig. 12 θ1/θ2 estimates, and tests.  (The
solvers build their basis on the devices; this runs entirely on the host.)
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = ["host_arnoldi", "host_ritz_values"]


def host_arnoldi(
    matrix: CsrMatrix,
    m: int,
    v0: np.ndarray | None = None,
    seed: int = 7,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``m`` Arnoldi steps with modified Gram-Schmidt on the host.

    Parameters
    ----------
    matrix
        Square sparse matrix.
    m
        Requested steps (capped at ``n``); stops early on an invariant
        subspace.
    v0
        Starting vector (random with ``seed`` when omitted).

    Returns
    -------
    (Q, H)
        ``Q`` is ``n x (k+1)`` with orthonormal columns and ``H`` the
        ``(k+1) x k`` upper Hessenberg matrix, ``k <= m`` the completed
        steps; ``A Q[:, :k] = Q H`` up to round-off.  On early termination
        the returned ``H`` is ``k x k`` (square) and ``Q`` is ``n x k``.
    """
    n = matrix.n_rows
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("host_arnoldi requires a square matrix")
    if n < 2:
        raise ValueError("matrix too small")
    if m < 1:
        raise ValueError("m must be >= 1")
    k = min(m, n)
    if v0 is None:
        v0 = np.random.default_rng(seed).standard_normal(n)
    else:
        v0 = np.asarray(v0, dtype=np.float64)
        if v0.shape != (n,):
            raise ValueError(f"v0 must have shape ({n},)")
    norm0 = np.linalg.norm(v0)
    if norm0 == 0.0:
        raise ValueError("starting vector is zero")
    Q = np.zeros((n, k + 1))
    H = np.zeros((k + 1, k))
    Q[:, 0] = v0 / norm0
    for j in range(k):
        w = matrix.matvec(Q[:, j])
        for i in range(j + 1):
            H[i, j] = Q[:, i] @ w
            w -= H[i, j] * Q[:, i]
        H[j + 1, j] = np.linalg.norm(w)
        if H[j + 1, j] < 1e-12 * max(np.abs(H[: j + 2, j]).max(), 1.0):
            # Invariant subspace: the square Hessenberg is exact.
            return Q[:, : j + 1], H[: j + 1, : j + 1]
        Q[:, j + 1] = w / H[j + 1, j]
    return Q, H


def host_ritz_values(matrix: CsrMatrix, m: int, seed: int = 7) -> np.ndarray:
    """Ritz values (eigenvalues of the square Hessenberg) of an m-step run."""
    _, H = host_arnoldi(matrix, m, seed=seed)
    k = H.shape[1]
    return np.linalg.eigvals(H[:k, :k])
