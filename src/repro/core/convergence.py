"""Solver results and convergence tracking.

The paper declares convergence when the l2 norm of the initial residual has
been reduced by at least four orders of magnitude (Section VI); the drivers
take that as a relative tolerance (default ``1e-4``), checking the Givens
residual estimate inside a cycle and the *true* residual at restart
boundaries (robust against the loss of orthogonality that CA-GMRES's
ill-conditioned bases can cause).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceHistory", "SolveResult"]


@dataclass
class ConvergenceHistory:
    """Residual norms observed during a solve."""

    initial_residual: float = 0.0
    estimates: list = field(default_factory=list)  # (iteration, |r| estimate)
    true_residuals: list = field(default_factory=list)  # (iteration, |r|) at restarts

    def record_estimate(self, iteration: int, value: float) -> None:
        self.estimates.append((int(iteration), float(value)))

    def record_true(self, iteration: int, value: float) -> None:
        self.true_residuals.append((int(iteration), float(value)))

    def relative(self) -> np.ndarray:
        """True residuals relative to the initial residual."""
        if self.initial_residual == 0.0:
            return np.zeros(len(self.true_residuals))
        return np.array([v for _, v in self.true_residuals]) / self.initial_residual


@dataclass
class SolveResult:
    """Outcome of a GMRES / CA-GMRES solve.

    Attributes
    ----------
    x
        Solution in the *original* (unbalanced) variables, on the host.
    converged
        True if the relative residual reached the tolerance.
    n_restarts
        Completed restart cycles (the paper's "Rest." column).
    n_iterations
        Total inner iterations (basis vectors generated).
    history
        Residual-norm history.
    timers
        Simulated seconds per phase: keys like ``"spmv"``, ``"mpk"``,
        ``"borth"``, ``"tsqr"``, ``"orth"``, ``"lsq"``, ``"update"``.
        These are *exclusive* times (nested regions are charged to the
        innermost region only).
    counters
        Snapshot of the runtime counters at the end of the solve.
    breakdowns
        Orthogonalization breakdowns survived (CholQR on ill-conditioned
        panels); each forces an early restart.
    details
        Solver-specific extras.  All drivers attach ``details["profile"]``,
        the trace-derived aggregate metrics (per-kernel, per-region,
        per-transfer, and per-restart-cycle; see
        :meth:`repro.gpu.trace.TraceRecorder.profile`), also reachable as
        :attr:`profile`.

        When fault injection/resilience saw any activity, drivers also
        attach ``details["faults"]`` (see
        :meth:`repro.faults.injector.FaultInjector.report`): lists of
        ``injected`` / ``detected`` / ``recovered`` / ``unrecovered``
        event records, the ``lost_devices``, an ``aborted`` flag (True
        when an unrecoverable fault stopped the solve early — the solver
        returns the last checkpointed iterate with ``converged=False``
        instead of raising), and summary ``counts``.  The key is *absent*
        for fault-free runs, so a zero-rate plan leaves results
        bit-identical.

        When the solver ran with a degrade policy or a deadline, drivers
        attach ``details["degradation"]`` (see
        :meth:`repro.core.degrade.DegradationManager.report`): the
        policy, the initial/final device counts, one record per
        repartition performed (lost devices, time, surviving part
        sizes), and whether/when the simulated-time deadline tripped.
        The key is absent when neither was requested, keeping such runs
        bit-identical to earlier behavior.
    """

    x: np.ndarray
    converged: bool
    n_restarts: int
    n_iterations: int
    history: ConvergenceHistory
    timers: dict
    counters: dict
    breakdowns: int = 0
    details: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total simulated solve time (sum of phase timers)."""
        return float(sum(self.timers.values()))

    @property
    def profile(self) -> dict | None:
        """Trace-derived aggregate metrics (``details["profile"]``)."""
        return self.details.get("profile")

    def time_per_restart(self, phase: str | None = None) -> float:
        """Average per-restart time of one phase (or the total)."""
        cycles = max(self.n_restarts, 1)
        if phase is None:
            return self.total_time / cycles
        return self.timers.get(phase, 0.0) / cycles

    def summary(self) -> str:
        """Multi-line human-readable report of this solve."""
        lines = [
            f"converged      : {self.converged}",
            f"restarts       : {self.n_restarts}",
            f"iterations     : {self.n_iterations}",
        ]
        if self.history.initial_residual > 0 and self.history.true_residuals:
            final = self.history.true_residuals[-1][1]
            lines.append(
                f"rel. residual  : {final / self.history.initial_residual:.3e}"
            )
        if self.breakdowns:
            lines.append(f"breakdowns     : {self.breakdowns}")
        faults = self.details.get("faults")
        if faults:
            c = faults["counts"]
            lines.append(
                f"faults         : {c['injected']} injected, "
                f"{c['detected']} detected, {c['recovered']} recovered, "
                f"{c['unrecovered']} unrecovered"
            )
            if faults["lost_devices"]:
                lines.append(
                    f"lost devices   : {', '.join(faults['lost_devices'])}"
                )
        lines.append(
            f"simulated time : {1e3 * self.total_time:.3f} ms "
            f"({1e3 * self.time_per_restart():.3f} ms / restart loop)"
        )
        phases = "  ".join(
            f"{k}={1e3 * v:.2f}ms" for k, v in sorted(self.timers.items()) if v > 0
        )
        if phases:
            lines.append(f"phases         : {phases}")
        msgs = self.counters.get("d2h_messages", 0) + self.counters.get(
            "h2d_messages", 0
        )
        lines.append(f"PCIe messages  : {msgs}")
        return "\n".join(lines)
