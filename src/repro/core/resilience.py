"""Solver-side fault detection and recovery.

The injection layer (:mod:`repro.faults`) corrupts data and timing at the
machine level; this module is the solvers' answer.  Three nested layers:

1. **Transfer retry** — the staged exchange re-issues corrupted transfers
   (:class:`~repro.dist.exchange.StagedExchange`; not in this module).
2. **Panel retry** — CA-GMRES re-runs a poisoned block (regenerate the MPK
   candidates, re-orthogonalize) a bounded number of times.
3. **Cycle redo** — every solver checkpoints the solution vector at each
   restart boundary; a fault that escapes the inner layers rolls the cycle
   back and replays it (:func:`run_cycle_resilient`).

Detection is by *uncosted* host-side ``np.isfinite`` guards
(:func:`guard_finite`) on the small quantities every cycle already
materializes on the host — residual norms, Hessenberg columns, BOrth
coefficients, TSQR R factors — so the guards never perturb the simulated
timeline: with a zero-rate plan, results and timings are bit-identical to
an unguarded run.

Unrecoverable faults (exhausted retry budgets) do not raise out of the
solvers; they abort the solve and surface as the structured
``SolveResult.details["faults"]`` report (see
:meth:`repro.faults.injector.FaultInjector.report`).  Device dropout is
terminal too by default, but a solver that passes a
:class:`~repro.core.degrade.DegradationManager` adds a fourth layer:

4. **Degraded-mode repartition** — a :class:`~repro.faults.errors.
   DeviceLost` that escapes the cycle is absorbed by deactivating the dead
   device, repartitioning the problem over the survivors, rebuilding the
   distributed state from the cycle checkpoint, and replaying the cycle on
   n-1 GPUs (see :mod:`repro.core.degrade`).
"""

from __future__ import annotations

import numpy as np

from ..faults.errors import (
    DeviceLost,
    SilentDataCorruption,
    TransferCorruption,
)
from ..orth.errors import NonFinitePanelError

__all__ = [
    "MAX_CYCLE_REDOS",
    "MAX_PANEL_RETRIES",
    "RECOVERABLE_FAULTS",
    "guard_finite",
    "run_cycle_resilient",
    "snapshot_solution",
    "restore_solution",
]

#: Exceptions the retry/checkpoint machinery can recover from.  Everything
#: else (notably :class:`DeviceLost`) is terminal.
RECOVERABLE_FAULTS = (TransferCorruption, SilentDataCorruption, NonFinitePanelError)

#: How many times one restart cycle may be rolled back and replayed before
#: the solve gives up and reports the fault as unrecovered.
MAX_CYCLE_REDOS = 3

#: How many times CA-GMRES re-runs one poisoned block before escalating to
#: a cycle redo.
MAX_PANEL_RETRIES = 2


def guard_finite(ctx, value, what: str, site: str | None = None) -> None:
    """Uncosted NaN/Inf check on host-side solver state.

    A no-op unless the context has resilience enabled.  On failure the
    detection is logged with the injector (and mirrored into the trace's
    fault lane) and :class:`SilentDataCorruption` raised for the caller's
    retry machinery.
    """
    if not ctx.resilience_enabled:
        return
    arr = np.asarray(value)
    if arr.size and not np.all(np.isfinite(arr)):
        ctx.faults.note_detection(what, time=ctx.current_time(), site=site)
        raise SilentDataCorruption(f"non-finite {what}")


def snapshot_solution(x) -> list[np.ndarray]:
    """Uncosted host copy of the distributed solution (cycle checkpoint)."""
    return [p.data.copy() for p in x.parts()]


def restore_solution(x, snapshot: list[np.ndarray]) -> None:
    """Write a :func:`snapshot_solution` checkpoint back into ``x``."""
    for p, saved in zip(x.parts(), snapshot):
        p.data[...] = saved


def _snapshot_history(history) -> tuple[int, int]:
    return len(history.estimates), len(history.true_residuals)


def _restore_history(history, snap: tuple[int, int]) -> None:
    del history.estimates[snap[0] :]
    del history.true_residuals[snap[1] :]


def run_cycle_resilient(
    ctx, cycle, x, history, unrecovered: list[dict],
    max_redos: int = MAX_CYCLE_REDOS, degrader=None,
):
    """Run one restart cycle with checkpoint/redo semantics.

    Parameters
    ----------
    ctx
        The execution context (its injector logs recoveries).
    cycle
        Zero-argument callable performing the cycle; may raise any of
        :data:`RECOVERABLE_FAULTS` or :class:`DeviceLost`.  When a
        degrader is attached the callable must read its inputs from
        mutable solver state so a replay after repartitioning picks up the
        rebuilt objects.
    x
        Distributed solution vector — checkpointed before the attempt and
        rolled back on failure (a fault mid-cycle must not leave a
        half-updated iterate behind).
    history
        The convergence history; estimate entries recorded by a failed
        attempt are rolled back with the solution.
    unrecovered
        Output list: a terminal failure appends one structured record
        (``error``/``message``/``time``[/``site``]) here.
    max_redos
        Redo budget per cycle.
    degrader
        Optional :class:`~repro.core.degrade.DegradationManager`.  A
        :class:`DeviceLost` is offered to it first: on absorption the
        problem is repartitioned over the survivors and the cycle replayed
        (not charged against the redo budget — losing a device is not the
        cycle's fault); on refusal the historical structured-abort path
        runs unchanged.

    Returns
    -------
    (result, aborted)
        ``result`` is ``cycle()``'s return value (``None`` when aborted);
        ``aborted`` is True when the solve must stop and report.
    """
    if not ctx.resilience_enabled:
        return cycle(), False
    checkpoint = snapshot_solution(x)
    hist_mark = _snapshot_history(history)
    attempt = 0
    while True:
        try:
            return cycle(), False
        except RECOVERABLE_FAULTS as exc:
            restore_solution(x, checkpoint)
            _restore_history(history, hist_mark)
            if attempt == max_redos:
                unrecovered.append(
                    {
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "time": ctx.current_time(),
                        "action": "cycle-redo budget exhausted",
                    }
                )
                return None, True
            ctx.faults.note_recovery(
                "cycle-redo", time=ctx.current_time(),
                cause=type(exc).__name__, attempt=attempt + 1,
            )
            attempt += 1
        except DeviceLost as exc:
            _restore_history(history, hist_mark)
            new_x = None
            if degrader is not None:
                new_x = degrader.absorb(exc, x, checkpoint)
            if new_x is not None:
                # Absorbed: the solver state now lives on the survivors.
                # Re-checkpoint and replay the cycle from the restart
                # boundary; the redo budget is untouched.
                x = new_x
                checkpoint = snapshot_solution(x)
                continue
            restore_solution(x, checkpoint)
            unrecovered.append(
                {
                    "error": "DeviceLost",
                    "site": exc.site,
                    "message": str(exc),
                    "time": ctx.current_time(),
                }
            )
            return None, True
