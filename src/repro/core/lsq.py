"""Least-squares solvers for the upper Hessenberg projection problem.

GMRES updates its solution by solving ``min_y || beta e_1 - H y ||`` with H
the ``(j+1) x j`` upper Hessenberg matrix.  :class:`GivensHessenbergSolver`
maintains the QR factorization of H incrementally with Givens rotations —
one rotation per new column, ``~3(m+1)^2`` flops per cycle exactly as the
paper counts — and exposes the running residual norm for free.

:func:`hessenberg_lstsq` is the one-shot variant CA-GMRES uses after
assembling the recovered Hessenberg matrix of a whole block.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GivensHessenbergSolver", "hessenberg_lstsq"]


class GivensHessenbergSolver:
    """Incremental Givens-rotation solver for GMRES's least squares.

    Parameters
    ----------
    m
        Maximum number of columns (the restart parameter).
    beta
        Norm of the initial residual; the right-hand side is ``beta e_1``.
    """

    def __init__(self, m: int, beta: float):
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = int(m)
        self._r = np.zeros((m, m), dtype=np.float64)  # triangular factor
        self._g = np.zeros(m + 1, dtype=np.float64)  # rotated rhs
        self._g[0] = float(beta)
        self._cos = np.zeros(m, dtype=np.float64)
        self._sin = np.zeros(m, dtype=np.float64)
        self.size = 0

    def append_column(self, h: np.ndarray) -> float:
        """Add Hessenberg column ``j`` (length ``j+2``); returns |residual|.

        ``h[:j+1]`` are the projection coefficients, ``h[j+1]`` the
        subdiagonal entry.
        """
        j = self.size
        if j >= self.m:
            raise RuntimeError("solver is full; restart required")
        h = np.asarray(h, dtype=np.float64)
        if h.shape != (j + 2,):
            raise ValueError(f"expected column of length {j + 2}, got {h.shape}")
        col = h[: j + 1].copy()
        # Apply the existing rotations to the new column.
        for i in range(j):
            c, s = self._cos[i], self._sin[i]
            temp = c * col[i] + s * col[i + 1]
            col[i + 1] = -s * col[i] + c * col[i + 1]
            col[i] = temp
        # New rotation to annihilate the subdiagonal entry h[j+1].
        a, b = col[j], h[j + 1]
        r = np.hypot(a, b)
        if r == 0.0:
            c, s = 1.0, 0.0
        else:
            c, s = a / r, b / r
        self._cos[j], self._sin[j] = c, s
        col[j] = r
        self._r[: j + 1, j] = col
        # Rotate the right-hand side.
        g_j = self._g[j]
        self._g[j] = c * g_j
        self._g[j + 1] = -s * g_j
        self.size += 1
        return abs(float(self._g[self.size]))

    @property
    def residual_norm(self) -> float:
        """Current least-squares residual norm (exact, no extra work)."""
        return abs(float(self._g[self.size]))

    def solve(self) -> np.ndarray:
        """Back-substitute for the current minimizer ``y`` (length size)."""
        j = self.size
        if j == 0:
            return np.empty(0, dtype=np.float64)
        r = self._r[:j, :j]
        y = np.zeros(j, dtype=np.float64)
        for i in range(j - 1, -1, -1):
            y[i] = (self._g[i] - r[i, i + 1 :] @ y[i + 1 :]) / r[i, i]
        return y


def hessenberg_lstsq(H: np.ndarray, beta: float) -> tuple[np.ndarray, float]:
    """Solve ``min_y || beta e_1 - H y ||`` for a ``(t+1) x t`` Hessenberg H.

    Returns ``(y, residual_norm)``.  Used by CA-GMRES on the recovered
    Hessenberg matrix after each block.
    """
    H = np.asarray(H, dtype=np.float64)
    if H.ndim != 2 or H.shape[0] != H.shape[1] + 1:
        raise ValueError(f"H must be (t+1) x t, got {H.shape}")
    t = H.shape[1]
    rhs = np.zeros(t + 1, dtype=np.float64)
    rhs[0] = float(beta)
    solver = GivensHessenbergSolver(t, beta)
    for j in range(t):
        solver.append_column(H[: j + 2, j])
    return solver.solve(), solver.residual_norm
