"""Communication-avoiding Arnoldi eigenvalue estimation.

The paper's conclusion: "such tall-skinny matrices appear in other sparse
solvers ... and both SpMV and Orth are needed in many solvers (e.g.,
subspace projection methods for linear and eigenvalue problems).  Hence,
our studies may have greater impact beyond GMRES."

This module demonstrates that claim with the library's own kernels: a
CA-Arnoldi process builds an ``m``-dimensional Krylov basis in blocks of
``s`` using MPK + BOrth + TSQR (one communication phase per block instead
of per vector), recovers the Hessenberg matrix exactly as CA-GMRES does,
and returns its Ritz values/vectors as eigen-estimates of ``A``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..dist.multivector import DistMultiVector
from ..gpu.context import MultiGpuContext
from ..mpk.matrix_powers import MatrixPowersKernel
from ..mpk.shifts import monomial_shift_ops, newton_shift_ops
from ..order.partition import Partition, block_row_partition
from ..orth.borth import borth
from ..orth.errors import CholeskyBreakdown
from ..orth.tsqr import tsqr
from ..sparse.csr import CsrMatrix
from .basis import build_change_of_basis

__all__ = ["CaArnoldiResult", "ca_arnoldi_eigs"]


@dataclass
class CaArnoldiResult:
    """Ritz approximations from one CA-Arnoldi factorization.

    Attributes
    ----------
    ritz_values
        Eigenvalues of the square Hessenberg matrix (complex array).
    hessenberg
        The recovered ``(m+1) x m`` upper Hessenberg matrix.
    residuals
        Per-Ritz-pair residual estimates ``|h_{m+1,m}| * |y_m|`` (the
        classical Arnoldi bound, no extra SpMVs needed).
    timers, counters
        The simulated phase times and communication counters of the run.
    """

    ritz_values: np.ndarray
    hessenberg: np.ndarray
    residuals: np.ndarray
    timers: dict
    counters: dict


def ca_arnoldi_eigs(
    matrix: CsrMatrix,
    ctx: MultiGpuContext | None = None,
    n_gpus: int = 1,
    partition: Partition | None = None,
    s: int = 10,
    m: int = 30,
    shifts: np.ndarray | None = None,
    tsqr_method: str = "cholqr",
    borth_method: str = "cgs",
    v0: np.ndarray | None = None,
    seed: int = 11,
) -> CaArnoldiResult:
    """Estimate eigenvalues of ``A`` with a blocked (CA) Arnoldi process.

    Parameters
    ----------
    matrix
        Square CSR matrix.
    s, m
        Block length and total Krylov dimension (1 <= s <= m <= n).
    shifts
        Optional Newton shifts (e.g. Ritz values from a previous call);
        monomial basis when omitted.
    tsqr_method, borth_method
        Orthogonalization kernels, as in :func:`repro.core.ca_gmres.ca_gmres`
        (CholQR breakdowns fall back to CAQR automatically).
    v0
        Starting vector (random when omitted).

    Returns
    -------
    CaArnoldiResult
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("ca_arnoldi_eigs requires a square matrix")
    n = matrix.n_rows
    if not 1 <= s <= m <= n:
        raise ValueError(f"need 1 <= s <= m <= n, got s={s}, m={m}, n={n}")
    if ctx is None:
        ctx = MultiGpuContext(n_gpus)
    if partition is None:
        partition = block_row_partition(n, ctx.n_gpus)
    if v0 is None:
        v0 = np.random.default_rng(seed).standard_normal(n)
    else:
        v0 = np.asarray(v0, dtype=np.float64)
        if v0.shape != (n,):
            raise ValueError(f"v0 must have shape ({n},)")
    norm0 = float(np.linalg.norm(v0))
    if norm0 == 0.0:
        raise ValueError("starting vector is zero")

    V = DistMultiVector(ctx, partition, m + 1)
    V.set_column_from_host(0, v0 / norm0)
    ctx.reset_clocks()
    ctx.counters.reset()

    n_cols = m + 1
    R_bar = np.zeros((n_cols, n_cols))
    R_bar[0, 0] = 1.0
    S_full = np.zeros((n_cols, m))
    G_full = np.zeros((n_cols, m))
    mpk_cache: dict[int, MatrixPowersKernel] = {}
    j = 0
    while j < m:
        s_cur = min(s, m - j)
        if s_cur not in mpk_cache:
            mpk_cache[s_cur] = MatrixPowersKernel(ctx, matrix, partition, s_cur)
        ops = (
            newton_shift_ops(shifts, s_cur)
            if shifts is not None and len(shifts)
            else monomial_shift_ops(s_cur)
        )
        with ctx.region("mpk"):
            mpk_cache[s_cur].run(V, j, ops)
        q_panels = V.panel(0, j + 1)
        v_panels = V.panel(j + 1, j + s_cur + 1)
        with ctx.region("borth"):
            C = borth(ctx, q_panels, v_panels, method=borth_method)
        with ctx.region("tsqr"):
            try:
                R = tsqr(ctx, v_panels, method=tsqr_method)
            except CholeskyBreakdown:
                R = tsqr(ctx, v_panels, method="caqr")
        R_bar[: j + 1, j + 1 : j + s_cur + 1] = C
        R_bar[j + 1 : j + s_cur + 1, j + 1 : j + s_cur + 1] = R
        B_c = build_change_of_basis(ops)
        E = np.zeros((n_cols, s_cur + 1))
        E[j, 0] = 1.0
        E[:, 1:] = R_bar[:, j + 1 : j + s_cur + 1]
        S_full[:, j : j + s_cur] = E[:, :s_cur]
        G_full[:, j : j + s_cur] = E @ B_c
        j += s_cur

    ctx.host.charge_small_dense("eig", m)
    H = scipy.linalg.solve_triangular(
        S_full[:m, :m].T, G_full[: m + 1, :m].T, lower=True, check_finite=False
    ).T
    square = H[:m, :m]
    eigvals, eigvecs = np.linalg.eig(square)
    residuals = np.abs(H[m, m - 1]) * np.abs(eigvecs[m - 1, :])
    order = np.argsort(-np.abs(eigvals))
    return CaArnoldiResult(
        ritz_values=eigvals[order],
        hessenberg=H,
        residuals=residuals[order],
        timers=dict(ctx.timers),
        counters=ctx.counters.snapshot(),
    )
