"""Communication-Avoiding GMRES — CA-GMRES(s, m), Fig. 2 of the paper.

Each restart cycle generates the ``m+1``-vector basis in blocks of ``s``:

1. **MPK** produces ``s`` new candidate vectors from the last orthonormal
   basis vector with a single communication phase (monomial or Newton
   basis with Leja-ordered shifts);
2. **BOrth** projects the candidates against the previous basis (block CGS
   or MGS);
3. **TSQR** orthonormalizes the panel (MGS / CGS / CholQR / SVQR / CAQR,
   optionally twice — the paper's "2x" configurations).

Hessenberg recovery
-------------------
Let block ``c`` start at orthonormal column ``j``.  MPK's output satisfies
the Krylov relation ``A [q_j, w_1 … w_{s-1}] = [q_j, w_1 … w_s] B_c`` with
``B_c`` the change-of-basis matrix, and orthogonalization expresses the raw
vectors in the Q basis: ``w_i = Q C[:, i] + Q_new R[:, i]``.  Collecting the
coefficient columns ``E_c = [e_j | cycle-R̲ columns]``, the cycle satisfies

    A Q S = Q G,   with  S = [… E_c[:, 0:s_c] …],  G = [… E_c B_c …],

so ``H̲ = G S_m^{-1}`` is the (t+1) x t upper Hessenberg matrix of the
cycle (S_m is upper triangular with TSQR's positive diagonal).  The
least-squares problem ``min_z ||β e_1 - H̲ z||`` is then solved exactly as
in standard GMRES, and ``x += Q_{1:t} z``.

Breakdowns: CholQR fails (Cholesky of a numerically indefinite Gram matrix)
when the MPK basis is too ill-conditioned; by default the affected block
falls back to unconditionally stable CAQR and the event is counted
(``SolveResult.breakdowns``), which is the adaptive behavior the paper lists
as future work.  ``on_breakdown="raise"`` reproduces the paper's hard
failure mode instead.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import scipy.linalg

from ..dist.matrix import DistributedMatrix
from ..dist.multivector import DistMultiVector, DistVector
from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..mpk.matrix_powers import MatrixPowersKernel
from ..mpk.shifts import ShiftOp, monomial_shift_ops, newton_shift_ops
from ..order.partition import Partition, block_row_partition
from ..orth.borth import borth
from ..orth.errors import CholeskyBreakdown
from ..orth.tsqr import tsqr
from ..orth.errors import (
    elementwise_error,
    factorization_error,
    orthogonality_error,
)
from ..sparse.csr import CsrMatrix
from .balance import balance_matrix
from .basis import build_change_of_basis, ritz_values
from .convergence import ConvergenceHistory, SolveResult
from .degrade import DegradationManager, DegradePolicy
from .gmres import (
    checked_true_residual,
    compute_residual,
    gathered_solution,
    normalize_first_column,
    run_gmres_cycle,
    update_solution,
)
from .lsq import hessenberg_lstsq
from .resilience import (
    MAX_PANEL_RETRIES,
    RECOVERABLE_FAULTS,
    guard_finite,
    run_cycle_resilient,
)

__all__ = ["ca_gmres", "CaGmresRun"]


class CaGmresRun:
    """One CA-GMRES(s, m) solve as a resumable object.

    The historical :func:`ca_gmres` driver is ``CaGmresRun(...).result()``.
    The object form exists for the serving layer (:mod:`repro.serve`):
    :meth:`step` advances the solve by exactly one restart cycle, so a
    batched frontend can interleave the restart cycles of many right-hand
    sides on one context, and a prebuilt structural ``plan`` (see
    :class:`repro.serve.plan.StructuralPlan`) lets repeated solves against
    the same matrix reuse the ordering, partition, distributed matrix, MPK
    dependency closure, and exchange index sets instead of recomputing them
    per solve.  Numerics are unaffected: a plan-driven solve is
    bit-identical to a cold one.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        b: np.ndarray,
        ctx: MultiGpuContext | None = None,
        n_gpus: int = 1,
        partition: Partition | None = None,
        s: int = 15,
        m: int = 60,
        basis: str = "newton",
        tsqr_method: str = "cholqr",
        tsqr_variant: str | None = None,
        borth_method: str = "cgs",
        reorth: int = 1,
        use_mpk: bool = True,
        tol: float = 1e-4,
        max_restarts: int = 500,
        balance: bool = True,
        x0: np.ndarray | None = None,
        on_breakdown: str = "fallback",
        collect_tsqr_errors: bool = False,
        adaptive_s: bool = False,
        preconditioner=None,
        max_panel_retries: int = MAX_PANEL_RETRIES,
        degrade: DegradePolicy | None = None,
        deadline: float | None = None,
        plan=None,
        on_cycle=None,
    ):
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("ca_gmres requires a square matrix")
        n = matrix.n_rows
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        if b.size and not np.all(np.isfinite(b)):
            raise ValueError("b contains non-finite entries")
        if not 1 <= s <= m:
            raise ValueError(f"need 1 <= s <= m, got s={s}, m={m}")
        if m > n:
            raise ValueError(f"restart length m={m} exceeds problem size {n}")
        if basis not in ("newton", "monomial"):
            raise ValueError(f"unknown basis {basis!r}")
        if on_breakdown not in ("fallback", "raise"):
            raise ValueError(f"unknown on_breakdown {on_breakdown!r}")
        if ctx is None:
            ctx = MultiGpuContext(n_gpus)
        elif ctx.inactive_devices:
            # A previous degraded solve left the roster shrunken; restore the
            # full device set (and pristine fault state) before partitioning.
            ctx.reset_clocks()
        self.ctx = ctx
        self.plan = plan
        self.s = int(s)
        self.m = int(m)
        self.basis = basis
        self.tsqr_method = tsqr_method
        self.tsqr_variant = tsqr_variant
        self.borth_method = borth_method
        self.reorth = reorth
        self.use_mpk = use_mpk
        self.max_restarts = int(max_restarts)
        self.on_breakdown = on_breakdown
        self.collect_tsqr_errors = collect_tsqr_errors
        self.max_panel_retries = max_panel_retries
        self._mpk_lengths = sorted({self.s, self.m % self.s} - {0})

        if plan is not None:
            if partition is not None:
                raise ValueError("pass either plan= or partition=, not both")
            if plan.V.n_cols != m + 1:
                raise ValueError(
                    f"plan was built for m={plan.V.n_cols - 1}, solve requested m={m}"
                )
            partition = plan.partition
            if partition.n_parts != ctx.n_gpus:
                raise ValueError("plan partition does not match the active roster")
            preconditioner = plan.preconditioner
            bal = plan.bal
            A_solve = plan.operator
        else:
            if partition is None:
                partition = block_row_partition(n, ctx.n_gpus)
            A_pre = preconditioner.fold(matrix) if preconditioner is not None else matrix
            bal = balance_matrix(A_pre) if balance else None
            A_solve = bal.matrix if bal is not None else A_pre
        b_solve = bal.scale_rhs(b) if bal is not None else b
        self.preconditioner = preconditioner
        self.bal = bal
        self.A_solve = A_solve
        self.b_solve = b_solve

        # Mutable solver state: the cycle closures and the degraded-mode
        # rebuild both go through it, so a repartition swaps every
        # distributed object at once and replayed cycles pick up the
        # rebuilt versions.  ``st.mpk`` maps block length -> kernel; it is
        # the plan's (shared, persistent) dict on warm runs.
        self.st = st = SimpleNamespace(
            partition=partition,
            dmat=plan.dmat if plan is not None else DistributedMatrix(ctx, A_solve, partition),
            V=plan.V if plan is not None else DistMultiVector(ctx, partition, m + 1),
            x=DistVector(ctx, partition),
            b=DistVector.from_host(ctx, partition, b_solve),
            mpk=plan.mpk if plan is not None else {},
        )
        if x0 is not None:
            if preconditioner is not None:
                raise ValueError("x0 with a preconditioner is not supported")
            start = (x0 / bal.col_scale) if bal is not None else x0
            st.x.set_from_host(np.asarray(start, dtype=np.float64))

        if use_mpk:
            for length in self._mpk_lengths:
                self._get_mpk(length)

        ctx.reset_clocks()
        ctx.counters.reset()

        self.degrader = None
        if degrade is not None or deadline is not None:
            self.degrader = DegradationManager(
                ctx, A_solve, self._rebuild, policy=degrade, deadline=deadline
            )

        history = ConvergenceHistory()
        r0 = b_solve - A_solve.matvec(gathered_solution(st.x))
        history.initial_residual = float(np.linalg.norm(r0))
        self.history = history
        self.shifts: np.ndarray | None = None
        self.converged = False
        self.restarts = 0
        self.iterations = 0
        self.on_cycle = on_cycle
        self.breakdowns = 0
        self.tsqr_errors: list[dict] = []
        self.unrecovered: list[dict] = []
        self.adapt_state = {"s_eff": s, "history": []} if adaptive_s else None
        self.abs_tol = tol * history.initial_residual
        # Already at (numerical) convergence: a relative criterion on a zero
        # residual would be meaningless.  The documented details keys must be
        # present on this path too, or collect_tsqr_errors / adaptive_s
        # callers hit KeyError on an already-converged right-hand side.
        floor = 100.0 * np.finfo(np.float64).eps * float(np.linalg.norm(b_solve))
        if history.initial_residual <= floor:
            self.converged = True
            self._gen = None
        else:
            self._gen = self._cycle_iter()
        self._result: SolveResult | None = None

    # ------------------------------------------------------------------
    def _get_mpk(self, length: int) -> MatrixPowersKernel:
        """Matrix powers kernel for one block length (cached per partition)."""
        mpk = self.st.mpk
        if length not in mpk:
            mpk[length] = MatrixPowersKernel(
                self.ctx, self.A_solve, self.st.partition, length
            )
        return mpk[length]

    def _rebuild(self, new_partition, x_host):
        """Degraded-mode rebuild of the distributed state over survivors.

        MPK plans are invalidated — the halo/ghost structure is
        partition-specific.  With a structural plan attached, the rebuild
        is routed through the plan cache instead (the dead roster's
        entries are invalidated; the survivor roster's entries are built
        or reused).
        """
        ctx, st = self.ctx, self.st
        st.partition = new_partition
        if self.plan is not None:
            sub = self.plan.derive(
                new_partition,
                mpk_lengths=self._mpk_lengths if self.use_mpk else (),
            )
            st.dmat = sub.dmat
            st.V = sub.V
            st.mpk = sub.mpk
            st.b = DistVector.from_host(ctx, new_partition, self.b_solve)
            st.x = DistVector.from_host(ctx, new_partition, x_host)
            return st.x
        st.dmat = DistributedMatrix(ctx, self.A_solve, new_partition)
        st.V = DistMultiVector(ctx, new_partition, self.m + 1)
        st.b = DistVector.from_host(ctx, new_partition, self.b_solve)
        st.x = DistVector.from_host(ctx, new_partition, x_host)
        st.mpk = {}
        if self.use_mpk:
            for length in self._mpk_lengths:
                self._get_mpk(length)
        return st.x

    @property
    def finished(self) -> bool:
        """True once the restart loop has terminated."""
        return self._gen is None

    def step(self) -> bool:
        """Advance by one restart cycle; False once the solve is finished."""
        if self._gen is None:
            return False
        try:
            next(self._gen)
        except StopIteration:
            self._gen = None
            return False
        return True

    def _cycle_iter(self):
        ctx, st = self.ctx, self.st
        for _ in range(self.max_restarts):
            if self.degrader is not None and self.degrader.deadline_reached():
                return
            ctx.mark_cycle()
            cycle_start = ctx.current_time()
            if self.basis == "newton" and self.shifts is None:
                # Shift-seeding cycle: standard GMRES, Ritz values from its H.
                def cycle(offset=self.iterations):
                    info = run_gmres_cycle(
                        ctx, st.dmat, st.V, st.x, st.b, self.m, self.abs_tol,
                        history=self.history, iteration_offset=offset,
                    )
                    return info, checked_true_residual(
                        ctx, self.A_solve, self.b_solve, st.x
                    )

                outcome, aborted = run_cycle_resilient(
                    ctx, cycle, st.x, self.history, self.unrecovered,
                    degrader=self.degrader,
                )
                if aborted:
                    return
                info, true_res = outcome
                if info.iterations > 0:
                    square = info.hessenberg[: info.iterations, : info.iterations]
                    ctx.host.charge_small_dense("eig", info.iterations)
                    self.shifts = ritz_values(square)
                else:
                    self.shifts = np.empty(0, dtype=np.complex128)
                self.restarts += 1
                self.iterations += info.iterations
            else:
                def cycle(offset=self.iterations, restart_index=self.restarts):
                    result = _ca_cycle(
                        ctx, st.dmat, st.V, st.x, st.b, self.s, self.m,
                        self.basis, self.shifts, self.tsqr_method,
                        self.tsqr_variant, self.borth_method, self.reorth,
                        self.use_mpk, self._get_mpk, self.abs_tol,
                        self.history, offset, self.on_breakdown,
                        self.collect_tsqr_errors, self.tsqr_errors,
                        restart_index, self.adapt_state,
                        self.max_panel_retries,
                    )
                    return result, checked_true_residual(
                        ctx, self.A_solve, self.b_solve, st.x
                    )

                outcome, aborted = run_cycle_resilient(
                    ctx, cycle, st.x, self.history, self.unrecovered,
                    degrader=self.degrader,
                )
                if aborted:
                    return
                (cycle_iters, cycle_breakdowns), true_res = outcome
                self.restarts += 1
                self.iterations += cycle_iters
                self.breakdowns += cycle_breakdowns
            if self.on_cycle is not None:
                self.on_cycle(self.restarts - 1, cycle_start, ctx.current_time())
            self.history.record_true(self.iterations, true_res)
            if true_res <= self.abs_tol:
                self.converged = True
                return
            yield

    def result(self) -> SolveResult:
        """Run any remaining cycles and return the (cached) final result."""
        while self.step():
            pass
        if self._result is None:
            details: dict = {}
            if self.collect_tsqr_errors:
                details["tsqr_errors"] = self.tsqr_errors
            if self.adapt_state is not None:
                details["s_history"] = self.adapt_state["history"]
            self._result = _finish(
                self.ctx, self.st.x, self.bal, self.converged, self.restarts,
                self.iterations, self.history, self.breakdowns, details,
                self.preconditioner, self.unrecovered, degrader=self.degrader,
            )
        return self._result


def ca_gmres(
    matrix: CsrMatrix,
    b: np.ndarray,
    ctx: MultiGpuContext | None = None,
    n_gpus: int = 1,
    partition: Partition | None = None,
    s: int = 15,
    m: int = 60,
    basis: str = "newton",
    tsqr_method: str = "cholqr",
    tsqr_variant: str | None = None,
    borth_method: str = "cgs",
    reorth: int = 1,
    use_mpk: bool = True,
    tol: float = 1e-4,
    max_restarts: int = 500,
    balance: bool = True,
    x0: np.ndarray | None = None,
    on_breakdown: str = "fallback",
    collect_tsqr_errors: bool = False,
    adaptive_s: bool = False,
    preconditioner=None,
    max_panel_retries: int = MAX_PANEL_RETRIES,
    degrade: DegradePolicy | None = None,
    deadline: float | None = None,
    plan=None,
    on_cycle=None,
) -> SolveResult:
    """Solve ``A x = b`` with CA-GMRES(s, m) on simulated GPUs.

    Parameters
    ----------
    matrix, b, ctx, n_gpus, partition, tol, max_restarts, balance, x0
        As in :func:`repro.core.gmres.gmres`.
    s
        Basis vectors generated per communication phase (1 <= s <= m).
    m
        Restart length.
    basis
        ``"newton"`` (Leja-ordered Ritz shifts; the first restart runs
        standard GMRES to obtain them, per Section IV-A) or ``"monomial"``.
    tsqr_method, tsqr_variant
        Intra-block factorization (``cholqr``/``svqr``/``cgs``/``mgs``/
        ``caqr``) and its device-kernel variant.
    borth_method
        Inter-block projection (``"cgs"`` — the paper's choice — or
        ``"mgs"``).
    reorth
        Orthogonalization passes (2 = the paper's "2x" rows).
    use_mpk
        Generate candidates with the matrix powers kernel; ``False`` uses
        ``s`` plain SpMVs (what Fig. 15 falls back to when MPK is slower).
    on_breakdown
        ``"fallback"`` (retry the failing block's TSQR with CAQR) or
        ``"raise"``.
    collect_tsqr_errors
        Record per-TSQR orthogonality / factorization / element-wise errors
        (Fig. 13) into ``result.details["tsqr_errors"]``.
    adaptive_s
        The adaptive step-size scheme the paper lists as future work
        (Section VII, their ref. [23]): monitor the conditioning of each
        block's R factor; halve the working ``s`` when the basis degrades
        (diag-ratio > 1e10) and grow it back toward the requested ``s``
        while the basis stays healthy.  The chosen block lengths are
        recorded in ``result.details["s_history"]``.
    preconditioner
        Optional right preconditioner with ``fold(A)`` / ``recover(y)``
        methods (see :mod:`repro.precond`).  Because the preconditioner is
        *folded* into the operator up front, MPK/BOrth/TSQR run unchanged —
        the CA-compatible preconditioning route.
    max_panel_retries
        With fault resilience enabled (see
        :class:`~repro.gpu.context.MultiGpuContext`), how many times one
        poisoned block is regenerated (MPK rerun + re-orthogonalization)
        before escalating to a restart-cycle redo.
    degrade
        Optional :class:`~repro.core.degrade.DegradePolicy`: a device
        dropout mid-solve is absorbed by repartitioning over the
        survivors (MPK plans are rebuilt for the new halo structure) and
        resuming instead of aborting (see :mod:`repro.core.degrade`).
    deadline
        Optional simulated-time budget in seconds; the solve stops at the
        first restart boundary past it (``details["degradation"]``
        records the trip).
    plan
        Optional prebuilt :class:`repro.serve.plan.StructuralPlan` for this
        matrix/context: ordering, partition, distributed matrix, MPK
        dependency closure, and staged-exchange index sets are reused
        instead of recomputed.  Mutually exclusive with ``partition``;
        ``balance`` and ``preconditioner`` are taken from the plan.
    on_cycle
        Optional per-cycle callback ``on_cycle(index, start, end)``
        invoked after every completed restart cycle (including a Newton
        shift-seeding cycle) with the cycle index and its simulated
        start/end times — the hook behind the
        ``repro_solver_cycle_seconds`` metric (see
        :func:`repro.metrics.collect.cycle_observer`).  Not called for a
        cycle aborted by an unrecoverable fault.

    Returns
    -------
    SolveResult
    """
    return CaGmresRun(
        matrix, b, ctx=ctx, n_gpus=n_gpus, partition=partition, s=s, m=m,
        basis=basis, tsqr_method=tsqr_method, tsqr_variant=tsqr_variant,
        borth_method=borth_method, reorth=reorth, use_mpk=use_mpk, tol=tol,
        max_restarts=max_restarts, balance=balance, x0=x0,
        on_breakdown=on_breakdown, collect_tsqr_errors=collect_tsqr_errors,
        adaptive_s=adaptive_s, preconditioner=preconditioner,
        max_panel_retries=max_panel_retries, degrade=degrade,
        deadline=deadline, plan=plan, on_cycle=on_cycle,
    ).result()


def _ca_cycle(
    ctx, dmat, V, x, b_dist, s, m, basis, shifts,
    tsqr_method, tsqr_variant, borth_method, reorth,
    use_mpk, get_mpk, abs_tol, history, iteration_offset,
    on_breakdown, collect_errors, error_log, restart_index,
    adapt_state=None, max_panel_retries=MAX_PANEL_RETRIES,
) -> tuple[int, int]:
    """One CA-GMRES restart cycle; returns (iterations, breakdowns)."""
    with ctx.region("spmv"):
        beta = compute_residual(ctx, dmat, x, b_dist, V)
    guard_finite(ctx, beta, "cycle residual norm")
    if beta == 0.0:
        return 0, 0
    with ctx.region("borth"):
        normalize_first_column(ctx, V, beta)

    n_cols = m + 1
    R_bar = np.zeros((n_cols, n_cols), dtype=np.float64)
    R_bar[0, 0] = 1.0
    S_full = np.zeros((n_cols, m), dtype=np.float64)
    G_full = np.zeros((n_cols, m), dtype=np.float64)
    breakdowns = 0
    j = 0
    t = 1  # orthonormal columns available
    while j < m:
        s_block = adapt_state["s_eff"] if adapt_state is not None else s
        s_cur = min(s_block, m - j)
        ops = _block_shift_ops(basis, shifts, s_cur)
        # Candidate generation + orthogonalization, as one recoverable
        # unit: a fault detected anywhere in the block (corrupted MPK
        # exchange, poisoned kernel output caught by the BOrth/TSQR
        # guards) regenerates the candidates from the still-clean
        # V[:, :j+1] and re-orthogonalizes — the "panel retry" layer.
        panel_attempts = 0
        while True:
            try:
                if use_mpk:
                    with ctx.region("mpk"):
                        get_mpk(s_cur).run(V, j, ops)
                else:
                    with ctx.region("spmv"):
                        _spmv_block(ctx, dmat, V, j, ops)
                C, R, block_breakdowns = _orthogonalize(
                    ctx, V, j, s_cur, tsqr_method, tsqr_variant, borth_method,
                    reorth, on_breakdown, collect_errors, error_log,
                    restart_index,
                )
                break
            except RECOVERABLE_FAULTS:
                if panel_attempts >= max_panel_retries:
                    raise  # escalate to the cycle-redo layer
                panel_attempts += 1
                ctx.faults.note_recovery(
                    "panel-retry", time=ctx.current_time(),
                    block_start=j, attempt=panel_attempts,
                )
        breakdowns += block_breakdowns
        if adapt_state is not None:
            _adapt_block_length(adapt_state, R, s, s_cur, block_breakdowns)
        R_bar[: j + 1, j + 1 : j + s_cur + 1] = C
        R_bar[j + 1 : j + s_cur + 1, j + 1 : j + s_cur + 1] = R
        # --- Hessenberg recovery for this block ------------------------
        B_c = build_change_of_basis(ops)
        E = np.zeros((n_cols, s_cur + 1), dtype=np.float64)
        E[j, 0] = 1.0
        E[:, 1:] = R_bar[:, j + 1 : j + s_cur + 1]
        S_full[:, j : j + s_cur] = E[:, :s_cur]
        G_full[:, j : j + s_cur] = E @ B_c
        j += s_cur
        t = j + 1
        # --- residual estimate (host small-dense work) ------------------
        with ctx.region("lsq"):
            ctx.host.charge_small_dense("lstsq_hessenberg", t)
            H_t = _recover_hessenberg(S_full, G_full, t)
            _, estimate = hessenberg_lstsq(H_t, beta)
        history.record_estimate(iteration_offset + j, estimate)
        if estimate <= abs_tol:
            break
    # --- solution update ---------------------------------------------
    with ctx.region("update"):
        H_t = _recover_hessenberg(S_full, G_full, t)
        z, _ = hessenberg_lstsq(H_t, beta)
        ctx.host.charge_small_dense("trsv", t - 1)
        update_solution(ctx, V, x, z)
    return j, breakdowns


def _adapt_block_length(adapt_state, R, s_max, s_used, block_breakdowns) -> None:
    """Adjust the working block length from the block's R conditioning.

    The ratio of extreme R diagonals is a cheap lower bound on kappa of the
    projected basis: above 1e10 (or after a breakdown) the next block is
    halved; below 1e4 it grows by 50% back toward the requested ``s``.
    """
    diag = np.abs(np.diag(R))
    ratio = float(diag.max() / max(diag.min(), 1e-300)) if diag.size else 1.0
    s_eff = adapt_state["s_eff"]
    if block_breakdowns or ratio > 1e10:
        s_eff = max(2, s_used // 2)
    elif ratio < 1e4:
        s_eff = min(s_max, max(s_eff, int(np.ceil(1.5 * s_used))))
    adapt_state["s_eff"] = s_eff
    adapt_state["history"].append({"s_used": s_used, "diag_ratio": ratio})


def _block_shift_ops(basis: str, shifts, s_cur: int) -> list[ShiftOp]:
    if basis == "monomial" or shifts is None or len(shifts) == 0:
        return monomial_shift_ops(s_cur)
    return newton_shift_ops(shifts, s_cur)


def _spmv_block(ctx, dmat, V, j, ops: list[ShiftOp]) -> None:
    """Generate a block with plain SpMVs + shift updates (MPK disabled)."""
    for k, op in enumerate(ops, start=1):
        dmat.spmv(V, j + k - 1, V, j + k)
        new = V.column(j + k)
        cur = V.column(j + k - 1)
        if op.kind in ("real", "complex_first", "complex_second"):
            for cn, cc in zip(new, cur):
                blas.axpy(-op.re, cc, cn)
        if op.kind == "complex_second":
            prev = V.column(j + k - 2)
            for cn, cp in zip(new, prev):
                blas.axpy(op.im**2, cp, cn)


def _orthogonalize(
    ctx, V, j, s_cur, tsqr_method, tsqr_variant, borth_method,
    reorth, on_breakdown, collect_errors, error_log, restart_index,
):
    """BOrth + TSQR (with reorthogonalization) on block [j+1, j+s_cur+1).

    Returns (C, R, breakdowns) with ``W_raw = Q_prev C + Q_new R``.
    """
    v_panels = V.panel(j + 1, j + s_cur + 1)
    q_panels = V.panel(0, j + 1)
    C_total = np.zeros((j + 1, s_cur), dtype=np.float64)
    R_total = np.eye(s_cur, dtype=np.float64)
    breakdowns = 0
    check = ctx.resilience_enabled
    for _ in range(max(reorth, 1)):
        with ctx.region("borth"):
            C_pass = borth(ctx, q_panels, v_panels, method=borth_method)
        guard_finite(ctx, C_pass, "BOrth coefficients")
        if collect_errors:
            pre = _gather_panel(V, j + 1, j + s_cur + 1)
        with ctx.region("tsqr"):
            try:
                R_pass = tsqr(
                    ctx, v_panels, method=tsqr_method, variant=tsqr_variant,
                    check_finite=check,
                )
            except CholeskyBreakdown:
                if on_breakdown == "raise":
                    raise
                breakdowns += 1
                R_pass = tsqr(ctx, v_panels, method="caqr", check_finite=check)
        if collect_errors:
            post = _gather_panel(V, j + 1, j + s_cur + 1)
            error_log.append(
                {
                    "restart": restart_index,
                    "block_start": j,
                    "orthogonality": orthogonality_error(post),
                    "factorization": factorization_error(pre, post, R_pass),
                    "elementwise": elementwise_error(pre, post, R_pass),
                }
            )
        C_total = C_total + C_pass @ R_total
        R_total = R_pass @ R_total
    return C_total, np.triu(R_total), breakdowns


def _gather_panel(V, j0, j1) -> np.ndarray:
    """Uncosted host copy of a panel (diagnostics only)."""
    out = np.empty((V.n_rows, j1 - j0), dtype=np.float64)
    for d in range(V.ctx.n_gpus):
        rows = V.partition.rows_of(d)
        out[rows] = V.local[d].data[:, j0:j1]
    return out


def _recover_hessenberg(S_full, G_full, t: int) -> np.ndarray:
    """``H̲ = G S_m^{-1}`` for the first ``t`` orthonormal columns."""
    S_m = S_full[: t - 1, : t - 1]
    G = G_full[:t, : t - 1]
    # Right-division by the upper-triangular S_m.
    H = scipy.linalg.solve_triangular(
        S_m.T, G.T, lower=True, check_finite=False
    ).T
    return H


def _finish(
    ctx, x, bal, converged, restarts, iterations, history, breakdowns,
    details, preconditioner=None, unrecovered=None, degrader=None,
):
    x_host = gathered_solution(x)
    if bal is not None:
        x_host = bal.unscale_solution(x_host)
    if preconditioner is not None:
        x_host = preconditioner.recover(x_host)
    details = dict(details)
    details["profile"] = ctx.trace.profile()
    if ctx.faults.has_activity() or unrecovered:
        details["faults"] = ctx.faults.report(unrecovered)
    if degrader is not None:
        details["degradation"] = degrader.report()
    return SolveResult(
        x=x_host,
        converged=converged,
        n_restarts=restarts,
        n_iterations=iterations,
        history=history,
        timers=dict(ctx.timers),
        counters=ctx.counters.snapshot(),
        breakdowns=breakdowns,
        details=details,
    )
