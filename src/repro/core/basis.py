"""Krylov basis bookkeeping: change-of-basis matrices and Ritz values.

A block of MPK output satisfies the *Krylov relation*

.. math:: A\\,[\\,q_j, w_1, \\ldots, w_{s-1}\\,] = [\\,q_j, w_1, \\ldots, w_s\\,]\\,B

with ``B`` the ``(s+1) x s`` change-of-basis matrix determined by the shift
operations:

* monomial (``none``): ``B`` has ones on the subdiagonal only;
* real shift θ:         ``B[k, k] = θ``, ``B[k+1, k] = 1``;
* complex pair (θ, θ̄) in real arithmetic (Hoemmen §7.3.2):
  step 1 like a real shift with Re θ; step 2 additionally has
  ``B[k-1, k] = -(Im θ)^2`` since
  ``A v_k = v_{k+1} + Re θ · v_k - (Im θ)^2 · v_{k-1}``.

CA-GMRES recovers the true Hessenberg matrix from these blocks plus the
orthogonalization coefficients (see :mod:`repro.core.ca_gmres`).
"""

from __future__ import annotations

import numpy as np

from ..mpk.shifts import (  # re-exported for convenience
    ShiftOp,
    leja_order,
    modified_leja_order,
    monomial_shift_ops,
    newton_shift_ops,
)

__all__ = [
    "ShiftOp",
    "leja_order",
    "modified_leja_order",
    "monomial_shift_ops",
    "newton_shift_ops",
    "build_change_of_basis",
    "ritz_values",
]


def build_change_of_basis(ops: list[ShiftOp]) -> np.ndarray:
    """The ``(s+1) x s`` change-of-basis matrix for a shift sequence."""
    s = len(ops)
    if s < 1:
        raise ValueError("need at least one shift operation")
    B = np.zeros((s + 1, s), dtype=np.float64)
    for k, op in enumerate(ops):
        B[k + 1, k] = 1.0
        if op.kind in ("real", "complex_first", "complex_second"):
            B[k, k] = op.re
        if op.kind == "complex_second":
            if k == 0:
                raise ValueError("complex_second cannot be the first operation")
            B[k - 1, k] = -(op.im**2)
    return B


def ritz_values(H: np.ndarray) -> np.ndarray:
    """Eigenvalues of the (square) Hessenberg matrix from a GMRES cycle.

    These approximate extreme eigenvalues of ``A`` and provide the Newton
    shifts for subsequent CA-GMRES cycles [17].
    """
    H = np.asarray(H, dtype=np.float64)
    if H.ndim != 2 or H.shape[0] != H.shape[1]:
        raise ValueError(f"H must be square, got {H.shape}")
    if H.shape[0] == 0:
        return np.empty(0, dtype=np.complex128)
    return np.linalg.eigvals(H)
