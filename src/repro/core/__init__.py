"""The paper's primary contribution: GMRES and CA-GMRES on multiple GPUs.

* :mod:`~repro.core.gmres` — standard restarted GMRES(m) (Fig. 1), the
  baseline all speedups are measured against;
* :mod:`~repro.core.ca_gmres` — CA-GMRES(s, m) (Fig. 2): MPK + BOrth + TSQR
  generate and orthogonalize ``s`` basis vectors per communication phase;
* :mod:`~repro.core.basis` — change-of-basis matrices, Ritz values, Newton
  shifts (re-exporting the Leja machinery from :mod:`repro.mpk.shifts`);
* :mod:`~repro.core.lsq` — Givens-rotation least squares for the upper
  Hessenberg problem;
* :mod:`~repro.core.balance` — the row-then-column norm balancing the paper
  applies before iterating;
* :mod:`~repro.core.convergence` — results, histories, and stopping logic;
* :mod:`~repro.core.degrade` — degraded-mode recovery: survive device loss
  by repartitioning over the survivors, with deadlines and a watchdog.
"""

from .arnoldi import host_arnoldi, host_ritz_values
from .balance import BalanceResult, balance_matrix
from .basis import build_change_of_basis, ritz_values
from .convergence import ConvergenceHistory, SolveResult
from .degrade import DegradationManager, DegradePolicy, derive_partition
from .lsq import GivensHessenbergSolver, hessenberg_lstsq
from .gmres import gmres
from .ca_gmres import ca_gmres
from .pipelined import pipelined_gmres
from .eigen import CaArnoldiResult, ca_arnoldi_eigs

__all__ = [
    "DegradationManager",
    "DegradePolicy",
    "derive_partition",
    "host_arnoldi",
    "host_ritz_values",
    "BalanceResult",
    "balance_matrix",
    "build_change_of_basis",
    "ritz_values",
    "ConvergenceHistory",
    "SolveResult",
    "GivensHessenbergSolver",
    "hessenberg_lstsq",
    "gmres",
    "ca_gmres",
    "pipelined_gmres",
    "CaArnoldiResult",
    "ca_arnoldi_eigs",
]
