"""Standard restarted GMRES(m) on multiple (simulated) GPUs — Fig. 1.

Per iteration: one distributed SpMV (with halo exchange) and one
orthogonalization of the new vector against the basis (MGS or CGS, the
configurations of the paper's Fig. 3 / Fig. 14 GMRES rows).  The small
Hessenberg least-squares problem is solved on the CPU with incremental
Givens rotations.

This is the baseline every CA-GMRES speedup in the paper is measured
against; :func:`run_gmres_cycle` is also reused by CA-GMRES for its first
(shift-seeding) restart cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from ..dist.matrix import DistributedMatrix
from ..dist.multivector import DistMultiVector, DistVector
from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..order.partition import Partition, block_row_partition
from ..orth.single import orthogonalize_vector
from ..sparse.csr import CsrMatrix
from .balance import balance_matrix
from .convergence import ConvergenceHistory, SolveResult
from .degrade import DegradationManager, DegradePolicy
from .lsq import GivensHessenbergSolver
from .resilience import guard_finite, run_cycle_resilient

__all__ = ["gmres", "GmresRun", "run_gmres_cycle", "CycleInfo", "checked_true_residual"]


@dataclass
class CycleInfo:
    """Outcome of one restart cycle."""

    beta: float  # initial residual norm of the cycle
    iterations: int  # basis vectors generated (columns of H)
    hessenberg: np.ndarray  # (iterations+1) x iterations
    estimate: float  # final least-squares residual estimate


def compute_residual(
    ctx: MultiGpuContext,
    dmat: DistributedMatrix,
    x: DistVector,
    b: DistVector,
    V: DistMultiVector,
) -> float:
    """``V[:, 0] := b - A x``; returns ``||r||_2`` (not yet normalized)."""
    dmat.spmv(x, 0, V, 0)
    r_parts = V.column(0)
    for rp, bp in zip(r_parts, b.parts()):
        blas.scal(-1.0, rp)
        blas.axpy(1.0, bp, rp)
    partials = [blas.nrm2(rp) for rp in r_parts]
    return float(np.sqrt(ctx.allreduce_sum(partials)[0]))


def normalize_first_column(ctx: MultiGpuContext, V: DistMultiVector, beta: float) -> None:
    """``V[:, 0] /= beta`` (broadcast the scale as the paper's code does)."""
    if beta == 0.0:
        raise ZeroDivisionError("cannot normalize a zero residual")
    for bcast, rp in zip(ctx.broadcast(np.array([beta])), V.column(0)):
        blas.scal(1.0 / float(bcast.data[0]), rp)


def update_solution(
    ctx: MultiGpuContext,
    V: DistMultiVector,
    x: DistVector,
    y: np.ndarray,
) -> None:
    """``x += V[:, :len(y)] @ y`` with one broadcast + one GEMV per device."""
    t = y.size
    if t == 0:
        return
    for bcast, (panel, xp) in zip(
        ctx.broadcast(-np.asarray(y, dtype=np.float64)),
        zip(V.panel(0, t), x.parts()),
    ):
        blas.gemv_n_update(panel, bcast, xp)  # x -= V @ (-y)


def gathered_solution(x: DistVector) -> np.ndarray:
    """Read the distributed solution without charging transfers (diagnostic)."""
    out = np.empty(x.n_rows, dtype=np.float64)
    for d in range(x.ctx.n_gpus):
        out[x.partition.rows_of(d)] = x.parts()[d].data
    return out


def checked_true_residual(ctx, A_solve, b_solve, x) -> float:
    """True residual norm at a restart boundary (uncosted diagnostic).

    With resilience enabled, a non-finite value — a poisoned solution
    update — raises for the cycle-redo machinery.
    """
    true_res = float(np.linalg.norm(b_solve - A_solve.matvec(gathered_solution(x))))
    guard_finite(ctx, true_res, "true residual")
    return true_res


def run_gmres_cycle(
    ctx: MultiGpuContext,
    dmat: DistributedMatrix,
    V: DistMultiVector,
    x: DistVector,
    b: DistVector,
    m: int,
    abs_tol: float,
    orth_method: str = "cgs",
    gemv_variant: str = "magma",
    history: ConvergenceHistory | None = None,
    iteration_offset: int = 0,
) -> CycleInfo:
    """One GMRES(m) restart cycle (residual through solution update).

    Returns the cycle's Hessenberg matrix so callers (CA-GMRES) can extract
    Ritz values for Newton shifts.
    """
    with ctx.region("spmv"):
        beta = compute_residual(ctx, dmat, x, b, V)
    guard_finite(ctx, beta, "cycle residual norm")
    if beta == 0.0:
        return CycleInfo(beta=0.0, iterations=0, hessenberg=np.zeros((1, 0)), estimate=0.0)
    with ctx.region("orth"):
        normalize_first_column(ctx, V, beta)
    solver = GivensHessenbergSolver(m, beta)
    H = np.zeros((m + 1, m), dtype=np.float64)
    j_used = 0
    estimate = beta
    for j in range(m):
        with ctx.region("spmv"):
            dmat.spmv(V, j, V, j + 1)
        with ctx.region("orth"):
            h = orthogonalize_vector(
                ctx,
                V.panel(0, j + 1),
                V.column(j + 1),
                method=orth_method,
                gemv_variant=gemv_variant,
            )
        guard_finite(ctx, h, "Hessenberg column")
        H[: j + 2, j] = h
        with ctx.region("lsq"):
            ctx.host.charge_small_dense("lstsq_hessenberg", j + 1)
            estimate = solver.append_column(h)
        j_used = j + 1
        if history is not None:
            history.record_estimate(iteration_offset + j_used, estimate)
        if estimate <= abs_tol:
            break
    with ctx.region("update"):
        y = solver.solve()
        ctx.host.charge_small_dense("trsv", j_used)
        update_solution(ctx, V, x, y)
    return CycleInfo(
        beta=beta,
        iterations=j_used,
        hessenberg=H[: j_used + 1, :j_used],
        estimate=estimate,
    )


class GmresRun:
    """One restarted-GMRES solve as a resumable object.

    The historical :func:`gmres` driver is ``GmresRun(...).result()``.  The
    object form exists for the serving layer (:mod:`repro.serve`): a
    :meth:`step` advances the solve by exactly one restart cycle, so a
    batched frontend can interleave the restart cycles of many right-hand
    sides on one context, and a prebuilt structural ``plan`` (see
    :class:`repro.serve.plan.StructuralPlan`) lets repeated solves against
    the same matrix skip the per-solve structural setup (balancing,
    distribution, halo index sets) entirely.  Numerics are unaffected:
    a plan-driven solve is bit-identical to a cold one.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        b: np.ndarray,
        ctx: MultiGpuContext | None = None,
        n_gpus: int = 1,
        partition: Partition | None = None,
        m: int = 30,
        tol: float = 1e-4,
        max_restarts: int = 500,
        orth_method: str = "cgs",
        gemv_variant: str = "magma",
        balance: bool = True,
        x0: np.ndarray | None = None,
        preconditioner=None,
        degrade: DegradePolicy | None = None,
        deadline: float | None = None,
        plan=None,
        on_cycle=None,
    ):
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("gmres requires a square matrix")
        n = matrix.n_rows
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {b.shape}")
        if b.size and not np.all(np.isfinite(b)):
            raise ValueError("b contains non-finite entries")
        if not 1 <= m <= n:
            raise ValueError(f"restart length m={m} out of range [1, {n}]")
        if ctx is None:
            ctx = MultiGpuContext(n_gpus)
        elif ctx.inactive_devices:
            # A previous degraded solve left the roster shrunken; restore the
            # full device set (and pristine fault state) before partitioning.
            ctx.reset_clocks()
        self.ctx = ctx
        self.plan = plan

        if plan is not None:
            if partition is not None:
                raise ValueError("pass either plan= or partition=, not both")
            if plan.V.n_cols != m + 1:
                raise ValueError(
                    f"plan was built for m={plan.V.n_cols - 1}, solve requested m={m}"
                )
            partition = plan.partition
            if partition.n_parts != ctx.n_gpus:
                raise ValueError("plan partition does not match the active roster")
            preconditioner = plan.preconditioner
            bal = plan.bal
            A_solve = plan.operator
        else:
            if partition is None:
                partition = block_row_partition(n, ctx.n_gpus)
            A_pre = preconditioner.fold(matrix) if preconditioner is not None else matrix
            bal = balance_matrix(A_pre) if balance else None
            A_solve = bal.matrix if bal is not None else A_pre
        b_solve = bal.scale_rhs(b) if bal is not None else b
        self.preconditioner = preconditioner
        self.bal = bal
        self.A_solve = A_solve
        self.b_solve = b_solve
        self.m = int(m)
        self.max_restarts = int(max_restarts)
        self.orth_method = orth_method
        self.gemv_variant = gemv_variant

        # Mutable solver state: the cycle closure and the degraded-mode
        # rebuild both go through it, so a repartition swaps every
        # distributed object at once and replayed cycles pick up the
        # rebuilt versions.
        self.st = st = SimpleNamespace(
            partition=partition,
            dmat=plan.dmat if plan is not None else DistributedMatrix(ctx, A_solve, partition),
            V=plan.V if plan is not None else DistMultiVector(ctx, partition, m + 1),
            x=DistVector(ctx, partition),
            b=DistVector.from_host(ctx, partition, b_solve),
        )
        if x0 is not None:
            if preconditioner is not None:
                raise ValueError("x0 with a preconditioner is not supported")
            start = (x0 / bal.col_scale) if bal is not None else x0
            st.x.set_from_host(np.asarray(start, dtype=np.float64))
        ctx.reset_clocks()
        ctx.counters.reset()

        self.degrader = None
        if degrade is not None or deadline is not None:
            self.degrader = DegradationManager(
                ctx, A_solve, self._rebuild, policy=degrade, deadline=deadline
            )

        history = ConvergenceHistory()
        r0 = b_solve - A_solve.matvec(gathered_solution(st.x))
        history.initial_residual = float(np.linalg.norm(r0))
        self.history = history
        self.converged = False
        self.restarts = 0
        self.iterations = 0
        self.on_cycle = on_cycle
        self.unrecovered: list[dict] = []
        self.abs_tol = tol * history.initial_residual
        # Already at (numerical) convergence: a relative criterion on a zero
        # residual would be meaningless.
        floor = 100.0 * np.finfo(np.float64).eps * float(np.linalg.norm(b_solve))
        if history.initial_residual <= floor:
            self.converged = True
            self._gen = None
        else:
            self._gen = self._cycle_iter()
        self._result: SolveResult | None = None

    # ------------------------------------------------------------------
    def _rebuild(self, new_partition, x_host):
        """Degraded-mode rebuild of the distributed state over survivors."""
        ctx, st = self.ctx, self.st
        st.partition = new_partition
        if self.plan is not None:
            sub = self.plan.derive(new_partition)
            st.dmat = sub.dmat
            st.V = sub.V
        else:
            st.dmat = DistributedMatrix(ctx, self.A_solve, new_partition)
            st.V = DistMultiVector(ctx, new_partition, self.m + 1)
        st.b = DistVector.from_host(ctx, new_partition, self.b_solve)
        st.x = DistVector.from_host(ctx, new_partition, x_host)
        return st.x

    @property
    def finished(self) -> bool:
        """True once the restart loop has terminated."""
        return self._gen is None

    def step(self) -> bool:
        """Advance by one restart cycle; False once the solve is finished."""
        if self._gen is None:
            return False
        try:
            next(self._gen)
        except StopIteration:
            self._gen = None
            return False
        return True

    def _cycle_iter(self):
        ctx, st = self.ctx, self.st
        for _ in range(self.max_restarts):
            if self.degrader is not None and self.degrader.deadline_reached():
                return
            ctx.mark_cycle()
            cycle_start = ctx.current_time()

            def cycle(offset=self.iterations):
                info = run_gmres_cycle(
                    ctx,
                    st.dmat,
                    st.V,
                    st.x,
                    st.b,
                    self.m,
                    self.abs_tol,
                    orth_method=self.orth_method,
                    gemv_variant=self.gemv_variant,
                    history=self.history,
                    iteration_offset=offset,
                )
                # True residual at the restart boundary (uncosted diagnostic).
                return info, checked_true_residual(
                    ctx, self.A_solve, self.b_solve, st.x
                )

            outcome, aborted = run_cycle_resilient(
                ctx, cycle, st.x, self.history, self.unrecovered,
                degrader=self.degrader,
            )
            if aborted:
                return
            info, true_res = outcome
            self.restarts += 1
            self.iterations += info.iterations
            if self.on_cycle is not None:
                self.on_cycle(self.restarts - 1, cycle_start, ctx.current_time())
            self.history.record_true(self.iterations, true_res)
            if true_res <= self.abs_tol:
                self.converged = True
                return
            yield

    def result(self) -> SolveResult:
        """Run any remaining cycles and return the (cached) final result."""
        while self.step():
            pass
        if self._result is None:
            self._result = _finish(
                self.ctx, self.st.x, self.bal, self.converged, self.restarts,
                self.iterations, self.history, 0, self.preconditioner,
                self.unrecovered, degrader=self.degrader,
            )
        return self._result


def gmres(
    matrix: CsrMatrix,
    b: np.ndarray,
    ctx: MultiGpuContext | None = None,
    n_gpus: int = 1,
    partition: Partition | None = None,
    m: int = 30,
    tol: float = 1e-4,
    max_restarts: int = 500,
    orth_method: str = "cgs",
    gemv_variant: str = "magma",
    balance: bool = True,
    x0: np.ndarray | None = None,
    preconditioner=None,
    degrade: DegradePolicy | None = None,
    deadline: float | None = None,
    plan=None,
    on_cycle=None,
) -> SolveResult:
    """Solve ``A x = b`` with restarted GMRES(m) on simulated GPUs.

    Parameters
    ----------
    matrix
        Square CSR matrix.
    b
        Right-hand side (host array).
    ctx
        Execution context; built with ``n_gpus`` devices when omitted.
    partition
        Row distribution; equal block rows when omitted.
    m
        Restart length.
    tol
        Relative residual tolerance (the paper's four-orders-of-magnitude
        criterion is ``1e-4``).
    max_restarts
        Cycle limit.
    orth_method
        ``"cgs"`` (BLAS-2, the paper's fast configuration) or ``"mgs"``.
    gemv_variant
        Tall-skinny DGEMV implementation for CGS (``"magma"``/``"cublas"``).
    balance
        Apply the paper's row-then-column norm balancing first.
    x0
        Initial guess (zero when omitted).
    preconditioner
        Optional right preconditioner with ``fold(A)`` / ``recover(y)``
        methods (see :mod:`repro.precond`); the solver iterates on the
        folded operator ``A M^{-1}`` and maps the solution back.
    degrade
        Optional :class:`~repro.core.degrade.DegradePolicy`: a device
        dropout mid-solve is absorbed by repartitioning over the
        survivors and resuming instead of aborting (see
        :mod:`repro.core.degrade`).
    deadline
        Optional simulated-time budget in seconds; the solve stops at the
        first restart boundary past it (``details["degradation"]``
        records the trip).
    plan
        Optional prebuilt :class:`repro.serve.plan.StructuralPlan` for this
        matrix/context: the structural setup (balancing, partitioning,
        distribution, halo index sets) is reused instead of recomputed.
        Mutually exclusive with ``partition``; ``balance`` and
        ``preconditioner`` are taken from the plan.
    on_cycle
        Optional per-cycle callback ``on_cycle(index, start, end)``
        invoked after every completed restart cycle with the cycle index
        and its simulated start/end times — the hook behind the
        ``repro_solver_cycle_seconds`` metric (see
        :func:`repro.metrics.collect.cycle_observer`).  Not called for a
        cycle aborted by an unrecoverable fault.

    Returns
    -------
    SolveResult
        Solution in the original variables plus timings/counters/history.
    """
    return GmresRun(
        matrix, b, ctx=ctx, n_gpus=n_gpus, partition=partition, m=m, tol=tol,
        max_restarts=max_restarts, orth_method=orth_method,
        gemv_variant=gemv_variant, balance=balance, x0=x0,
        preconditioner=preconditioner, degrade=degrade, deadline=deadline,
        plan=plan, on_cycle=on_cycle,
    ).result()


def _finish(
    ctx, x, bal, converged, restarts, iterations, history, breakdowns,
    preconditioner=None, unrecovered=None, degrader=None,
):
    x_host = gathered_solution(x)
    if bal is not None:
        x_host = bal.unscale_solution(x_host)
    if preconditioner is not None:
        x_host = preconditioner.recover(x_host)
    details = {"profile": ctx.trace.profile()}
    if ctx.faults.has_activity() or unrecovered:
        details["faults"] = ctx.faults.report(unrecovered)
    if degrader is not None:
        details["degradation"] = degrader.report()
    return SolveResult(
        x=x_host,
        converged=converged,
        n_restarts=restarts,
        n_iterations=iterations,
        history=history,
        timers=dict(ctx.timers),
        counters=ctx.counters.snapshot(),
        breakdowns=breakdowns,
        details=details,
    )
