"""Pipelined GMRES — the communication-hiding variant of footnote 5.

The paper: "We have also studied a pipelined GMRES [19] to overlap SpMV to
compute v_{j+1} ... with the ... orthogonalization of the previous vector
v_j."  The key enabler is that normalization commutes with the operator:

    A (u / beta) = (A u) / beta,

so the SpMV can start from the *unnormalized* orthogonalized vector while
the norm reduction (a full GPU-CPU-GPU round trip, the dominant latency of
the CGS iteration) is still in flight; the scale is applied to both the
basis vector and the SpMV result once it arrives.  In exact arithmetic the
Krylov basis is identical to standard CGS-GMRES — only the schedule
changes.  The Hessenberg subdiagonal entry ``h_{j+1,j} = beta_{j+1}``
becomes available one iteration late, so the least-squares update (and the
convergence check) lag one iteration.

On the simulator the overlap is expressed through ``d2h(..., ready_at=...)``:
the norm partials are shipped with the clock captured *before* the SpMV was
enqueued, so the reduction and the SpMV genuinely share wall-clock, bus
contention included.

Finding (matching the paper's): against this library's default CGS — whose
norm is already fused into the projection reduction — the pipelined
schedule saves the overlapped norm round trip but pays an extra scale
broadcast, netting out *slightly slower*.  The paper's footnote 5 reports
the same outcome for their pipelined experiments ("we have not seen a
significant performance improvement"); the variant is kept as the faithful
record of that studied-and-rejected design point.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..dist.matrix import DistributedMatrix
from ..dist.multivector import DistMultiVector, DistVector
from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..order.partition import Partition, block_row_partition
from ..orth.errors import OrthogonalizationError
from ..sparse.csr import CsrMatrix
from .balance import balance_matrix
from .convergence import ConvergenceHistory, SolveResult
from .degrade import DegradationManager, DegradePolicy
from .gmres import (
    checked_true_residual,
    compute_residual,
    gathered_solution,
    update_solution,
)
from .lsq import GivensHessenbergSolver
from .resilience import guard_finite, run_cycle_resilient

__all__ = ["pipelined_gmres"]


def pipelined_gmres(
    matrix: CsrMatrix,
    b: np.ndarray,
    ctx: MultiGpuContext | None = None,
    n_gpus: int = 1,
    partition: Partition | None = None,
    m: int = 30,
    tol: float = 1e-4,
    max_restarts: int = 500,
    gemv_variant: str = "magma",
    balance: bool = True,
    degrade: DegradePolicy | None = None,
    deadline: float | None = None,
    on_cycle=None,
) -> SolveResult:
    """Solve ``A x = b`` with one-stage pipelined GMRES(m).

    Same interface subset as :func:`repro.core.gmres.gmres` (CGS
    orthogonalization only — the pipelining targets CGS's norm round trip).
    ``degrade``/``deadline`` behave as in :func:`~repro.core.gmres.gmres`:
    device dropouts are absorbed by repartitioning over the survivors, and
    the solve stops at the first restart boundary past the simulated-time
    budget.  ``on_cycle(index, start, end)`` is invoked after every
    completed restart cycle with its simulated time window (see
    :func:`repro.metrics.collect.cycle_observer`).

    Returns
    -------
    SolveResult
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("pipelined_gmres requires a square matrix")
    n = matrix.n_rows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    if b.size and not np.all(np.isfinite(b)):
        raise ValueError("b contains non-finite entries")
    if not 1 <= m <= n:
        raise ValueError(f"restart length m={m} out of range [1, {n}]")
    if ctx is None:
        ctx = MultiGpuContext(n_gpus)
    elif ctx.inactive_devices:
        # A previous degraded solve left the roster shrunken; restore the
        # full device set (and pristine fault state) before partitioning.
        ctx.reset_clocks()
    if partition is None:
        partition = block_row_partition(n, ctx.n_gpus)

    bal = balance_matrix(matrix) if balance else None
    A_solve = bal.matrix if bal is not None else matrix
    b_solve = bal.scale_rhs(b) if bal is not None else b

    # Mutable solver state shared by the cycle closure and the
    # degraded-mode rebuild (see repro.core.degrade).
    st = SimpleNamespace(
        partition=partition,
        dmat=DistributedMatrix(ctx, A_solve, partition),
        V=DistMultiVector(ctx, partition, m + 1),
        x=DistVector(ctx, partition),
        b=DistVector.from_host(ctx, partition, b_solve),
    )
    ctx.reset_clocks()
    ctx.counters.reset()

    def rebuild(new_partition, x_host):
        st.partition = new_partition
        st.dmat = DistributedMatrix(ctx, A_solve, new_partition)
        st.V = DistMultiVector(ctx, new_partition, m + 1)
        st.b = DistVector.from_host(ctx, new_partition, b_solve)
        st.x = DistVector.from_host(ctx, new_partition, x_host)
        return st.x

    degrader = None
    if degrade is not None or deadline is not None:
        degrader = DegradationManager(
            ctx, A_solve, rebuild, policy=degrade, deadline=deadline
        )

    history = ConvergenceHistory()
    history.initial_residual = float(np.linalg.norm(b_solve))
    floor = 100.0 * np.finfo(np.float64).eps * history.initial_residual
    if history.initial_residual <= floor:
        return _finish(ctx, st.x, bal, True, 0, 0, history, degrader=degrader)
    abs_tol = tol * history.initial_residual

    converged = False
    restarts = 0
    iterations = 0
    unrecovered: list[dict] = []
    for _ in range(max_restarts):
        if degrader is not None and degrader.deadline_reached():
            break
        ctx.mark_cycle()
        cycle_start = ctx.current_time()

        def cycle(offset=iterations):
            j_used = _pipelined_cycle(
                ctx, st.dmat, st.V, st.x, st.b, m, abs_tol, gemv_variant,
                history, offset,
            )
            return j_used, checked_true_residual(ctx, A_solve, b_solve, st.x)

        outcome, aborted = run_cycle_resilient(
            ctx, cycle, st.x, history, unrecovered, degrader=degrader
        )
        if aborted:
            break
        j_used, true_res = outcome
        restarts += 1
        iterations += j_used
        if on_cycle is not None:
            on_cycle(restarts - 1, cycle_start, ctx.current_time())
        history.record_true(iterations, true_res)
        if true_res <= abs_tol:
            converged = True
            break
    return _finish(
        ctx, st.x, bal, converged, restarts, iterations, history, unrecovered,
        degrader=degrader,
    )


def _deferred_norm(ctx, cols, start_spmv):
    """Norm of a distributed column, overlapped with ``start_spmv()``.

    Computes the local squared-norm partials, captures their ready times,
    launches the SpMV, and only then completes the reduction — the round
    trip rides under the SpMV.
    """
    partials = [blas.nrm2(c) for c in cols]
    ready = [c.device.clock for c in cols]
    start_spmv()
    total = ctx.allreduce_sum(partials, ready_at=ready)
    return float(np.sqrt(max(float(total[0]), 0.0)))


def _pipelined_cycle(
    ctx, dmat, V, x, b_dist, m, abs_tol, gemv_variant, history, iter_offset
) -> int:
    """One pipelined restart cycle; returns iterations performed."""
    with ctx.region("spmv"):
        # The residual lands in V[:, 0] *unnormalized* (u_0).
        compute_residual(ctx, dmat, x, b_dist, V)

    solver = None  # constructed once beta_0 is known
    pending_h = None  # projection coefficients awaiting their subdiagonal
    j_used = 0
    for j in range(m):
        u_j = V.column(j)

        def start_spmv(j=j):
            with ctx.region("spmv"):
                dmat.spmv(V, j, V, j + 1)

        with ctx.region("orth"):
            beta_j = _deferred_norm(ctx, u_j, start_spmv)
            guard_finite(ctx, beta_j, "pipelined basis norm")
            if beta_j == 0.0:
                raise OrthogonalizationError("pipelined GMRES: basis vanished")
            # Normalize u_j -> q_j and rescale the in-flight SpMV result
            # (A u_j)/beta_j = A q_j, restoring the standard iterate.
            w = V.column(j + 1)
            for bc, (qc, wc) in zip(
                ctx.broadcast(np.array([beta_j])), zip(u_j, w)
            ):
                scale = 1.0 / float(bc.data[0])
                blas.scal(scale, qc)
                blas.scal(scale, wc)
        if solver is None:
            solver = GivensHessenbergSolver(m, beta_j)
        else:
            # beta_j is h_{j, j-1}: the previous column is now complete.
            column = np.concatenate([pending_h, [beta_j]])
            with ctx.region("lsq"):
                ctx.host.charge_small_dense("lstsq_hessenberg", j)
                estimate = solver.append_column(column)
            history.record_estimate(iter_offset + j, estimate)
            if estimate <= abs_tol:
                j_used = j
                break
        with ctx.region("orth"):
            # CGS projection of w against q_0..q_j (norm deferred to next
            # iteration's overlapped reduction).
            prev = V.panel(0, j + 1)
            partials = [
                blas.gemv_t(pv, wc, variant=gemv_variant)
                for pv, wc in zip(prev, V.column(j + 1))
            ]
            r = ctx.allreduce_sum(partials)
            guard_finite(ctx, r, "pipelined projection coefficients")
            for bc, (pv, wc) in zip(
                ctx.broadcast(r), zip(prev, V.column(j + 1))
            ):
                blas.gemv_n_update(pv, bc, wc, variant=gemv_variant)
        pending_h = r
        j_used = j + 1
    else:
        # Loop ran to m: complete the final column with one last norm.
        with ctx.region("orth"):
            partials = [blas.nrm2(c) for c in V.column(m)]
            beta_m = float(np.sqrt(max(float(ctx.allreduce_sum(partials)[0]), 0.0)))
        if pending_h is not None:
            column = np.concatenate([pending_h, [beta_m]])
            with ctx.region("lsq"):
                ctx.host.charge_small_dense("lstsq_hessenberg", m)
                estimate = solver.append_column(column)
            history.record_estimate(iter_offset + m, estimate)
    with ctx.region("update"):
        y = solver.solve()
        ctx.host.charge_small_dense("trsv", max(y.size, 1))
        update_solution(ctx, V, x, y)
    return j_used


def _finish(ctx, x, bal, converged, restarts, iterations, history,
            unrecovered=None, degrader=None):
    x_host = gathered_solution(x)
    if bal is not None:
        x_host = bal.unscale_solution(x_host)
    details = {"profile": ctx.trace.profile()}
    if ctx.faults.has_activity() or unrecovered:
        details["faults"] = ctx.faults.report(unrecovered)
    if degrader is not None:
        details["degradation"] = degrader.report()
    return SolveResult(
        x=x_host,
        converged=converged,
        n_restarts=restarts,
        n_iterations=iterations,
        history=history,
        timers=dict(ctx.timers),
        counters=ctx.counters.snapshot(),
        details=details,
    )
