"""Matrix balancing (Section VI).

"To improve the stability and the convergence, before the iteration starts,
the matrix is balanced; namely, the rows are first scaled by their norms,
and then the columns are scaled by their norms."

Balancing transforms ``A x = b`` into ``(D_r A D_c) y = D_r b`` with
``x = D_c y``; :class:`BalanceResult` carries the scalings so solutions and
residuals can be mapped back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = ["BalanceResult", "balance_matrix"]


@dataclass(frozen=True)
class BalanceResult:
    """A balanced system ``(D_r A D_c) y = D_r b``."""

    matrix: CsrMatrix
    row_scale: np.ndarray  # D_r diagonal
    col_scale: np.ndarray  # D_c diagonal

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """Map the original right-hand side into the balanced system."""
        return self.row_scale * np.asarray(b, dtype=np.float64)

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """Map a balanced-system solution back: ``x = D_c y``."""
        return self.col_scale * np.asarray(y, dtype=np.float64)


def balance_matrix(matrix: CsrMatrix) -> BalanceResult:
    """Row-norm then column-norm scaling of a square matrix.

    Rows with zero norm (empty rows) keep scale 1 so the transform stays
    invertible; same for columns.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("balance_matrix requires a square matrix")
    row_norms = matrix.row_norms()
    row_scale = np.where(row_norms > 0.0, 1.0 / np.maximum(row_norms, 1e-300), 1.0)
    scaled = matrix.scale_rows(row_scale)
    col_norms = scaled.col_norms()
    col_scale = np.where(col_norms > 0.0, 1.0 / np.maximum(col_norms, 1e-300), 1.0)
    balanced = scaled.scale_cols(col_scale)
    return BalanceResult(matrix=balanced, row_scale=row_scale, col_scale=col_scale)
