"""Degraded-mode recovery: survive device loss via live repartitioning.

PR 2's resilience stack treats :class:`~repro.faults.errors.DeviceLost` as
terminal — the solve aborts and returns the last checkpoint.  But the
paper's algorithms partition cleanly across 1-3 GPUs: MPK, BOrth, and TSQR
are all defined over *any* block-row partition, so losing a GPU should
shrink the partition, not kill the solve.  This module implements that
state machine::

    detect ──▶ checkpoint-restore ──▶ repartition ──▶ resume
    (DeviceLost        (host-side           (survivors      (restart loop
     raised by          cycle checkpoint,    get a fresh      continues on
     the injector)      already taken)       Partition)       n-1 GPUs)

The pieces:

* :class:`DegradePolicy` — pure data: how many repartitions are allowed,
  the minimum surviving device count, the repartitioning strategy, and
  what to do when the budget is exhausted.
* :class:`DegradationManager` — one per solve.  Owned by the solver, hooked
  into :func:`repro.core.resilience.run_cycle_resilient`: when a cycle
  raises ``DeviceLost`` it deactivates the dead devices on the context
  (:meth:`~repro.gpu.context.MultiGpuContext.deactivate_device` tears down
  their PCIe lanes and removes them from the clock set), derives a new
  :class:`~repro.order.partition.Partition` over the survivors, and calls
  the solver's ``rebuild`` callback to reconstruct the distributed state
  (matrix, basis, MPK plans, vectors) from the host-side cycle checkpoint.
  It also runs the **deadline watchdog**: a simulated-time budget checked
  at every restart boundary.
* :func:`derive_partition` — the repartitioning step, reusing the
  block-row / k-way machinery from :mod:`repro.order`.

Everything is deterministic and bit-replayable: the degradation schedule
is a pure function of the fault plan, and ``ctx.reset_clocks()`` restores
the full device roster along with the injector streams, so rerunning a
solve on the same context replays the identical repartition sequence.
``degraded`` / ``repartition`` / ``deadline-exceeded`` events land on the
``"faults"`` trace lane next to the dropout that caused them, and the full
record is attached as ``SolveResult.details["degradation"]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.errors import DeviceLost
from ..order.partition import Partition, block_row_partition

__all__ = [
    "DegradePolicy",
    "DegradationManager",
    "derive_partition",
]

#: Valid repartitioning strategies (see :func:`derive_partition`).
STRATEGIES = ("block", "kway")

#: Valid budget-exhaustion actions.
EXHAUSTED_ACTIONS = ("abort", "raise")


@dataclass(frozen=True)
class DegradePolicy:
    """How far a solve may degrade before giving up.

    Attributes
    ----------
    max_repartitions
        Repartition budget per solve (``None`` = bounded only by
        ``min_devices``).
    min_devices
        The solve never shrinks below this many devices; a loss that
        would violate it triggers ``on_exhausted`` instead.
    strategy
        ``"block"`` (equal contiguous slabs, the natural/RCM
        distribution) or ``"kway"`` (graph repartitioning; pays host-side
        setup but preserves a low edge cut on the survivors).
    on_exhausted
        ``"abort"`` — stop with the structured
        ``details["faults"]`` report exactly as a policy-less run would;
        ``"raise"`` — let :class:`DeviceLost` propagate to the caller.
    """

    max_repartitions: int | None = None
    min_devices: int = 1
    strategy: str = "block"
    on_exhausted: str = "abort"

    def __post_init__(self):
        if self.max_repartitions is not None and self.max_repartitions < 0:
            raise ValueError("max_repartitions must be >= 0")
        if self.min_devices < 1:
            raise ValueError("min_devices must be >= 1")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )
        if self.on_exhausted not in EXHAUSTED_ACTIONS:
            raise ValueError(
                f"unknown on_exhausted {self.on_exhausted!r}; "
                f"choose from {EXHAUSTED_ACTIONS}"
            )

    def describe(self) -> dict:
        """JSON-friendly summary (recorded in the degradation report)."""
        return {
            "max_repartitions": self.max_repartitions,
            "min_devices": self.min_devices,
            "strategy": self.strategy,
            "on_exhausted": self.on_exhausted,
        }


def derive_partition(matrix, n_parts: int, strategy: str = "block") -> Partition:
    """A fresh row partition over ``n_parts`` surviving devices.

    ``"block"`` reuses :func:`~repro.order.partition.block_row_partition`
    (bit-identical to what a fresh ``n_parts``-device solve would build);
    ``"kway"`` reruns the graph partitioner on the survivors.
    """
    if strategy == "block":
        return block_row_partition(matrix.n_rows, n_parts)
    if strategy == "kway":
        from ..order.kway import kway_partition

        return kway_partition(matrix, n_parts)
    raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")


class DegradationManager:
    """Per-solve coordinator for device-loss absorption and deadlines.

    Parameters
    ----------
    ctx
        The execution context (devices are deactivated on it).
    matrix
        The operator being solved (already balanced/preconditioned) —
        repartitioning derives the new row distribution from it.
    rebuild
        Solver callback ``rebuild(partition, x_host) -> new_x``:
        reconstructs every distributed object (matrix, basis multivector,
        RHS, MPK plans) on the shrunken context and returns the new
        solution vector initialized from the host checkpoint ``x_host``.
        Transfers it issues are costed normally — recovery takes
        simulated time, deterministically.
    policy
        The :class:`DegradePolicy`, or ``None`` to run only the deadline
        watchdog (device loss then stays terminal, as without a manager).
    deadline
        Simulated-time budget in seconds (``None`` = no deadline).  The
        watchdog trips at the first restart boundary past the budget.
    """

    def __init__(self, ctx, matrix, rebuild, policy: DegradePolicy | None = None,
                 deadline: float | None = None):
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0")
        self.ctx = ctx
        self.matrix = matrix
        self.rebuild = rebuild
        self.policy = policy
        self.deadline = deadline
        self.initial_devices = ctx.n_gpus
        self.events: list[dict] = []
        self.deadline_exceeded_at: float | None = None

    # ------------------------------------------------------------------
    # Device-loss absorption
    # ------------------------------------------------------------------
    def _dead_active_devices(self, exc: DeviceLost) -> list:
        """Active devices the injector marked dead (ordered by id)."""
        dead_names = set(self.ctx.faults.dead)
        if exc.site is not None:
            dead_names.add(exc.site)
        return [d for d in self.ctx.devices if d.name in dead_names]

    def can_absorb(self, n_lost: int = 1) -> bool:
        """Whether policy budgets allow absorbing ``n_lost`` more losses."""
        if self.policy is None or n_lost < 1:
            return False
        if self.ctx.n_gpus - n_lost < self.policy.min_devices:
            return False
        budget = self.policy.max_repartitions
        return budget is None or len(self.events) < budget

    def absorb(self, exc: DeviceLost, old_x, checkpoint: list[np.ndarray]):
        """Try to absorb a :class:`DeviceLost`; returns the new ``x``.

        Returns ``None`` when the policy forbids it (``on_exhausted ==
        "abort"``) so the caller falls through to the structured-abort
        path; re-raises ``exc`` when ``on_exhausted == "raise"``.  On
        success the dead devices are deactivated, a new partition is
        derived over the survivors, the solver state is rebuilt from the
        checkpoint, and the repartition is logged on the fault lane.
        """
        dead = self._dead_active_devices(exc)
        if not self.can_absorb(len(dead)):
            if self.policy is not None and self.policy.on_exhausted == "raise":
                raise exc
            return None
        now = self.ctx.current_time()
        for dev in dead:
            self.ctx.deactivate_device(dev)
            self.ctx.faults.note_degradation("degraded", now, site=dev.name)
        survivors = self.ctx.n_gpus
        partition = derive_partition(self.matrix, survivors, self.policy.strategy)
        x_host = _assemble_global(old_x, checkpoint)
        new_x = self.rebuild(partition, x_host)
        self.ctx.counters.repartitions += 1
        event = {
            "time": now,
            "lost": sorted(d.name for d in dead),
            "devices_before": survivors + len(dead),
            "devices_after": survivors,
            "strategy": self.policy.strategy,
            "part_sizes": partition.part_sizes().tolist(),
        }
        self.events.append(event)
        self.ctx.faults.note_degradation(
            "repartition", self.ctx.current_time(),
            lost=event["lost"], devices=survivors,
        )
        return new_x

    # ------------------------------------------------------------------
    # Deadline watchdog
    # ------------------------------------------------------------------
    def deadline_reached(self) -> bool:
        """Check the simulated-time budget (call at restart boundaries).

        Trips at most once; the trip is logged on the fault trace lane as
        ``deadline-exceeded`` and recorded for the degradation report.
        The check reads the simulated clock only — it is uncosted, so a
        solve with no deadline (or one that never trips) is bit-identical
        to a watchdog-free run.
        """
        if self.deadline_exceeded_at is not None:
            return True
        if self.deadline is None:
            return False
        now = self.ctx.current_time()
        if now <= self.deadline:
            return False
        self.deadline_exceeded_at = now
        self.ctx.faults.note_degradation(
            "deadline-exceeded", now, deadline=self.deadline
        )
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """The ``SolveResult.details["degradation"]`` payload."""
        return {
            "policy": None if self.policy is None else self.policy.describe(),
            "deadline": self.deadline,
            "initial_devices": self.initial_devices,
            "final_devices": self.ctx.n_gpus,
            "repartitions": [dict(e) for e in self.events],
            "n_repartitions": len(self.events),
            "deadline_exceeded": self.deadline_exceeded_at is not None,
            "deadline_exceeded_at": self.deadline_exceeded_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DegradationManager(devices={self.ctx.n_gpus}/"
            f"{self.initial_devices}, repartitions={len(self.events)}, "
            f"deadline={self.deadline})"
        )


def _assemble_global(old_x, checkpoint: list[np.ndarray]) -> np.ndarray:
    """Host-side global vector from a per-part cycle checkpoint."""
    out = np.empty(old_x.n_rows, dtype=np.float64)
    partition = old_x.partition
    for d in range(partition.n_parts):
        out[partition.rows_of(d)] = checkpoint[d]
    return out
