"""The paper's test-matrix suite (Fig. 12) and its property report.

:data:`PAPER_SUITE` maps the paper's matrix names to their analog
constructors, the paper's reported properties (for side-by-side
comparison), and the per-matrix solver parameters the paper used in its
Fig. 14/15 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sparse.csr import CsrMatrix
from .circuit import g3_circuit
from .fem import cant, dielfilter
from .kkt import nlpkkt

__all__ = ["MatrixInfo", "PAPER_SUITE", "load_suite_matrix", "dominant_ritz_ratio"]


@dataclass(frozen=True)
class MatrixInfo:
    """One row of the paper's Fig. 12 plus the Fig. 14/15 parameters."""

    name: str
    source: str
    constructor: Callable[[], CsrMatrix]
    paper_n: int  # thousands of rows in the paper's matrix
    paper_nnz_per_row: float
    paper_theta_ratio: float  # theta_1 / theta_2
    paper_kappa_gram: float  # kappa(B) of the last first-restart Gram matrix
    gmres_m: int  # the paper's restart length for this matrix
    ca_s: int  # the paper's s for this matrix
    ordering: str  # "natural" or "kway" per the Fig. 14 section headers


PAPER_SUITE: dict[str, MatrixInfo] = {
    "cant": MatrixInfo(
        name="cant",
        source="FEM Cantilever",
        constructor=cant,
        paper_n=62,
        paper_nnz_per_row=64.2,
        paper_theta_ratio=7.5685 / 7.5682,
        paper_kappa_gram=3.26e16,
        gmres_m=60,
        ca_s=15,
        ordering="natural",
    ),
    "g3_circuit": MatrixInfo(
        name="g3_circuit",
        source="Circuit simulation",
        constructor=g3_circuit,
        paper_n=1585,
        paper_nnz_per_row=4.8,
        paper_theta_ratio=1.9964 / 1.9829,
        paper_kappa_gram=8.54e9,
        gmres_m=30,
        ca_s=15,
        ordering="kway",
    ),
    "dielfilter": MatrixInfo(
        name="dielfilter",
        source="FEM in EM (dielFilterV2real)",
        constructor=dielfilter,
        paper_n=1157,
        paper_nnz_per_row=41.9,
        paper_theta_ratio=5.2766 / 5.1892,
        paper_kappa_gram=5.81e11,
        gmres_m=180,
        ca_s=15,
        ordering="kway",
    ),
    "nlpkkt": MatrixInfo(
        name="nlpkkt",
        source="KKT optimization (nlpkkt120)",
        constructor=nlpkkt,
        paper_n=3542,
        paper_nnz_per_row=26.9,
        paper_theta_ratio=3.6554 / 3.6127,
        paper_kappa_gram=2.42e7,
        gmres_m=120,
        ca_s=10,
        ordering="kway",
    ),
}


def load_suite_matrix(name: str) -> tuple[CsrMatrix, MatrixInfo]:
    """Construct one suite matrix and return it with its metadata."""
    try:
        info = PAPER_SUITE[name]
    except KeyError:
        raise ValueError(
            f"unknown suite matrix {name!r}; choose from {sorted(PAPER_SUITE)}"
        ) from None
    return info.constructor(), info


def _arnoldi_ritz(matrix: CsrMatrix, n_iter: int, seed: int = 7) -> np.ndarray:
    """Ritz values from an ``n_iter``-step host-side Arnoldi run (MGS)."""
    from ..core.arnoldi import host_ritz_values

    return host_ritz_values(matrix, n_iter, seed=seed)


def dominant_ritz_ratio(
    matrix: CsrMatrix, n_iter: int = 60, seed: int = 7
) -> tuple[float, float]:
    """Estimate ``(theta_1, theta_2)``: the two largest-|.| Ritz values.

    Runs a short host-side Arnoldi process (with MGS) and returns the
    magnitudes of the two dominant eigenvalues of the Hessenberg matrix —
    the quantity driving the monomial basis's exponential ill-conditioning
    (``|lambda_2 / lambda_1|`` convergence of the power basis).
    """
    mags = np.sort(np.abs(_arnoldi_ritz(matrix, n_iter, seed)))[::-1]
    if mags.size == 1:
        return float(mags[0]), float(mags[0])
    return float(mags[0]), float(mags[1])
