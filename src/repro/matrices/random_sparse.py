"""Random sparse matrices and tall-skinny panels for tests and kernel benches.

The paper's Section V-F studies TSQR "using random matrices"; these
generators provide deterministic random inputs with controllable
conditioning.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import CooMatrix
from ..sparse.csr import CsrMatrix

__all__ = ["random_banded", "random_sparse", "well_conditioned_tall_skinny"]


def random_banded(
    n: int, bandwidth: int, density: float = 0.6, seed: int = 0, dominant: bool = True
) -> CsrMatrix:
    """Random matrix with entries inside a band of half-width ``bandwidth``.

    ``density`` is the fill fraction within the band; with ``dominant`` the
    diagonal is boosted to make the matrix comfortably nonsingular.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for offset in range(-bandwidth, bandwidth + 1):
        length = n - abs(offset)
        if length <= 0:
            continue
        mask = rng.random(length) < density if offset != 0 else np.ones(length, bool)
        i = np.arange(length)[mask]
        if offset >= 0:
            rows_list.append(i)
            cols_list.append(i + offset)
        else:
            rows_list.append(i - offset)
            cols_list.append(i)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = rng.standard_normal(rows.size)
    if dominant:
        diag = rows == cols
        vals[diag] = 2.0 * (bandwidth + 1) + rng.random(int(diag.sum()))
    return CooMatrix((n, n), rows, cols, vals).to_csr()


def random_sparse(
    n: int, nnz_per_row: float, seed: int = 0, dominant: bool = True
) -> CsrMatrix:
    """Unstructured random square matrix with ~``nnz_per_row`` entries/row."""
    if n < 1:
        raise ValueError("n must be positive")
    if nnz_per_row < 1:
        raise ValueError("nnz_per_row must be >= 1")
    rng = np.random.default_rng(seed)
    n_off = int(n * max(nnz_per_row - 1, 0))
    rows = np.concatenate([np.arange(n), rng.integers(0, n, n_off)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, n_off)])
    vals = rng.standard_normal(rows.size)
    if dominant:
        vals[:n] = nnz_per_row + 1.0 + rng.random(n)
    return CooMatrix((n, n), rows, cols, vals).to_csr()


def well_conditioned_tall_skinny(
    n: int, k: int, condition: float = 10.0, seed: int = 0
) -> np.ndarray:
    """Dense ``n x k`` panel with a prescribed 2-norm condition number.

    Built as ``Q1 diag(sigma) Q2^T`` with geometrically spaced singular
    values; used by the TSQR property tests and the Fig. 11 benches.
    """
    if n < k:
        raise ValueError("panel must be tall (n >= k)")
    if condition < 1.0:
        raise ValueError("condition must be >= 1")
    rng = np.random.default_rng(seed)
    q1, _ = np.linalg.qr(rng.standard_normal((n, k)))
    q2, _ = np.linalg.qr(rng.standard_normal((k, k)))
    sigma = np.geomspace(1.0, 1.0 / condition, k)
    return (q1 * sigma) @ q2.T
