"""Synthetic test matrices.

The paper's matrices come from the University of Florida collection
(Fig. 12); without network access this package generates *structural
analogs* at reduced scale (see DESIGN.md for the substitution argument):

=================  =======================  ==========  =========
paper matrix       analog constructor       nnz/row     character
=================  =======================  ==========  =========
cant               :func:`cant`             ~64         banded 3D FEM, SPD-ish
G3_circuit         :func:`g3_circuit`       ~4.8        irregular, no locality
dielFilterV2real   :func:`dielfilter`       ~42         3D vector FEM
nlpkkt120          :func:`nlpkkt`           ~27         KKT saddle point
=================  =======================  ==========  =========

Plus standard generators (Poisson, convection-diffusion, random banded)
used throughout the tests and examples.  Real UF ``.mtx`` files can be
loaded with :func:`repro.sparse.read_matrix_market` and dropped into any
benchmark instead.
"""

from .stencil import poisson2d, poisson3d, convection_diffusion2d, stencil3d
from .fem import cant, dielfilter
from .circuit import g3_circuit
from .kkt import nlpkkt
from .random_sparse import random_banded, random_sparse, well_conditioned_tall_skinny
from .suite import PAPER_SUITE, MatrixInfo, load_suite_matrix, dominant_ritz_ratio

__all__ = [
    "poisson2d",
    "poisson3d",
    "convection_diffusion2d",
    "stencil3d",
    "cant",
    "dielfilter",
    "g3_circuit",
    "nlpkkt",
    "random_banded",
    "random_sparse",
    "well_conditioned_tall_skinny",
    "PAPER_SUITE",
    "MatrixInfo",
    "load_suite_matrix",
    "dominant_ritz_ratio",
]
