"""KKT saddle-point analog of ``nlpkkt120``.

nlpkkt120 (3.54M rows, 26.9 nnz/row, symmetric indefinite) is the KKT
system of a 3-D PDE-constrained optimization problem.  The analog has the
same block structure

.. math::

    K = \\begin{pmatrix} H & J^T \\\\ J & -\\delta I \\end{pmatrix}

with ``H`` a (regularized) 3-D 27-point stencil Hessian and ``J`` a 3-D
7-point constraint Jacobian.  Saddle-point indefiniteness makes restarted
GMRES converge very slowly — the paper's nlpkkt120 run needs 746
GMRES(120) iterations, by far its hardest case, and the analog is likewise
the suite's slowest.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..sparse.coo import CooBuilder
from ..sparse.csr import CsrMatrix

__all__ = ["nlpkkt"]


def nlpkkt(nx: int = 18, ny: int | None = None, nz: int | None = None, delta: float = 1e-3) -> CsrMatrix:
    """3-D PDE-constrained KKT analog (symmetric indefinite, ~20-28 nnz/row).

    n = 2 * nx * ny * nz rows (11664 by default).  ``delta`` regularizes
    the (2,2) block; smaller values make the system harder.  The defaults
    are tuned so GMRES(120) needs several hundred iterations at tol 1e-4 —
    the paper's nlpkkt120 run needs 746, its hardest case.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 2:
        raise ValueError("grid must be at least 2 in each dimension")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    n_nodes = nx * ny * nz
    n = 2 * n_nodes
    node = np.arange(n_nodes).reshape(nx, ny, nz)
    builder = CooBuilder((n, n))

    # H block (rows/cols 0 .. n_nodes-1): 27-point SPD stencil.
    for dx, dy, dz in itertools.product((-1, 0, 1), repeat=3):
        dist = abs(dx) + abs(dy) + abs(dz)
        w = {0: 7.0, 1: -0.6, 2: -0.2, 3: -0.1}[dist]
        src = node[
            max(0, -dx) : nx - max(0, dx),
            max(0, -dy) : ny - max(0, dy),
            max(0, -dz) : nz - max(0, dz),
        ].ravel()
        dst = node[
            max(0, dx) : nx - max(0, -dx),
            max(0, dy) : ny - max(0, -dy),
            max(0, dz) : nz - max(0, -dz),
        ].ravel()
        builder.add(dst, src, w)

    # J block: pure first-difference (gradient) operator with no diagonal —
    # the nontrivial constraint nullspace is what makes the saddle point
    # hard; J in (2,1), J^T in (1,2).
    for dx, dy, dz, w in [
        (1, 0, 0, -0.5),
        (-1, 0, 0, 0.5),
        (0, 1, 0, -0.5),
        (0, -1, 0, 0.5),
        (0, 0, 1, -0.5),
        (0, 0, -1, 0.5),
    ]:
        src = node[
            max(0, -dx) : nx - max(0, dx),
            max(0, -dy) : ny - max(0, dy),
            max(0, -dz) : nz - max(0, dz),
        ].ravel()
        dst = node[
            max(0, dx) : nx - max(0, -dx),
            max(0, dy) : ny - max(0, -dy),
            max(0, dz) : nz - max(0, -dz),
        ].ravel()
        builder.add(n_nodes + dst, src, w)  # J
        builder.add(src, n_nodes + dst, w)  # J^T

    # -delta I in the (2,2) block keeps the system nonsingular.
    lag = n_nodes + np.arange(n_nodes)
    builder.add(lag, lag, -float(delta) if delta > 0 else -1e-8)
    return builder.build().to_csr()
