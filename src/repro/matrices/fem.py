"""FEM-style analogs: `cant` (3-D cantilever) and `dielfilter` (3-D EM).

* ``cant`` — the UF FEM/Boeing cantilever (n = 62k, 64.2 nnz/row, naturally
  banded, SPD).  Analog: a 3-D 27-point stencil with 2 fully-coupled dofs
  per node -> 2 x 27 = 54-64 nnz/row on a bar-shaped grid (long in x), so
  the natural ordering is already banded — exactly the property that makes
  the paper's MPK surface-to-volume grow only linearly (Fig. 6 right).
* ``dielfilter`` — dielFilterV2real, a vector-FEM electromagnetic matrix
  (1.16M rows, 41.9 nnz/row).  Analog: a 3-D 13-offset stencil with 3
  coupled dofs per node (~39-42 nnz/row), mildly indefinite via a spectral
  shift, which slows Krylov convergence the way the paper's 176+ restarts
  indicate.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..sparse.csr import CsrMatrix
from .stencil import stencil3d

__all__ = ["cant", "dielfilter"]


def cant(nx: int = 48, ny: int = 10, nz: int = 10) -> CsrMatrix:
    """Banded 3-D FEM cantilever analog (2 dofs/node, 27-point stencil).

    The default bar shape (long x, slim y/z cross-section) mimics a
    cantilever beam mesh; n = 2 * nx * ny * nz rows (9600 by default) at
    ~50-64 nnz/row depending on boundary truncation.
    """
    offsets = [
        (dx, dy, dz)
        for dx, dy, dz in itertools.product((-1, 0, 1), repeat=3)
    ]
    values = []
    for dx, dy, dz in offsets:
        dist = abs(dx) + abs(dy) + abs(dz)
        if dist == 0:
            # Tuned so GMRES(60) needs ~7 restart cycles at tol 1e-4 — the
            # paper's Fig. 14 restart count for cant.  (A larger diagonal
            # makes the beam stiffness diagonally dominant and trivially
            # easy; the real cant is ill-conditioned.)
            values.append(8.0)
        elif dist == 1:
            values.append(-2.0)
        elif dist == 2:
            values.append(-0.5)
        else:
            values.append(-0.25)
    coupling = np.array([[1.0, 0.3], [0.3, 1.0]])
    return stencil3d((nx, ny, nz), offsets, values, dofs_per_node=2, coupling=coupling)


def dielfilter(nx: int = 16, ny: int = 16, nz: int = 16, shift: float = 11.0) -> CsrMatrix:
    """3-D vector-FEM electromagnetic analog (3 dofs/node, 13 offsets).

    Curl-curl style discretizations are shifted-indefinite; ``shift``
    subtracts a multiple of the identity from an SPD stencil so part of the
    spectrum crosses zero and restarted GMRES converges slowly — the paper's
    dielFilterV2real needs 176 restart cycles of GMRES(180); the default
    shift is tuned so the reduced-scale analog needs ~8 (still by far the
    suite's slowest convergent case).  n = 3 * nx * ny * nz rows (12288 by
    default) at ~36-42 nnz/row.
    """
    # 7 face offsets + 6 of the 12 edge offsets: 13 nodes x 3 dofs.
    offsets = [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
               (1, 1, 0), (-1, -1, 0), (0, 1, 1), (0, -1, -1), (1, 0, 1), (-1, 0, -1)]
    values = [14.0] + [-1.5] * 6 + [-0.75] * 6
    coupling = np.array(
        [
            [1.0, 0.2, 0.1],
            [0.2, 1.0, 0.2],
            [0.1, 0.2, 1.0],
        ]
    )
    spd = stencil3d((nx, ny, nz), offsets, values, dofs_per_node=3, coupling=coupling)
    if shift == 0.0:
        return spd
    return spd.add_scaled_identity(-float(shift))
