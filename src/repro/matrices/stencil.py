"""Regular-grid stencil matrices.

The workhorse generators: 2-D/3-D Poisson, convection-diffusion (the
canonical nonsymmetric GMRES test), and a generic 3-D stencil builder that
the FEM analogs are assembled from.  All generators return
:class:`~repro.sparse.CsrMatrix` and are fully vectorized (one COO chunk per
stencil offset).
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import CooBuilder
from ..sparse.csr import CsrMatrix

__all__ = ["poisson2d", "poisson3d", "convection_diffusion2d", "stencil3d"]


def poisson2d(nx: int, ny: int | None = None) -> CsrMatrix:
    """5-point Laplacian on an ``nx x ny`` grid (Dirichlet), SPD."""
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    builder = CooBuilder((n, n))
    builder.add(idx.ravel(), idx.ravel(), 4.0)
    builder.add(idx[1:, :].ravel(), idx[:-1, :].ravel(), -1.0)
    builder.add(idx[:-1, :].ravel(), idx[1:, :].ravel(), -1.0)
    builder.add(idx[:, 1:].ravel(), idx[:, :-1].ravel(), -1.0)
    builder.add(idx[:, :-1].ravel(), idx[:, 1:].ravel(), -1.0)
    return builder.build().to_csr()


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None) -> CsrMatrix:
    """7-point Laplacian on an ``nx x ny x nz`` grid (Dirichlet), SPD."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny * nz
    idx = np.arange(n).reshape(nx, ny, nz)
    builder = CooBuilder((n, n))
    builder.add(idx.ravel(), idx.ravel(), 6.0)
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(1, None)
        hi[axis] = slice(None, -1)
        builder.add(idx[tuple(lo)].ravel(), idx[tuple(hi)].ravel(), -1.0)
        builder.add(idx[tuple(hi)].ravel(), idx[tuple(lo)].ravel(), -1.0)
    return builder.build().to_csr()


def convection_diffusion2d(
    nx: int, ny: int | None = None, wind: tuple[float, float] = (1.0, 0.5), h: float | None = None
) -> CsrMatrix:
    """Upwinded convection-diffusion on a 2-D grid — nonsymmetric.

    ``-Δu + w · ∇u`` with convection ``wind`` and mesh width ``h``
    (default ``1/(nx+1)``); first-order upwind differences keep the matrix
    an M-matrix so GMRES converges smoothly.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    if h is None:
        h = 1.0 / (nx + 1)
    wx, wy = wind
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    builder = CooBuilder((n, n))
    # Diffusion: standard 5-point, scaled to 1 per off-diagonal.
    diag = 4.0 + h * (abs(wx) + abs(wy))
    builder.add(idx.ravel(), idx.ravel(), diag)
    west = -1.0 - (h * wx if wx > 0 else 0.0)
    east = -1.0 + (h * wx if wx < 0 else 0.0)
    south = -1.0 - (h * wy if wy > 0 else 0.0)
    north = -1.0 + (h * wy if wy < 0 else 0.0)
    builder.add(idx[1:, :].ravel(), idx[:-1, :].ravel(), west)
    builder.add(idx[:-1, :].ravel(), idx[1:, :].ravel(), east)
    builder.add(idx[:, 1:].ravel(), idx[:, :-1].ravel(), south)
    builder.add(idx[:, :-1].ravel(), idx[:, 1:].ravel(), north)
    return builder.build().to_csr()


def stencil3d(
    shape: tuple[int, int, int],
    offsets: list[tuple[int, int, int]],
    values: list[float],
    dofs_per_node: int = 1,
    coupling: np.ndarray | None = None,
) -> CsrMatrix:
    """Generic 3-D stencil with optional multi-dof node blocks.

    Parameters
    ----------
    shape
        Grid dimensions ``(nx, ny, nz)``.
    offsets, values
        Stencil offsets (include ``(0, 0, 0)`` for the diagonal) and the
        scalar weight of each offset.
    dofs_per_node
        Number of unknowns per grid node; with ``k`` dofs each stencil
        entry becomes a ``k x k`` block.
    coupling
        The ``k x k`` block pattern (defaults to a well-conditioned
        symmetric block ``I + 0.1``); the scalar weight multiplies it.
    """
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    if len(offsets) != len(values):
        raise ValueError("offsets and values must have equal lengths")
    k = int(dofs_per_node)
    if k < 1:
        raise ValueError("dofs_per_node must be >= 1")
    if coupling is None:
        coupling = np.eye(k) + 0.1 * np.ones((k, k))
    coupling = np.asarray(coupling, dtype=np.float64)
    if coupling.shape != (k, k):
        raise ValueError(f"coupling must be ({k},{k})")
    n_nodes = nx * ny * nz
    node = np.arange(n_nodes).reshape(nx, ny, nz)
    builder = CooBuilder((n_nodes * k, n_nodes * k))
    for (dx, dy, dz), w in zip(offsets, values):
        src = node[
            max(0, -dx) : nx - max(0, dx),
            max(0, -dy) : ny - max(0, dy),
            max(0, -dz) : nz - max(0, dz),
        ].ravel()
        dst = node[
            max(0, dx) : nx - max(0, -dx),
            max(0, dy) : ny - max(0, -dy),
            max(0, dz) : nz - max(0, -dz),
        ].ravel()
        if src.size == 0:
            continue
        for a in range(k):
            for c in range(k):
                if coupling[a, c] == 0.0:
                    continue
                builder.add(dst * k + a, src * k + c, w * coupling[a, c])
    return builder.build().to_csr()
