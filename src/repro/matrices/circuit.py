"""Circuit-simulation analog of ``G3_circuit``.

G3_circuit (1.585M rows, 4.8 nnz/row, SPD) is a circuit conductance matrix:
extremely sparse, and — crucially for the paper's Fig. 6 — its *natural*
(netlist) ordering has no spatial locality, so a block-row split under
natural ordering reaches the full index set after very few matrix powers,
while RCM/k-way reorderings restore locality.

The analog is a 2-D 5-point grid Laplacian (4.96 nnz/row interior) with a
sprinkling of random long-range "wires", presented under a random
permutation as its natural ordering.  RCM/KWY recover the grid locality
just as they do for the real netlist.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import CooBuilder
from ..sparse.csr import CsrMatrix

__all__ = ["g3_circuit"]


def g3_circuit(
    nx: int = 128,
    ny: int | None = None,
    long_range_fraction: float = 0.01,
    scramble: bool = True,
    seed: int = 20140519,
) -> CsrMatrix:
    """Irregular conductance-matrix analog (SPD, ~4.8-5 nnz/row).

    Parameters
    ----------
    nx, ny
        Underlying grid (n = nx * ny unknowns; 16384 by default).
    long_range_fraction
        Fraction of nodes given one extra random long-range connection.
    scramble
        Present the matrix under a random permutation — the "natural"
        netlist ordering with no locality.  Set ``False`` to expose the
        underlying grid ordering directly.
    seed
        Deterministic generator seed.
    """
    if ny is None:
        ny = nx
    if nx < 2 or ny < 2:
        raise ValueError("grid must be at least 2 x 2")
    if not 0.0 <= long_range_fraction <= 1.0:
        raise ValueError("long_range_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    builder = CooBuilder((n, n))
    # Grid conductances with mild random variation (well-conditioned SPD).
    def _edge(a: np.ndarray, c: np.ndarray) -> None:
        g = 0.8 + 0.4 * rng.random(a.size)
        builder.add(a, c, -g)
        builder.add(c, a, -g)
        builder.add(a, a, g)
        builder.add(c, c, g)

    _edge(idx[1:, :].ravel(), idx[:-1, :].ravel())
    _edge(idx[:, 1:].ravel(), idx[:, :-1].ravel())
    n_extra = int(long_range_fraction * n)
    if n_extra:
        a = rng.integers(0, n, n_extra)
        c = rng.integers(0, n, n_extra)
        keep = a != c
        _edge(a[keep], c[keep])
    # Ground a few nodes so the Laplacian is nonsingular.
    grounded = rng.choice(n, size=max(1, n // 100), replace=False)
    builder.add(grounded, grounded, 1.0)
    matrix = builder.build().to_csr()
    if scramble:
        perm = rng.permutation(n)
        matrix = matrix.permute(perm)
    return matrix
