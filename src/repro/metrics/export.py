"""Exporters: Prometheus text exposition and a stable JSON snapshot.

Both formats are deterministic: families sorted by name, samples sorted by
label values, numbers rendered with ``repr`` (so ``0.1`` round-trips
exactly).  Wall-clock metrics (families registered with
``wall_clock=True``) are *included* by default — they are real telemetry —
but can be excluded with ``include_wall_clock=False``, which is what the
determinism tests and the CLI's ``--check`` mode compare.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import HistogramFamily, MetricsRegistry

__all__ = [
    "to_prometheus",
    "snapshot",
    "deterministic_snapshot",
    "write_snapshot",
    "SNAPSHOT_SCHEMA",
]

#: Schema tag stamped into every JSON snapshot.
SNAPSHOT_SCHEMA = "repro-metrics/1"


def _fmt(value) -> str:
    """Deterministic Prometheus-compatible number rendering."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f != f:  # NaN
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry: MetricsRegistry, include_wall_clock: bool = True) -> str:
    """The registry as Prometheus text exposition (version 0.0.4).

    Histograms render the standard cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for family in registry.families(include_wall_clock=include_wall_clock):
        lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, HistogramFamily):
            for labelvalues, entry in family.samples():
                cum = 0
                for edge, count in zip(family.edges, entry["buckets"]):
                    cum += count
                    labels = _label_str(
                        family.labelnames, labelvalues, extra=(("le", _fmt(edge)),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {cum}")
                labels = _label_str(
                    family.labelnames, labelvalues, extra=(("le", "+Inf"),)
                )
                lines.append(f"{family.name}_bucket{labels} {entry['count']}")
                labels = _label_str(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{labels} {_fmt(entry['sum'])}")
                lines.append(f"{family.name}_count{labels} {entry['count']}")
        else:
            for labelvalues, value in family.samples():
                labels = _label_str(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry, include_wall_clock: bool = True) -> dict:
    """The registry as a stable, JSON-friendly dict.

    Shape::

        {"schema": "repro-metrics/1",
         "metrics": {name: {"type", "help", "labelnames", "wall_clock",
                            "buckets" (histograms only),
                            "samples": [{"labels": {...}, ...}, ...]}}}

    Sample payloads: scalar ``"value"`` for counters/gauges;
    ``"buckets"`` (cumulative counts per edge), ``"sum"``, ``"count"``
    for histograms.
    """
    metrics: dict = {}
    for family in registry.families(include_wall_clock=include_wall_clock):
        samples = []
        for labelvalues, entry in family.samples():
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(family, HistogramFamily):
                cum, cum_counts = 0, []
                for count in entry["buckets"][:-1]:
                    cum += count
                    cum_counts.append(cum)
                samples.append(
                    {
                        "labels": labels,
                        "buckets": cum_counts,
                        "sum": entry["sum"],
                        "count": entry["count"],
                    }
                )
            else:
                samples.append({"labels": labels, "value": entry})
        spec = {
            "type": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
            "wall_clock": family.wall_clock,
            "samples": samples,
        }
        if isinstance(family, HistogramFamily):
            spec["buckets"] = list(family.edges)
        metrics[family.name] = spec
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


def deterministic_snapshot(registry: MetricsRegistry) -> dict:
    """Snapshot restricted to deterministic (simulated-time) metrics."""
    return snapshot(registry, include_wall_clock=False)


def write_snapshot(registry: MetricsRegistry, path, include_wall_clock=True) -> Path:
    """Serialize :func:`snapshot` to ``path`` as sorted, indented JSON."""
    path = Path(path)
    doc = snapshot(registry, include_wall_clock=include_wall_clock)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
