"""Aggregated, exportable telemetry for the simulated CA-GMRES stack.

* :mod:`repro.metrics.registry` — deterministic labeled metric families
  (Counter / Gauge / Histogram with fixed bucket edges);
* :mod:`repro.metrics.export` — Prometheus text exposition + stable JSON
  snapshots;
* :mod:`repro.metrics.collect` — observers that bridge runtime, solver,
  serving, and fault state into a registry;
* :mod:`repro.metrics.workload` — the quick fig14-style workload behind
  ``python -m repro metrics``;
* :mod:`repro.metrics.gate` — the benchmark perf-regression gate
  (``scripts/perf_gate.py``).
"""

from .collect import (
    cycle_observer,
    observe_context,
    observe_faults,
    observe_plan_cache,
    observe_result,
    observe_solve,
)
from .export import (
    SNAPSHOT_SCHEMA,
    deterministic_snapshot,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from .registry import (
    BLOCK_LENGTH_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    SIM_TIME_BUCKETS,
    WALL_TIME_BUCKETS,
)

__all__ = [
    "MetricsRegistry",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "SIM_TIME_BUCKETS",
    "WALL_TIME_BUCKETS",
    "BLOCK_LENGTH_BUCKETS",
    "to_prometheus",
    "snapshot",
    "deterministic_snapshot",
    "write_snapshot",
    "SNAPSHOT_SCHEMA",
    "observe_context",
    "observe_result",
    "observe_faults",
    "observe_solve",
    "observe_plan_cache",
    "cycle_observer",
]
