"""Deterministic labeled metrics: Counter / Gauge / Histogram families.

The paper's whole argument is quantitative — per-kernel time breakdowns
(Figs. 11-15), communication counts and volumes (Fig. 10, Section IV) —
and a serving deployment needs the same numbers *aggregated over many
solves* and *comparable over time*, not just per-solve dicts.
:class:`MetricsRegistry` is the aggregation point: a named set of metric
families, each holding one sample per label combination, exported as
Prometheus text exposition or a stable JSON snapshot (see
:mod:`repro.metrics.export`).

Design constraints (enforced by tests):

* **Deterministic.**  Registry contents are a pure function of the
  observations made.  Exports order families by name and samples by label
  values, and format numbers with ``repr``, so two identical runs produce
  byte-identical output.  Metrics fed from *host wall-clock* measurements
  (plan-build times, serving latencies) are declared with
  ``wall_clock=True`` and can be excluded wholesale
  (``include_wall_clock=False``) — the determinism guarantee covers the
  simulated-time remainder.
* **Fixed histogram buckets.**  Bucket edges are declared at registration
  and never adapt to the data, so histograms from different runs (or
  different commits) are directly comparable, bucket by bucket.
* **Free when disabled.**  ``MetricsRegistry(enabled=False)`` hands out a
  shared null family whose ``inc``/``set``/``observe`` are single-``pass``
  no-ops, so instrumented hot paths cost nothing and results stay
  bit-identical to uninstrumented runs.
"""

from __future__ import annotations

import re

__all__ = [
    "MetricsRegistry",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "SIM_TIME_BUCKETS",
    "WALL_TIME_BUCKETS",
    "BLOCK_LENGTH_BUCKETS",
]

#: Fixed bucket edges (seconds) for *simulated*-time histograms: restart
#: cycles on the modeled hardware run in the 0.1 ms - 1 s range.
SIM_TIME_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0
)

#: Fixed bucket edges (seconds) for *host wall-clock* histograms
#: (plan builds, serving request latency).
WALL_TIME_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0
)

#: Fixed bucket edges for adaptive-s block lengths (1 <= s <= m).
BLOCK_LENGTH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Family:
    """Base class: one named metric with a fixed label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames=(), wall_clock=False):
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        #: True when samples come from host wall-clock measurements and are
        #: therefore nondeterministic; exporters can exclude these.
        self.wall_clock = bool(wall_clock)
        self._samples: dict = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def samples(self) -> list:
        """``(labelvalues, value)`` pairs sorted by label values."""
        return sorted(self._samples.items())

    def clear(self) -> None:
        self._samples.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, samples={len(self._samples)})"


class CounterFamily(_Family):
    """Monotonically increasing tally (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class GaugeFamily(_Family):
    """Last-written value (per label combination)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class HistogramFamily(_Family):
    """Cumulative-bucket histogram with *fixed* edges.

    Each sample is ``[bucket_counts..., +Inf count is implicit via count]``
    stored as ``{"buckets": [int, ...], "sum": float, "count": int}`` where
    ``buckets[i]`` counts observations ``<= edges[i]`` (non-cumulative
    storage; exporters cumulate).
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), wall_clock=False,
                 buckets=SIM_TIME_BUCKETS):
        super().__init__(name, help, labelnames, wall_clock)
        edges = tuple(float(e) for e in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing and non-empty")
        self.edges = edges

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        entry = self._samples.get(key)
        if entry is None:
            entry = {"buckets": [0] * (len(self.edges) + 1), "sum": 0.0, "count": 0}
            self._samples[key] = entry
        value = float(value)
        # Index of the first edge >= value; the final slot is the +Inf bucket.
        lo = 0
        for i, edge in enumerate(self.edges):
            if value <= edge:
                lo = i
                break
        else:
            lo = len(self.edges)
        entry["buckets"][lo] += 1
        entry["sum"] += value
        entry["count"] += 1


class _NullFamily:
    """Shared sink for a disabled registry: every operation is a no-op."""

    kind = "null"
    name = "null"
    labelnames = ()
    wall_clock = False
    edges = ()

    def inc(self, amount=1.0, **labels):
        pass

    def set(self, value, **labels):
        pass

    def observe(self, value, **labels):
        pass

    def samples(self):
        return []

    def clear(self):
        pass


_NULL_FAMILY = _NullFamily()

_KINDS = {"counter": CounterFamily, "gauge": GaugeFamily, "histogram": HistogramFamily}


class MetricsRegistry:
    """A named, labeled, deterministic set of metric families.

    Families are get-or-create: asking twice for the same name returns the
    same family, and a redefinition with a different type or label schema
    raises (one name, one meaning — the exposition format requires it).

    With ``enabled=False`` every accessor returns a shared null family, so
    instrumentation can stay in place on hot paths at zero cost.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labelnames, wall_clock, **kwargs):
        if not self.enabled:
            return _NULL_FAMILY
        family = self._families.get(name)
        if family is not None:
            if type(family) is not cls or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
            if cls is HistogramFamily and family.edges != tuple(
                float(e) for e in kwargs.get("buckets", SIM_TIME_BUCKETS)
            ):
                raise ValueError(f"metric {name!r} already registered with other buckets")
            return family
        family = cls(name, help=help, labelnames=labelnames,
                     wall_clock=wall_clock, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name, help="", labelnames=(), wall_clock=False) -> CounterFamily:
        """Get or create a counter family."""
        return self._get_or_create(CounterFamily, name, help, labelnames, wall_clock)

    def gauge(self, name, help="", labelnames=(), wall_clock=False) -> GaugeFamily:
        """Get or create a gauge family."""
        return self._get_or_create(GaugeFamily, name, help, labelnames, wall_clock)

    def histogram(self, name, help="", labelnames=(), wall_clock=False,
                  buckets=SIM_TIME_BUCKETS) -> HistogramFamily:
        """Get or create a histogram family with *fixed* bucket edges."""
        return self._get_or_create(
            HistogramFamily, name, help, labelnames, wall_clock, buckets=buckets
        )

    # ------------------------------------------------------------------
    def families(self, include_wall_clock: bool = True) -> list[_Family]:
        """All families sorted by name (optionally without wall-clock ones)."""
        out = [self._families[k] for k in sorted(self._families)]
        if not include_wall_clock:
            out = [f for f in out if not f.wall_clock]
        return out

    def get(self, name: str) -> _Family | None:
        """Look up a family by name (None when absent or disabled)."""
        return self._families.get(name)

    def reset(self) -> None:
        """Clear every family's samples (registrations survive)."""
        for family in self._families.values():
            family.clear()

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"families={len(self._families)})"
        )
