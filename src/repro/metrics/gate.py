"""Benchmark perf-regression gate: compare fresh results against baselines.

A benchmark run (``benchmarks/bench_serving.py`` → ``BENCH_serving.json``,
or the metrics CLI's fig14 workload → ``fig14_sim.json``) carries both
deterministic simulated-time results and nondeterministic host wall-clock
numbers.  The gate compares only the former — simulated times, iteration
counts, bit-identity flags — against a committed baseline with per-metric
tolerances, so a perf or convergence regression fails CI while runner
noise cannot.

Baseline schema (``repro-perf-baseline/1``)::

    {"schema": "repro-perf-baseline/1",
     "source": "<benchmark name / provenance note>",
     "metrics": {name: {"value": float,
                        "direction": "lower_is_better" | "exact",
                        "max_rel_increase": float}}}

``lower_is_better`` fails when ``current > value * (1 + max_rel_increase)``
(improvements always pass; refresh the baseline with ``--update`` to
ratchet them in).  ``exact`` fails on any difference — used for invariants
like the serving bench's bit-identity flag.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BASELINE_SCHEMA",
    "extract_metrics",
    "make_baseline",
    "compare",
    "format_violations",
    "run_gate",
]

#: Schema tag stamped into every baseline file.
BASELINE_SCHEMA = "repro-perf-baseline/1"

#: Default relative tolerance for simulated timings.  Simulated time is
#: deterministic for a fixed environment but may shift a few percent when
#: numpy/BLAS versions change the convergence trajectory.
SIM_TIME_TOL = 0.10

#: Iteration counts may drift more before it means a real regression.
ITERATIONS_TOL = 0.25


def _lower(value: float, tol: float) -> dict:
    return {
        "value": float(value),
        "direction": "lower_is_better",
        "max_rel_increase": float(tol),
    }


def _exact(value: float) -> dict:
    return {"value": float(value), "direction": "exact", "max_rel_increase": 0.0}


def extract_metrics(doc: dict) -> dict[str, dict]:
    """The gated (deterministic) metrics of one benchmark document.

    Dispatches on ``doc["benchmark"]``: ``"serving"``
    (``BENCH_serving.json``) or ``"fig14_quick_sim"`` (the metrics CLI's
    workload document).  Wall-clock latencies are deliberately *not*
    extracted.
    """
    kind = doc.get("benchmark")
    metrics: dict[str, dict] = {}
    if kind == "serving":
        for case in doc["cases"]:
            prefix = f"serving/{case['matrix']}"
            metrics[f"{prefix}/sim_time_ms"] = _lower(
                case["sim_time_ms"], SIM_TIME_TOL
            )
            metrics[f"{prefix}/iterations"] = _lower(
                case["iterations"], ITERATIONS_TOL
            )
        metrics["serving/all_bit_identical"] = _exact(
            1.0 if doc["summary"]["all_bit_identical"] else 0.0
        )
    elif kind == "fig14_quick_sim":
        for case in doc["cases"]:
            prefix = f"fig14/{case['matrix']}/{case['solver']}"
            metrics[f"{prefix}/sim_time_ms"] = _lower(
                case["sim_time_ms"], SIM_TIME_TOL
            )
            metrics[f"{prefix}/iterations"] = _lower(
                case["iterations"], ITERATIONS_TOL
            )
    else:
        raise ValueError(f"unknown benchmark document kind {kind!r}")
    return metrics


def make_baseline(doc: dict, source: str = "") -> dict:
    """A committable baseline file from one benchmark document."""
    return {
        "schema": BASELINE_SCHEMA,
        "source": source or str(doc.get("benchmark", "")),
        "metrics": extract_metrics(doc),
    }


def compare(current_doc: dict, baseline: dict) -> list[dict]:
    """Violations of ``baseline`` by ``current_doc`` (empty = gate passes).

    Every baseline metric must be present in the current run — a silently
    dropped case would otherwise pass the gate forever.  Metrics new in
    the current run are ignored (they gate once baselined).
    """
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} != {BASELINE_SCHEMA!r}"
        )
    current = extract_metrics(current_doc)
    violations = []
    for name, spec in sorted(baseline["metrics"].items()):
        base_value = float(spec["value"])
        entry = current.get(name)
        if entry is None:
            violations.append(
                {
                    "metric": name,
                    "baseline": base_value,
                    "current": None,
                    "limit": base_value,
                    "reason": "metric missing from current run",
                }
            )
            continue
        value = float(entry["value"])
        if spec["direction"] == "exact":
            if value != base_value:
                violations.append(
                    {
                        "metric": name,
                        "baseline": base_value,
                        "current": value,
                        "limit": base_value,
                        "reason": "exact metric changed",
                    }
                )
        else:
            limit = base_value * (1.0 + float(spec["max_rel_increase"]))
            if value > limit:
                violations.append(
                    {
                        "metric": name,
                        "baseline": base_value,
                        "current": value,
                        "limit": limit,
                        "reason": (
                            f"regressed {100.0 * (value / base_value - 1.0):.1f}% "
                            f"(allowed {100.0 * float(spec['max_rel_increase']):.0f}%)"
                        ),
                    }
                )
    return violations


def format_violations(violations: list[dict]) -> str:
    """Human-readable report, one line per violation."""
    if not violations:
        return "perf gate: PASS"
    lines = [f"perf gate: FAIL ({len(violations)} violation(s))"]
    for v in violations:
        cur = "absent" if v["current"] is None else f"{v['current']:.6g}"
        lines.append(
            f"  {v['metric']}: current {cur} vs baseline "
            f"{v['baseline']:.6g} (limit {v['limit']:.6g}) — {v['reason']}"
        )
    return "\n".join(lines)


def run_gate(current_path, baseline_path, update: bool = False) -> int:
    """File-level gate driver (the ``scripts/perf_gate.py`` entry point).

    Returns a process exit code: 0 on pass (or after ``--update``
    rewrites the baseline), 1 on regression.
    """
    current_path = Path(current_path)
    baseline_path = Path(baseline_path)
    doc = json.loads(current_path.read_text())
    if update:
        baseline = make_baseline(
            doc, source=f"{doc.get('benchmark')} ({current_path.name})"
        )
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {baseline_path} ({len(baseline['metrics'])} metrics)")
        return 0
    if not baseline_path.exists():
        print(f"perf gate: baseline {baseline_path} not found")
        return 1
    baseline = json.loads(baseline_path.read_text())
    violations = compare(doc, baseline)
    print(format_violations(violations))
    return 1 if violations else 0
