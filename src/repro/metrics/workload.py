"""The metrics CLI's workload: a quick fig14-style serving suite.

``python -m repro metrics`` needs a workload that (a) exercises every
instrumented layer — solvers, serving sessions with cold/warm/batched
solves, plan cache, runtime counters — and (b) finishes in seconds, so the
CLI and the CI regression gate can run it on every commit.  This module
scales the Fig. 14 suite (cant / G3_circuit / dielFilter analogs) down to
a few thousand rows per matrix, keeping the paper's per-matrix solver
configurations (restart length, block length, reorthogonalization).

Everything simulated is a pure function of (suite, n_gpus, basis):
:func:`run_workload` returns a registry whose deterministic snapshot is
byte-identical across reruns, plus a fig14-style timing document for the
perf-regression gate (:mod:`repro.metrics.gate`).
"""

from __future__ import annotations

import numpy as np

from ..matrices import cant, dielfilter, g3_circuit
from ..matrices.stencil import poisson2d
from ..serve import SolverSession
from .registry import MetricsRegistry

__all__ = ["SUITES", "run_workload"]

#: Per-suite case tables: matrix builder + solver configuration.  The
#: ``quick`` suite mirrors the Fig. 14 matrices at reduced sizes; ``tiny``
#: is a single small stencil for smoke tests.
SUITES = {
    "quick": {
        "cant": dict(
            build=lambda: cant(nx=24, ny=8, nz=8), m=60, s=15, reorth=2,
        ),
        "g3_circuit": dict(
            build=lambda: g3_circuit(nx=64, ny=64), m=30, s=15, reorth=1,
        ),
        "dielfilter": dict(
            build=lambda: dielfilter(nx=12, ny=12, nz=12), m=60, s=15, reorth=2,
        ),
    },
    "tiny": {
        "poisson2d": dict(
            build=lambda: poisson2d(16), m=12, s=4, reorth=1,
        ),
    },
}

#: Restart-loop cap, as in the fig14 benchmark (timings are per-loop
#: averages, so capped runs are representative and fast).
MAX_RESTARTS = 4


def run_workload(
    n_gpus: int = 2,
    suite: str = "quick",
    basis: str = "newton",
    registry: MetricsRegistry | None = None,
) -> tuple[MetricsRegistry, dict]:
    """Run the serving workload; returns ``(registry, fig14_doc)``.

    Per matrix, a GMRES/CGS session and a CA-GMRES session each answer a
    cold solve, a warm solve, and (CA only) a batched ``solve_many`` —
    exercising plan-cache misses and hits, single and batched serving
    paths, and both solvers' cycle hooks.  ``fig14_doc`` carries the warm
    solves' simulated timings in the shape the regression gate consumes.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {sorted(SUITES)}")
    if registry is None:
        registry = MetricsRegistry()
    cases = []
    for matrix_name, spec in SUITES[suite].items():
        A = spec["build"]()
        b = np.ones(A.n_rows)
        for solver, extra in (
            ("gmres", {}),
            ("ca", dict(s=spec["s"], basis=basis, reorth=spec["reorth"])),
        ):
            sess = SolverSession(
                A,
                solver=solver,
                n_gpus=n_gpus,
                m=spec["m"],
                tol=1e-4,
                max_restarts=MAX_RESTARTS,
                metrics=registry,
                metrics_label=matrix_name,
                **extra,
            )
            sess.solve(b)  # cold: builds the structural plan
            warm = sess.solve(b)  # warm: bit-identical, plan-cache hit
            if solver == "ca":
                sess.solve_many([b, 2.0 * b])
            cases.append(
                {
                    "matrix": matrix_name,
                    "solver": sess._solver_label,
                    "sim_time_ms": 1e3 * warm.total_time,
                    "iterations": warm.n_iterations,
                    "restarts": warm.n_restarts,
                    "converged": bool(warm.converged),
                }
            )
    fig14_doc = {
        "benchmark": "fig14_quick_sim",
        "suite": suite,
        "n_gpus": n_gpus,
        "basis": basis,
        "max_restarts": MAX_RESTARTS,
        "cases": cases,
    }
    return registry, fig14_doc
