"""Observers: bridge runtime, solver, serving, and fault state into metrics.

Every metric family the repo emits is declared here, once, with its
canonical label schema — callers (the solvers' cycle hook, the serving
session, the fault campaign, ``python -m repro metrics``) all go through
these constructors, so a name can never be registered twice with different
labels.

Label conventions, following the paper's vocabulary:

* ``solver`` — ``"gmres"`` / ``"ca_gmres"`` / ``"pipelined"``;
* ``matrix`` — workload label (``"cant"``, ``"g3_circuit"``, ...);
* ``device`` — trace lane (``"gpu0"``.., ``"host"``);
* ``kernel`` — ``"op/variant"`` exactly as in ``Counters.kernel_counts``
  (``"gemm_tn/cublas"``, ``"spmv_ell/cusparse"``, ...);
* ``phase``  — solver region (``"mpk"``, ``"borth"``, ``"tsqr"``, ...).

All observers aggregate *into* the registry (counters add, histograms
observe); gauges describe the most recent observation.  Everything here is
derived from simulated time and deterministic counters — wall-clock
metrics live with their emitters (:mod:`repro.serve`) and are flagged
``wall_clock=True`` there.
"""

from __future__ import annotations

from .registry import (
    BLOCK_LENGTH_BUCKETS,
    MetricsRegistry,
    SIM_TIME_BUCKETS,
    WALL_TIME_BUCKETS,
)

__all__ = [
    "observe_context",
    "observe_result",
    "observe_faults",
    "observe_solve",
    "observe_plan_cache",
    "cycle_observer",
]

_SM = ("solver", "matrix")  # the common label pair


# ---------------------------------------------------------------------------
# Canonical family constructors (get-or-create on the given registry)
# ---------------------------------------------------------------------------
def solver_cycle_seconds(reg: MetricsRegistry):
    """Per-restart-cycle simulated duration (fed by the on_cycle hook)."""
    return reg.histogram(
        "repro_solver_cycle_seconds",
        "Simulated duration of one restart cycle",
        labelnames=_SM, buckets=SIM_TIME_BUCKETS,
    )


def serve_request_seconds(reg: MetricsRegistry):
    """Host wall-clock latency of one serving request (nondeterministic)."""
    return reg.histogram(
        "repro_serve_request_seconds",
        "Host wall-clock latency of one serving request "
        "(cold = the request built the structural plan)",
        labelnames=_SM + ("plan",), wall_clock=True, buckets=WALL_TIME_BUCKETS,
    )


def serve_requests_total(reg: MetricsRegistry):
    return reg.counter(
        "repro_serve_requests_total",
        "Solve requests answered by a SolverSession",
        labelnames=_SM + ("mode",),
    )


def serve_batch_occupancy(reg: MetricsRegistry):
    return reg.gauge(
        "repro_serve_batch_occupancy",
        "Fraction of interleave slots that advanced a restart cycle "
        "in the last solve_many batch",
        labelnames=_SM,
    )


def serve_batch_rhs_total(reg: MetricsRegistry):
    return reg.counter(
        "repro_serve_batch_rhs_total",
        "Right-hand sides answered through solve_many",
        labelnames=_SM,
    )


def plan_cache_requests_total(reg: MetricsRegistry):
    return reg.counter(
        "repro_plan_cache_requests_total",
        "Plan-cache lookups by level (host/structural) and outcome",
        labelnames=("level", "outcome"),
    )


def plan_cache_invalidations_total(reg: MetricsRegistry):
    return reg.counter(
        "repro_plan_cache_invalidations_total",
        "Structural plans dropped (roster change or stale partition)",
    )


def plan_build_seconds(reg: MetricsRegistry):
    """Host wall-clock cost of a plan-cache miss (nondeterministic)."""
    return reg.histogram(
        "repro_plan_build_seconds",
        "Host wall-clock time to build a missed plan",
        labelnames=("level",), wall_clock=True, buckets=WALL_TIME_BUCKETS,
    )


# ---------------------------------------------------------------------------
# Context: utilization, kernels, transfers (derived from trace + counters)
# ---------------------------------------------------------------------------
def observe_context(reg: MetricsRegistry, ctx, solver: str = "", matrix: str = "") -> None:
    """Record one finished run's runtime telemetry from ``ctx``.

    Utilization is derived from the structured event trace: a device is
    *busy* while a kernel interval occupies its lane, the PCIe bus while a
    transfer occupies the ``pcie`` lane; *elapsed* is the latest event end.
    Kernel-launch / transfer / flop counters are bridged from
    :class:`~repro.gpu.counters.Counters`.
    """
    if not reg.enabled:
        return
    labels = {"solver": solver, "matrix": matrix}
    trace = ctx.trace
    elapsed = trace.end_time()
    busy = trace.lane_busy_totals()

    busy_total = reg.counter(
        "repro_lane_busy_seconds_total",
        "Simulated busy seconds per lane (kernel time for devices/host, "
        "transfer time for the PCIe bus)",
        labelnames=_SM + ("device",),
    )
    util = reg.gauge(
        "repro_lane_utilization",
        "Busy fraction of the last observed run per lane",
        labelnames=_SM + ("device",),
    )
    active = reg.gauge(
        "repro_device_active",
        "1 when the device finished the run on the active roster",
        labelnames=_SM + ("device",),
    )
    lanes = [dev.name for dev in ctx.all_devices] + ["host", "pcie"]
    for lane in lanes:
        lane_busy = busy.get(lane, 0.0)
        busy_total.inc(lane_busy, device=lane, **labels)
        util.set(lane_busy / elapsed if elapsed > 0 else 0.0, device=lane, **labels)
    for dev in ctx.all_devices:
        active.set(0.0 if dev.name in ctx.inactive_devices else 1.0,
                   device=dev.name, **labels)

    reg.counter(
        "repro_sim_seconds_total", "Simulated elapsed seconds across runs",
        labelnames=_SM,
    ).inc(elapsed, **labels)

    counters = ctx.counters
    launches = reg.counter(
        "repro_kernel_launches_total", "Kernel launches by op/variant",
        labelnames=_SM + ("kernel",),
    )
    for kernel, count in sorted(counters.kernel_counts.items()):
        launches.inc(count, kernel=kernel, **labels)
    kernel_seconds = reg.counter(
        "repro_kernel_seconds_total",
        "Simulated kernel seconds by op/variant and lane",
        labelnames=_SM + ("kernel", "device"),
    )
    for kernel, entry in sorted(trace.kernel_totals().items()):
        for lane, seconds in sorted(entry["by_lane"].items()):
            kernel_seconds.inc(seconds, kernel=kernel, device=lane, **labels)

    messages = reg.counter(
        "repro_transfer_messages_total", "PCIe messages by direction",
        labelnames=_SM + ("direction",),
    )
    volume = reg.counter(
        "repro_transfer_bytes_total", "PCIe bytes by direction",
        labelnames=_SM + ("direction",),
    )
    messages.inc(counters.h2d_messages, direction="h2d", **labels)
    messages.inc(counters.d2h_messages, direction="d2h", **labels)
    volume.inc(counters.h2d_bytes, direction="h2d", **labels)
    volume.inc(counters.d2h_bytes, direction="d2h", **labels)

    flops = reg.counter(
        "repro_flops_total", "Modeled floating-point operations by resource",
        labelnames=_SM + ("resource",),
    )
    flops.inc(counters.device_flops, resource="device", **labels)
    flops.inc(counters.host_flops, resource="host", **labels)

    reg.counter(
        "repro_device_deactivations_total",
        "Devices deactivated mid-run (degraded-mode operation)",
        labelnames=_SM,
    ).inc(counters.device_deactivations, **labels)
    reg.counter(
        "repro_repartitions_total",
        "Live repartitions performed by the runtime",
        labelnames=_SM,
    ).inc(counters.repartitions, **labels)


# ---------------------------------------------------------------------------
# Solve results: convergence telemetry
# ---------------------------------------------------------------------------
def observe_result(reg: MetricsRegistry, result, solver: str = "", matrix: str = "") -> None:
    """Record one :class:`~repro.core.convergence.SolveResult`."""
    if not reg.enabled:
        return
    labels = {"solver": solver, "matrix": matrix}
    reg.counter(
        "repro_solves_total", "Completed solves by convergence outcome",
        labelnames=_SM + ("converged",),
    ).inc(1, converged="yes" if result.converged else "no", **labels)
    reg.counter(
        "repro_restart_cycles_total", "Restart cycles executed",
        labelnames=_SM,
    ).inc(result.n_restarts, **labels)
    reg.counter(
        "repro_iterations_total", "Inner iterations (basis vectors generated)",
        labelnames=_SM,
    ).inc(result.n_iterations, **labels)
    reg.counter(
        "repro_tsqr_fallbacks_total",
        "CholQR breakdowns absorbed by the CAQR fallback",
        labelnames=_SM,
    ).inc(result.breakdowns, **labels)

    phase_seconds = reg.counter(
        "repro_phase_seconds_total",
        "Simulated exclusive seconds per solver phase (region)",
        labelnames=_SM + ("phase",),
    )
    for phase, seconds in sorted(result.timers.items()):
        phase_seconds.inc(seconds, phase=phase, **labels)

    history = result.history
    if history.initial_residual > 0 and history.true_residuals:
        rel = history.true_residuals[-1][1] / history.initial_residual
        reg.gauge(
            "repro_residual_relative",
            "Final true residual relative to the initial residual "
            "(last observed solve)",
            labelnames=_SM,
        ).set(rel, **labels)
    reg.counter(
        "repro_residual_estimates_total",
        "Givens residual estimates recorded along the trajectory",
        labelnames=_SM,
    ).inc(len(history.estimates), **labels)

    s_history = result.details.get("s_history")
    if s_history:
        block_lengths = reg.histogram(
            "repro_adaptive_block_length",
            "Block lengths chosen by the adaptive-s scheme",
            labelnames=_SM, buckets=BLOCK_LENGTH_BUCKETS,
        )
        for record in s_history:
            block_lengths.observe(record["s_used"], **labels)

    if "faults" in result.details or "degradation" in result.details:
        observe_faults(reg, result, solver=solver, matrix=matrix)


def observe_faults(reg: MetricsRegistry, result, solver: str = "", matrix: str = "") -> None:
    """Record fault-injection and degraded-mode telemetry from a result."""
    if not reg.enabled:
        return
    labels = {"solver": solver, "matrix": matrix}
    faults = result.details.get("faults")
    if faults is not None:
        injected = reg.counter(
            "repro_faults_injected_total", "Faults injected by kind",
            labelnames=_SM + ("kind",),
        )
        kinds: dict[str, int] = {}
        for record in faults["injected"]:
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        for kind, count in sorted(kinds.items()):
            injected.inc(count, kind=kind, **labels)
        reg.counter(
            "repro_faults_detected_total", "Faults detected by the guards",
            labelnames=_SM,
        ).inc(faults["counts"]["detected"], **labels)
        recovered = reg.counter(
            "repro_faults_recovered_total", "Recoveries by action",
            labelnames=_SM + ("action",),
        )
        actions: dict[str, int] = {}
        for record in faults["recovered"]:
            actions[record["action"]] = actions.get(record["action"], 0) + 1
        for action, count in sorted(actions.items()):
            recovered.inc(count, action=action, **labels)
        reg.counter(
            "repro_panel_retries_total",
            "Poisoned panels regenerated without a cycle redo",
            labelnames=_SM,
        ).inc(actions.get("panel-retry", 0), **labels)
        reg.counter(
            "repro_faults_unrecovered_total", "Faults that defeated recovery",
            labelnames=_SM,
        ).inc(faults["counts"]["unrecovered"], **labels)
        reg.counter(
            "repro_solver_aborts_total",
            "Solves stopped early by an unrecoverable fault",
            labelnames=_SM,
        ).inc(1 if faults["aborted"] else 0, **labels)
        reg.counter(
            "repro_devices_lost_total", "Devices lost to dropout faults",
            labelnames=_SM,
        ).inc(len(faults["lost_devices"]), **labels)
    degradation = result.details.get("degradation")
    if degradation is not None:
        reg.counter(
            "repro_degrade_repartitions_total",
            "Repartitions performed by a degrade policy",
            labelnames=_SM,
        ).inc(degradation["n_repartitions"], **labels)
        reg.counter(
            "repro_deadline_overruns_total",
            "Solves stopped by the simulated-time deadline",
            labelnames=_SM,
        ).inc(1 if degradation["deadline_exceeded"] else 0, **labels)


def observe_solve(reg: MetricsRegistry, ctx, result, solver: str = "", matrix: str = "") -> None:
    """Record one solve end-to-end: runtime telemetry + convergence."""
    observe_context(reg, ctx, solver=solver, matrix=matrix)
    observe_result(reg, result, solver=solver, matrix=matrix)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
def observe_plan_cache(reg: MetricsRegistry, cache) -> None:
    """Mirror a :class:`~repro.serve.plan.PlanCache`'s stats into gauges.

    Live hit/miss/build metrics are emitted by the cache itself when its
    ``metrics`` attribute is set; this after-the-fact bridge covers caches
    that were not born instrumented.
    """
    if not reg.enabled:
        return
    stat_gauge = reg.gauge(
        "repro_plan_cache_stat",
        "PlanCache.stats values (cumulative over the cache's lifetime)",
        labelnames=("stat",),
    )
    for stat, value in sorted(cache.stats.items()):
        stat_gauge.set(value, stat=stat)
    size = reg.gauge(
        "repro_plan_cache_entries", "Resident plan-cache entries by level",
        labelnames=("level",),
    )
    size.set(len(cache.host_plans), level="host")
    size.set(len(cache.plans), level="structural")


# ---------------------------------------------------------------------------
# Per-cycle hook
# ---------------------------------------------------------------------------
def cycle_observer(reg: MetricsRegistry, solver: str = "", matrix: str = ""):
    """An ``on_cycle`` callback feeding the cycle-duration histogram.

    The solvers call it as ``on_cycle(index, start, end)`` (simulated
    seconds) at every completed restart cycle.
    """
    family = solver_cycle_seconds(reg)

    def on_cycle(index: int, start: float, end: float) -> None:
        family.observe(end - start, solver=solver, matrix=matrix)

    return on_cycle
