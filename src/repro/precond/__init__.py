"""Right preconditioning compatible with the matrix powers kernel.

The paper's related-work section points at MPK *with or without
preconditioning* (Hoemmen [4, Ch. 2]); the difficulty is that a
preconditioner applied per iteration reintroduces exactly the communication
MPK removes.  The CA-compatible route implemented here **folds** the
preconditioner into the operator once, up front:

    A x = b   ->   (A M^{-1}) y = b,   x = M^{-1} y,

with ``A M^{-1}`` materialized as an explicit sparse matrix, so MPK, BOrth,
and TSQR run unchanged on the folded operator.

* :class:`JacobiPreconditioner` — ``M = diag(A)``: folding is an exact
  column scaling (no fill).
* :class:`BlockJacobiPreconditioner` — ``M`` = the block diagonal of ``A``
  with small dense blocks: folding densifies each row only within the
  blocks it already touches (bounded fill).

Both drivers accept a ``preconditioner=`` argument and recover the original
variables automatically.
"""

from .jacobi import JacobiPreconditioner
from .block_jacobi import BlockJacobiPreconditioner

__all__ = ["JacobiPreconditioner", "BlockJacobiPreconditioner"]
