"""Diagonal (Jacobi) right preconditioning."""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner:
    """Right preconditioner ``M = diag(A)``.

    Folding ``A M^{-1}`` is an exact column scaling — zero fill, so the
    folded operator has identical sparsity and MPK's boundary sets are
    unchanged.

    Parameters
    ----------
    matrix
        The matrix whose diagonal defines ``M``.  Zero diagonal entries
        (which would make ``M`` singular) are replaced by 1.
    """

    def __init__(self, matrix: CsrMatrix):
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("JacobiPreconditioner requires a square matrix")
        diag = matrix.diagonal()
        self.diagonal = np.where(diag != 0.0, diag, 1.0)

    def fold(self, matrix: CsrMatrix) -> CsrMatrix:
        """Return the folded operator ``A M^{-1}`` (column scaling)."""
        return matrix.scale_cols(1.0 / self.diagonal)

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a folded-system solution back: ``x = M^{-1} y``."""
        return np.asarray(y, dtype=np.float64) / self.diagonal
