"""Block-Jacobi right preconditioning with explicit folding.

``M`` is the block diagonal of ``A`` with contiguous dense blocks of size
``block_size``.  Folding computes ``A M^{-1}`` exactly:

    (A M^{-1})[:, block_b] = A[:, block_b] @ M_b^{-1},

so each row of the folded operator fills (at most) the full width of every
block it already touches — fill is bounded by ``touched_blocks x
block_size`` per row, and the folded matrix stays sparse for small blocks.

The fold is implemented as one vectorized pass per block: every stored
entry ``(i, j)`` with ``j`` in block ``b`` contributes the dense row
``a_ij * Minv_b[j_local, :]`` to result row ``i``; duplicate contributions
are summed by the COO builder, which is exactly the row-block product.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..sparse.coo import CooBuilder
from ..sparse.csr import CsrMatrix

__all__ = ["BlockJacobiPreconditioner"]


def _robust_inverse(dense: np.ndarray, regularize: float) -> np.ndarray:
    """Invert a small dense block, regularizing the diagonal if singular."""
    k = dense.shape[0]
    bump = 0.0
    scale = max(float(np.abs(dense).max()), 1.0) if dense.size else 1.0
    for _ in range(60):
        try:
            inv = scipy.linalg.inv(dense + bump * np.eye(k), check_finite=False)
            if np.all(np.isfinite(inv)):
                return inv
        except (scipy.linalg.LinAlgError, ValueError):
            pass
        bump = max(regularize * scale, bump * 10.0)
    raise np.linalg.LinAlgError("block could not be regularized")  # pragma: no cover


class BlockJacobiPreconditioner:
    """Right preconditioner ``M = blockdiag(A)`` with dense blocks.

    Parameters
    ----------
    matrix
        Square matrix supplying the diagonal blocks.
    block_size
        Rows per block (the final block may be smaller).  Blocks are
        contiguous index ranges, matching the block-row data distribution.
    regularize
        Added to a block's diagonal if it is numerically singular, so the
        preconditioner always exists (a standard practical safeguard).
    """

    def __init__(self, matrix: CsrMatrix, block_size: int = 8, regularize: float = 1e-12):
        if matrix.n_rows != matrix.n_cols:
            raise ValueError("BlockJacobiPreconditioner requires a square matrix")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.n = matrix.n_rows
        self.block_size = int(block_size)
        self.block_starts = np.arange(0, self.n, self.block_size, dtype=np.int64)
        self._inverses: list[np.ndarray] = []
        dense_rows = matrix  # CSR row extraction per block
        for start in self.block_starts:
            stop = min(start + self.block_size, self.n)
            block_rows = dense_rows.extract_rows(np.arange(start, stop))
            dense = block_rows.to_dense()[:, start:stop]
            self._inverses.append(_robust_inverse(dense, regularize))

    @property
    def n_blocks(self) -> int:
        return len(self._inverses)

    def fold(self, matrix: CsrMatrix) -> CsrMatrix:
        """Return the folded operator ``A M^{-1}`` as an explicit CSR."""
        if matrix.n_rows != self.n or matrix.n_cols != self.n:
            raise ValueError("matrix size disagrees with the preconditioner")
        row_ids = np.repeat(np.arange(self.n), np.diff(matrix.indptr))
        block_of = matrix.indices // self.block_size
        builder = CooBuilder((self.n, self.n))
        for b, start in enumerate(self.block_starts):
            stop = min(start + self.block_size, self.n)
            width = stop - start
            mask = block_of == b
            if not mask.any():
                continue
            rows = row_ids[mask]
            local = matrix.indices[mask] - start
            vals = matrix.data[mask]
            # Each entry scatters a dense row of Minv_b into its block.
            contrib = vals[:, None] * self._inverses[b][local, :]
            builder.add(
                np.repeat(rows, width),
                np.tile(np.arange(start, stop), rows.size),
                contrib.ravel(),
            )
        folded = builder.build().to_csr()
        return folded

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a folded-system solution back: ``x = M^{-1} y``."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.n,):
            raise ValueError(f"y must have shape ({self.n},)")
        x = np.empty_like(y)
        for b, start in enumerate(self.block_starts):
            stop = min(start + self.block_size, self.n)
            x[start:stop] = self._inverses[b] @ y[start:stop]
        return x

    def apply_inverse(self, y: np.ndarray) -> np.ndarray:
        """Alias of :meth:`recover` (applies ``M^{-1}``)."""
        return self.recover(y)
