"""Single-vector Arnoldi orthogonalization for standard GMRES.

Standard GMRES orthogonalizes one new Krylov vector per iteration against
all previous basis vectors (the *Orth* step of Fig. 1).  Supported methods
match the paper's Fig. 3/14 GMRES rows:

* ``mgs`` — one global reduction per previous vector (BLAS-1);
* ``cgs`` — a single tall-skinny DGEMV projection plus a separate norm
  reduction (BLAS-2), the paper's fast GMRES configuration.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import OrthogonalizationError

__all__ = ["orthogonalize_vector"]


def orthogonalize_vector(
    ctx: MultiGpuContext,
    q_panels: list[DeviceArray] | None,
    v_cols: list[DeviceArray],
    method: str = "cgs",
    gemv_variant: str = "magma",
) -> np.ndarray:
    """Orthogonalize one distributed vector against the previous basis.

    Parameters
    ----------
    q_panels
        Per-device views of ``Q_{1:j}`` (``None``/0 columns on the first
        iteration).
    v_cols
        Per-device views of the new vector (overwritten with ``q_{j+1}``).
    method
        ``"mgs"`` or ``"cgs"``.
    gemv_variant
        Tall-skinny DGEMV implementation for CGS.

    Returns
    -------
    h
        The new Hessenberg column of length ``j+1``: projection
        coefficients followed by the normalization factor.
    """
    j = q_panels[0].data.shape[1] if q_panels is not None else 0
    h = np.zeros(j + 1, dtype=np.float64)
    if j > 0:
        if method == "cgs":
            partials = [
                blas.gemv_t(q, v, variant=gemv_variant)
                for q, v in zip(q_panels, v_cols)
            ]
            r = ctx.allreduce_sum(partials)
            h[:j] = r
            for b, (q, v) in zip(ctx.broadcast(r), zip(q_panels, v_cols)):
                blas.gemv_n_update(q, b, v, variant=gemv_variant)
        elif method == "mgs":
            for ell in range(j):
                cols = [q.view((slice(None), ell)) for q in q_panels]
                partials = [
                    blas.dot(ql, v) for ql, v in zip(cols, v_cols)
                ]
                r = float(ctx.allreduce_sum(partials)[0])
                h[ell] = r
                for b, (ql, v) in zip(
                    ctx.broadcast(np.array([r])), zip(cols, v_cols)
                ):
                    blas.axpy(-float(b.data[0]), ql, v)
        else:
            raise ValueError(f"unknown orthogonalization method {method!r}")
    partials = [blas.nrm2(v) for v in v_cols]
    norm = float(np.sqrt(ctx.allreduce_sum(partials)[0]))
    if norm == 0.0:
        raise OrthogonalizationError("Arnoldi breakdown: new vector vanished")
    h[j] = norm
    for b, v in zip(ctx.broadcast(np.array([norm])), v_cols):
        blas.scal(1.0 / float(b.data[0]), v)
    return h
