"""Cholesky QR TSQR (Section V-C, Fig. 9 bottom-left).

Three steps: (1) form the Gram matrix ``B = V^T V`` with one BLAS-3
tall-skinny DGEMM per GPU plus a host reduction; (2) Cholesky-factor
``R^T R = B`` on the CPU; (3) apply ``V := V R^{-1}`` with a device TRSM.

Only **2** GPU-CPU communication phases per panel (Fig. 10) and all device
flops are BLAS-3 — the fastest variant by far — but the Gram matrix squares
the panel's condition number (error ``O(eps * kappa^2)``), and the Cholesky
factorization fails outright when ``kappa(V)^2`` reaches ``1/eps``
(:class:`~repro.orth.errors.CholeskyBreakdown`).
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import CholeskyBreakdown

__all__ = ["tsqr_cholqr"]


def tsqr_cholqr(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    variant: str = "batched",
) -> np.ndarray:
    """In-place CholQR orthogonalization of a distributed tall-skinny panel.

    ``variant`` selects the tall-skinny DGEMM implementation — ``"batched"``
    is the paper's batched-DGEMM kernel, ``"cublas"`` the stock one.

    Returns the ``k x k`` upper-triangular R (host array).

    Raises
    ------
    CholeskyBreakdown
        If the Gram matrix is not numerically positive definite.
    """
    k_cols = panels[0].data.shape[1]
    partials = [blas.gemm_tn(p, p, variant=variant) for p in panels]
    B = ctx.allreduce_sum(partials)
    ctx.host.charge_small_dense("chol", k_cols)
    try:
        L = np.linalg.cholesky(B)
    except np.linalg.LinAlgError as exc:
        raise CholeskyBreakdown(
            f"Cholesky of the {k_cols}x{k_cols} Gram matrix failed "
            f"(panel condition number too large): {exc}"
        ) from exc
    R = L.T.copy()
    for b, p in zip(ctx.broadcast(R), panels):
        blas.trsm_right(p, b.data)
    return R
