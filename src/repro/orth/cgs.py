"""Classical Gram-Schmidt TSQR (Section V-B, Fig. 9 top-right).

Projects each column against *all* previous columns at once with a
tall-skinny DGEMV, aggregating the ``k-1`` reductions of MGS into one.
The normalization is fused into the same reduction: the device computes
``[V_{1:k-1}^T v_k ; v_k^T v_k]`` in one pass, and the CPU derives the
post-projection norm from the Pythagorean identity

    ||v - V r||^2 = ||v||^2 - ||r||^2        (V orthonormal, r = V^T v),

so each column costs exactly one reduction + one broadcast — the
``2(s+1)`` GPU-CPU communications of Fig. 10.  When cancellation makes the
identity unreliable (||r|| ~ ||v||, i.e. the column nearly lies in the
span of the previous ones) the routine falls back to an explicit second
norm reduction for that column.

The price of CGS is stability: the orthogonality error grows like
``O(eps * kappa^s)``, which is why the paper's CA-GMRES tables show CGS
needing reorthogonalization ("2x CGS") where CholQR does not.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import OrthogonalizationError

__all__ = ["tsqr_cgs"]

# ||v_new||^2 / ||v||^2 below this threshold means the Pythagorean norm has
# lost too many digits to cancellation; recompute the norm explicitly.
_PYTHAGOREAN_SAFE = 1e-8


def tsqr_cgs(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    variant: str = "magma",
) -> np.ndarray:
    """In-place CGS orthogonalization of a distributed tall-skinny panel.

    ``variant`` selects the tall-skinny DGEMV implementation — ``"magma"``
    is the paper's optimized one-thread-block-per-column kernel, ``"cublas"``
    the stock (slow) one.

    Returns the ``k x k`` upper-triangular R (host array).
    """
    k_cols = panels[0].data.shape[1]
    R = np.zeros((k_cols, k_cols), dtype=np.float64)
    for k in range(k_cols):
        col_k = [p.view((slice(None), k)) for p in panels]
        if k == 0:
            partials = [blas.nrm2(ck) for ck in col_k]
            norm = float(np.sqrt(ctx.allreduce_sum(partials)[0]))
            _normalize(ctx, col_k, norm, 0, R)
            continue
        prev = [p.view((slice(None), slice(0, k))) for p in panels]
        # Fused reduction: projection coefficients + squared column norm.
        partials = []
        for pv, ck in zip(prev, col_k):
            proj = blas.gemv_t(pv, ck, variant=variant)
            sq = blas.nrm2(ck)
            partials.append(
                DeviceArray(np.concatenate([proj.data, sq.data]), proj.device)
            )
        reduced = ctx.allreduce_sum(partials)
        r = reduced[:k]
        norm_sq = float(reduced[k])
        R[:k, k] = r
        new_norm_sq = norm_sq - float(r @ r)
        if norm_sq > 0.0 and new_norm_sq > _PYTHAGOREAN_SAFE * norm_sq:
            # Single broadcast carries [r ; norm]; update + scale on device.
            norm = float(np.sqrt(new_norm_sq))
            payload = np.concatenate([r, [norm]])
            for b, (pv, ck) in zip(ctx.broadcast(payload), zip(prev, col_k)):
                blas.gemv_n_update(pv, b.view(slice(0, k)), ck, variant=variant)
                blas.scal(1.0 / float(b.data[k]), ck)
            R[k, k] = norm
        else:
            # Cancellation: apply the update, then recompute the norm.
            for b, (pv, ck) in zip(ctx.broadcast(r), zip(prev, col_k)):
                blas.gemv_n_update(pv, b, ck, variant=variant)
            partials = [blas.nrm2(ck) for ck in col_k]
            norm = float(np.sqrt(max(ctx.allreduce_sum(partials)[0], 0.0)))
            _normalize(ctx, col_k, norm, k, R)
    return R


def _normalize(ctx, col_k, norm, k, R) -> None:
    if norm == 0.0:
        raise OrthogonalizationError(
            f"CGS breakdown: column {k} vanished after projection"
        )
    R[k, k] = norm
    for b, ck in zip(ctx.broadcast(np.array([norm])), col_k):
        blas.scal(1.0 / float(b.data[0]), ck)
