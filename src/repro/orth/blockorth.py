"""The combined Orth step of CA-GMRES: BOrth + TSQR (+ reorthogonalization).

Given the previously orthonormalized basis ``Q_{1:j}`` and a new MPK panel
``V`` of ``s+1`` (or fewer) columns, one pass computes

    C = Q^T V;  W = V - Q C;  W = Q_new R    (BOrth then TSQR)

so that ``V = Q C + Q_new R``.  A second pass ("2x" in the paper's tables)
reorthogonalizes ``Q_new`` the same way; the composed coefficients are

    C_total = C1 + C2 R1,   R_total = R2 R1,

still satisfying ``V = Q C_total + Q_final R_total``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .borth import borth
from .tsqr import tsqr

__all__ = ["BlockOrthResult", "orthogonalize_block"]


@dataclass(frozen=True)
class BlockOrthResult:
    """Coefficients of one block orthogonalization.

    ``V_original = Q_prev @ C + Q_new @ R`` with R upper triangular.
    """

    C: np.ndarray  # (j, k) projection coefficients (j may be 0)
    R: np.ndarray  # (k, k) upper-triangular intra-block factor


def orthogonalize_block(
    ctx: MultiGpuContext,
    q_panels: list[DeviceArray] | None,
    v_panels: list[DeviceArray],
    tsqr_method: str = "cholqr",
    borth_method: str = "cgs",
    reorth: int = 1,
    tsqr_variant: str | None = None,
) -> BlockOrthResult:
    """Orthogonalize a new panel against the basis and within itself.

    Parameters
    ----------
    q_panels
        Per-device views of the previous basis ``Q_{1:j}``; ``None`` or
        zero columns for the first block of a cycle.
    v_panels
        Per-device views of the new panel (overwritten with ``Q_new``).
    tsqr_method, borth_method
        Kernel choices (see :data:`~repro.orth.tsqr.TSQR_METHODS` and
        :data:`~repro.orth.borth.BORTH_METHODS`).
    reorth
        Total passes (2 = the paper's "2x" rows).  Reorthogonalization
        repeats *both* BOrth and TSQR.

    Returns
    -------
    BlockOrthResult
    """
    if reorth < 1:
        raise ValueError("reorth must be >= 1")
    k = v_panels[0].data.shape[1]
    j = q_panels[0].data.shape[1] if q_panels is not None else 0
    have_prev = j > 0
    C_total = np.zeros((j, k), dtype=np.float64)
    R_total = np.eye(k, dtype=np.float64)
    for _ in range(reorth):
        if have_prev:
            C_pass = borth(ctx, q_panels, v_panels, method=borth_method)
        else:
            C_pass = np.zeros((0, k), dtype=np.float64)
        R_pass = tsqr(ctx, v_panels, method=tsqr_method, variant=tsqr_variant)
        C_total = C_total + (C_pass @ R_total if have_prev else 0.0)
        R_total = R_pass @ R_total
    return BlockOrthResult(C=C_total, R=np.triu(R_total))
