"""Communication-Avoiding QR TSQR (Section V-E, Fig. 9 bottom-right).

Tree reduction of local Householder QR factorizations:

1. each GPU factors its local block row ``V^(d) = Q^(d)_loc R^(d)``
   (BLAS-1/2 GEQR2 + explicit Q formation);
2. the small ``R^(d)`` factors are gathered on the CPU and the stack
   ``[R^(1); …; R^(n_g)]`` is QR-factored there;
3. the corresponding ``k x k`` blocks of the stacked Q are scattered back
   and each GPU forms ``Q^(d)_loc @ Q^(d)`` with a small DGEMM.

Unconditionally stable (error ``O(eps)``, Fig. 10) and only 2 GPU-CPU
communication phases, but the local factorizations run at BLAS-1/2 rates —
in Fig. 11(c) CAQR tracks MGS's throughput rather than CholQR's.  The
explicit Q formation doubles the flop count to ``4 n s^2`` (the paper's
footnote 6 notes the same choice).
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import OrthogonalizationError

__all__ = ["tsqr_caqr"]


def tsqr_caqr(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    variant: str = "magma",
) -> np.ndarray:
    """In-place CAQR orthogonalization of a distributed tall-skinny panel.

    ``variant`` selects the local panel-QR implementation.  Returns the
    ``k x k`` upper-triangular R (host array).
    """
    k_cols = panels[0].data.shape[1]
    local_q: list[DeviceArray] = []
    r_factors: list[np.ndarray] = []
    for p in panels:
        if p.data.shape[0] < k_cols:
            raise OrthogonalizationError(
                "CAQR requires every local block to have at least as many "
                f"rows ({p.data.shape[0]}) as panel columns ({k_cols})"
            )
        q_loc, r_loc = blas.qr_panel(p, variant=variant)
        local_q.append(q_loc)
        # Ship the small R factor to the host (one d2h message per GPU).
        r_factors.append(ctx.d2h(DeviceArray(np.ascontiguousarray(r_loc), p.device)))
    stacked = np.vstack(r_factors)
    for _ in range(ctx.n_gpus):
        ctx.host.charge_small_dense("qr", k_cols)
    q_stack, R = np.linalg.qr(stacked, mode="reduced")
    # Fix the sign convention so R has a positive diagonal (determinism).
    signs = np.sign(np.diag(R))
    signs[signs == 0] = 1.0
    R = signs[:, None] * R
    q_stack = q_stack * signs[None, :]
    for d, (p, q_loc) in enumerate(zip(panels, local_q)):
        block = q_stack[d * k_cols : (d + 1) * k_cols]
        arrived = ctx.h2d(p.device, np.ascontiguousarray(block))
        combined = blas.gemm_nn(q_loc, arrived, variant="batched")
        p.data[...] = combined.data
    return R
