"""Block orthogonalization (*BOrth*) of a new panel against the basis.

After MPK produces the ``s+1`` candidate vectors, BOrth projects them
against the ``j`` previously orthonormalized basis vectors (Section V):

* **CGS-based** (the paper's default for the CA-GMRES tables): a single
  block projection ``V := V - Q (Q^T V)`` — one tall-skinny DGEMM pair and
  exactly 2 communication phases regardless of ``j``;
* **MGS-based**: one previous vector at a time,
  ``V := V - q_l (q_l^T V)`` — ``j`` reduction phases but better stability.

Both return the ``j x (s+1)`` projection coefficient block, which CA-GMRES
stores into the global triangular factor R̲.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray

__all__ = ["borth", "BORTH_METHODS", "borth_cgs", "borth_mgs"]


def borth_cgs(
    ctx: MultiGpuContext,
    q_panels: list[DeviceArray],
    v_panels: list[DeviceArray],
    variant: str = "batched",
) -> np.ndarray:
    """Block CGS projection: ``V -= Q (Q^T V)``; returns ``C = Q^T V``."""
    j = q_panels[0].data.shape[1]
    k = v_panels[0].data.shape[1]
    partials = [
        blas.gemm_tn(q, v, variant=variant) for q, v in zip(q_panels, v_panels)
    ]
    C = ctx.allreduce_sum(partials)
    for b, (q, v) in zip(ctx.broadcast(C), zip(q_panels, v_panels)):
        blas.gemm_nn_update(q, b, v, variant=variant)
    assert C.shape == (j, k)
    return C


def borth_mgs(
    ctx: MultiGpuContext,
    q_panels: list[DeviceArray],
    v_panels: list[DeviceArray],
    variant: str = "magma",
) -> np.ndarray:
    """Column-wise MGS projection against each previous basis vector.

    For each previous vector ``q_l``: compute ``w = V^T q_l`` (tall-skinny
    DGEMV), reduce, broadcast, and apply the rank-1 update
    ``V -= q_l w^T``.  Communicates ``j`` times (one phase per vector).
    """
    j = q_panels[0].data.shape[1]
    k = v_panels[0].data.shape[1]
    C = np.zeros((j, k), dtype=np.float64)
    for ell in range(j):
        cols = [q.view((slice(None), ell)) for q in q_panels]
        partials = [
            blas.gemv_t(v, ql, variant=variant) for v, ql in zip(v_panels, cols)
        ]
        w = ctx.allreduce_sum(partials)
        C[ell, :] = w
        for b, (ql, v) in zip(ctx.broadcast(w), zip(cols, v_panels)):
            blas.ger_update(ql, b, v, variant=variant)
    return C


BORTH_METHODS = {"cgs": borth_cgs, "mgs": borth_mgs}


def borth(
    ctx: MultiGpuContext,
    q_panels: list[DeviceArray],
    v_panels: list[DeviceArray],
    method: str = "cgs",
    variant: str | None = None,
) -> np.ndarray:
    """Project ``V`` against ``Q`` in place; returns the coefficient block."""
    try:
        kernel = BORTH_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown BOrth method {method!r}; choose from {sorted(BORTH_METHODS)}"
        ) from None
    if variant is None:
        variant = "batched" if method == "cgs" else "magma"
    return kernel(ctx, q_panels, v_panels, variant=variant)
