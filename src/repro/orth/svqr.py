"""Singular Value QR TSQR (Section V-D).

Like CholQR but replaces the Cholesky factorization of the Gram matrix with
an SVD-based construction that survives (numerically) rank-deficient panels:

1. ``B = V^T V`` (BLAS-3 Gram + host reduction, as CholQR);
2. scale ``B_s = D B D`` with ``D = diag(b_ii)^{-1/2}`` — the paper observes
   this scaling resolves SVQR's element-wise error problem [20];
3. eigendecompose ``B_s = U S U^T`` (symmetric SVD), clamp tiny singular
   values, QR-factor ``S^{1/2} U^T = Q_s R_s``, and set ``R = R_s D^{-1}``
   so that ``R^T R = B``;
4. apply ``V := V R^{-1}`` with a device TRSM.

Same 2 communication phases and BLAS-3 profile as CholQR (Fig. 10);
the error is still ``O(eps * kappa^2)``.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import OrthogonalizationError

__all__ = ["tsqr_svqr"]


def tsqr_svqr(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    variant: str = "batched",
    scale_gram: bool = True,
    clamp: float = 1e-15,
) -> np.ndarray:
    """In-place SVQR orthogonalization of a distributed tall-skinny panel.

    Parameters
    ----------
    scale_gram
        Apply the diagonal scaling of [20] before the SVD (the paper's fix
        for SVQR's element-wise errors); on by default.
    clamp
        Singular values below ``clamp * sigma_max`` are raised to that
        threshold so the triangular solve stays finite on numerically
        rank-deficient panels (this is what lets SVQR survive where
        CholQR breaks down).

    Returns the ``k x k`` upper-triangular R (host array).
    """
    k_cols = panels[0].data.shape[1]
    partials = [blas.gemm_tn(p, p, variant=variant) for p in panels]
    B = ctx.allreduce_sum(partials)
    diag = np.diag(B).copy()
    if np.any(diag <= 0.0):
        raise OrthogonalizationError(
            "SVQR: a panel column has non-positive squared norm"
        )
    if scale_gram:
        d = 1.0 / np.sqrt(diag)
        B_s = B * np.outer(d, d)
    else:
        d = np.ones(k_cols)
        B_s = B
    ctx.host.charge_small_dense("svd", k_cols)
    # Symmetric eigendecomposition == SVD for the SPD(ish) Gram matrix.
    eigvals, U = np.linalg.eigh(B_s)
    sigma_max = float(eigvals.max())
    if sigma_max <= 0.0:
        raise OrthogonalizationError("SVQR: Gram matrix has no positive spectrum")
    sigma = np.maximum(eigvals, clamp * sigma_max)
    ctx.host.charge_small_dense("qr", k_cols)
    # R_s^T R_s = B_s with R_s upper triangular via QR of S^(1/2) U^T.
    _, R_s = np.linalg.qr(np.sqrt(sigma)[:, None] * U.T)
    # Normalize QR sign convention: positive diagonal.
    signs = np.sign(np.diag(R_s))
    signs[signs == 0] = 1.0
    R_s = signs[:, None] * R_s
    R = R_s / d[None, :]
    for b, p in zip(ctx.broadcast(R), panels):
        blas.trsm_right(p, b.data)
    return R
