"""Error metrics and breakdown exceptions for orthogonalization.

Fig. 13 of the paper reports, per TSQR invocation inside CA-GMRES:

* the orthogonality error ``||I - Q^T Q||``,
* the factorization (representation) error ``||A - QR|| / ||A||``,
* the element-wise error ``||(A - QR) ./ A||`` (entry-wise division),

where A here is the tall-skinny panel handed to TSQR.  These are host-side
diagnostics computed on gathered copies; they never participate in timing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "OrthogonalizationError",
    "CholeskyBreakdown",
    "NonFinitePanelError",
    "orthogonality_error",
    "factorization_error",
    "elementwise_error",
]


class OrthogonalizationError(RuntimeError):
    """An orthogonalization kernel could not complete (e.g. zero column)."""


class CholeskyBreakdown(OrthogonalizationError):
    """CholQR's Gram matrix was not numerically positive definite.

    The paper (Section V-D) notes this happens when the panel is
    ill-conditioned or rank deficient; SVQR exists to survive exactly this.
    """


class NonFinitePanelError(OrthogonalizationError):
    """TSQR produced a NaN/Inf R factor — the input panel was poisoned.

    Raised only when ``tsqr(..., check_finite=True)``; the solvers' fault
    guards use this to trigger a panel retry rather than silently
    propagating non-finite basis vectors.
    """


def orthogonality_error(Q: np.ndarray) -> float:
    """Spectral-norm departure from orthonormality, ``||I - Q^T Q||_2``."""
    Q = np.asarray(Q, dtype=np.float64)
    k = Q.shape[1]
    gram = Q.T @ Q
    return float(np.linalg.norm(np.eye(k) - gram, ord=2))


def factorization_error(V: np.ndarray, Q: np.ndarray, R: np.ndarray) -> float:
    """Relative representation error ``||V - QR||_F / ||V||_F``."""
    V = np.asarray(V, dtype=np.float64)
    residual = V - np.asarray(Q) @ np.asarray(R)
    denom = np.linalg.norm(V, ord="fro")
    return float(np.linalg.norm(residual, ord="fro") / denom) if denom else 0.0


def elementwise_error(V: np.ndarray, Q: np.ndarray, R: np.ndarray) -> float:
    """Element-wise error ``max |(V - QR)_ij / V_ij|`` over nonzero entries.

    Entries where ``V_ij == 0`` are excluded from the division (they would
    be 0/0 for an exact factorization and infinity otherwise; the paper's
    plot uses the same convention implicitly).
    """
    V = np.asarray(V, dtype=np.float64)
    E = V - np.asarray(Q) @ np.asarray(R)
    mask = V != 0.0
    if not mask.any():
        return 0.0
    return float(np.abs(E[mask] / V[mask]).max())
