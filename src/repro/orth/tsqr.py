"""TSQR dispatcher and reorthogonalization wrapper.

``tsqr(ctx, panels, method)`` routes to one of the five variants; the
``reorth`` count implements the paper's "2x" rows (run the factorization
twice, composing the R factors: ``V = Q2 (R2 R1)``).
"""

from __future__ import annotations

import numpy as np

from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .caqr import tsqr_caqr
from .cgs import tsqr_cgs
from .cholqr import tsqr_cholqr
from .errors import NonFinitePanelError
from .mgs import tsqr_mgs
from .svqr import tsqr_svqr

__all__ = ["tsqr", "TSQR_METHODS"]

TSQR_METHODS = {
    "mgs": tsqr_mgs,
    "cgs": tsqr_cgs,
    "cholqr": tsqr_cholqr,
    "svqr": tsqr_svqr,
    "caqr": tsqr_caqr,
}

_DEFAULT_VARIANTS = {
    "mgs": "cublas",
    "cgs": "magma",
    "cholqr": "batched",
    "svqr": "batched",
    "caqr": "magma",
}

# The kernel that dominates each method's device time (for autotuning).
_PRIMARY_KERNEL = {
    "mgs": "dot",
    "cgs": "gemv_t",
    "cholqr": "gemm_tn",
    "svqr": "gemm_tn",
    "caqr": "qr_panel",
}


def _resolve_auto_variant(ctx, method: str, n_rows: int, k_cols: int) -> str:
    """Pick the dominant kernel's fastest variant for this panel shape.

    The model-level autotuner of :mod:`repro.perf.autotune` — the paper's
    footnote 7/8 direction ("the potential of using an auto-tuner").
    """
    tuner = ctx.autotuner
    op = _PRIMARY_KERNEL[method]
    local_n = max(n_rows // ctx.n_gpus, 1)
    if op in ("gemm_tn",):
        shape = dict(n=local_n, k=k_cols, j=k_cols)
    elif op in ("gemv_t", "qr_panel"):
        shape = dict(n=local_n, k=k_cols)
    else:
        shape = dict(n=local_n)
    try:
        return tuner.best_variant(op, **shape)
    except KeyError:
        return _DEFAULT_VARIANTS[method]


def tsqr(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    method: str = "cholqr",
    variant: str | None = None,
    reorth: int = 1,
    check_finite: bool = False,
) -> np.ndarray:
    """Orthogonalize a distributed tall-skinny panel in place.

    Parameters
    ----------
    ctx
        Execution context.
    panels
        Per-device block rows of the panel; overwritten with Q.
    method
        One of ``mgs``, ``cgs``, ``cholqr``, ``svqr``, ``caqr``.
    variant
        Device kernel implementation; defaults to the paper's optimized
        choice for each method.  ``"auto"`` consults the kernel autotuner
        for the dominant kernel at this panel shape.
    reorth
        Number of factorization passes (1 = single, 2 = the paper's "2x").
    check_finite
        Raise :class:`~repro.orth.errors.NonFinitePanelError` when the
        computed R factor contains NaN/Inf (a poisoned input panel).  The
        check inspects only the small host-side R — an uncosted guard that
        leaves the simulated timeline untouched.

    Returns
    -------
    R
        Composed upper-triangular factor such that ``V_original = Q R``.
    """
    try:
        kernel = TSQR_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown TSQR method {method!r}; choose from {sorted(TSQR_METHODS)}"
        ) from None
    if reorth < 1:
        raise ValueError("reorth must be >= 1")
    if variant == "auto":
        n_total = sum(p.data.shape[0] for p in panels)
        variant = _resolve_auto_variant(ctx, method, n_total, panels[0].data.shape[1])
    if variant is None:
        variant = _DEFAULT_VARIANTS[method]
    R = kernel(ctx, panels, variant=variant)
    for _ in range(reorth - 1):
        R2 = kernel(ctx, panels, variant=variant)
        R = R2 @ R
    if check_finite and not np.all(np.isfinite(R)):
        raise NonFinitePanelError(
            f"TSQR ({method}) produced a non-finite R factor"
        )
    return np.triu(R)
