"""Orthogonalization kernels (Section V of the paper).

Five TSQR (intra-block) strategies — MGS, CGS, CholQR, SVQR, CAQR — plus the
block orthogonalization (*BOrth*) of a new panel against the previously
orthonormalized basis, a reorthogonalization wrapper ("2x" in the paper's
tables), single-vector Arnoldi orthogonalization for standard GMRES, error
metrics (Fig. 13) and the analytic cost table (Fig. 10).

All routines operate on per-device panels (``list[DeviceArray]``, one block
row per GPU) and communicate exclusively through the context's host-staged
reductions/broadcasts, so every GPU-CPU message of the paper's pseudocode
(Fig. 9) appears in the counters.
"""

from .errors import (
    OrthogonalizationError,
    CholeskyBreakdown,
    orthogonality_error,
    factorization_error,
    elementwise_error,
)
from .tsqr import tsqr, TSQR_METHODS
from .mgs import tsqr_mgs
from .cgs import tsqr_cgs
from .cholqr import tsqr_cholqr
from .svqr import tsqr_svqr
from .caqr import tsqr_caqr
from .borth import borth, BORTH_METHODS
from .blockorth import orthogonalize_block, BlockOrthResult
from .single import orthogonalize_vector
from .costs import tsqr_properties, TSQR_PROPERTY_TABLE

__all__ = [
    "OrthogonalizationError",
    "CholeskyBreakdown",
    "orthogonality_error",
    "factorization_error",
    "elementwise_error",
    "tsqr",
    "TSQR_METHODS",
    "tsqr_mgs",
    "tsqr_cgs",
    "tsqr_cholqr",
    "tsqr_svqr",
    "tsqr_caqr",
    "borth",
    "BORTH_METHODS",
    "orthogonalize_block",
    "BlockOrthResult",
    "orthogonalize_vector",
    "tsqr_properties",
    "TSQR_PROPERTY_TABLE",
]
