"""Analytic TSQR cost table (the paper's Fig. 10).

For a panel of ``n`` rows and ``s+1`` columns:

=========  ====================  =======================  ==================
method     ``||I - Q^T Q||``     flops (leading term)     GPU-CPU comm
=========  ====================  =======================  ==================
MGS        O(eps * kappa)        2 n s^2   (BLAS-1 DOT)   (s+1)(s+2)
CGS        O(eps * kappa^s)      2 n s^2   (BLAS-2 GEMV)  2 (s+1)
CholQR     O(eps * kappa^2)      2 n s^2   (BLAS-3 GEMM)  2
SVQR       O(eps * kappa^2)      2 n s^2   (BLAS-3 GEMM)  2
CAQR       O(eps)                4 n s^2   (BLAS-1,2)     2
=========  ====================  =======================  ==================

"Comm" counts *phases* (a GPU->CPU gather or a CPU->GPU scatter each count
one), matching the paper's accounting; with ``n_g`` devices each phase is
``n_g`` PCIe messages, which is what the runtime counters record — tests
verify the two accountings against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TsqrProperties", "tsqr_properties", "TSQR_PROPERTY_TABLE"]


@dataclass(frozen=True)
class TsqrProperties:
    """One row of Fig. 10."""

    method: str
    error_bound: str
    flops_leading: str
    blas_level: str

    def flops(self, n: int, s: int) -> float:
        """Leading-order flop count for an n x (s+1) panel."""
        if self.method == "caqr":
            return 4.0 * n * s * s
        return 2.0 * n * s * s

    def comm_phases(self, s: int) -> int:
        """GPU-CPU communication phases per panel."""
        if self.method == "mgs":
            return (s + 1) * (s + 2)
        if self.method == "cgs":
            return 2 * (s + 1)
        return 2


TSQR_PROPERTY_TABLE: dict[str, TsqrProperties] = {
    "mgs": TsqrProperties("mgs", "O(eps*kappa)", "2ns^2", "BLAS-1 xDOT"),
    "cgs": TsqrProperties("cgs", "O(eps*kappa^s)", "2ns^2", "BLAS-2 xGEMV"),
    "cholqr": TsqrProperties("cholqr", "O(eps*kappa^2)", "2ns^2", "BLAS-3 xGEMM"),
    "svqr": TsqrProperties("svqr", "O(eps*kappa^2)", "2ns^2", "BLAS-3 xGEMM"),
    "caqr": TsqrProperties("caqr", "O(eps)", "4ns^2", "BLAS-1,2 xGEQR2"),
}


def tsqr_properties(method: str) -> TsqrProperties:
    """Look up the Fig. 10 row for one TSQR method."""
    try:
        return TSQR_PROPERTY_TABLE[method]
    except KeyError:
        raise ValueError(
            f"unknown TSQR method {method!r}; choose from "
            f"{sorted(TSQR_PROPERTY_TABLE)}"
        ) from None
