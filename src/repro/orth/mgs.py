"""Modified Gram-Schmidt TSQR (Section V-A, Fig. 9 top-left).

Orthogonalizes each column against the previous columns one at a time.
Numerically the most stable Gram-Schmidt variant (error ``O(eps * kappa)``)
but communication-bound: every dot product is a global reduction, for a
total of ``(s+1)(s+2)`` GPU-CPU communication phases per panel (Fig. 10),
and all device work is BLAS-1.
"""

from __future__ import annotations

import numpy as np

from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from .errors import OrthogonalizationError

__all__ = ["tsqr_mgs"]


def tsqr_mgs(
    ctx: MultiGpuContext,
    panels: list[DeviceArray],
    variant: str = "cublas",
) -> np.ndarray:
    """In-place MGS orthogonalization of a distributed tall-skinny panel.

    Parameters
    ----------
    ctx
        Execution context.
    panels
        Per-device ``(n_d, k)`` block rows of the panel (overwritten by Q).
    variant
        Device BLAS-1 implementation (``"cublas"`` per the paper).

    Returns
    -------
    R
        The ``k x k`` upper-triangular factor (host array).
    """
    k_cols = panels[0].data.shape[1]
    R = np.zeros((k_cols, k_cols), dtype=np.float64)
    for k in range(k_cols):
        col_k = [p.view((slice(None), k)) for p in panels]
        for ell in range(k):
            col_l = [p.view((slice(None), ell)) for p in panels]
            partials = [
                blas.dot(cl, ck, variant=variant) for cl, ck in zip(col_l, col_k)
            ]
            r = float(ctx.allreduce_sum(partials)[0])
            R[ell, k] = r
            for b, (cl, ck) in zip(ctx.broadcast(np.array([r])), zip(col_l, col_k)):
                blas.axpy(-float(b.data[0]), cl, ck, variant=variant)
        partials = [blas.nrm2(ck, variant=variant) for ck in col_k]
        norm_sq = float(ctx.allreduce_sum(partials)[0])
        norm = float(np.sqrt(norm_sq))
        if norm == 0.0:
            raise OrthogonalizationError(
                f"MGS breakdown: column {k} vanished after projection"
            )
        R[k, k] = norm
        for b, ck in zip(ctx.broadcast(np.array([norm])), col_k):
            blas.scal(1.0 / float(b.data[0]), ck, variant=variant)
    return R
