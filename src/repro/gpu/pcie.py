"""PCIe bus model.

The three M2090s in a Keeneland node reach the host over PCIe gen 2; the
paper identifies the gather/scatter of vector elements over this bus as the
SpMV bottleneck that MPK amortizes (Section IV).  The model:

* each message costs ``latency + bytes / bandwidth``;
* when ``shared_bus`` is set (the default, matching the testbed), transfers
  from different devices serialize on the bus: a transfer starts no earlier
  than both its producer's clock and the bus's previous completion;
* a transfer never blocks its *producer* (DMA copy engines run alongside
  compute); it delays its *consumer*, which waits for the data's arrival.
"""

from __future__ import annotations

from ..faults.errors import DeviceLost
from ..perf.machine import PcieSpec

__all__ = ["PcieBus"]


class PcieBus:
    """Shared host-device interconnect with latency/bandwidth/serialization."""

    def __init__(self, spec: PcieSpec, trace=None, faults=None):
        self.spec = spec
        self.busy_until = 0.0
        self.trace = trace
        #: Optional fault injector; consulted once per scheduled message
        #: (transfer corruption is left pending for the context to apply
        #: to the arriving payload copy, stalls extend the occupancy).
        self.faults = faults
        #: Peers whose lanes were torn down by a mid-run device
        #: deactivation; scheduling a message for one raises
        #: :class:`DeviceLost` (see :meth:`deactivate_peer`).
        self.deactivated: set[str] = set()

    def deactivate_peer(self, peer: str) -> None:
        """Tear down ``peer``'s lanes: further messages to/from it raise."""
        self.deactivated.add(peer)

    def message_time(self, nbytes: int) -> float:
        """Cost of one message of ``nbytes`` in isolation."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.spec.latency + nbytes / self.spec.bandwidth

    def schedule(
        self, ready_at: float, nbytes: int, kind: str = "xfer", peer: str | None = None
    ) -> float:
        """Schedule a message whose payload is ready at ``ready_at``.

        Returns the completion time.  With a shared bus the transfer also
        queues behind the previous one.  When a trace recorder is attached,
        the bus-occupancy interval is recorded in the ``pcie`` lane with the
        transfer direction (``kind``), byte count, and ``peer`` device.
        """
        if peer is not None and peer in self.deactivated:
            raise DeviceLost(peer, f"{kind} message scheduled for lost device {peer}")
        start = max(ready_at, self.busy_until) if self.spec.shared_bus else ready_at
        end = start + self.message_time(nbytes)
        if self.faults is not None and self.faults.active:
            end += self.faults.on_bus_message(kind, peer, nbytes, start, end - start)
        if self.spec.shared_bus:
            self.busy_until = end
        if self.trace is not None:
            name = kind if peer is None else f"{kind} {peer}"
            self.trace.record(
                name, "pcie", kind, start, end - start, bytes=int(nbytes), peer=peer
            )
        return end

    def reset(self) -> None:
        """Clear bus occupancy and lane teardowns (context clock reset)."""
        self.busy_until = 0.0
        self.deactivated.clear()
