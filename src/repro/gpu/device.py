"""Simulated devices: GPU, host CPU, and the arrays they own.

A :class:`Device` is a clocked execution resource.  Kernels run "on" a device
by performing the real float64 arithmetic with NumPy and advancing the
device's clock by the modeled kernel time.  :class:`DeviceArray` tags an
ndarray with its owning device; mixing arrays from different devices raises
immediately, which is how the simulator enforces the paper's explicit
communication structure.
"""

from __future__ import annotations

import numpy as np

from ..perf.model import PerformanceModel
from ..perf.kernels import kernel_flops_bytes
from .counters import Counters

__all__ = ["Device", "DeviceArray", "Host"]


class DeviceArray:
    """An ndarray resident on one simulated device.

    Thin wrapper: ``.data`` is the real NumPy buffer (views of it are cheap
    and encouraged, mirroring on-device sub-panels), ``.device`` is the
    owner.  All arithmetic must go through :mod:`repro.gpu.blas` so that
    every operation is costed.
    """

    __slots__ = ("data", "device")

    def __init__(self, data: np.ndarray, device: "Device"):
        self.data = data
        self.device = device

    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def view(self, key) -> "DeviceArray":
        """A sub-array view on the same device (no copy, no cost)."""
        return DeviceArray(self.data[key], self.device)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeviceArray(shape={self.data.shape}, device={self.device.name})"


class _Clocked:
    """Shared clock behavior for devices and the host."""

    def __init__(
        self, name: str, perf: PerformanceModel, counters: Counters, trace=None,
        faults=None,
    ):
        self.name = name
        self.perf = perf
        self.counters = counters
        self.trace = trace
        #: Optional :class:`~repro.faults.injector.FaultInjector` shared by
        #: the owning context; consulted on every kernel charge when active.
        self.faults = faults
        #: Poison event armed by the injector, delivered by the BLAS layer
        #: into the next kernel's output (see :meth:`apply_pending_faults`).
        self._poison_pending = None
        self.clock = 0.0

    def _record_kernel(self, op: str, variant: str, start: float, t: float) -> None:
        """Log one kernel interval into the trace (no-op without one)."""
        if self.trace is not None:
            self.trace.record(
                f"{op}/{variant}", self.name, "kernel", start, t, op=op,
                variant=variant,
            )

    def _faulted_time(self, op: str, variant: str, start: float, t: float) -> float:
        """Run the fault hook for one kernel charge (stall/poison/dropout)."""
        fi = self.faults
        if fi is not None and fi.active:
            return fi.on_kernel(self, op, variant, start, t)
        return t

    def apply_pending_faults(self, *outputs) -> None:
        """Deliver an armed poison event into the first non-empty output.

        Called by every :mod:`repro.gpu.blas` routine after it has written
        its result; a no-op unless the fault injector armed a poison on
        this resource's last kernel charge.  ``outputs`` may be
        ``DeviceArray`` or plain ndarrays.
        """
        event = self._poison_pending
        if event is None:
            return
        from ..faults.injector import poison_array

        self._poison_pending = None
        for out in outputs:
            data = out.data if isinstance(out, DeviceArray) else out
            if data.size:
                poison_array(data, event)
                return

    def advance(self, seconds: float) -> None:
        """Move this resource's clock forward."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.clock += seconds

    def wait_until(self, t: float) -> None:
        """Block until simulated time ``t`` (no-op if already past)."""
        if t > self.clock:
            self.clock = t


class Device(_Clocked):
    """One simulated GPU.

    Parameters
    ----------
    device_id
        Index of this GPU (0-based).
    perf
        Shared performance model.
    counters
        Shared event counters.
    """

    def __init__(
        self, device_id: int, perf: PerformanceModel, counters: Counters, trace=None,
        faults=None,
    ):
        super().__init__(f"gpu{device_id}", perf, counters, trace=trace, faults=faults)
        self.device_id = int(device_id)

    # -- array management -------------------------------------------------
    def empty(self, shape, dtype=np.float64) -> DeviceArray:
        """Uninitialized device allocation (allocation itself is uncosted)."""
        return DeviceArray(np.empty(shape, dtype=dtype), self)

    def zeros(self, shape, dtype=np.float64) -> DeviceArray:
        """Zeroed device allocation."""
        return DeviceArray(np.zeros(shape, dtype=dtype), self)

    def adopt(self, array: np.ndarray) -> DeviceArray:
        """Declare ``array`` resident on this device *without* a transfer.

        Used for one-time setup (matrix distribution) which the paper's
        per-restart timings exclude.  Timed data movement must go through
        ``MultiGpuContext.h2d``.
        """
        return DeviceArray(np.asarray(array), self)

    # -- execution ---------------------------------------------------------
    def charge_kernel(self, op: str, variant: str, **shape) -> float:
        """Advance this device's clock by one kernel's modeled time."""
        start = self.clock
        t = self._faulted_time(op, variant, start, self.perf.gpu_time(op, variant, **shape))
        self.advance(t)
        flops, _ = kernel_flops_bytes(op, variant, **shape)
        self.counters.kernel_launches += 1
        self.counters.device_flops += flops
        self.counters.count_kernel(op, variant)
        self._record_kernel(op, variant, start, t)
        return t

    def require_resident(self, *arrays: DeviceArray) -> None:
        """Raise unless every array lives on this device."""
        for arr in arrays:
            if not isinstance(arr, DeviceArray):
                raise TypeError(
                    f"expected DeviceArray on {self.name}, got {type(arr).__name__}"
                )
            if arr.device is not self:
                raise ValueError(
                    f"array on {arr.device.name} used in a kernel on {self.name}; "
                    "move it with an explicit transfer first"
                )


class Host(_Clocked):
    """The 16-core host CPU: reductions and small dense factorizations."""

    def __init__(self, perf: PerformanceModel, counters: Counters, trace=None, faults=None):
        super().__init__("host", perf, counters, trace=trace, faults=faults)

    def charge_kernel(self, op: str, variant: str = "mkl", **shape) -> float:
        """Advance the host clock by one threaded-BLAS kernel's time."""
        start = self.clock
        t = self._faulted_time(op, variant, start, self.perf.cpu_time(op, variant, **shape))
        self.advance(t)
        flops, _ = kernel_flops_bytes(op, variant, **shape)
        self.counters.host_flops += flops
        self.counters.count_kernel(op, variant)
        self._record_kernel(op, variant, start, t)
        return t

    def charge_small_dense(self, op: str, k: int) -> float:
        """Advance the host clock by a small k x k LAPACK factorization."""
        start = self.clock
        t = self._faulted_time(op, "lapack", start, self.perf.host_small_dense(op, k))
        self.advance(t)
        self.counters.host_small_ops += 1
        self.counters.count_kernel(op, "lapack")
        self._record_kernel(op, "lapack", start, t)
        return t
