"""Structured event trace for the simulated machine.

The paper's analysis (Figs. 11-15) is a per-kernel breakdown of where
CA-GMRES time goes — SpMV/MPK vs BOrth vs TSQR vs PCIe.  A coarse
``dict[str, float]`` of region totals cannot reproduce those tables (and
double-counts when regions nest, since each region charges the full
wall-clock delta).  :class:`TraceRecorder` replaces it with a structured
event log:

* every **kernel** charge (device or host) with its lane, start time and
  modeled duration;
* every **h2d/d2h transfer** as a PCIe **bus-occupancy interval** (the
  shared-bus serialization of Section IV is directly visible as back-to-back
  intervals in the ``pcie`` lane);
* every **region** enter/exit, properly nested: each region records both its
  *inclusive* wall-clock span and its *exclusive* time (inclusive minus the
  spans of nested child regions), so nested regions no longer double-count;
* **cycle marks** placed by the solvers at restart-cycle boundaries.

Three consumers sit on top of the log:

* :meth:`TraceRecorder.exclusive_totals` — the legacy ``ctx.timers`` view
  (identical to the old accumulation for non-nested regions);
* :meth:`TraceRecorder.profile` — per-kernel / per-region / per-transfer /
  per-restart-cycle aggregates, attached to ``SolveResult.details["profile"]``;
* :meth:`TraceRecorder.to_chrome_trace` — Chrome ``trace_event``-format JSON
  (one lane per device + host + PCIe bus + a region lane) that opens in
  ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceRecorder"]

#: Lane name used for region (phase) span events in exported traces.
REGION_LANE = "regions"

#: Lane name used for PCIe bus-occupancy intervals.
PCIE_LANE = "pcie"

#: Lane name used for injected/detected/recovered fault events (see
#: :mod:`repro.faults`): ``kind`` is ``"fault"`` | ``"detect"`` |
#: ``"recover"``, so Chrome/Perfetto exports show faults in timeline
#: context next to the kernels and transfers they hit.  Degraded-mode
#: events (:mod:`repro.core.degrade`) share the lane with ``kind``
#: ``"degraded"`` | ``"repartition"`` | ``"deadline-exceeded"``.
FAULT_LANE = "faults"


@dataclass
class TraceEvent:
    """One interval on the simulated timeline.

    Attributes
    ----------
    name
        Event label (``"gemm_tn/cublas"``, ``"h2d"``, region name, ...).
    lane
        Timeline lane: ``"gpu0"``..``"gpuN"``, ``"host"``, ``"pcie"``, or
        ``"regions"``.
    kind
        ``"kernel"`` | ``"h2d"`` | ``"d2h"`` | ``"region"``.
    start, duration
        Simulated seconds.
    args
        Extra attributes (device id, byte counts, kernel shape, inclusive /
        exclusive region times, nesting depth, ...).
    """

    name: str
    lane: str
    kind: str
    start: float
    duration: float
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Append-only event log with region nesting and cycle marks.

    The recorder is intentionally cheap: recording is a dataclass append,
    and all aggregation (:meth:`profile`, :meth:`exclusive_totals`) walks
    the log on demand.  ``enabled = False`` turns every record call into a
    no-op while keeping the exclusive-time region bookkeeping (so
    ``ctx.timers`` stays correct either way).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self.cycle_marks: list[float] = []
        # Region stack entries: [name, start_time, child_inclusive_time].
        self._region_stack: list[list] = []
        self._exclusive: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        lane: str,
        kind: str,
        start: float,
        duration: float,
        **args,
    ) -> None:
        """Append one interval event (no-op when disabled)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(name, lane, kind, start, duration, args))

    def region_enter(self, name: str, t: float) -> None:
        """Open a (possibly nested) region at simulated time ``t``."""
        self._region_stack.append([name, t, 0.0])

    def region_exit(self, name: str, t: float) -> float:
        """Close the innermost region; returns its *exclusive* time.

        Raises ``ValueError`` on improperly nested enter/exit pairs.
        """
        if not self._region_stack:
            raise ValueError(f"region_exit({name!r}) with no open region")
        top_name, start, child_time = self._region_stack.pop()
        if top_name != name:
            raise ValueError(
                f"region_exit({name!r}) does not match open region {top_name!r}"
            )
        inclusive = t - start
        exclusive = inclusive - child_time
        if self._region_stack:
            self._region_stack[-1][2] += inclusive
        self._exclusive[name] = self._exclusive.get(name, 0.0) + exclusive
        if self.enabled:
            self.events.append(
                TraceEvent(
                    name,
                    REGION_LANE,
                    "region",
                    start,
                    inclusive,
                    {
                        "inclusive": inclusive,
                        "exclusive": exclusive,
                        "depth": len(self._region_stack),
                        # Nested inside an ancestor of the same name: such a
                        # span's inclusive time is already covered by it.
                        "self_nested": any(
                            fr[0] == name for fr in self._region_stack
                        ),
                    },
                )
            )
        return exclusive

    @property
    def region_depth(self) -> int:
        """Number of currently open regions."""
        return len(self._region_stack)

    def mark_cycle(self, t: float) -> None:
        """Mark a restart-cycle boundary at simulated time ``t``."""
        self.cycle_marks.append(float(t))

    def reset(self) -> None:
        """Drop all events, marks, and region state."""
        self.events.clear()
        self.cycle_marks.clear()
        self._region_stack.clear()
        self._exclusive.clear()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def exclusive_totals(self) -> dict[str, float]:
        """Per-region exclusive seconds — the ``ctx.timers`` view.

        For non-nested regions this equals the legacy wall-clock-delta
        accumulation; for nested regions the parent is charged only for the
        time not covered by its children.
        """
        return dict(self._exclusive)

    def end_time(self) -> float:
        """Latest event end (0.0 on an empty trace)."""
        return max((e.end for e in self.events), default=0.0)

    def lane_busy_totals(self) -> dict[str, float]:
        """Busy seconds per lane: kernel time for device/host lanes, bus
        occupancy (h2d/d2h intervals) for the PCIe lane.

        Together with :meth:`end_time` this yields per-device utilization:
        ``busy[lane] / end_time()`` is the fraction of the run the lane had
        work in flight.
        """
        busy: dict[str, float] = {}
        for e in self.events:
            if e.kind == "kernel" or (e.lane == PCIE_LANE and e.kind in ("h2d", "d2h")):
                busy[e.lane] = busy.get(e.lane, 0.0) + e.duration
        return busy

    def kernel_totals(self) -> dict[str, dict]:
        """Per-kernel aggregates: count, total seconds, per-lane seconds."""
        out: dict[str, dict] = {}
        for e in self.events:
            if e.kind != "kernel":
                continue
            entry = out.setdefault(
                e.name, {"count": 0, "time": 0.0, "by_lane": {}}
            )
            entry["count"] += 1
            entry["time"] += e.duration
            entry["by_lane"][e.lane] = entry["by_lane"].get(e.lane, 0.0) + e.duration
        return out

    def region_totals(self) -> dict[str, dict]:
        """Per-region aggregates.

        ``inclusive`` skips spans nested inside a same-named ancestor (their
        time is already covered, so recursive/self-nested regions are not
        counted twice); ``exclusive`` matches :meth:`exclusive_totals`.
        """
        out: dict[str, dict] = {}
        for e in self.events:
            if e.kind != "region":
                continue
            entry = out.setdefault(
                e.name, {"count": 0, "inclusive": 0.0, "exclusive": 0.0}
            )
            entry["count"] += 1
            if not e.args.get("self_nested", False):
                entry["inclusive"] += e.args["inclusive"]
            entry["exclusive"] += e.args["exclusive"]
        return out

    def transfer_totals(self) -> dict[str, dict]:
        """h2d/d2h aggregates: message count, bytes, bus seconds."""
        out = {
            "h2d": {"count": 0, "bytes": 0, "time": 0.0},
            "d2h": {"count": 0, "bytes": 0, "time": 0.0},
        }
        for e in self.events:
            if e.kind not in out:
                continue
            entry = out[e.kind]
            entry["count"] += 1
            entry["bytes"] += e.args.get("bytes", 0)
            entry["time"] += e.duration
        return out

    def cycle_windows(self) -> list[tuple[float, float]]:
        """Restart-cycle windows ``[(start, end), ...]`` from the marks."""
        if not self.cycle_marks:
            return []
        bounds = list(self.cycle_marks) + [max(self.end_time(), self.cycle_marks[-1])]
        return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]

    def profile(self) -> dict:
        """Aggregate metrics for ``SolveResult.details["profile"]``.

        Keys: ``total_time`` (latest event end), ``regions`` (per-region
        inclusive/exclusive/count), ``kernels`` (per-kernel count/time/lane
        split), ``transfers`` (h2d/d2h count/bytes/bus-time), ``bus``
        (occupancy summary), and ``cycles`` (per-restart-cycle duration and
        top-level region breakdown).
        """
        transfers = self.transfer_totals()
        cycles = []
        for start, end in self.cycle_windows():
            regions: dict[str, float] = {}
            for e in self.events:
                if (
                    e.kind == "region"
                    and e.args.get("depth", 0) == 0
                    and start <= e.start < end
                ):
                    regions[e.name] = regions.get(e.name, 0.0) + e.args["inclusive"]
            cycles.append(
                {"start": start, "end": end, "duration": end - start, "regions": regions}
            )
        return {
            "total_time": self.end_time(),
            "regions": self.region_totals(),
            "kernels": self.kernel_totals(),
            "transfers": transfers,
            "bus": {
                "busy_time": transfers["h2d"]["time"] + transfers["d2h"]["time"],
                "messages": transfers["h2d"]["count"] + transfers["d2h"]["count"],
            },
            "cycles": cycles,
        }

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def lanes(self) -> list[str]:
        """Stable lane ordering: host, gpu0..gpuN, pcie, regions[, faults].

        The fault lane only appears when fault events were recorded, so
        fault-free traces are unchanged.
        """
        seen = {e.lane for e in self.events}
        gpus = sorted(lane for lane in seen if lane.startswith("gpu"))
        ordered = ["host"] + gpus + [PCIE_LANE, REGION_LANE]
        if FAULT_LANE in seen:
            ordered.append(FAULT_LANE)
        # Keep any unexpected lanes (future backends) at the end.
        ordered += sorted(seen - set(ordered))
        return ordered

    def fault_events(self) -> list[TraceEvent]:
        """All events in the fault lane (injections, detections, recoveries)."""
        return [e for e in self.events if e.lane == FAULT_LANE]

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Durations are exported in microseconds (the format's unit).  Every
        lane becomes one ``tid`` under a single ``pid`` so Perfetto shows
        one track per device, the host, the PCIe bus, and the region stack.
        """
        lane_ids = {lane: i for i, lane in enumerate(self.lanes())}
        trace_events: list[dict] = [
            {
                "ph": "M",
                "pid": 0,
                "name": "process_name",
                "args": {"name": "simulated node"},
            }
        ]
        for lane, tid in lane_ids.items():
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": lane},
                }
            )
            trace_events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid},
                }
            )
        for e in self.events:
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": lane_ids[e.lane],
                    "name": e.name,
                    "cat": e.kind,
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "args": dict(e.args),
                }
            )
        for i, t in enumerate(self.cycle_marks):
            trace_events.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": lane_ids[REGION_LANE],
                    "name": f"cycle {i}",
                    "cat": "cycle",
                    "ts": t * 1e6,
                    "s": "p",
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Serialize :meth:`to_chrome_trace` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceRecorder(events={len(self.events)}, "
            f"cycles={len(self.cycle_marks)}, enabled={self.enabled})"
        )
