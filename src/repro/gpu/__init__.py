"""Simulated multi-GPU runtime.

This package substitutes for CUDA + 3x NVIDIA M2090 (see DESIGN.md): it
executes every kernel numerically in float64 NumPy while charging *modeled*
time to per-device clocks.  The programming model mirrors the paper's code
structure:

* each :class:`Device` owns its arrays (:class:`DeviceArray`); arrays on
  different devices cannot be mixed — data moves only through explicit
  host-staged PCIe transfers, which are counted and costed;
* the host CPU is a separate clocked entity that performs reductions and
  small dense factorizations;
* a shared PCIe bus serializes transfers, reproducing the gather/scatter
  bottleneck of Section IV;
* async copy semantics: a transfer never blocks its producer, only its
  consumer (copy-engine overlap).

``MultiGpuContext`` is the entry point; ``repro.gpu.blas`` holds the device
BLAS with per-variant cost models (cublas / magma / batched).
"""

from .counters import Counters
from .device import Device, DeviceArray, Host
from .pcie import PcieBus
from .trace import TraceEvent, TraceRecorder
from .context import MultiGpuContext
from .multinode import MultiNodeContext, NetworkSpec, infiniband_qdr

__all__ = [
    "Counters",
    "Device",
    "DeviceArray",
    "Host",
    "PcieBus",
    "TraceEvent",
    "TraceRecorder",
    "MultiGpuContext",
    "MultiNodeContext",
    "NetworkSpec",
    "infiniband_qdr",
]
