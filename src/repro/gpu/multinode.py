"""Multi-node execution context (the paper's Section VII outlook).

"We would like to study ... the performance of CA-GMRES on a larger number
of GPUs, in particular, the GPUs distributed over multiple compute nodes,
where the communication is more expensive."

:class:`MultiNodeContext` extends the single-node simulator: devices are
split over ``n_nodes`` nodes, each with its own PCIe bus, and all host
staging is rooted at node 0 — data from a device on node ``k > 0`` crosses
that node's PCIe bus *and* an inter-node network link (higher latency,
lower bandwidth, e.g. InfiniBand QDR of the Keeneland era).  Every
communication pattern of the solvers (reductions, broadcasts, halo
exchanges) automatically pays the extra cost, so the latency-avoiding
value of MPK/CholQR grows exactly as the paper anticipates.

The root host plays the MPI-rank-0 role of the staging CPU; remote hosts
act as relays (their relay time is folded into the network message).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.machine import MachineSpec, PcieSpec, keeneland_node
from .context import MultiGpuContext
from .device import Device, DeviceArray
from .pcie import PcieBus

__all__ = ["NetworkSpec", "MultiNodeContext", "infiniband_qdr"]


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-node interconnect: per-message latency and bandwidth."""

    latency: float  # seconds per message
    bandwidth: float  # bytes/s

    def __post_init__(self):
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("network spec must be positive")


def infiniband_qdr() -> NetworkSpec:
    """Keeneland-era InfiniBand QDR: ~2 us MPI latency, ~3.2 GB/s."""
    return NetworkSpec(latency=2.0e-6, bandwidth=3.2e9)


class _NetworkLink:
    """One node's link to the root: serializes that node's messages."""

    def __init__(self, spec: NetworkSpec):
        self.spec = spec
        self.busy_until = 0.0

    def schedule(self, ready_at: float, nbytes: int) -> float:
        start = max(ready_at, self.busy_until)
        end = start + self.spec.latency + nbytes / self.spec.bandwidth
        self.busy_until = end
        return end

    def reset(self) -> None:
        self.busy_until = 0.0


class MultiNodeContext(MultiGpuContext):
    """Devices spread over several nodes, staged through the root host.

    Parameters
    ----------
    n_nodes
        Number of compute nodes.
    gpus_per_node
        Devices per node (total devices = ``n_nodes * gpus_per_node``).
    machine
        Per-node machine description (defaults to a Keeneland node).
    network
        Inter-node link (defaults to InfiniBand QDR).
    """

    def __init__(
        self,
        n_nodes: int = 2,
        gpus_per_node: int = 3,
        machine: MachineSpec | None = None,
        network: NetworkSpec | None = None,
    ):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if machine is None:
            machine = keeneland_node(min(gpus_per_node, 3))
        super().__init__(n_nodes * gpus_per_node, machine=machine)
        self.n_nodes = int(n_nodes)
        self.gpus_per_node = int(gpus_per_node)
        self.network = network if network is not None else infiniband_qdr()
        # One PCIe bus per node (the base class bus serves node 0).
        self._buses = [self.bus] + [
            PcieBus(machine.pcie) for _ in range(self.n_nodes - 1)
        ]
        self._links = [_NetworkLink(self.network) for _ in range(self.n_nodes)]

    # ------------------------------------------------------------------
    def node_of(self, device: Device) -> int:
        """Node index hosting a device (devices are blocked by node)."""
        return device.device_id // self.gpus_per_node

    def reset_clocks(self) -> None:
        super().reset_clocks()
        for bus in self._buses:
            bus.reset()
        for link in self._links:
            link.reset()

    # ------------------------------------------------------------------
    # Transfers: remote devices pay PCIe on their node + the network hop.
    # ------------------------------------------------------------------
    def h2d(self, device: Device, array: np.ndarray) -> DeviceArray:
        array = np.asarray(array)
        node = self.node_of(device)
        ready = self.host.clock
        if node > 0:
            ready = self._links[node].schedule(ready, array.nbytes)
            self.counters.h2d_messages += 1  # network hop counted too
            self.counters.h2d_bytes += array.nbytes
        end = self._buses[node].schedule(ready, array.nbytes)
        device.wait_until(end)
        self.counters.h2d_messages += 1
        self.counters.h2d_bytes += array.nbytes
        return DeviceArray(array.copy(), device)

    def d2h(self, darr: DeviceArray, ready_at: float | None = None) -> np.ndarray:
        node = self.node_of(darr.device)
        ready = (
            darr.device.clock
            if ready_at is None
            else min(ready_at, darr.device.clock)
        )
        end = self._buses[node].schedule(ready, darr.nbytes)
        self.counters.d2h_messages += 1
        self.counters.d2h_bytes += darr.nbytes
        if node > 0:
            end = self._links[node].schedule(end, darr.nbytes)
            self.counters.d2h_messages += 1
            self.counters.d2h_bytes += darr.nbytes
        self.host.wait_until(end)
        return np.array(darr.data, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MultiNodeContext(n_nodes={self.n_nodes}, "
            f"gpus_per_node={self.gpus_per_node})"
        )
