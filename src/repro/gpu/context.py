"""The multi-GPU execution context.

``MultiGpuContext`` owns the devices, the host, the PCIe bus, the counters,
and named timing regions.  All host<->device data movement flows through it,
so communication counts/volumes and the simulated timeline stay consistent.

Time semantics
--------------
Each device and the host carry their own clock; transfers are scheduled on
the (shared) bus and delay only their consumer.  ``current_time`` is the max
over all clocks.  A :meth:`region` context-manager records a (properly
nested) span into the structured event trace (:class:`~repro.gpu.trace.
TraceRecorder`) — this is how the solvers attribute time to SpMV / MPK /
BOrth / TSQR exactly as the paper's tables do.  ``ctx.timers`` remains
available as the per-region *exclusive*-time view of the trace: identical
to the historical accumulation for non-nested regions, and no longer
double-counting when regions nest.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..faults.errors import DeviceLost, TransferCorruption
from ..faults.injector import FaultInjector
from ..perf.machine import MachineSpec, keeneland_node
from ..perf.model import PerformanceModel
from .counters import Counters
from .device import Device, DeviceArray, Host
from .pcie import PcieBus
from .trace import TraceRecorder

__all__ = ["MultiGpuContext"]


class MultiGpuContext:
    """A simulated compute node with ``n_gpus`` GPUs.

    Parameters
    ----------
    n_gpus
        Number of simulated GPUs (>= 1).
    machine
        Machine description; defaults to the paper's Keeneland node (the
        ``n_gpus`` argument overrides the spec's GPU count).
    fault_plan
        Optional :class:`~repro.faults.plan.FaultPlan`; when given, a
        :class:`~repro.faults.injector.FaultInjector` is armed on every
        device, the host, and the bus, and the solvers enable their
        (uncosted) NaN/Inf guards and retry/checkpoint machinery.
    validate_transfers
        Check every h2d/d2h payload with ``np.isfinite`` on arrival and
        raise :class:`~repro.faults.errors.TransferCorruption` on failure
        (the staged halo exchange retries such transfers).  Off by
        default: without it, corrupted payloads propagate silently — the
        historical behavior.  Attaching a ``fault_plan`` arms the same
        check automatically (injected corruption must be detectable for
        recovery to work); the check is uncosted either way.
    """

    def __init__(
        self,
        n_gpus: int = 1,
        machine: MachineSpec | None = None,
        fault_plan=None,
        validate_transfers: bool = False,
    ):
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if machine is None:
            machine = keeneland_node(min(n_gpus, 3))
        self.machine = machine
        self.perf = PerformanceModel(machine)
        self.counters = Counters()
        self.trace = TraceRecorder()
        self.faults = FaultInjector(fault_plan, trace=self.trace)
        self.validate_transfers = bool(validate_transfers)
        #: The full device roster as built; never shrinks.  ``devices`` is
        #: the *active* subset — identical until a device is deactivated.
        self.all_devices = tuple(
            Device(d, self.perf, self.counters, trace=self.trace, faults=self.faults)
            for d in range(n_gpus)
        )
        self.devices = list(self.all_devices)
        self._inactive: set[str] = set()
        self.host = Host(self.perf, self.counters, trace=self.trace, faults=self.faults)
        self.bus = PcieBus(machine.pcie, trace=self.trace, faults=self.faults)
        self._autotuner = None

    @property
    def autotuner(self):
        """Shared :class:`~repro.perf.autotune.KernelAutotuner` for this node.

        Lazily built; kernels that auto-resolve a variant per call share its
        shape->variant cache instead of rebuilding the tuner on the hot path.
        Decisions depend only on the machine spec, so the cache survives
        :meth:`reset_clocks` and device deactivations.
        """
        if self._autotuner is None:
            from ..perf.autotune import KernelAutotuner

            self._autotuner = KernelAutotuner(self.machine)
        return self._autotuner

    def arm_fault_plan(self, fault_plan) -> None:
        """Swap in a new fault plan on the existing context.

        Rebuilds the injector (fresh RNG streams and occurrence counters)
        and re-arms every device, the host, and the bus with it, so one
        long-lived context — e.g. a serving session's — can run a sequence
        of fault-campaign trials without rebuilding its distributed state.
        Pass ``None`` to disarm.
        """
        self.faults = FaultInjector(fault_plan, trace=self.trace)
        for dev in self.all_devices:
            dev.faults = self.faults
        self.host.faults = self.faults
        self.bus.faults = self.faults

    @property
    def resilience_enabled(self) -> bool:
        """True when solvers should run their fault guards/retry paths."""
        return self.faults.active or self.validate_transfers

    @property
    def timers(self) -> dict[str, float]:
        """Per-region exclusive simulated seconds (derived from the trace)."""
        return self.trace.exclusive_totals()

    @property
    def n_gpus(self) -> int:
        return len(self.devices)

    @property
    def inactive_devices(self) -> list[str]:
        """Names of devices deactivated mid-run (sorted)."""
        return sorted(self._inactive)

    # ------------------------------------------------------------------
    # Device roster management (degraded-mode operation)
    # ------------------------------------------------------------------
    def deactivate_device(self, device) -> Device:
        """Remove a device from the active roster mid-run.

        ``device`` may be a :class:`Device`, its name (``"gpu1"``), or its
        device id.  The device's PCIe lanes are torn down (further
        transfers raise :class:`DeviceLost`), it stops contributing to
        :meth:`current_time`/:meth:`sync`, and collectives/broadcasts
        iterate over the survivors only.  The roster is restored by
        :meth:`reset_clocks`, so reruns on this context replay the same
        degradation deterministically.  Deactivating the last active
        device is refused.
        """
        if isinstance(device, Device):
            dev = device
        elif isinstance(device, str):
            matches = [d for d in self.all_devices if d.name == device]
            if not matches:
                raise ValueError(f"unknown device {device!r}")
            dev = matches[0]
        else:
            dev = self.all_devices[int(device)]
        if dev not in self.devices:
            raise ValueError(f"device {dev.name} is already inactive")
        if len(self.devices) == 1:
            raise ValueError("cannot deactivate the last active device")
        self.devices.remove(dev)
        self._inactive.add(dev.name)
        self.bus.deactivate_peer(dev.name)
        self.counters.device_deactivations += 1
        return dev

    def _require_active(self, device: Device) -> None:
        if device.name in self._inactive:
            raise DeviceLost(
                device.name, f"transfer issued for deactivated device {device.name}"
            )

    # ------------------------------------------------------------------
    # Clock management
    # ------------------------------------------------------------------
    def current_time(self) -> float:
        """Latest clock across host and devices (the simulated wall clock)."""
        return max(self.host.clock, max(d.clock for d in self.devices))

    def sync(self) -> float:
        """Barrier: align every clock to the current wall clock."""
        t = self.current_time()
        self.host.wait_until(t)
        for dev in self.devices:
            dev.wait_until(t)
        return t

    def reset_clocks(self) -> None:
        """Zero all clocks, the bus, the event trace — and the fault state.

        Resetting the injector restores its RNG streams and occurrence
        counters, and the device roster is restored to the full set built
        at construction, so every solve started on this context replays
        the same deterministic fault schedule — including any mid-run
        device deactivations a degrade policy performed.
        """
        self.host.clock = 0.0
        self.host._poison_pending = None
        self.devices = list(self.all_devices)
        self._inactive.clear()
        for dev in self.all_devices:
            dev.clock = 0.0
            dev._poison_pending = None
        self.bus.reset()
        self.trace.reset()
        self.faults.reset()

    @contextmanager
    def region(self, name: str):
        """Record a (nestable) named span of simulated time into the trace.

        ``ctx.timers[name]`` accumulates the span's *exclusive* time: for
        non-nested regions that is exactly the historical wall-clock delta;
        a nested child's time is charged to the child only.
        """
        self.trace.region_enter(name, self.current_time())
        try:
            yield
        finally:
            self.trace.region_exit(name, self.current_time())

    def mark_cycle(self) -> None:
        """Mark a restart-cycle boundary in the trace at the current time."""
        self.trace.mark_cycle(self.current_time())

    def observe_metrics(self, registry, solver: str = "", matrix: str = "") -> None:
        """Record this context's runtime telemetry into a metrics registry.

        Per-lane busy seconds / utilization and PCIe occupancy are derived
        from the event trace; kernel-launch, transfer, and flop counters
        are bridged from :attr:`counters`.  See
        :func:`repro.metrics.collect.observe_context`.
        """
        from repro.metrics.collect import observe_context

        observe_context(registry, self, solver=solver, matrix=matrix)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def h2d(self, device: Device, array: np.ndarray) -> DeviceArray:
        """Copy a host array to ``device`` (one PCIe message).

        The host is not blocked (async copy); the device waits for arrival.
        With ``validate_transfers`` the arriving copy is checked for
        non-finite entries and :class:`TransferCorruption` raised — the
        source array is untouched, so the caller may simply retry.
        """
        array = np.asarray(array)
        self._require_active(device)
        if self.faults.active:
            self.faults.check_alive(device.name)
        end = self.bus.schedule(
            self.host.clock, array.nbytes, kind="h2d", peer=device.name
        )
        device.wait_until(end)
        self.counters.h2d_messages += 1
        self.counters.h2d_bytes += array.nbytes
        arrived = DeviceArray(array.copy(), device)
        if self.faults.active:
            self.faults.apply_pending_corrupt(arrived.data)
        if self.resilience_enabled and not np.all(np.isfinite(arrived.data)):
            self.faults.note_detection(
                "h2d payload", time=end, site=device.name,
                nbytes=int(array.nbytes),
            )
            raise TransferCorruption(
                f"non-finite h2d payload arrived on {device.name}"
            )
        return arrived

    def d2h(self, darr: DeviceArray, ready_at: float | None = None) -> np.ndarray:
        """Copy a device array to the host (one PCIe message).

        The device is not blocked (async copy); the host waits for arrival.
        ``ready_at`` overrides the payload-ready time — used by pipelined
        algorithms that issue the copy *before* enqueuing further device
        work (the copy engine ships data produced at ``ready_at`` even
        though the device's compute clock has since moved on).
        """
        ready = darr.device.clock if ready_at is None else min(ready_at, darr.device.clock)
        self._require_active(darr.device)
        if self.faults.active:
            self.faults.check_alive(darr.device.name)
        end = self.bus.schedule(
            ready, darr.nbytes, kind="d2h", peer=darr.device.name
        )
        self.host.wait_until(end)
        self.counters.d2h_messages += 1
        self.counters.d2h_bytes += darr.nbytes
        arrived = np.array(darr.data, copy=True)
        if self.faults.active:
            self.faults.apply_pending_corrupt(arrived)
        if self.resilience_enabled and not np.all(np.isfinite(arrived)):
            self.faults.note_detection(
                "d2h payload", time=end, site=darr.device.name,
                nbytes=int(darr.nbytes),
            )
            raise TransferCorruption(
                f"non-finite d2h payload arrived from {darr.device.name}"
            )
        return arrived

    # ------------------------------------------------------------------
    # Collectives (host-staged, as in the paper)
    # ------------------------------------------------------------------
    def allreduce_sum(
        self,
        partials: list[DeviceArray],
        ready_at: list[float] | None = None,
    ) -> np.ndarray:
        """Sum per-device partial results on the host.

        This is the paper's reduction pattern for dot products / Gram
        matrices: each GPU asynchronously sends its partial to the CPU,
        which accumulates them.  Returns the summed host array; use
        :meth:`broadcast` to push it back to the devices.  ``ready_at``
        optionally gives per-device payload-ready times (see :meth:`d2h`).
        """
        if len(partials) != self.n_gpus:
            raise ValueError(
                f"expected one partial per device ({self.n_gpus}), got {len(partials)}"
            )
        if ready_at is None:
            gathered = [self.d2h(p) for p in partials]
        else:
            if len(ready_at) != self.n_gpus:
                raise ValueError("ready_at must have one entry per device")
            gathered = [self.d2h(p, t) for p, t in zip(partials, ready_at)]
        total = gathered[0]
        for other in gathered[1:]:
            total = total + other
        if self.n_gpus > 1:
            # n-1 vector adds of the partial's size on the host
            self.host.charge_kernel(
                "axpy", "mkl", n=(self.n_gpus - 1) * total.size
            )
        return total

    def broadcast(self, array: np.ndarray) -> list[DeviceArray]:
        """Copy a host array to every device (one message per device)."""
        return [self.h2d(dev, array) for dev in self.devices]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MultiGpuContext(n_gpus={self.n_gpus}, machine={self.machine.name!r})"
