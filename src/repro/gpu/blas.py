"""Device BLAS for the simulated GPUs.

Every routine takes :class:`~repro.gpu.device.DeviceArray` operands, verifies
residency, performs the real float64 arithmetic with NumPy, and charges the
owning device's clock using the per-variant kernel cost models from
:mod:`repro.perf.kernels`.

The ``variant`` arguments mirror the kernel implementations the paper
compares (Section V-F):

* ``"cublas"``  — stock CUBLAS 4.2 behavior (slow on tall-skinny shapes);
* ``"magma"``   — the authors' optimized tall-skinny DGEMV / TRSM;
* ``"batched"`` — their batched DGEMM built from ``gemmBatched`` + reduce.

Numerically all variants are identical (same float64 result); they differ
only in charged time, exactly as the real kernels differ only in speed
(modulo reduction order, which the paper also ignores).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .device import Device, DeviceArray

__all__ = [
    "dot",
    "nrm2",
    "axpy",
    "scal",
    "copy_into",
    "gemv_t",
    "gemv_n_update",
    "gemm_tn",
    "gemm_nn",
    "gemm_nn_update",
    "ger_update",
    "trsm_right",
    "qr_panel",
    "spmv_ell",
    "spmv_csr_prefix",
]


def _device_of(*arrays: DeviceArray) -> Device:
    dev = arrays[0].device
    dev.require_resident(*arrays)
    return dev


def dot(x: DeviceArray, y: DeviceArray, variant: str = "cublas") -> DeviceArray:
    """Local dot product ``x . y`` -> scalar DeviceArray (shape ``(1,)``)."""
    dev = _device_of(x, y)
    if x.data.shape != y.data.shape:
        raise ValueError("dot operands must have equal shapes")
    dev.charge_kernel("dot", variant, n=x.data.size)
    out = DeviceArray(np.array([float(x.data @ y.data)]), dev)
    dev.apply_pending_faults(out)
    return out


def nrm2(x: DeviceArray, variant: str = "cublas") -> DeviceArray:
    """Local squared-norm contribution ``x . x`` (summed across devices
    before the square root, as in the paper's pseudocode)."""
    dev = _device_of(x)
    dev.charge_kernel("dot", variant, n=x.data.size)
    out = DeviceArray(np.array([float(x.data @ x.data)]), dev)
    dev.apply_pending_faults(out)
    return out


def axpy(alpha: float, x: DeviceArray, y: DeviceArray, variant: str = "cublas") -> None:
    """``y += alpha * x`` in place."""
    dev = _device_of(x, y)
    if x.data.shape != y.data.shape:
        raise ValueError("axpy operands must have equal shapes")
    dev.charge_kernel("axpy", variant, n=x.data.size)
    y.data += alpha * x.data
    dev.apply_pending_faults(y)


def scal(alpha: float, x: DeviceArray, variant: str = "cublas") -> None:
    """``x *= alpha`` in place."""
    dev = _device_of(x)
    dev.charge_kernel("scal", variant, n=x.data.size)
    x.data *= alpha
    dev.apply_pending_faults(x)


def copy_into(dst: DeviceArray, src: DeviceArray, variant: str = "cublas") -> None:
    """Device-local copy ``dst[:] = src``."""
    dev = _device_of(dst, src)
    if dst.data.shape != src.data.shape:
        raise ValueError("copy operands must have equal shapes")
    dev.charge_kernel("copy", variant, n=src.data.size)
    dst.data[...] = src.data
    dev.apply_pending_faults(dst)


def gemv_t(V: DeviceArray, x: DeviceArray, variant: str = "magma") -> DeviceArray:
    """Tall-skinny transposed matvec ``r = V.T @ x`` (V is n x k)."""
    dev = _device_of(V, x)
    n, k = V.data.shape
    if x.data.shape != (n,):
        raise ValueError(f"x must have shape ({n},), got {x.data.shape}")
    dev.charge_kernel("gemv_t", variant, n=n, k=k)
    out = DeviceArray(V.data.T @ x.data, dev)
    dev.apply_pending_faults(out)
    return out


def gemv_n_update(
    V: DeviceArray, r: DeviceArray, x: DeviceArray, variant: str = "magma"
) -> None:
    """Rank-k vector update ``x -= V @ r`` (V is n x k)."""
    dev = _device_of(V, r, x)
    n, k = V.data.shape
    if r.data.shape != (k,) or x.data.shape != (n,):
        raise ValueError("shape mismatch in gemv_n_update")
    dev.charge_kernel("gemv_n", variant, n=n, k=k)
    x.data -= V.data @ r.data
    dev.apply_pending_faults(x)


def gemm_tn(V: DeviceArray, W: DeviceArray, variant: str = "batched") -> DeviceArray:
    """Tall-skinny Gram-type product ``B = V.T @ W`` (V n x k, W n x j).

    The ``"batched_sp"`` variant performs the product in *real* float32
    (the mixed-precision scheme of the authors' follow-up work): roughly
    half the time on the device, at single-precision accuracy — the result
    is cast back to float64.
    """
    dev = _device_of(V, W)
    n, k = V.data.shape
    n2, j = W.data.shape
    if n != n2:
        raise ValueError("gemm_tn operands must share the long dimension")
    dev.charge_kernel("gemm_tn", variant, n=n, k=k, j=j)
    if variant == "batched_sp":
        product = (
            V.data.astype(np.float32).T @ W.data.astype(np.float32)
        ).astype(np.float64)
    else:
        product = V.data.T @ W.data
    out = DeviceArray(product, dev)
    dev.apply_pending_faults(out)
    return out


def gemm_nn_update(
    V: DeviceArray, B: DeviceArray, W: DeviceArray, variant: str = "batched"
) -> None:
    """Block update ``W -= V @ B`` (V n x k, B k x j, W n x j)."""
    dev = _device_of(V, B, W)
    n, k = V.data.shape
    k2, j = B.data.shape
    if k != k2 or W.data.shape != (n, j):
        raise ValueError("shape mismatch in gemm_nn_update")
    dev.charge_kernel("gemm_nn", variant, n=n, k=k, j=j)
    W.data -= V.data @ B.data
    dev.apply_pending_faults(W)


def gemm_nn(V: DeviceArray, B: DeviceArray, variant: str = "batched") -> DeviceArray:
    """Block product ``W = V @ B`` (V n x k, B k x j) -> new n x j array."""
    dev = _device_of(V, B)
    n, k = V.data.shape
    k2, j = B.data.shape
    if k != k2:
        raise ValueError("gemm_nn inner dimensions disagree")
    dev.charge_kernel("gemm_nn", variant, n=n, k=k, j=j)
    out = DeviceArray(V.data @ B.data, dev)
    dev.apply_pending_faults(out)
    return out


def ger_update(x: DeviceArray, y: DeviceArray, W: DeviceArray, variant: str = "magma") -> None:
    """Rank-1 update ``W -= x y^T`` (x n, y j, W n x j); BOrth/MGS's kernel."""
    dev = _device_of(x, y, W)
    n = x.data.shape[0]
    j = y.data.shape[0]
    if W.data.shape != (n, j):
        raise ValueError("shape mismatch in ger_update")
    dev.charge_kernel("gemm_nn", variant, n=n, k=1, j=j)
    W.data -= np.outer(x.data, y.data)
    dev.apply_pending_faults(W)


def trsm_right(V: DeviceArray, R: np.ndarray, variant: str = "magma") -> None:
    """Triangular solve ``V := V @ R^{-1}`` with upper-triangular R, in place.

    ``R`` is a small host matrix already broadcast to the device by the
    caller (the transfer is costed separately by the context).
    """
    dev = _device_of(V)
    n, k = V.data.shape
    R = np.asarray(R, dtype=np.float64)
    if R.shape != (k, k):
        raise ValueError(f"R must be ({k},{k}), got {R.shape}")
    dev.charge_kernel("trsm", variant, n=n, k=k)
    # Solve X R = V  <=>  R^T X^T = V^T with lower-triangular R^T.
    V.data[...] = scipy.linalg.solve_triangular(
        R.T, V.data.T, lower=True, check_finite=False
    ).T
    dev.apply_pending_faults(V)


def qr_panel(V: DeviceArray, variant: str = "magma") -> tuple[DeviceArray, np.ndarray]:
    """Local Householder QR of the tall-skinny panel (CAQR's per-GPU step).

    Returns ``(Q, R)`` with Q n x k on the device and R k x k returned as a
    host-visible ndarray value (its transfer is costed by the caller).
    """
    dev = _device_of(V)
    n, k = V.data.shape
    dev.charge_kernel("qr_panel", variant, n=n, k=k)
    q, r = np.linalg.qr(V.data, mode="reduced")
    out = DeviceArray(q, dev)
    dev.apply_pending_faults(out)
    return out, r


def spmv_ell(
    values: DeviceArray,
    col_idx: DeviceArray,
    x: DeviceArray,
    out: DeviceArray,
    variant: str = "ellpack",
) -> None:
    """ELLPACK SpMV ``out = A @ x`` on the device.

    ``values``/``col_idx`` are the padded (n_rows, width) ELLPACK arrays.
    Padded slots cost time too (they are streamed on a real GPU).
    """
    dev = _device_of(values, col_idx, x, out)
    n_rows, width = values.data.shape
    dev.charge_kernel("spmv", variant, nnz=n_rows * width, n_rows=n_rows)
    out.data[:] = 0.0
    vals = values.data
    cols = col_idx.data
    xd = x.data
    for j in range(width):
        out.data += vals[:, j] * xd[cols[:, j]]
    dev.apply_pending_faults(out)


def spmv_csr_prefix(
    indptr: DeviceArray,
    indices: DeviceArray,
    data: DeviceArray,
    x: DeviceArray,
    out: DeviceArray,
    n_active_rows: int,
    variant: str = "csr",
) -> None:
    """CSR SpMV over the leading ``n_active_rows`` rows (MPK's step kernel).

    The matrix powers kernel computes a shrinking prefix of the level-ordered
    extended local matrix at each step; only the touched nonzeros are costed.
    """
    dev = _device_of(indptr, indices, data, x, out)
    ptr = indptr.data
    if not 0 <= n_active_rows < ptr.size:
        raise ValueError(f"n_active_rows out of range: {n_active_rows}")
    end = int(ptr[n_active_rows])
    dev.charge_kernel("spmv", variant, nnz=end, n_rows=n_active_rows)
    products = data.data[:end] * x.data[indices.data[:end]]
    out.data[:n_active_rows] = 0.0
    diffs = np.diff(ptr[: n_active_rows + 1])
    nonempty = np.flatnonzero(diffs > 0)
    if nonempty.size:
        out.data[nonempty] = np.add.reduceat(products, ptr[:-1][nonempty])
    # Poison only the rows this step actually computed — anything beyond
    # the active prefix is never read back.
    dev.apply_pending_faults(out.data[:n_active_rows])
