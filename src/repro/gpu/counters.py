"""Event counters for the simulated runtime.

The paper's analysis is phrased in communication *counts* and *volumes*
(Fig. 10: number of GPU-CPU communications per TSQR; Section IV: gathered /
scattered element counts for MPK).  Every transfer and kernel launch in the
simulator increments these counters, so tests can check the implementation
against the paper's closed-form counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counters"]


@dataclass
class Counters:
    """Mutable tally of runtime events."""

    h2d_messages: int = 0
    h2d_bytes: int = 0
    d2h_messages: int = 0
    d2h_bytes: int = 0
    kernel_launches: int = 0
    device_flops: float = 0.0
    host_flops: float = 0.0
    host_small_ops: int = 0
    device_deactivations: int = 0
    repartitions: int = 0
    kernel_counts: dict = field(default_factory=dict)  # "op/variant" -> launches
    _marks: dict = field(default_factory=dict, repr=False)

    @property
    def total_messages(self) -> int:
        """All PCIe messages in both directions."""
        return self.h2d_messages + self.d2h_messages

    @property
    def total_bytes(self) -> int:
        """All PCIe bytes in both directions."""
        return self.h2d_bytes + self.d2h_bytes

    def count_kernel(self, op: str, variant: str) -> None:
        """Tally one launch of ``op``/``variant`` (per-kernel attribution)."""
        key = f"{op}/{variant}"
        self.kernel_counts[key] = self.kernel_counts.get(key, 0) + 1

    def reset(self) -> None:
        """Zero every counter and drop all marks.

        Marks are snapshots of counter state, so a mark taken before a
        reset would make :meth:`since` report negative deltas against the
        rebased counters.  Resetting therefore invalidates all marks; a
        later :meth:`since` for a pre-reset mark raises ``KeyError``
        instead of silently returning nonsense.
        """
        self.h2d_messages = 0
        self.h2d_bytes = 0
        self.d2h_messages = 0
        self.d2h_bytes = 0
        self.kernel_launches = 0
        self.device_flops = 0.0
        self.host_flops = 0.0
        self.host_small_ops = 0
        self.device_deactivations = 0
        self.repartitions = 0
        self.kernel_counts = {}
        self._marks.clear()

    def snapshot(self) -> dict:
        """Immutable view of the current values."""
        return {
            "h2d_messages": self.h2d_messages,
            "h2d_bytes": self.h2d_bytes,
            "d2h_messages": self.d2h_messages,
            "d2h_bytes": self.d2h_bytes,
            "kernel_launches": self.kernel_launches,
            "device_flops": self.device_flops,
            "host_flops": self.host_flops,
            "host_small_ops": self.host_small_ops,
            "device_deactivations": self.device_deactivations,
            "repartitions": self.repartitions,
            "kernel_counts": dict(self.kernel_counts),
        }

    def mark(self, name: str) -> None:
        """Remember the current snapshot under ``name`` (for later diffing)."""
        self._marks[name] = self.snapshot()

    def since(self, name: str) -> dict:
        """Difference between now and the snapshot saved by :meth:`mark`."""
        base = self._marks.get(name)
        if base is None:
            raise KeyError(f"no counter mark named {name!r}")
        now = self.snapshot()
        return {key: _diff(now[key], base.get(key, 0)) for key in now}


def _diff(now, base):
    """Numeric difference; dict-valued counters diff per key."""
    if isinstance(now, dict):
        base = base if isinstance(base, dict) else {}
        return {k: now.get(k, 0) - base.get(k, 0) for k in set(now) | set(base)}
    return now - base
