"""Matrix reordering and graph partitioning.

The paper distributes ``A`` over GPUs in block-row format after one of three
orderings (Section IV-B):

* **natural** — rows in original order, split into equal contiguous blocks;
* **RCM** — reverse Cuthill-McKee bandwidth reduction (their HSL MC60),
  then equal contiguous blocks;
* **KWY** — k-way graph partitioning minimizing edge cut with load balance
  (their METIS), one part per GPU.

This package implements all three from scratch: :func:`rcm` with George-Liu
pseudo-peripheral starting vertices, :func:`kway_partition` via greedy graph
growing plus boundary Kernighan-Lin refinement, and
:func:`recursive_bisection` as the alternative the paper's footnote 3
mentions testing.
"""

from .partition import (
    Partition,
    block_row_partition,
    edge_cut,
    partition_matrix,
    partition_quality,
)
from .rcm import rcm, matrix_bandwidth
from .kway import kway_partition, recursive_bisection, refine_partition

__all__ = [
    "Partition",
    "block_row_partition",
    "partition_matrix",
    "edge_cut",
    "partition_quality",
    "rcm",
    "matrix_bandwidth",
    "kway_partition",
    "recursive_bisection",
    "refine_partition",
]
