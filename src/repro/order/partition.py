"""Partition representation and block-row distribution.

A :class:`Partition` maps each matrix row to one of ``n_parts`` devices.  The
paper distributes ``A`` and the basis vectors in block-row format
(Section III); with natural/RCM orderings each GPU gets an equal contiguous
slab of rows (paper footnote 2), while KWY assigns the parts computed by the
graph partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.csr import CsrMatrix

__all__ = [
    "Partition",
    "block_row_partition",
    "partition_matrix",
    "edge_cut",
    "partition_quality",
]


@dataclass(frozen=True)
class Partition:
    """Assignment of ``n`` rows to ``n_parts`` parts.

    Attributes
    ----------
    assignment
        Length-``n`` int array; ``assignment[i]`` is the owning part of
        row ``i``.
    n_parts
        Number of parts (devices).
    """

    assignment: np.ndarray
    n_parts: int
    _rows_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        assignment = np.ascontiguousarray(self.assignment, dtype=np.int64)
        object.__setattr__(self, "assignment", assignment)
        if self.n_parts <= 0:
            raise ValueError(f"n_parts must be positive, got {self.n_parts}")
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= self.n_parts
        ):
            raise ValueError("part labels out of range")

    @property
    def n_rows(self) -> int:
        return int(self.assignment.size)

    def rows_of(self, part: int) -> np.ndarray:
        """Sorted row indices owned by ``part`` (cached)."""
        if not 0 <= part < self.n_parts:
            raise ValueError(f"part out of range: {part}")
        cached = self._rows_cache.get(part)
        if cached is None:
            cached = np.flatnonzero(self.assignment == part)
            self._rows_cache[part] = cached
        return cached

    def part_sizes(self) -> np.ndarray:
        """Number of rows per part."""
        return np.bincount(self.assignment, minlength=self.n_parts)

    def imbalance(self) -> float:
        """Max part size over ideal size (1.0 = perfectly balanced)."""
        sizes = self.part_sizes()
        ideal = self.n_rows / self.n_parts
        return float(sizes.max() / ideal) if ideal > 0 else 1.0


def block_row_partition(n_rows: int, n_parts: int) -> Partition:
    """Equal contiguous slabs of rows: the natural/RCM distribution.

    Every part is guaranteed non-empty, so ``n_parts`` must not exceed
    ``n_rows`` — an empty slab would give a device no rows to own, which
    the distributed kernels (and the degraded-mode repartitioner) cannot
    represent.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    if n_parts > n_rows:
        raise ValueError(
            f"cannot split {n_rows} rows into {n_parts} non-empty parts; "
            f"use at most n_parts={n_rows}"
        )
    bounds = np.linspace(0, n_rows, n_parts + 1).astype(np.int64)
    assignment = np.empty(n_rows, dtype=np.int64)
    for part in range(n_parts):
        assignment[bounds[part] : bounds[part + 1]] = part
    return Partition(assignment, n_parts)


def partition_matrix(matrix: CsrMatrix, partition: Partition):
    """Split a square matrix into per-part local row blocks.

    Returns a list of ``(rows, local_matrix)`` pairs where ``local_matrix``
    is ``A(rows, :)`` — the paper's :math:`A^{(d)}`.  Every part must own
    at least one row: a device with an empty local block cannot take part
    in the paper's collectives (its SpMV partial, norm contribution, and
    halo exchange would all be zero-sized).
    """
    if matrix.n_rows != partition.n_rows:
        raise ValueError("matrix and partition sizes disagree")
    empty = [p for p in range(partition.n_parts) if partition.rows_of(p).size == 0]
    if empty:
        raise ValueError(
            f"partition assigns no rows to part(s) {empty}; every part "
            "must own at least one row"
        )
    return [
        (partition.rows_of(part), matrix.extract_rows(partition.rows_of(part)))
        for part in range(partition.n_parts)
    ]


def edge_cut(graph: CsrMatrix, partition: Partition) -> int:
    """Number of undirected edges crossing between parts.

    ``graph`` should be a symmetrized adjacency structure; each crossing edge
    appears twice (once per direction) so the directed count is halved.
    """
    if graph.n_rows != partition.n_rows:
        raise ValueError("graph and partition sizes disagree")
    row_ids = np.repeat(np.arange(graph.n_rows), np.diff(graph.indptr))
    crossing = partition.assignment[row_ids] != partition.assignment[graph.indices]
    return int(crossing.sum()) // 2


def partition_quality(graph: CsrMatrix, partition: Partition) -> dict:
    """Summary metrics: edge cut, imbalance, boundary vertex count."""
    row_ids = np.repeat(np.arange(graph.n_rows), np.diff(graph.indptr))
    crossing = partition.assignment[row_ids] != partition.assignment[graph.indices]
    boundary_vertices = np.unique(row_ids[crossing]).size
    return {
        "edge_cut": int(crossing.sum()) // 2,
        "imbalance": partition.imbalance(),
        "boundary_vertices": int(boundary_vertices),
        "part_sizes": partition.part_sizes().tolist(),
    }
