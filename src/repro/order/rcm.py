"""Reverse Cuthill-McKee ordering.

RCM reduces matrix bandwidth by BFS-numbering vertices in order of increasing
degree within each level, then reversing.  Small bandwidth means each block
row's halo (the paper's boundary set :math:`\\delta^{(d,k)}`) grows only along
the band, which is why Fig. 6 shows RCM flattening the surface-to-volume
curve for ``G3_circuit``.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.graph import adjacency_structure, pseudo_peripheral_node

__all__ = ["rcm", "matrix_bandwidth"]


def rcm(matrix: CsrMatrix, start: int | None = None) -> np.ndarray:
    """Compute the reverse Cuthill-McKee permutation of a square matrix.

    Parameters
    ----------
    matrix
        Square sparse matrix; its symmetrized adjacency structure is used.
    start
        Optional BFS root.  By default a George-Liu pseudo-peripheral vertex
        of each connected component is used.

    Returns
    -------
    perm
        Permutation array: ``perm[k]`` is the original index of the vertex
        placed at position ``k``.  Apply with ``matrix.permute(perm)``.
    """
    graph = adjacency_structure(matrix)
    n = graph.n_rows
    degrees = graph.row_nnz()
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    pos = 0
    component_seed = 0
    while pos < n:
        while component_seed < n and visited[component_seed]:
            component_seed += 1
        if start is not None and pos == 0:
            root = int(start)
            if not 0 <= root < n:
                raise ValueError(f"start out of range: {start}")
        else:
            root = _component_pseudo_peripheral(graph, component_seed, visited)
        visited[root] = True
        order[pos] = root
        pos += 1
        front_begin = pos - 1
        # Cuthill-McKee BFS: expand level by level, sorting each new level by
        # (degree, vertex id) for determinism.
        while front_begin < pos:
            front = order[front_begin:pos]
            front_begin = pos
            fresh = _neighbors_of(graph, front, visited)
            if fresh.size:
                keys = np.lexsort((fresh, degrees[fresh]))
                fresh = fresh[keys]
                order[pos : pos + fresh.size] = fresh
                pos += fresh.size
    return order[::-1].copy()


def _component_pseudo_peripheral(graph: CsrMatrix, seed: int, visited: np.ndarray) -> int:
    """Pseudo-peripheral vertex of the component containing ``seed``.

    ``visited`` marks vertices already consumed by previous components; the
    BFS inside :func:`pseudo_peripheral_node` never crosses components, so it
    can be reused unchanged.
    """
    return pseudo_peripheral_node(graph, seed)


def _neighbors_of(graph: CsrMatrix, front: np.ndarray, visited: np.ndarray) -> np.ndarray:
    """Unvisited neighbors of ``front``, marking them visited."""
    starts = graph.indptr[front]
    counts = graph.indptr[front + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    neighbors = graph.indices[np.repeat(starts, counts) + offsets]
    fresh = np.unique(neighbors[~visited[neighbors]])
    visited[fresh] = True
    return fresh


def matrix_bandwidth(matrix: CsrMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for diagonal/empty)."""
    if matrix.nnz == 0:
        return 0
    row_ids = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
    return int(np.abs(row_ids - matrix.indices).max())
