"""K-way graph partitioning.

Stand-in for METIS k-way (the paper's KWY ordering): greedy graph growing
from pseudo-peripheral seeds to establish balanced parts, followed by
Kernighan-Lin/Fiduccia-Mattheyses-style boundary refinement passes that
reduce the edge cut while keeping balance within a tolerance.  A recursive
bisection variant is included as well — the paper's footnote 3 notes they
tested it and found k-way usually better, a comparison our ablation
benchmark reproduces.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.graph import adjacency_structure, expand_front, pseudo_peripheral_node
from .partition import Partition

__all__ = ["kway_partition", "recursive_bisection", "refine_partition"]


def kway_partition(
    matrix: CsrMatrix,
    n_parts: int,
    refine_passes: int = 6,
    balance_tol: float = 1.05,
) -> Partition:
    """Partition the rows of a square matrix into ``n_parts`` parts.

    Parameters
    ----------
    matrix
        Square sparse matrix; its symmetrized adjacency structure drives the
        partitioner.
    n_parts
        Number of parts (one per GPU).
    refine_passes
        Boundary-refinement sweeps after the initial growing phase.
    balance_tol
        Maximum allowed ``max_part_size / ideal_size`` during refinement.

    Returns
    -------
    Partition
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    graph = adjacency_structure(matrix)
    n = graph.n_rows
    if n_parts == 1 or n == 0:
        return Partition(np.zeros(n, dtype=np.int64), n_parts)
    assignment = _greedy_growing(graph, n_parts)
    partition = Partition(assignment, n_parts)
    if refine_passes > 0:
        partition = refine_partition(
            graph, partition, passes=refine_passes, balance_tol=balance_tol
        )
    return partition


def _greedy_growing(graph: CsrMatrix, n_parts: int) -> np.ndarray:
    """Grow parts by BFS from pseudo-peripheral seeds over unassigned rows."""
    n = graph.n_rows
    assignment = np.full(n, -1, dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    remaining = n
    for part in range(n_parts - 1):
        target = remaining // (n_parts - part)
        seed = _unassigned_seed(graph, assigned)
        taken = 0
        visited = assigned.copy()
        visited[seed] = True
        front = np.array([seed], dtype=np.int64)
        while taken < target:
            if front.size == 0:
                # Component exhausted: jump to a fresh unassigned seed.
                fresh_seed = _unassigned_seed(graph, visited | assigned)
                visited[fresh_seed] = True
                front = np.array([fresh_seed], dtype=np.int64)
            room = target - taken
            take = front[:room]
            assignment[take] = part
            assigned[take] = True
            taken += take.size
            leftover = front[room:]
            front = expand_front(graph, front, visited)
            if leftover.size:
                # Vertices visited but not taken re-seed the next expansion
                # so the part stays connected.
                front = np.unique(np.concatenate([leftover, front]))
        remaining -= taken
    assignment[assignment < 0] = n_parts - 1
    return assignment


def _unassigned_seed(graph: CsrMatrix, blocked: np.ndarray) -> int:
    """Pick a growth seed among rows not yet blocked."""
    candidates = np.flatnonzero(~blocked)
    if candidates.size == 0:
        raise RuntimeError("no unassigned vertices left")
    # Pseudo-peripheral search on the full graph starting from the first
    # candidate; if it lands on a blocked vertex (cross-component), fall back
    # to the raw candidate.
    node = pseudo_peripheral_node(graph, int(candidates[0]))
    return node if not blocked[node] else int(candidates[0])


def refine_partition(
    graph: CsrMatrix,
    partition: Partition,
    passes: int = 6,
    balance_tol: float = 1.05,
) -> Partition:
    """Boundary refinement: greedily move boundary vertices to reduce cut.

    Each pass computes, for every vertex, the number of neighbors in each
    part (one vectorized scatter-add), derives the best move gain, and
    applies positive-gain moves in descending gain order subject to the
    balance constraint.  Gains are not re-propagated within a pass (a
    "one-shot FM" approximation); several passes converge in practice.
    """
    n = graph.n_rows
    n_parts = partition.n_parts
    assignment = partition.assignment.copy()
    ideal = n / n_parts
    max_size = int(np.ceil(ideal * balance_tol))
    min_size = int(np.floor(ideal / balance_tol))
    row_ids = np.repeat(np.arange(n), np.diff(graph.indptr))
    for _ in range(passes):
        neighbor_parts = assignment[graph.indices]
        counts = np.zeros((n, n_parts), dtype=np.int64)
        np.add.at(counts, (row_ids, neighbor_parts), 1)
        own = counts[np.arange(n), assignment]
        masked = counts.copy()
        masked[np.arange(n), assignment] = -1
        best_part = np.argmax(masked, axis=1)
        gain = masked[np.arange(n), best_part] - own
        movers = np.flatnonzero(gain > 0)
        if movers.size == 0:
            break
        movers = movers[np.argsort(-gain[movers], kind="stable")]
        sizes = np.bincount(assignment, minlength=n_parts)
        moved = 0
        for v in movers:
            src = assignment[v]
            dst = best_part[v]
            if sizes[src] - 1 < min_size or sizes[dst] + 1 > max_size:
                continue
            assignment[v] = dst
            sizes[src] -= 1
            sizes[dst] += 1
            moved += 1
        if moved == 0:
            break
    return Partition(assignment, n_parts)


def recursive_bisection(matrix: CsrMatrix, n_parts: int) -> Partition:
    """Partition by recursive BFS-order bisection.

    Splits the vertex set by breadth-first distance from a pseudo-peripheral
    vertex (a level-structure bisection), recursing on each half.  Supports
    any ``n_parts`` by splitting proportionally.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    graph = adjacency_structure(matrix)
    n = graph.n_rows
    assignment = np.zeros(n, dtype=np.int64)
    _bisect(graph, np.arange(n, dtype=np.int64), 0, n_parts, assignment)
    return Partition(assignment, n_parts)


def _bisect(
    graph: CsrMatrix,
    vertices: np.ndarray,
    first_label: int,
    n_parts: int,
    assignment: np.ndarray,
) -> None:
    if n_parts == 1 or vertices.size == 0:
        assignment[vertices] = first_label
        return
    left_parts = n_parts // 2
    target_left = vertices.size * left_parts // n_parts
    order = _bfs_order_within(graph, vertices)
    left = order[:target_left]
    right = order[target_left:]
    _bisect(graph, left, first_label, left_parts, assignment)
    _bisect(graph, right, first_label + left_parts, n_parts - left_parts, assignment)


def _bfs_order_within(graph: CsrMatrix, vertices: np.ndarray) -> np.ndarray:
    """BFS visitation order restricted to ``vertices``."""
    inside = np.zeros(graph.n_rows, dtype=bool)
    inside[vertices] = True
    visited = ~inside  # everything outside counts as already visited
    order = np.empty(vertices.size, dtype=np.int64)
    pos = 0
    while pos < vertices.size:
        unvisited = vertices[~visited[vertices]]
        if unvisited.size == 0:
            break
        seed = int(unvisited[0])
        visited[seed] = True
        front = np.array([seed], dtype=np.int64)
        while front.size:
            order[pos : pos + front.size] = front
            pos += front.size
            front = expand_front(graph, front, visited)
    return order[:pos]
