"""Experiment harness: table/series formatting and experiment records.

The benchmark scripts in ``benchmarks/`` use these helpers to print the
rows/series of each paper figure/table in a uniform, grep-friendly layout
and to collect machine-readable records for EXPERIMENTS.md.
"""

from .tables import format_table, format_series, format_float
from .plot import ascii_plot
from .experiment import ExperimentRecord, run_solver_experiment, solver_table_row
from .profile import (
    cycle_breakdown_table,
    kernel_breakdown_rows,
    profile_breakdown_table,
    region_breakdown_rows,
)

__all__ = [
    "format_table",
    "format_series",
    "format_float",
    "ascii_plot",
    "ExperimentRecord",
    "run_solver_experiment",
    "solver_table_row",
    "profile_breakdown_table",
    "cycle_breakdown_table",
    "kernel_breakdown_rows",
    "region_breakdown_rows",
]
