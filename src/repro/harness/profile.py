"""Paper-style breakdown tables from a trace-derived profile.

The paper's Tables/Figs. 11-15 are per-kernel breakdowns of where CA-GMRES
time goes.  These helpers turn ``SolveResult.details["profile"]`` (built by
:meth:`repro.gpu.trace.TraceRecorder.profile`) into the same table shapes,
so benchmark scripts report attribution from the structured event trace
rather than the coarse ``ctx.timers`` sums.
"""

from __future__ import annotations

from .tables import format_table

__all__ = [
    "resolve_profile",
    "region_breakdown_rows",
    "kernel_breakdown_rows",
    "profile_breakdown_table",
    "cycle_breakdown_table",
]


def resolve_profile(result_or_profile) -> dict:
    """Accept a ``SolveResult`` or a bare profile dict; return the profile."""
    profile = getattr(result_or_profile, "details", None)
    if profile is not None:
        profile = profile.get("profile")
        if profile is None:
            raise ValueError("SolveResult has no details['profile']")
        return profile
    if not isinstance(result_or_profile, dict):
        raise TypeError("expected a SolveResult or a profile dict")
    return result_or_profile


def region_breakdown_rows(profile: dict) -> list:
    """Rows ``[region, incl ms, excl ms, count, % of total]``, largest first."""
    total = profile.get("total_time", 0.0) or 0.0
    rows = []
    for name, entry in sorted(
        profile["regions"].items(), key=lambda kv: -kv[1]["inclusive"]
    ):
        rows.append(
            [
                name,
                1e3 * entry["inclusive"],
                1e3 * entry["exclusive"],
                entry["count"],
                100.0 * entry["inclusive"] / total if total else 0.0,
            ]
        )
    return rows


def kernel_breakdown_rows(profile: dict, top: int | None = None) -> list:
    """Rows ``[kernel, launches, total ms, lanes]``, costliest first."""
    rows = []
    for name, entry in sorted(
        profile["kernels"].items(), key=lambda kv: -kv[1]["time"]
    ):
        lanes = ",".join(sorted(entry["by_lane"]))
        rows.append([name, entry["count"], 1e3 * entry["time"], lanes])
    return rows[:top] if top is not None else rows


def profile_breakdown_table(result_or_profile, title: str = "") -> str:
    """Region + per-kernel + PCIe breakdown as one text report."""
    profile = resolve_profile(result_or_profile)
    parts = []
    header = title or "Simulated-timeline breakdown"
    parts.append(
        format_table(
            ["region", "incl ms", "excl ms", "spans", "% time"],
            region_breakdown_rows(profile),
            title=f"{header} — regions "
            f"(total {1e3 * profile['total_time']:.3f} ms simulated)",
        )
    )
    parts.append(
        format_table(
            ["kernel", "launches", "total ms", "lanes"],
            kernel_breakdown_rows(profile),
            title="per-kernel",
        )
    )
    xfer = profile["transfers"]
    parts.append(
        format_table(
            ["direction", "messages", "bytes", "bus ms"],
            [
                [d, xfer[d]["count"], xfer[d]["bytes"], 1e3 * xfer[d]["time"]]
                for d in ("h2d", "d2h")
            ],
            title="PCIe",
        )
    )
    return "\n\n".join(parts)


def cycle_breakdown_table(result_or_profile, title: str = "") -> str:
    """Per-restart-cycle table: duration and per-region inclusive ms."""
    profile = resolve_profile(result_or_profile)
    cycles = profile.get("cycles", [])
    names: list[str] = []
    for cycle in cycles:
        for name in cycle["regions"]:
            if name not in names:
                names.append(name)
    rows = [
        [i, 1e3 * c["duration"]] + [1e3 * c["regions"].get(n, 0.0) for n in names]
        for i, c in enumerate(cycles)
    ]
    return format_table(
        ["cycle", "total ms"] + [f"{n} ms" for n in names],
        rows,
        title=title or "Per-restart-cycle breakdown",
    )
