"""Solver-experiment helpers shared by the Fig. 14/15 benchmarks.

One :class:`ExperimentRecord` corresponds to one row of the paper's Fig. 14
table: solver configuration, restart count, per-restart phase times (in
simulated milliseconds), and the speedup over the GMRES reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ca_gmres import ca_gmres
from ..core.convergence import SolveResult
from ..core.gmres import gmres
from ..gpu.context import MultiGpuContext
from ..order.partition import Partition
from ..sparse.csr import CsrMatrix

__all__ = ["ExperimentRecord", "run_solver_experiment", "solver_table_row"]


@dataclass
class ExperimentRecord:
    """One solver run, summarized like a Fig. 14 row."""

    label: str
    n_gpus: int
    converged: bool
    restarts: int
    iterations: int
    orth_ms: float  # Orth (BOrth + TSQR or per-vector orth) per restart
    tsqr_ms: float  # TSQR part alone (CA-GMRES only; 0 for GMRES)
    spmv_ms: float  # SpMV or MPK per restart
    total_ms: float  # whole restart loop
    breakdowns: int = 0
    speedup: float | None = None
    raw: SolveResult | None = field(default=None, repr=False)


def run_solver_experiment(
    label: str,
    matrix: CsrMatrix,
    b: np.ndarray,
    solver: str,
    n_gpus: int,
    partition: Partition | None = None,
    **kwargs,
) -> ExperimentRecord:
    """Run one GMRES / CA-GMRES configuration and summarize it.

    ``solver`` is ``"gmres"`` or ``"ca_gmres"``; ``kwargs`` pass through to
    the driver.  Times are per-restart simulated milliseconds.
    """
    ctx = MultiGpuContext(n_gpus)
    if solver == "gmres":
        result = gmres(matrix, b, ctx=ctx, partition=partition, **kwargs)
    elif solver == "ca_gmres":
        result = ca_gmres(matrix, b, ctx=ctx, partition=partition, **kwargs)
    else:
        raise ValueError(f"unknown solver {solver!r}")
    cycles = max(result.n_restarts, 1)
    # Phase attribution from the structured trace (inclusive region spans);
    # ctx.timers remains as the fallback for results without a profile.
    profile = result.details.get("profile")
    if profile is not None:
        timers = {k: v["inclusive"] for k, v in profile["regions"].items()}
    else:
        timers = result.timers
    orth = timers.get("orth", 0.0) + timers.get("borth", 0.0) + timers.get("tsqr", 0.0)
    spmv = timers.get("spmv", 0.0) + timers.get("mpk", 0.0)
    return ExperimentRecord(
        label=label,
        n_gpus=n_gpus,
        converged=result.converged,
        restarts=result.n_restarts,
        iterations=result.n_iterations,
        orth_ms=1e3 * orth / cycles,
        tsqr_ms=1e3 * timers.get("tsqr", 0.0) / cycles,
        spmv_ms=1e3 * spmv / cycles,
        total_ms=1e3 * result.total_time / cycles,
        breakdowns=result.breakdowns,
        raw=result,
    )


def solver_table_row(record: ExperimentRecord) -> list:
    """A Fig. 14-style table row for :func:`repro.harness.format_table`."""
    return [
        record.n_gpus,
        record.label,
        record.restarts,
        record.orth_ms,
        record.tsqr_ms if record.tsqr_ms else "-",
        record.spmv_ms,
        record.total_ms,
        f"{record.speedup:.2f}" if record.speedup is not None else "-",
    ]
