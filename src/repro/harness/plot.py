"""Terminal (ASCII) line plots for figure-style data.

The benchmarks archive their numbers as aligned tables; for quick visual
inspection of the paper's figure *shapes* (crossovers, saturation, scaling)
``ascii_plot`` renders one or more series as a character raster — no
plotting dependency needed.
"""

from __future__ import annotations

import math

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    x_values,
    series: dict,
    width: int = 60,
    height: int = 16,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render series as an ASCII chart.

    Parameters
    ----------
    x_values
        Shared x coordinates (numeric, ascending).
    series
        Mapping label -> list of y values (same length as ``x_values``);
        ``None`` entries are skipped.
    width, height
        Plot raster size in characters (excluding axes).
    title
        Optional heading line.
    logy
        Log-scale the y axis (all plotted values must be positive).

    Returns
    -------
    str
        The rendered chart, including a legend mapping markers to labels.
    """
    x_values = [float(x) for x in x_values]
    if not x_values:
        raise ValueError("x_values must not be empty")
    if not series:
        raise ValueError("series must not be empty")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    for label, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {label!r} length mismatch")

    def transform(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("logy requires positive values")
            return math.log10(v)
        return v

    points = [
        (x, transform(float(y)), marker)
        for marker, (label, ys) in zip(_MARKERS, series.items())
        for x, y in zip(x_values, ys)
        if y is not None
    ]
    if not points:
        raise ValueError("no plottable points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
        grid[row][col] = marker

    def y_label(row: int) -> float:
        frac = (height - 1 - row) / (height - 1)
        value = y_lo + frac * y_span
        return 10**value if logy else value

    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        label = f"{y_label(row):10.3g} |" if row % 4 == 0 or row == height - 1 else " " * 10 + " |"
        lines.append(label + "".join(grid[row]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.3g}" + " " * max(width - 22, 1) + f"{x_hi:>10.3g}"
    )
    legend = "   ".join(
        f"{marker} {label}" for marker, label in zip(_MARKERS, series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
