"""Plain-text table and series formatting for benchmark output."""

from __future__ import annotations

import math

__all__ = ["format_float", "format_table", "format_series"]


def format_float(value, digits: int = 4) -> str:
    """Compact float formatting: fixed for moderate values, sci otherwise."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    v = float(value)
    if v == 0.0:
        return "0"
    if math.isnan(v):
        return "nan"
    mag = abs(v)
    if 1e-3 <= mag < 1e5:
        return f"{v:.{digits}g}"
    return f"{v:.{max(digits - 2, 1)}e}"


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render an aligned fixed-width table."""
    cells = [[format_float(c) if not isinstance(c, str) else c for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_name: str, x_values, series: dict, title: str = "") -> str:
    """Render aligned columns for figure-style data (one x column, N series)."""
    headers = [x_name] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[k][i] for k in series])
    return format_table(headers, rows, title=title)
