"""Matrix powers kernel (Section IV of the paper).

Given a starting vector, MPK communicates *all* the vector elements each
device will ever need for ``s`` successive sparse matrix-vector products up
front, then computes ``A v, A² v, …, Aˢ v`` (or the Newton-shifted variants)
entirely locally — trading extra storage, redundant computation, and a
possibly larger communication *volume* for an ``s``-fold reduction in
communication *latency* (number of exchange phases).

* :mod:`~repro.mpk.dependency` — the boundary-set recursion δ^(d,k) and
  level-ordered extended row sets;
* :mod:`~repro.mpk.matrix_powers` — the executable kernel on the simulated
  devices;
* :mod:`~repro.mpk.analysis` — the structural metrics of Figs. 6-7
  (surface-to-volume ratio, computational overhead W^(d,s), communication
  volume).
"""

from .dependency import MpkDependency, compute_dependencies
from .matrix_powers import MatrixPowersKernel
from .shifts import (
    ShiftOp,
    leja_order,
    modified_leja_order,
    monomial_shift_ops,
    newton_shift_ops,
)
from .analysis import (
    surface_to_volume,
    computational_overhead,
    communication_volume,
    spmv_communication_volume,
    mpk_structure_report,
)

__all__ = [
    "MpkDependency",
    "compute_dependencies",
    "MatrixPowersKernel",
    "ShiftOp",
    "leja_order",
    "modified_leja_order",
    "monomial_shift_ops",
    "newton_shift_ops",
    "surface_to_volume",
    "computational_overhead",
    "communication_volume",
    "spmv_communication_volume",
    "mpk_structure_report",
]
