"""Structural analysis of the matrix powers kernel (Figs. 6 and 7).

These metrics are computed from the dependency sets alone (no execution):

* **surface-to-volume ratio** — ``nnz(A(δ^(d,1:s), :)) / nnz(A^(d))``:
  the memory overhead of the boundary submatrix relative to the local
  block (Fig. 6);
* **computational overhead** — ``W^(d,s) = 2 Σ_{k=1}^{s} nnz(A(δ^(d,k:s), :))``,
  the extra flops MPK performs over ``s`` plain SpMVs (the area under the
  Fig. 6 curve); total overhead over a restart loop of ``m`` iterations is
  ``(m/s) W^(d,s)``;
* **communication volume** — ``(m/s) (|∪_d δ^(d,1:s)| + Σ_d |δ^(d,1:s)|)``:
  gather plus scatter element counts over ``m`` iterations (Fig. 7).

Note: the executable kernel stores one *fewer* shell than the paper's
accounting (rows in the farthest shell δ^(d,1) are only read, never
computed, so their matrix rows are not stored); these functions follow the
paper's formulas exactly so the figures are comparable.
"""

from __future__ import annotations

import numpy as np

from ..order.partition import Partition
from ..sparse.csr import CsrMatrix
from .dependency import compute_dependencies

__all__ = [
    "surface_to_volume",
    "computational_overhead",
    "communication_volume",
    "spmv_communication_volume",
    "mpk_structure_report",
]


def _nnz_of_rows(matrix: CsrMatrix, rows: np.ndarray) -> int:
    if rows.size == 0:
        return 0
    return int((matrix.indptr[rows + 1] - matrix.indptr[rows]).sum())


def surface_to_volume(
    matrix: CsrMatrix, partition: Partition, s: int
) -> list[float]:
    """Per-device ratio ``nnz(A(δ^(d,1:s), :)) / nnz(A^(d))``."""
    deps = compute_dependencies(matrix, partition, s)
    ratios = []
    for dep in deps:
        local_nnz = _nnz_of_rows(matrix, dep.owned)
        boundary_nnz = _nnz_of_rows(matrix, dep.boundary)
        ratios.append(boundary_nnz / local_nnz if local_nnz else 0.0)
    return ratios


def computational_overhead(
    matrix: CsrMatrix, partition: Partition, s: int
) -> list[float]:
    """Per-device extra flops ``W^(d,s)`` of one MPK(s) invocation."""
    deps = compute_dependencies(matrix, partition, s)
    out = []
    for dep in deps:
        w = 0.0
        for k in range(1, s + 1):
            w += 2.0 * _nnz_of_rows(matrix, dep.delta_range(k))
        out.append(w)
    return out


def communication_volume(
    matrix: CsrMatrix, partition: Partition, s: int, m: int
) -> float:
    """Total elements exchanged by MPK over ``m`` iterations (Fig. 7).

    ``(m/s) * (|∪_d δ^(d,1:s)| + Σ_d |δ^(d,1:s)|)`` — the first term is the
    GPU→CPU gather, the second the CPU→GPU scatter.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    deps = compute_dependencies(matrix, partition, s)
    boundaries = [dep.boundary for dep in deps]
    nonempty = [b for b in boundaries if b.size]
    union = np.unique(np.concatenate(nonempty)).size if nonempty else 0
    total = sum(b.size for b in boundaries)
    n_calls = -(-m // s)  # ceil(m / s): number of MPK invocations
    return float(n_calls * (union + total))


def spmv_communication_volume(
    matrix: CsrMatrix, partition: Partition, m: int
) -> float:
    """Total elements exchanged by plain SpMV over ``m`` iterations.

    Equals :func:`communication_volume` with ``s = 1`` — the baseline the
    Fig. 7 curves are anchored to on the left.
    """
    return communication_volume(matrix, partition, 1, m)


def mpk_structure_report(
    matrix: CsrMatrix, partition: Partition, s_values, m: int = 100
) -> dict:
    """All Fig. 6/7 series for a sweep of ``s`` values.

    Returns a dict of lists aligned with ``s_values``: mean/max
    surface-to-volume, mean computational overhead (relative to local nnz),
    and total communication volume over ``m`` iterations.
    """
    s_values = list(s_values)
    report = {
        "s": s_values,
        "surface_to_volume_mean": [],
        "surface_to_volume_max": [],
        "overhead_per_restart": [],
        "comm_volume": [],
    }
    local_nnz = [
        _nnz_of_rows(matrix, partition.rows_of(d))
        for d in range(partition.n_parts)
    ]
    for s in s_values:
        ratios = surface_to_volume(matrix, partition, s)
        report["surface_to_volume_mean"].append(float(np.mean(ratios)))
        report["surface_to_volume_max"].append(float(np.max(ratios)))
        w = computational_overhead(matrix, partition, s)
        n_calls = -(-m // s)
        rel = [
            n_calls * wd / (2.0 * m * nnz) if nnz else 0.0
            for wd, nnz in zip(w, local_nnz)
        ]
        report["overhead_per_restart"].append(float(np.mean(rel)))
        report["comm_volume"].append(communication_volume(matrix, partition, s, m))
    return report
