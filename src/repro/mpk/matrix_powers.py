"""The executable matrix powers kernel on the simulated devices.

Follows the Fig. 4 pseudocode:

* **Setup** — one staged exchange moves every boundary element
  (δ^(d,1:s)) to each device; the extended vector ``z`` is laid out
  level-ordered ``[own | δ^(s) | δ^(s-1) | … | δ^(1)]``.
* **Matrix powers** — step ``k`` computes the rows i^(d,k+1) of
  ``v_{k+1}``, which by the level ordering are the leading
  ``active_rows(k)`` rows of the extended local matrix: one prefix-SpMV
  per step, no communication.  Shift operations (Newton basis) are applied
  as vectorized updates on the same prefix.

Each device stores the extended local matrix ``A(i^(d,2), :)`` in CSR with
columns remapped into the extended-vector indexing; the memory overhead
relative to ``A^(d)`` is exactly the paper's surface-to-volume ratio.
"""

from __future__ import annotations

import numpy as np

from ..dist.exchange import StagedExchange
from ..dist.multivector import DistMultiVector
from ..gpu import blas
from ..gpu.context import MultiGpuContext
from ..gpu.device import DeviceArray
from ..order.partition import Partition
from ..sparse.csr import CsrMatrix
from .dependency import MpkDependency, compute_dependencies
from .shifts import ShiftOp, monomial_shift_ops

__all__ = ["MatrixPowersKernel"]


class MatrixPowersKernel:
    """MPK(s) over a block-row distributed matrix.

    Parameters
    ----------
    ctx
        Execution context (one local matrix per device).
    matrix
        Global CSR matrix (host side; structural setup happens on the CPU
        before the iteration, as in the paper).
    partition
        Row ownership, one part per device.
    s
        Number of powers generated per invocation.
    """

    def __init__(
        self, ctx: MultiGpuContext, matrix: CsrMatrix, partition: Partition, s: int
    ):
        if partition.n_parts != ctx.n_gpus:
            raise ValueError("partition parts must equal context device count")
        if s < 1:
            raise ValueError("s must be >= 1")
        self.ctx = ctx
        self.partition = partition
        self.s = int(s)
        self.deps: list[MpkDependency] = compute_dependencies(matrix, partition, s)
        self.exchange = StagedExchange(
            partition, [dep.boundary for dep in self.deps]
        )
        # Per-device extended local matrices and ping-pong buffers.
        self._local: list[tuple[DeviceArray, DeviceArray, DeviceArray]] = []
        self._buffers: list[list[DeviceArray]] = []
        n = matrix.n_rows
        lookup = np.empty(n, dtype=np.int64)
        for d, dev in enumerate(ctx.devices):
            dep = self.deps[d]
            ext = dep.ext_rows
            # Reset the shared scratch per device: a stale mapping left by
            # device d-1 could otherwise satisfy the closure check for a
            # column that is *not* in this device's extended set and remap
            # it to an arbitrary in-range slot (silently wrong numerics).
            lookup.fill(-1)
            lookup[ext] = np.arange(ext.size)
            # Rows computed anywhere in the kernel: i^(d,2) (prefix of ext).
            compute_rows = ext[: dep.i_size(2)]
            local = matrix.extract_rows(compute_rows)
            remapped_indices = lookup[local.indices]
            if local.nnz and remapped_indices.min() < 0:
                raise AssertionError(
                    f"MPK dependency closure violated on device {dev.name}"
                )
            self._local.append(
                (
                    dev.adopt(local.indptr),
                    dev.adopt(remapped_indices),
                    dev.adopt(local.data),
                )
            )
            # Three buffers: current, next, and previous (for complex pairs).
            self._buffers.append([dev.zeros(max(ext.size, 1)) for _ in range(3)])

    # ------------------------------------------------------------------
    def run(
        self,
        V: DistMultiVector,
        j_start: int,
        shift_ops: list[ShiftOp] | None = None,
    ) -> None:
        """Generate ``V[:, j_start+1 … j_start+s]`` from ``V[:, j_start]``.

        ``shift_ops`` defaults to the monomial basis; pass
        :func:`repro.mpk.shifts.newton_shift_ops` output for the Newton
        basis.  A ``complex_second`` op must directly follow its
        ``complex_first``.
        """
        if shift_ops is None:
            shift_ops = monomial_shift_ops(self.s)
        if len(shift_ops) != self.s:
            raise ValueError(f"expected {self.s} shift ops, got {len(shift_ops)}")
        _check_pairing(shift_ops)
        if j_start + self.s >= V.n_cols:
            raise IndexError("multivector has too few columns for this MPK run")

        x_parts = V.column(j_start)
        received = self.exchange.exchange(self.ctx, x_parts)

        for d, dev in enumerate(self.ctx.devices):
            dep = self.deps[d]
            z_prev, z_cur, z_next = self._buffers[d]
            n_own = dep.n_owned
            z_cur.data[:n_own] = x_parts[d].data
            dev.charge_kernel("copy", "cublas", n=n_own)
            if received[d].size:
                # Placing the halo into the extended vector is a device copy
                # of |δ^(d,1:s)| elements — part of the MPK setup phase the
                # paper times, so it is charged like the own-row copy above.
                z_cur.data[n_own : n_own + received[d].size] = received[d]
                dev.charge_kernel("copy", "cublas", n=received[d].size)
            indptr, indices, data = self._local[d]
            for k in range(1, self.s + 1):
                active = dep.active_rows(k)
                op = shift_ops[k - 1]
                # The extended local matrix lives in the same padded GPU
                # layout as the SpMV operator's ELLPACK (level-ordered rows
                # have near-uniform width), so it is costed at ELLPACK rates.
                blas.spmv_csr_prefix(
                    indptr, indices, data, z_cur, z_next, active,
                    variant="ellpack",
                )
                if op.kind in ("real", "complex_first"):
                    # v_{k+1} -= theta * v_k on the active prefix
                    dev.charge_kernel("axpy", "cublas", n=active)
                    z_next.data[:active] -= op.re * z_cur.data[:active]
                elif op.kind == "complex_second":
                    dev.charge_kernel("axpy", "cublas", n=active)
                    z_next.data[:active] -= op.re * z_cur.data[:active]
                    dev.charge_kernel("axpy", "cublas", n=active)
                    z_next.data[:active] += (op.im**2) * z_prev.data[:active]
                # Own rows are the leading n_own entries of the prefix.
                col = V.column(j_start + k)[d]
                col.data[:] = z_next.data[:n_own]
                dev.charge_kernel("copy", "cublas", n=n_own)
                z_prev, z_cur, z_next = z_cur, z_next, z_prev
            # Leave the rotated buffers for the next invocation.
            self._buffers[d] = [z_prev, z_cur, z_next]

    # ------------------------------------------------------------------
    # Structural accessors used by the analysis/benchmarks
    # ------------------------------------------------------------------
    def boundary_sizes(self) -> list[int]:
        """|δ^(d,1:s)| per device (extra vector elements gathered)."""
        return [int(dep.boundary.size) for dep in self.deps]

    def device_memory_bytes(self) -> list[int]:
        """Per-device bytes of the kernel's resident state.

        The extended local matrix (indptr/indices/data) plus the three
        ping-pong buffers — the memory-for-latency trade of Section IV-A.
        Compare against ``ctx.machine.gpu.memory_bytes`` when planning runs.
        """
        out = []
        for d in range(len(self.deps)):
            indptr, indices, data = self._local[d]
            buffers = sum(buf.nbytes for buf in self._buffers[d])
            out.append(
                int(indptr.nbytes + indices.nbytes + data.nbytes + buffers)
            )
        return out

    def extra_nnz(self) -> list[int]:
        """Stored nonzeros of the boundary submatrix A(δ^(d,1:s), :)."""
        out = []
        for d, dep in enumerate(self.deps):
            indptr = self._local[d][0].data
            own_end = int(indptr[dep.n_owned])
            total = int(indptr[-1])
            out.append(total - own_end)
        return out


def _check_pairing(ops: list[ShiftOp]) -> None:
    """Validate that complex pair ops are properly adjacent."""
    expect_second = False
    for op in ops:
        if expect_second:
            if op.kind != "complex_second":
                raise ValueError("complex_first must be followed by complex_second")
            expect_second = False
        elif op.kind == "complex_second":
            raise ValueError("complex_second without preceding complex_first")
        elif op.kind == "complex_first":
            expect_second = True
    if expect_second:
        raise ValueError("dangling complex_first at end of shift sequence")
