"""Boundary-set (dependency) computation for the matrix powers kernel.

Following Section IV-A: for device ``d`` owning rows
:math:`\\mathbf{i}^{(d,s+1)}`, the rows of vector :math:`v_k` required to
complete all ``s`` products are

.. math::

    \\mathbf{i}^{(d,k)} = \\mathbf{i}^{(d,k+1)} \\cup \\boldsymbol\\delta^{(d,k)},
    \\qquad
    \\boldsymbol\\delta^{(d,k)} =
        \\bigcup_{i \\in \\mathbf{i}^{(d,k+1)}} \\mathrm{str}(a_{i,:})
        \\setminus \\mathbf{i}^{(d,k+1)},

computed on the CPU before the iteration begins.  In graph terms
:math:`\\boldsymbol\\delta^{(d,k)}` is the shell of vertices at distance
``s - k + 1`` from the local block.

The extended row set is stored *level-ordered* — own rows first, then
δ^(d,s), δ^(d,s-1), …, δ^(d,1) — so the rows the kernel must compute at
step ``k`` form a prefix, and each MPK step is a single SpMV over a
shrinking row prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..order.partition import Partition
from ..sparse.csr import CsrMatrix

__all__ = ["MpkDependency", "compute_dependencies"]


@dataclass(frozen=True)
class MpkDependency:
    """Dependency structure of one device for ``MPK(s)``.

    Attributes
    ----------
    owned
        Sorted global row indices of the local block (i^(d,s+1)).
    deltas
        ``deltas[0]`` is δ^(d,s) (distance-1 shell), ``deltas[1]`` is
        δ^(d,s-1), …, ``deltas[s-1]`` is δ^(d,1) (distance-s shell).
    ext_rows
        Level-ordered extended row set: ``[owned, δ^(d,s), …, δ^(d,1)]``
        concatenated (global indices; this is i^(d,1) as an ordered array).
    s
        Number of powers.
    """

    owned: np.ndarray
    deltas: tuple
    ext_rows: np.ndarray
    s: int

    @property
    def n_owned(self) -> int:
        return int(self.owned.size)

    @property
    def boundary(self) -> np.ndarray:
        """All boundary rows δ^(d,1:s) = ext_rows minus the owned prefix."""
        return self.ext_rows[self.n_owned :]

    def i_size(self, k: int) -> int:
        """|i^(d,k)| for 1 <= k <= s+1 (rows of v_k needed)."""
        if not 1 <= k <= self.s + 1:
            raise ValueError(f"k out of range [1, {self.s + 1}]: {k}")
        # i^(d,k) = owned + shells δ^(s), …, δ^(k): the first s-k+1 shells.
        n_shells = self.s - k + 1
        return self.n_owned + int(sum(d.size for d in self.deltas[:n_shells]))

    def active_rows(self, k: int) -> int:
        """Rows computed at MPK step ``k`` (a prefix): |i^(d,k+1)|."""
        if not 1 <= k <= self.s:
            raise ValueError(f"step k out of range [1, {self.s}]: {k}")
        return self.i_size(k + 1)

    def delta_range(self, k: int) -> np.ndarray:
        """δ^(d,k:s) = i^(d,k) \\ i^(d,s+1): boundary shells for steps >= k."""
        if not 1 <= k <= self.s:
            raise ValueError(f"k out of range [1, {self.s}]: {k}")
        end = self.i_size(k)
        return self.ext_rows[self.n_owned : end]


def compute_dependencies(
    matrix: CsrMatrix, partition: Partition, s: int
) -> list[MpkDependency]:
    """Compute every device's MPK dependency structure.

    Uses the *directed* structure of ``A`` (row ``i`` reads column ``j`` iff
    ``a_ij`` is stored), matching the paper's str(a_i,:) recursion rather
    than the symmetrized graph.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ValueError("MPK requires a square matrix")
    if matrix.n_rows != partition.n_rows:
        raise ValueError("matrix and partition sizes disagree")
    if s < 1:
        raise ValueError("s must be >= 1")
    deps = []
    n = matrix.n_rows
    for d in range(partition.n_parts):
        owned = partition.rows_of(d)
        in_set = np.zeros(n, dtype=bool)
        in_set[owned] = True
        frontier = owned
        deltas = []
        for _ in range(s):
            neighbors = _row_neighbors(matrix, frontier)
            fresh = neighbors[~in_set[neighbors]]
            fresh = np.unique(fresh)
            in_set[fresh] = True
            deltas.append(fresh)
            frontier = fresh
            if fresh.size == 0:
                # All later shells are empty too; fill them explicitly so
                # deltas always has s entries.
                deltas.extend(
                    np.empty(0, dtype=np.int64) for _ in range(s - len(deltas))
                )
                break
        ext_rows = np.concatenate([owned, *deltas]) if deltas else owned.copy()
        deps.append(MpkDependency(owned, tuple(deltas), ext_rows, s))
    return deps


def _row_neighbors(matrix: CsrMatrix, rows: np.ndarray) -> np.ndarray:
    """Column indices appearing in the given rows (with duplicates)."""
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = matrix.indptr[rows]
    counts = matrix.indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return matrix.indices[np.repeat(starts, counts) + offsets]
