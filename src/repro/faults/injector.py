"""The runtime half of fault injection: draws, corruption, and the log.

One :class:`FaultInjector` is owned by each
:class:`~repro.gpu.context.MultiGpuContext` and shared (duck-typed, no
imports from :mod:`repro.gpu` except the trace lane constant) by every
device, the host, and the PCIe bus.  The hook points:

* ``Device/Host.charge_kernel`` -> :meth:`on_kernel` (stall / poison /
  dropout, plus the is-this-device-dead check);
* ``PcieBus.schedule`` -> :meth:`on_bus_message` (stall / corrupt);
* ``MultiGpuContext.h2d/d2h`` -> :meth:`apply_pending_corrupt` (write the
  drawn corruption into the *arriving* copy) and :meth:`check_alive`.

Every injection, detection, and recovery is appended to the injector's
log **and** recorded as a zero/short-duration event in the ``"faults"``
trace lane, so Chrome/Perfetto exports show faults in timeline context
next to the kernels and transfers they hit.

Determinism: per-site RNG streams are seeded from ``(plan.seed,
crc32(site))``; occurrence counters advance once per opportunity; RNG
calls happen in a fixed pattern.  ``reset()`` (called by
``ctx.reset_clocks()``, i.e. at the start of every solve) restores the
streams, so each solve on a context replays the same schedule.
"""

from __future__ import annotations

import zlib

import numpy as np

from .errors import DeviceLost
from .plan import FaultEvent, FaultPlan

__all__ = ["FAULT_LANE", "FaultInjector"]

#: Trace lane carrying injected/detected/recovered fault events.
FAULT_LANE = "faults"


class FaultInjector:
    """Deterministic fault source + fault/detection/recovery log.

    Parameters
    ----------
    plan
        The :class:`~repro.faults.plan.FaultPlan` to execute, or ``None``
        for an inert injector (``active`` is False; every hook is a cheap
        no-op and only the detection log remains usable, e.g. for
        ``validate_transfers`` without any injection).
    trace
        Optional :class:`~repro.gpu.trace.TraceRecorder` to mirror the log
        into.
    """

    def __init__(self, plan: FaultPlan | None = None, trace=None):
        self.plan = plan
        self.trace = trace
        #: True when a plan is attached — the solvers read this (together
        #: with ``ctx.validate_transfers``) to arm their uncosted guards.
        self.active = plan is not None
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the pristine schedule state (streams, counters, logs)."""
        self.injected: list[dict] = []
        self.detections: list[dict] = []
        self.recoveries: list[dict] = []
        self.degradations: list[dict] = []
        self.dead: set[str] = set()
        self._counts: dict[str, int] = {}
        self._rngs: dict[str, np.random.Generator] = {}
        self._pending_corrupt: FaultEvent | None = None
        self._n_drawn = 0

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                (self.plan.seed, zlib.crc32(site.encode("ascii")))
            )
            self._rngs[site] = rng
        return rng

    def _next_event(self, site: str) -> tuple[FaultEvent | None, int]:
        """Consume one opportunity at ``site``; maybe return an event."""
        index = self._counts.get(site, 0)
        self._counts[site] = index + 1
        plan = self.plan
        scripted = plan.scripted_events(site, index)
        if scripted:
            return scripted[0], index
        if plan.rate > 0.0 and (
            plan.max_faults is None or self._n_drawn < plan.max_faults
        ):
            rng = self._rng(site)
            if rng.random() < plan.rate:
                eligible = plan.eligible_kinds(site)
                if eligible:
                    kind = eligible[int(rng.integers(len(eligible)))]
                    position = int(rng.integers(1 << 30))
                    self._n_drawn += 1
                    return (
                        FaultEvent(
                            site=site, kind=kind,
                            factor=plan.stall_factor, position=position,
                        ),
                        index,
                    )
        return None, index

    # ------------------------------------------------------------------
    # Hook points
    # ------------------------------------------------------------------
    def check_alive(self, site: str) -> None:
        """Raise :class:`DeviceLost` if ``site`` has dropped out."""
        if site in self.dead:
            raise DeviceLost(site)

    def on_kernel(self, clocked, op: str, variant: str, start: float, t: float) -> float:
        """Consume one kernel opportunity; returns the (possibly extended)
        duration.  May set a pending poison on ``clocked`` or raise
        :class:`DeviceLost`."""
        site = clocked.name
        if site in self.dead:
            raise DeviceLost(site, f"kernel {op} issued on lost device {site}")
        event, index = self._next_event(site)
        if event is None:
            return t
        if event.kind == "stall":
            extra = t * (event.factor - 1.0)
            self._log_injection(event, site, index, start, extra, op=op)
            return t + extra
        if event.kind == "dropout":
            self.dead.add(site)
            self._log_injection(event, site, index, start, 0.0, op=op)
            raise DeviceLost(site, f"device {site} dropped out during {op}")
        # poison (and a scripted "corrupt" on a kernel site, which behaves
        # identically): delivered into the kernel's output by the BLAS layer.
        clocked._poison_pending = event
        self._log_injection(event, site, index, start, 0.0, op=op)
        return t

    def on_bus_message(
        self, kind: str, peer: str | None, nbytes: int, start: float, duration: float
    ) -> float:
        """Consume one bus-message opportunity; returns extra bus delay.

        A drawn ``"corrupt"`` is left pending for the context to apply to
        the arriving payload copy (:meth:`apply_pending_corrupt`).
        """
        event, index = self._next_event("pcie")
        if event is None:
            return 0.0
        if event.kind == "stall":
            extra = duration * (event.factor - 1.0)
            self._log_injection(
                event, "pcie", index, start, extra, transfer=kind, peer=peer
            )
            return extra
        self._pending_corrupt = event
        self._log_injection(
            event, "pcie", index, start, 0.0, transfer=kind, peer=peer
        )
        return 0.0

    def apply_pending_corrupt(self, data: np.ndarray) -> None:
        """Write the pending transfer corruption (if any) into ``data``."""
        event = self._pending_corrupt
        if event is None:
            return
        self._pending_corrupt = None
        poison_array(data, event)

    # ------------------------------------------------------------------
    # Detection / recovery log (used by solvers and the exchange layer)
    # ------------------------------------------------------------------
    def note_detection(self, what: str, time: float, site: str | None = None, **info) -> None:
        """Log that a guard caught non-finite data (``what`` names it)."""
        record = {"what": what, "site": site, "time": float(time), **info}
        self.detections.append(record)
        if self.trace is not None:
            self.trace.record(
                f"detect {what}", FAULT_LANE, "detect", time, 0.0,
                site=site, **info,
            )

    def note_recovery(self, action: str, time: float, **info) -> None:
        """Log a recovery action (``transfer-retry`` | ``panel-retry`` |
        ``cycle-redo``)."""
        record = {"action": action, "time": float(time), **info}
        self.recoveries.append(record)
        if self.trace is not None:
            self.trace.record(
                f"recover {action}", FAULT_LANE, "recover", time, 0.0, **info
            )

    def note_degradation(self, event: str, time: float, site: str | None = None, **info) -> None:
        """Log a degraded-mode event (``degraded`` | ``repartition`` |
        ``deadline-exceeded``) on the fault trace lane.

        The canonical degradation record lives in
        ``SolveResult.details["degradation"]`` (built by
        :class:`repro.core.degrade.DegradationManager`); this mirror puts
        the event next to the faults/kernels it follows in timeline
        exports, and works even with no plan attached (deadline watchdogs
        run on fault-free contexts too).
        """
        record = {"event": event, "site": site, "time": float(time), **info}
        self.degradations.append(record)
        if self.trace is not None:
            name = event if site is None else f"{event} {site}"
            self.trace.record(name, FAULT_LANE, event, time, 0.0, site=site, **info)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def has_activity(self) -> bool:
        """True when anything was injected, detected, or recovered."""
        return bool(
            self.injected or self.detections or self.recoveries or self.dead
        )

    def schedule(self) -> list[tuple]:
        """The injected schedule as comparable ``(site, kind, index)`` rows."""
        return [(r["site"], r["kind"], r["index"]) for r in self.injected]

    def report(self, unrecovered: list[dict] | None = None) -> dict:
        """The ``SolveResult.details["faults"]`` payload.

        Parameters
        ----------
        unrecovered
            Solver-supplied terminal failures (device loss, retry budgets
            exhausted); an empty/None value means the solve survived
            everything that was thrown at it.
        """
        unrecovered = list(unrecovered or [])
        return {
            "injected": [dict(r) for r in self.injected],
            "detected": [dict(r) for r in self.detections],
            "recovered": [dict(r) for r in self.recoveries],
            "unrecovered": unrecovered,
            "lost_devices": sorted(self.dead),
            "aborted": bool(unrecovered),
            "counts": {
                "injected": len(self.injected),
                "detected": len(self.detections),
                "recovered": len(self.recoveries),
                "unrecovered": len(unrecovered),
            },
        }

    # ------------------------------------------------------------------
    def _log_injection(
        self, event: FaultEvent, site: str, index: int, start: float,
        extra: float, **info,
    ) -> None:
        record = {
            "site": site, "kind": event.kind, "index": index,
            "time": float(start), **info,
        }
        if event.kind == "stall":
            record["extra_time"] = float(extra)
        self.injected.append(record)
        if self.trace is not None:
            self.trace.record(
                f"{event.kind} {site}", FAULT_LANE, "fault", start, extra,
                site=site, fault_kind=event.kind, index=index, **info,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(active={self.active}, injected={len(self.injected)}, "
            f"detected={len(self.detections)}, recovered={len(self.recoveries)})"
        )


def poison_array(data: np.ndarray, event: FaultEvent) -> None:
    """Overwrite one deterministic element of ``data`` with NaN/Inf."""
    if data.size == 0:
        return
    idx = np.unravel_index(event.position % data.size, data.shape)
    data[idx] = event.poison_value
