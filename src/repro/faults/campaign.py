"""Fault-injection campaigns: repeated solves under a seeded fault plan.

A campaign runs ``trials`` independent solves of one problem/solver
configuration, each with its own deterministic :class:`FaultPlan` (trial
``i`` uses ``seed + i``), and aggregates what was injected, detected,
recovered, and lost.  Everything — fault schedules, numerics, simulated
timings — is a pure function of the configuration, so the same seed
reproduces the identical campaign dict, byte for byte.

This module imports the solvers, so it is *not* re-exported from
:mod:`repro.faults` (which the GPU layer imports); pull it in explicitly::

    from repro.faults.campaign import run_campaign, campaign_tables
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .plan import DEFAULT_KINDS, FaultPlan

__all__ = ["run_campaign", "run_trial", "campaign_tables"]


def _solvers() -> dict:
    from ..core.ca_gmres import ca_gmres
    from ..core.gmres import gmres
    from ..core.pipelined import pipelined_gmres

    return {"gmres": gmres, "ca_gmres": ca_gmres, "pipelined": pipelined_gmres}


def _problems() -> dict:
    from ..matrices.stencil import convection_diffusion2d, poisson2d, poisson3d

    return {
        "poisson2d": poisson2d,
        "poisson3d": poisson3d,
        "convdiff2d": convection_diffusion2d,
    }


_EMPTY_FAULTS = {
    "injected": [], "detected": [], "recovered": [], "unrecovered": [],
    "lost_devices": [], "aborted": False,
    "counts": {"injected": 0, "detected": 0, "recovered": 0, "unrecovered": 0},
}


def run_trial(
    solver: str = "ca_gmres",
    problem: str = "poisson2d",
    nx: int = 30,
    n_gpus: int = 2,
    seed: int = 0,
    rate: float = 1e-3,
    kinds: tuple = DEFAULT_KINDS,
    s: int = 5,
    m: int = 20,
    tol: float = 1e-6,
    max_restarts: int = 80,
    stall_factor: float = 8.0,
    max_faults: int | None = None,
) -> dict:
    """One solve under one fault plan; returns a flat record."""
    from ..gpu.context import MultiGpuContext

    solve = _solvers()[solver]
    A = _problems()[problem](nx)
    b = np.ones(A.n_rows)
    plan = FaultPlan.from_rate(
        seed, rate, kinds=kinds, stall_factor=stall_factor, max_faults=max_faults
    )
    ctx = MultiGpuContext(n_gpus, fault_plan=plan)
    kwargs = dict(ctx=ctx, m=m, tol=tol, max_restarts=max_restarts)
    if solver == "ca_gmres":
        kwargs["s"] = s
    # Poisoned values legitimately flow through a few kernels before a
    # guard catches them; silence the resulting NumPy warnings locally.
    with np.errstate(invalid="ignore", over="ignore"):
        result = solve(A, b, **kwargs)
    faults = result.details.get("faults", _EMPTY_FAULTS)
    injected_by_kind = dict(Counter(r["kind"] for r in faults["injected"]))
    recoveries_by_action = dict(Counter(r["action"] for r in faults["recovered"]))
    return {
        "seed": seed,
        "converged": bool(result.converged),
        "restarts": int(result.n_restarts),
        "iterations": int(result.n_iterations),
        "sim_time_ms": 1e3 * result.total_time,
        "injected": faults["counts"]["injected"],
        "detected": faults["counts"]["detected"],
        "recovered": faults["counts"]["recovered"],
        "unrecovered": faults["counts"]["unrecovered"],
        "injected_by_kind": injected_by_kind,
        "recoveries_by_action": recoveries_by_action,
        "lost_devices": list(faults["lost_devices"]),
        "aborted": bool(faults["aborted"]),
        "schedule": [
            (r["site"], r["kind"], r["index"]) for r in faults["injected"]
        ],
    }


def run_campaign(
    solver: str = "ca_gmres",
    problem: str = "poisson2d",
    nx: int = 30,
    n_gpus: int = 2,
    seed: int = 0,
    rate: float = 1e-3,
    kinds: tuple = DEFAULT_KINDS,
    trials: int = 3,
    s: int = 5,
    m: int = 20,
    tol: float = 1e-6,
    max_restarts: int = 80,
    stall_factor: float = 8.0,
    max_faults: int | None = None,
) -> dict:
    """Run ``trials`` solves (trial ``i`` seeded ``seed + i``); aggregate.

    Returns a JSON-friendly dict with the configuration, per-trial
    records (:func:`run_trial`), and campaign totals.  Deterministic:
    identical arguments produce an identical dict.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    config = {
        "solver": solver, "problem": problem, "nx": nx, "n_gpus": n_gpus,
        "seed": seed, "rate": rate, "kinds": list(kinds), "trials": trials,
        "s": s, "m": m, "tol": tol, "max_restarts": max_restarts,
        "stall_factor": stall_factor, "max_faults": max_faults,
    }
    records = [
        run_trial(
            solver=solver, problem=problem, nx=nx, n_gpus=n_gpus,
            seed=seed + i, rate=rate, kinds=kinds, s=s, m=m, tol=tol,
            max_restarts=max_restarts, stall_factor=stall_factor,
            max_faults=max_faults,
        )
        for i in range(trials)
    ]
    by_kind: Counter = Counter()
    by_action: Counter = Counter()
    for r in records:
        by_kind.update(r["injected_by_kind"])
        by_action.update(r["recoveries_by_action"])
    totals = {
        "injected": sum(r["injected"] for r in records),
        "detected": sum(r["detected"] for r in records),
        "recovered": sum(r["recovered"] for r in records),
        "unrecovered": sum(r["unrecovered"] for r in records),
        "injected_by_kind": dict(sorted(by_kind.items())),
        "recoveries_by_action": dict(sorted(by_action.items())),
        "converged_trials": sum(r["converged"] for r in records),
        "aborted_trials": sum(r["aborted"] for r in records),
    }
    return {"config": config, "trials": records, "totals": totals}


def campaign_tables(campaign: dict) -> str:
    """Human-readable per-trial + recovery-summary tables."""
    from ..harness import format_table

    cfg = campaign["config"]
    rows = [
        [
            i, r["seed"], "yes" if r["converged"] else "no",
            r["restarts"], r["iterations"], f"{r['sim_time_ms']:.2f}",
            r["injected"], r["detected"], r["recovered"], r["unrecovered"],
            ",".join(r["lost_devices"]) or "-",
        ]
        for i, r in enumerate(campaign["trials"])
    ]
    trial_table = format_table(
        ["trial", "seed", "conv", "rest", "iter", "sim ms",
         "inj", "det", "rec", "unrec", "lost"],
        rows,
        title=(
            f"Fault campaign — {cfg['solver']} on {cfg['n_gpus']} GPU(s), "
            f"{cfg['problem']} nx={cfg['nx']}, rate={cfg['rate']:g}, "
            f"seed={cfg['seed']}"
        ),
    )
    t = campaign["totals"]
    kind_rows = [
        [kind, count] for kind, count in t["injected_by_kind"].items()
    ] or [["(none)", 0]]
    action_rows = [
        [action, count] for action, count in t["recoveries_by_action"].items()
    ] or [["(none)", 0]]
    summary = format_table(
        ["fault kind", "injected"], kind_rows, title="Injected by kind"
    )
    actions = format_table(
        ["recovery action", "count"], action_rows, title="Recoveries by action"
    )
    tail = (
        f"totals: {t['injected']} injected, {t['detected']} detected, "
        f"{t['recovered']} recovered, {t['unrecovered']} unrecovered; "
        f"{t['converged_trials']}/{cfg['trials']} trials converged, "
        f"{t['aborted_trials']} aborted"
    )
    return "\n\n".join([trial_table, summary, actions, tail])
