"""Fault-injection campaigns: repeated solves under a seeded fault plan.

A campaign runs ``trials`` independent solves of one problem/solver
configuration, each with its own deterministic :class:`FaultPlan` (trial
``i`` uses ``seed + i``), and aggregates what was injected, detected,
recovered, and lost.  Everything — fault schedules, numerics, simulated
timings — is a pure function of the configuration, so the same seed
reproduces the identical campaign dict, byte for byte.

This module imports the solvers, so it is *not* re-exported from
:mod:`repro.faults` (which the GPU layer imports); pull it in explicitly::

    from repro.faults.campaign import run_campaign, campaign_tables
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .plan import DEFAULT_KINDS, FaultPlan

__all__ = ["run_campaign", "run_trial", "campaign_tables", "make_session"]


def _solvers() -> dict:
    from ..core.ca_gmres import ca_gmres
    from ..core.gmres import gmres
    from ..core.pipelined import pipelined_gmres

    return {"gmres": gmres, "ca_gmres": ca_gmres, "pipelined": pipelined_gmres}


def _problems() -> dict:
    from ..matrices.stencil import convection_diffusion2d, poisson2d, poisson3d

    return {
        "poisson2d": poisson2d,
        "poisson3d": poisson3d,
        "convdiff2d": convection_diffusion2d,
    }


_EMPTY_FAULTS = {
    "injected": [], "detected": [], "recovered": [], "unrecovered": [],
    "lost_devices": [], "aborted": False,
    "counts": {"injected": 0, "detected": 0, "recovered": 0, "unrecovered": 0},
}


def make_session(
    solver: str = "ca_gmres",
    problem: str = "poisson2d",
    nx: int = 30,
    n_gpus: int = 2,
    s: int = 5,
    m: int = 20,
    tol: float = 1e-6,
    max_restarts: int = 80,
    metrics=None,
):
    """One :class:`~repro.serve.SolverSession` for a whole campaign.

    The session's structural plan (partition, distributed matrix, MPK
    closure, exchange index sets) is computed once and shared by every
    trial; :meth:`~repro.serve.SolverSession.arm_fault_plan` swaps the
    fault schedule between trials on the long-lived context.  Only the
    sessionable solvers are supported (``pipelined`` has no Run form).
    ``metrics`` (a :class:`~repro.metrics.registry.MetricsRegistry`) makes
    the session record serving + solve telemetry labeled with ``problem``.
    """
    from ..serve import SolverSession

    if solver not in ("gmres", "ca_gmres"):
        raise ValueError(f"solver {solver!r} does not support session mode")
    A = _problems()[problem](nx)
    kwargs = dict(
        n_gpus=n_gpus, m=m, tol=tol, max_restarts=max_restarts,
        metrics=metrics, metrics_label=problem,
    )
    if solver == "ca_gmres":
        return SolverSession(A, solver="ca", s=s, **kwargs)
    return SolverSession(A, solver="gmres", **kwargs)


def run_trial(
    solver: str = "ca_gmres",
    problem: str = "poisson2d",
    nx: int = 30,
    n_gpus: int = 2,
    seed: int = 0,
    rate: float = 1e-3,
    kinds: tuple = DEFAULT_KINDS,
    s: int = 5,
    m: int = 20,
    tol: float = 1e-6,
    max_restarts: int = 80,
    stall_factor: float = 8.0,
    max_faults: int | None = None,
    degrade: bool = False,
    deadline: float | None = None,
    session=None,
    metrics=None,
) -> dict:
    """One solve under one fault plan; returns a flat record.

    With ``degrade`` the solve runs under a default
    :class:`~repro.core.degrade.DegradePolicy`: device dropouts are
    absorbed by repartitioning over the survivors instead of aborting.
    ``deadline`` sets a simulated-time budget in seconds.  With
    ``session`` (see :func:`make_session`) the solve reuses the session's
    cached structural plan and context instead of rebuilding them; the
    record is byte-identical either way.  ``metrics`` records the solve's
    runtime + convergence + fault telemetry (labels ``solver``/``matrix``
    = the solver and problem names); a session carrying its own registry
    already records through it, so pass one or the other.
    """
    from ..core.degrade import DegradePolicy
    from ..gpu.context import MultiGpuContext

    plan = FaultPlan.from_rate(
        seed, rate, kinds=kinds, stall_factor=stall_factor, max_faults=max_faults
    )
    overrides = {}
    if degrade:
        overrides["degrade"] = DegradePolicy()
    if deadline is not None:
        overrides["deadline"] = deadline
    if session is not None:
        session.arm_fault_plan(plan)
        b = np.ones(session.matrix.n_rows)
        with np.errstate(invalid="ignore", over="ignore"):
            result = session.solve(b, **overrides)
    else:
        solve = _solvers()[solver]
        A = _problems()[problem](nx)
        b = np.ones(A.n_rows)
        ctx = MultiGpuContext(n_gpus, fault_plan=plan)
        kwargs = dict(ctx=ctx, m=m, tol=tol, max_restarts=max_restarts)
        if solver == "ca_gmres":
            kwargs["s"] = s
        kwargs.update(overrides)
        # Poisoned values legitimately flow through a few kernels before a
        # guard catches them; silence the resulting NumPy warnings locally.
        with np.errstate(invalid="ignore", over="ignore"):
            result = solve(A, b, **kwargs)
        if metrics is not None:
            from ..metrics.collect import observe_solve

            observe_solve(metrics, ctx, result, solver=solver, matrix=problem)
    faults = result.details.get("faults", _EMPTY_FAULTS)
    degradation = result.details.get("degradation")
    injected_by_kind = dict(Counter(r["kind"] for r in faults["injected"]))
    recoveries_by_action = dict(Counter(r["action"] for r in faults["recovered"]))
    return {
        "seed": seed,
        "converged": bool(result.converged),
        "restarts": int(result.n_restarts),
        "iterations": int(result.n_iterations),
        "sim_time_ms": 1e3 * result.total_time,
        "injected": faults["counts"]["injected"],
        "detected": faults["counts"]["detected"],
        "recovered": faults["counts"]["recovered"],
        "unrecovered": faults["counts"]["unrecovered"],
        "injected_by_kind": injected_by_kind,
        "recoveries_by_action": recoveries_by_action,
        "lost_devices": list(faults["lost_devices"]),
        "aborted": bool(faults["aborted"]),
        "schedule": [
            (r["site"], r["kind"], r["index"]) for r in faults["injected"]
        ],
        "repartitions": 0 if degradation is None else degradation["n_repartitions"],
        "final_devices": (
            n_gpus if degradation is None else degradation["final_devices"]
        ),
        "deadline_exceeded": (
            False if degradation is None else bool(degradation["deadline_exceeded"])
        ),
    }


def run_campaign(
    solver: str = "ca_gmres",
    problem: str = "poisson2d",
    nx: int = 30,
    n_gpus: int = 2,
    seed: int = 0,
    rate: float = 1e-3,
    kinds: tuple = DEFAULT_KINDS,
    trials: int = 3,
    s: int = 5,
    m: int = 20,
    tol: float = 1e-6,
    max_restarts: int = 80,
    stall_factor: float = 8.0,
    max_faults: int | None = None,
    degrade: bool = False,
    deadline: float | None = None,
    session: bool = False,
    metrics=None,
) -> dict:
    """Run ``trials`` solves (trial ``i`` seeded ``seed + i``); aggregate.

    Returns a JSON-friendly dict with the configuration, per-trial
    records (:func:`run_trial`), and campaign totals.  Deterministic:
    identical arguments produce an identical dict.  ``degrade`` and
    ``deadline`` are forwarded to every trial (see :func:`run_trial`).
    With ``session`` all trials share one :class:`~repro.serve.SolverSession`
    (structural plan computed once, fault plans re-armed per trial); the
    per-trial records are byte-identical to the sessionless campaign, and
    the returned dict gains a ``"serving"`` key with the plan-cache stats.
    ``metrics`` aggregates every trial's telemetry into one registry
    (threaded through the session when ``session`` is set, through
    :func:`run_trial` otherwise) — the ``--metrics-out`` CLI flag writes
    it as a JSON snapshot.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    config = {
        "solver": solver, "problem": problem, "nx": nx, "n_gpus": n_gpus,
        "seed": seed, "rate": rate, "kinds": list(kinds), "trials": trials,
        "s": s, "m": m, "tol": tol, "max_restarts": max_restarts,
        "stall_factor": stall_factor, "max_faults": max_faults,
        "degrade": degrade, "deadline": deadline,
    }
    if session:
        config["session"] = True
    sess = (
        make_session(
            solver=solver, problem=problem, nx=nx, n_gpus=n_gpus,
            s=s, m=m, tol=tol, max_restarts=max_restarts, metrics=metrics,
        )
        if session
        else None
    )
    records = [
        run_trial(
            solver=solver, problem=problem, nx=nx, n_gpus=n_gpus,
            seed=seed + i, rate=rate, kinds=kinds, s=s, m=m, tol=tol,
            max_restarts=max_restarts, stall_factor=stall_factor,
            max_faults=max_faults, degrade=degrade, deadline=deadline,
            session=sess, metrics=metrics,
        )
        for i in range(trials)
    ]
    by_kind: Counter = Counter()
    by_action: Counter = Counter()
    for r in records:
        by_kind.update(r["injected_by_kind"])
        by_action.update(r["recoveries_by_action"])
    totals = {
        "injected": sum(r["injected"] for r in records),
        "detected": sum(r["detected"] for r in records),
        "recovered": sum(r["recovered"] for r in records),
        "unrecovered": sum(r["unrecovered"] for r in records),
        "injected_by_kind": dict(sorted(by_kind.items())),
        "recoveries_by_action": dict(sorted(by_action.items())),
        "converged_trials": sum(r["converged"] for r in records),
        "aborted_trials": sum(r["aborted"] for r in records),
        "repartitions": sum(r["repartitions"] for r in records),
        "deadline_exceeded_trials": sum(r["deadline_exceeded"] for r in records),
    }
    out = {"config": config, "trials": records, "totals": totals}
    if sess is not None:
        out["serving"] = sess.stats()
    return out


def campaign_tables(campaign: dict) -> str:
    """Human-readable per-trial + recovery-summary tables.

    Degraded-mode columns (repartitions, final device count, deadline
    hits) appear only when the campaign ran with ``degrade`` or a
    ``deadline`` — the default table stays byte-stable.
    """
    from ..harness import format_table

    cfg = campaign["config"]
    degraded_mode = bool(cfg.get("degrade")) or cfg.get("deadline") is not None
    headers = ["trial", "seed", "conv", "rest", "iter", "sim ms",
               "inj", "det", "rec", "unrec", "lost"]
    if degraded_mode:
        headers += ["rep", "dev", "ddl"]
    rows = []
    for i, r in enumerate(campaign["trials"]):
        row = [
            i, r["seed"], "yes" if r["converged"] else "no",
            r["restarts"], r["iterations"], f"{r['sim_time_ms']:.2f}",
            r["injected"], r["detected"], r["recovered"], r["unrecovered"],
            ",".join(r["lost_devices"]) or "-",
        ]
        if degraded_mode:
            row += [
                r["repartitions"], r["final_devices"],
                "yes" if r["deadline_exceeded"] else "no",
            ]
        rows.append(row)
    trial_table = format_table(
        headers,
        rows,
        title=(
            f"Fault campaign — {cfg['solver']} on {cfg['n_gpus']} GPU(s), "
            f"{cfg['problem']} nx={cfg['nx']}, rate={cfg['rate']:g}, "
            f"seed={cfg['seed']}"
        ),
    )
    t = campaign["totals"]
    kind_rows = [
        [kind, count] for kind, count in t["injected_by_kind"].items()
    ] or [["(none)", 0]]
    action_rows = [
        [action, count] for action, count in t["recoveries_by_action"].items()
    ] or [["(none)", 0]]
    summary = format_table(
        ["fault kind", "injected"], kind_rows, title="Injected by kind"
    )
    actions = format_table(
        ["recovery action", "count"], action_rows, title="Recoveries by action"
    )
    tail = (
        f"totals: {t['injected']} injected, {t['detected']} detected, "
        f"{t['recovered']} recovered, {t['unrecovered']} unrecovered; "
        f"{t['converged_trials']}/{cfg['trials']} trials converged, "
        f"{t['aborted_trials']} aborted"
    )
    if degraded_mode:
        tail += (
            f"; {t['repartitions']} repartition(s), "
            f"{t['deadline_exceeded_trials']} deadline-exceeded trial(s)"
        )
    serving = campaign.get("serving")
    if serving is not None:
        tail += (
            f"\nserving: {serving['structural_plans']} structural plan(s) "
            f"across {serving['n_solves']} solve(s) — "
            f"{serving['plan_hits']} hit(s), {serving['plan_misses']} miss(es), "
            f"{serving['invalidations']} invalidation(s)"
        )
    return "\n\n".join([trial_table, summary, actions, tail])
