"""Fault plans: what to inject, where, and when — deterministically.

A :class:`FaultPlan` is pure data.  It can be built two ways:

* **Rate-based** (:meth:`FaultPlan.from_rate`): every injection site draws
  a Bernoulli trial per *opportunity* (one kernel charge, one bus message)
  from its own seeded RNG stream.  Because each site's stream depends only
  on ``(seed, site)`` and the op order at a site is deterministic, the same
  seed always produces the identical injected-event schedule.
* **Scripted** (:meth:`FaultPlan.scripted`): an explicit list of
  :class:`FaultEvent` with ``(site, trigger, kind)``, where ``trigger`` is
  the 0-based occurrence index of the site's opportunities (the 3rd kernel
  on ``gpu1``, the 5th PCIe message, ...).  Tests use this for precise
  placement.

Fault kinds
-----------
``"corrupt"``
    A transfer payload arrives with one entry overwritten by NaN/Inf
    (transient: the source data is intact, a re-transfer delivers clean
    bytes).  Valid on the ``pcie`` site.
``"poison"``
    A kernel writes NaN/Inf into one entry of its output array (transient:
    re-running the producing kernel regenerates clean data).  Valid on
    device sites.
``"stall"``
    A clock-only slowdown: the kernel (or bus message) takes
    ``stall_factor`` times its modeled duration.  Numerics are untouched.
``"dropout"``
    Hard device loss: the kernel raises
    :class:`~repro.faults.errors.DeviceLost` and every subsequent
    operation touching the device fails.  Not recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan"]

#: All recognized fault kinds.
FAULT_KINDS = ("corrupt", "poison", "stall", "dropout")

#: Kinds that make sense per site class (used to filter rate-based draws).
_SITE_KINDS = {
    "pcie": ("corrupt", "stall"),
    "host": ("stall",),
    "device": ("poison", "stall", "dropout"),
}

#: Default kinds for rate campaigns: transient/recoverable faults only.
DEFAULT_KINDS = ("corrupt", "poison", "stall")


@dataclass(frozen=True)
class FaultEvent:
    """One injectable fault.

    Attributes
    ----------
    site
        Injection site: ``"gpu0"``..``"gpuN"``, ``"host"``, or ``"pcie"``.
    kind
        One of :data:`FAULT_KINDS`.
    trigger
        Occurrence index at the site for scripted plans (``None`` for
        rate-drawn events, which fire at the opportunity that drew them).
    factor
        Slowdown multiplier for ``"stall"`` events.
    position
        Deterministic corruption anchor: the poisoned/corrupted element is
        ``position % size`` of the target buffer, and its value is Inf when
        ``position`` is odd, NaN otherwise.
    """

    site: str
    kind: str
    trigger: int | None = None
    factor: float = 8.0
    position: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.kind == "stall" and self.factor <= 1.0:
            raise ValueError("stall factor must be > 1")

    @property
    def poison_value(self) -> float:
        """The non-finite value this event writes (NaN or +Inf)."""
        return np.inf if self.position % 2 else np.nan


def _site_class(site: str) -> str:
    if site == "pcie":
        return "pcie"
    if site == "host":
        return "host"
    return "device"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule specification for fault injection.

    Attributes
    ----------
    seed
        Root seed for the per-site RNG streams (rate-based injection).
    rate
        Per-opportunity injection probability (0 disables rate draws; a
        zero-rate plan still arms the solvers' uncosted guards, and is
        guaranteed to leave results and simulated timings bit-identical).
    kinds
        Fault kinds eligible for rate-based draws (filtered per site, see
        module docstring).  Defaults to the transient kinds — campaigns
        that want hard dropouts opt in explicitly.
    events
        Scripted events (fire at their exact ``(site, trigger)`` in
        addition to any rate draws).
    stall_factor
        Slowdown multiplier applied by rate-drawn ``"stall"`` events.
    max_faults
        Cap on the number of rate-drawn injections (``None`` = unlimited);
        scripted events always fire.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: tuple = DEFAULT_KINDS
    events: tuple = field(default_factory=tuple)
    stall_factor: float = 8.0
    max_faults: int | None = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in kinds")
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError("events must be FaultEvent instances")
            if ev.trigger is None:
                raise ValueError("scripted events need an explicit trigger")
        index: dict[tuple, list] = {}
        for ev in self.events:
            index.setdefault((ev.site, ev.trigger), []).append(ev)
        object.__setattr__(self, "_scripted", index)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_rate(
        cls,
        seed: int,
        rate: float,
        kinds: tuple = DEFAULT_KINDS,
        stall_factor: float = 8.0,
        max_faults: int | None = None,
    ) -> "FaultPlan":
        """A purely rate-based plan (see class docstring)."""
        return cls(
            seed=int(seed), rate=float(rate), kinds=tuple(kinds),
            stall_factor=stall_factor, max_faults=max_faults,
        )

    @classmethod
    def scripted(cls, events) -> "FaultPlan":
        """A plan that fires exactly the given ``FaultEvent`` list."""
        return cls(events=tuple(events))

    # -- queries ------------------------------------------------------------
    def scripted_events(self, site: str, index: int) -> list[FaultEvent]:
        """Scripted events registered for occurrence ``index`` at ``site``."""
        return self._scripted.get((site, index), [])

    def eligible_kinds(self, site: str) -> tuple:
        """Rate-drawable kinds at ``site`` (plan kinds ∩ site-valid kinds)."""
        allowed = _SITE_KINDS[_site_class(site)]
        return tuple(k for k in self.kinds if k in allowed)

    def describe(self) -> dict:
        """Human/JSON-friendly summary of the plan."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "scripted": len(self.events),
            "stall_factor": self.stall_factor,
            "max_faults": self.max_faults,
        }
