"""Exceptions raised by injected (or genuinely detected) faults.

These are deliberately *not* subclasses of the orthogonalization errors in
:mod:`repro.orth.errors`: a :class:`CholeskyBreakdown` is a numerical
property of the panel that the CholQR->CAQR fallback handles, while the
exceptions here describe the simulated machine misbehaving.  The solvers
treat :class:`TransferCorruption` as recoverable (retry the transfer, the
panel, or the restart cycle).  :class:`DeviceLost` is terminal by default
(finish with a structured failure report instead of raising), but a
solver given a :class:`~repro.core.degrade.DegradePolicy` absorbs it by
repartitioning the solve over the surviving devices and resuming (see
:mod:`repro.core.degrade`).
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "DeviceLost",
    "SilentDataCorruption",
    "TransferCorruption",
]


class FaultError(RuntimeError):
    """Base class for simulated-machine fault conditions."""


class DeviceLost(FaultError):
    """A device dropped off the bus; all further work on it is impossible.

    Without a degrade policy the solve finishes early with a structured
    ``details["faults"]`` report; with one, the loss is absorbed by a
    live repartition onto the survivors.

    Attributes
    ----------
    site
        The lane name of the lost device (``"gpu0"``, ...).
    """

    def __init__(self, site: str, message: str | None = None):
        super().__init__(message or f"device {site} was lost")
        self.site = site


class TransferCorruption(FaultError):
    """A PCIe payload arrived with non-finite entries.

    Raised by ``MultiGpuContext.h2d``/``d2h`` when transfer validation is
    enabled (``validate_transfers=True``) and the delivered buffer fails
    the ``np.isfinite`` guard — whether the corruption was injected by a
    :class:`~repro.faults.plan.FaultPlan` or produced by real divergent
    arithmetic upstream.
    """


class SilentDataCorruption(FaultError):
    """A solver-level guard caught NaN/Inf in host-side solver state.

    Raised by the (uncosted) finiteness guards on residual norms,
    Hessenberg columns, and block coefficients when resilience is enabled
    — the signal that a kernel-poisoning fault slipped past the transfer
    checks and must be handled by a panel retry or a cycle redo.
    """
