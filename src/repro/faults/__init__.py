"""Deterministic fault injection and solver resilience.

The paper's machine (three M2090s on a shared PCIe gen-2 bus) is exactly
the kind of node where production solver services see transient transfer
corruption, kernel-level NaN poisoning, thermal stalls, and outright
device loss.  The reproduction executes every kernel in real float64 on a
simulated timeline, which makes those failure modes *injectable on
demand*: a :class:`FaultPlan` — either a seeded rate spec or an explicit
script of ``(site, trigger, kind)`` events — hooks into
``Device``/``Host`` kernel execution, the PCIe bus, and the staged halo
exchange through a :class:`FaultInjector` owned by the
:class:`~repro.gpu.context.MultiGpuContext`.

Injection is **deterministic**: each site (``gpu0``.. , ``host``,
``pcie``) owns an independent counter-seeded RNG stream, so the same seed
replays the identical fault schedule, and a zero-rate plan is provably
free (all guards are uncosted host-side checks).

The solver side — NaN/Inf guards, bounded panel retries, restart-cycle
checkpointing, and the structured ``SolveResult.details["faults"]``
report — lives in :mod:`repro.core`; campaigns that exercise it live in
:mod:`repro.faults.campaign` and behind ``python -m repro faults``.

This module intentionally re-exports only the light pieces; import
:mod:`repro.faults.campaign` explicitly for the campaign runner (it pulls
in the solvers).
"""

from .errors import DeviceLost, FaultError, SilentDataCorruption, TransferCorruption
from .injector import FAULT_LANE, FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "FAULT_LANE",
    "DeviceLost",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "SilentDataCorruption",
    "TransferCorruption",
]
