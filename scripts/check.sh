#!/usr/bin/env bash
# Repo check: lint (when ruff is available) + tier-1 test suite.
#
# Usage: scripts/check.sh [--faults] [extra pytest args...]
#
#   --faults   additionally run a small fault-injection smoke campaign
#              (python -m repro faults) after the test suite.
set -euo pipefail

cd "$(dirname "$0")/.."

run_faults_smoke=0
if [[ "${1:-}" == "--faults" ]]; then
    run_faults_smoke=1
    shift
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q "$@"

if [[ "$run_faults_smoke" == 1 ]]; then
    echo "== fault-injection smoke campaign =="
    PYTHONPATH=src python -m repro faults \
        --nx 16 --m 12 --s 4 --max-restarts 40 --trials 2 --rate 1e-3
fi
