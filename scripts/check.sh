#!/usr/bin/env bash
# Repo check: lint (when ruff is available) + tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q "$@"
