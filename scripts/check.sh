#!/usr/bin/env bash
# Repo check: lint (when ruff is available) + tier-1 test suite.
#
# Usage: scripts/check.sh [--faults] [--degrade] [--serve] [--metrics]
#        [extra pytest args...]
#
#   --faults    additionally run a small fault-injection smoke campaign
#               (python -m repro faults) after the test suite.
#   --degrade   additionally run a degraded-mode smoke campaign: device
#               dropouts are injected and absorbed by repartitioning the
#               solve over the surviving GPUs (python -m repro faults
#               --degrade), with a simulated-time deadline armed.
#   --serve     additionally run a serving smoke: the plan-reuse CLI
#               (python -m repro serve, exits nonzero unless warm solves
#               are bit-identical to cold) plus a session-mode fault
#               campaign sharing one structural plan across trials.
#   --metrics   additionally run a metrics smoke: the instrumented
#               workload twice (python -m repro metrics --check, exits
#               nonzero unless the deterministic snapshot and timings
#               are bit-identical across the reruns).
set -euo pipefail

cd "$(dirname "$0")/.."

run_faults_smoke=0
run_degrade_smoke=0
run_serve_smoke=0
run_metrics_smoke=0
while [[ "${1:-}" == "--faults" || "${1:-}" == "--degrade" \
        || "${1:-}" == "--serve" || "${1:-}" == "--metrics" ]]; do
    case "$1" in
        --faults)  run_faults_smoke=1 ;;
        --degrade) run_degrade_smoke=1 ;;
        --serve)   run_serve_smoke=1 ;;
        --metrics) run_metrics_smoke=1 ;;
    esac
    shift
done

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q "$@"

if [[ "$run_faults_smoke" == 1 ]]; then
    echo "== fault-injection smoke campaign =="
    PYTHONPATH=src python -m repro faults \
        --nx 16 --m 12 --s 4 --max-restarts 40 --trials 2 --rate 1e-3
fi

if [[ "$run_degrade_smoke" == 1 ]]; then
    echo "== degraded-mode smoke campaign (dropout -> repartition) =="
    # seed 0 at this rate scripts a dropout on trial 0; with --degrade the
    # solve repartitions onto the surviving GPUs and still converges.  The
    # generous deadline arms the watchdog without tripping it.
    PYTHONPATH=src python -m repro faults \
        --nx 16 --m 12 --s 4 --max-restarts 40 --trials 2 --rate 2e-3 \
        --gpus 3 --kinds corrupt,poison,stall,dropout --degrade --deadline 1.0
fi

if [[ "$run_serve_smoke" == 1 ]]; then
    echo "== serving smoke (plan reuse, bit-identity enforced) =="
    PYTHONPATH=src python -m repro serve \
        --matrix poisson2d --nx 24 --gpus 2 --ordering kway \
        --s 4 --m 12 --basis monomial --rhs 3
    echo "== session-mode fault campaign (one plan, all trials) =="
    PYTHONPATH=src python -m repro faults \
        --nx 16 --m 12 --s 4 --max-restarts 40 --trials 2 --rate 1e-3 \
        --session
fi

if [[ "$run_metrics_smoke" == 1 ]]; then
    echo "== metrics smoke (snapshot determinism enforced) =="
    PYTHONPATH=src python -m repro metrics --suite tiny --check
fi
