#!/usr/bin/env python
"""Benchmark perf-regression gate CLI.

Compare a fresh benchmark document against a committed baseline::

    PYTHONPATH=src python scripts/perf_gate.py \
        --current BENCH_serving.json \
        --baseline benchmarks/baselines/serving_quick.json

Exit code 1 on regression (CI fails).  Regenerate a baseline after an
intentional perf change with ``--update``::

    PYTHONPATH=src python scripts/perf_gate.py \
        --current results/metrics/fig14_sim.json \
        --baseline benchmarks/baselines/fig14_quick.json --update

See :mod:`repro.metrics.gate` for the baseline schema and tolerance
semantics.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.metrics.gate import run_gate  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True, help="fresh benchmark JSON document"
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON file"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current document instead of gating",
    )
    args = parser.parse_args(argv)
    return run_gate(args.current, args.baseline, update=args.update)


if __name__ == "__main__":
    raise SystemExit(main())
